//! Structural and state-space analysis of nets.
//!
//! * [`reachability`] — bounded breadth-first exploration of the marking
//!   graph: boundedness, deadlock detection, state counting.
//! * [`invariants`] — P-invariants via exact rational Gaussian elimination;
//!   token-conservation laws used by the property-test suite.
//! * [`ctmc`] — extraction of a continuous-time Markov chain from an
//!   exponential-only net, bridging to the `markov` crate's solvers. This is
//!   the formal content of the paper's Markov-vs-Petri comparison: a net
//!   with only exponential transitions *is* a CTMC; adding a deterministic
//!   transition leaves that class, which is exactly why the paper's Markov
//!   model needs supplementary variables and still fails at large
//!   `Power_Up_Delay`.
//! * [`structural`] — cheap lints: isolated places, unguarded immediate
//!   sources, conflicting-priority warnings.

pub mod ctmc;
pub mod invariants;
pub mod reachability;
pub mod structural;

pub use ctmc::{extract_ctmc, CtmcExtraction, ExtractError};
pub use invariants::{p_invariants, PInvariant};
pub use reachability::{explore, Exploration, ExploreLimits};
pub use structural::{lint, Lint};
