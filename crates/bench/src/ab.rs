//! Paired-median interleaved A/B measurement, shared by the `*_ab`
//! benchmark binaries.
//!
//! Designed for noisy shared-CPU hosts: the two variants are timed in
//! adjacent blocks (interleaved within milliseconds, so machine-speed
//! phases hit both equally), the block order alternates between pairs so
//! slow drift cancels, each pair yields a speedup ratio, and the median
//! ratio over many pairs is robust to outliers that make separated
//! minimums incomparable. Each block returns a checksum alongside its
//! time; the harness asserts the two variants agree pair-by-pair, which
//! keeps the optimizer honest and proves the fast path computed the same
//! work as the reference.

/// One paired measurement: median per-block times of both variants and
/// the median of per-pair ratios (`b_ns / a_ns` — how much faster A is).
#[derive(Debug, Clone, Copy)]
pub struct AbStats {
    /// Pairs measured.
    pub pairs: usize,
    /// Median block time of variant A (ns).
    pub a_ns: f64,
    /// Median block time of variant B (ns).
    pub b_ns: f64,
    /// Median of per-pair `b_ns / a_ns` ratios.
    pub speedup: f64,
}

/// Median of `v` by total order (upper median). Panics on an empty sample.
pub fn median(v: &mut [f64]) -> f64 {
    assert!(!v.is_empty(), "median of an empty sample");
    v.sort_by(|x, y| x.total_cmp(y));
    v[v.len() / 2]
}

/// Time `pairs` adjacent blocks of variant `a` against variant `b`.
///
/// Each closure receives the pair index and runs one block, returning
/// `(elapsed_ns, checksum)`. The checksums of a pair must agree — both
/// variants are required to perform the same logical work on the same
/// seeds — or the harness panics. One throwaway block of each variant
/// runs first to warm caches and lazy initialisation.
pub fn run_paired(
    pairs: usize,
    mut a: impl FnMut(usize) -> (f64, u64),
    mut b: impl FnMut(usize) -> (f64, u64),
) -> AbStats {
    assert!(pairs >= 1, "at least one pair");
    let _ = a(0);
    let _ = b(0);
    let mut ratios = Vec::with_capacity(pairs);
    let mut a_ns = Vec::with_capacity(pairs);
    let mut b_ns = Vec::with_capacity(pairs);
    for p in 0..pairs {
        // Alternate which variant goes first so slow drift cancels.
        let ((ta, ca), (tb, cb)) = if p % 2 == 0 {
            let ra = a(p);
            let rb = b(p);
            (ra, rb)
        } else {
            let rb = b(p);
            let ra = a(p);
            (ra, rb)
        };
        assert_eq!(ca, cb, "variants disagree on pair {p}'s checksum");
        ratios.push(tb / ta);
        a_ns.push(ta);
        b_ns.push(tb);
    }
    AbStats {
        pairs,
        a_ns: median(&mut a_ns),
        b_ns: median(&mut b_ns),
        speedup: median(&mut ratios),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_order_insensitive() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0]), 4.0);
        assert_eq!(median(&mut [7.0]), 7.0);
    }

    #[test]
    fn paired_ratios_use_matching_pair_indices() {
        // Variant A takes 100 ns, variant B 250 ns, both checksum on the
        // pair index: the speedup is exactly 2.5 and every pair was
        // matched against its own counterpart.
        let stats = run_paired(9, |p| (100.0, p as u64), |p| (250.0, p as u64));
        assert_eq!(stats.pairs, 9);
        assert!((stats.speedup - 2.5).abs() < 1e-12);
        assert_eq!(stats.a_ns, 100.0);
        assert_eq!(stats.b_ns, 250.0);
    }

    #[test]
    #[should_panic(expected = "checksum")]
    fn checksum_mismatch_is_fatal() {
        run_paired(2, |_| (1.0, 1), |_| (1.0, 2));
    }
}
