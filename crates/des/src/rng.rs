//! Seeded sampling for the DES simulators (independent of petri-core's RNG
//! so the two substrates share no code paths — they are meant to
//! cross-validate each other).
//!
//! Deliberately a *different* generator family than `petri_core::rng`
//! (a counter-mode SplitMix64 stream rather than xoshiro256++), keeping the
//! cross-validation oracles statistically independent implementations top
//! to bottom.

/// Reproducible random stream for DES runs.
#[derive(Debug, Clone)]
pub struct DesRng {
    state: u64,
}

impl DesRng {
    /// Create from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        // Advance the counter once so the first output is the finalizer
        // of seed+gamma rather than of the raw seed itself.
        let mut r = DesRng { state: seed };
        r.next_u64();
        r
    }

    /// Next raw 64-bit value (SplitMix64).
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponential with the given rate (inverse transform).
    #[inline]
    pub fn exp(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0);
        -(1.0 - self.unit()).ln() / rate
    }

    /// Gaussian via Box–Muller.
    pub fn gaussian(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = (1.0 - self.unit()).max(f64::MIN_POSITIVE);
        let u2 = self.unit();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible() {
        let mut a = DesRng::seed_from_u64(9);
        let mut b = DesRng::seed_from_u64(9);
        for _ in 0..50 {
            assert_eq!(a.unit(), b.unit());
        }
    }

    #[test]
    fn exp_mean() {
        let mut r = DesRng::seed_from_u64(3);
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| r.exp(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.2).abs() < 0.005, "mean={mean}");
    }

    #[test]
    fn gaussian_mean() {
        let mut r = DesRng::seed_from_u64(4);
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| r.gaussian(3.0, 1.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean={mean}");
    }
}
