//! Substrate cross-validation sweep: the Petri-net node model against the
//! independent DES oracle at every threshold, as a machine-checkable CSV.
//!
//! This is the evidence behind the claim that our TimeNET replacement
//! implements the intended semantics: two independently written simulators
//! agreeing across the full parameter range.

use crate::node::simulate_node_model;
use des::{simulate_node, NodeSimParams, Workload};
use energy::{CC2420_RADIO, PXA271_CPU};
use serde::{Deserialize, Serialize};
use sim_runtime::Runner;

/// One row of the validation sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidationRow {
    /// Power-Down Threshold (s).
    pub pdt: f64,
    /// Petri-net total energy (J).
    pub petri_j: f64,
    /// DES total energy (J).
    pub des_j: f64,
    /// Relative difference `|petri - des| / des`.
    pub rel_diff: f64,
    /// Petri CPU wake-ups.
    pub petri_wakeups: f64,
    /// DES CPU wake-ups.
    pub des_wakeups: u64,
}

/// Run the validation sweep over a threshold grid for one workload.
///
/// The closed workload is deterministic in both substrates, so rows should
/// agree to numerical precision; the open workload uses different RNG
/// streams and agrees statistically.
pub fn run_validation(
    workload: Workload,
    grid: &[f64],
    horizon: f64,
    seed: u64,
    threads: usize,
) -> Vec<ValidationRow> {
    Runner::new(threads).map(grid, |&pdt| {
        let mut params = NodeSimParams::paper_defaults(workload, pdt);
        params.horizon = horizon;
        let petri = simulate_node_model(&params, seed);
        let des = simulate_node(&params, seed.wrapping_add(1));
        let petri_j = petri.breakdown(&PXA271_CPU, &CC2420_RADIO).total().joules();
        let des_j = des.total_energy(&PXA271_CPU, &CC2420_RADIO).joules();
        ValidationRow {
            pdt,
            petri_j,
            des_j,
            rel_diff: (petri_j - des_j).abs() / des_j,
            petri_wakeups: petri.cpu_wakeups,
            des_wakeups: des.cpu_wakeups,
        }
    })
}

/// Render the sweep as CSV.
pub fn render_validation_csv(rows: &[ValidationRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("pdt,petri_j,des_j,rel_diff,petri_wakeups,des_wakeups\n");
    for r in rows {
        let _ = writeln!(
            s,
            "{},{:.4},{:.4},{:.6},{:.0},{}",
            r.pdt, r.petri_j, r.des_j, r.rel_diff, r.petri_wakeups, r.des_wakeups
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_model_rows_agree_tightly() {
        let rows = run_validation(
            Workload::Closed { interval: 1.0 },
            &[1e-9, 0.00177, 0.1, 10.0],
            300.0,
            1,
            2,
        );
        for r in &rows {
            assert!(r.rel_diff < 0.005, "pdt={}: {:?}", r.pdt, r);
            assert!(
                (r.petri_wakeups - r.des_wakeups as f64).abs() <= 1.0,
                "{r:?}"
            );
        }
    }

    #[test]
    fn open_model_rows_agree_statistically() {
        // Single runs with independent seeds: agreement is statistical
        // (relative Monte-Carlo std of a 5000 s energy estimate ≈ 2-3 %).
        let rows = run_validation(Workload::Open { rate: 1.0 }, &[0.00177, 0.1], 5000.0, 7, 2);
        for r in &rows {
            assert!(r.rel_diff < 0.08, "pdt={}: {:?}", r.pdt, r);
        }
    }

    #[test]
    fn csv_renders_all_rows() {
        let rows = run_validation(Workload::Closed { interval: 1.0 }, &[0.01], 100.0, 1, 1);
        let csv = render_validation_csv(&rows);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("pdt,"));
    }
}
