//! Power-state vocabulary shared by the CPU, the radio, and the whole-node
//! models.

use crate::units::Power;
use serde::{Deserialize, Serialize};

/// The four power states of a power-managed component (CPU or radio):
/// the paper's `Stand_By` / `Power_Up` / `Idle` / `Active`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerState {
    /// Deep sleep / standby: minimum draw, needs a wake-up to serve.
    Sleep,
    /// Transitional wake-up (the expensive part the paper's Power-Down
    /// Threshold question is about).
    Wakeup,
    /// Powered but doing nothing.
    Idle,
    /// Actively working (computing / transmitting / receiving).
    Active,
}

impl PowerState {
    /// All four states, in sleep→active order.
    pub const ALL: [PowerState; 4] = [
        PowerState::Sleep,
        PowerState::Wakeup,
        PowerState::Idle,
        PowerState::Active,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            PowerState::Sleep => "sleep",
            PowerState::Wakeup => "wakeup",
            PowerState::Idle => "idle",
            PowerState::Active => "active",
        }
    }
}

/// Power draw of one component in each of its four states.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentPower {
    /// Draw in [`PowerState::Sleep`].
    pub sleep: Power,
    /// Draw in [`PowerState::Wakeup`].
    pub wakeup: Power,
    /// Draw in [`PowerState::Idle`].
    pub idle: Power,
    /// Draw in [`PowerState::Active`].
    pub active: Power,
}

impl ComponentPower {
    /// Draw in a given state.
    pub fn in_state(&self, s: PowerState) -> Power {
        match s {
            PowerState::Sleep => self.sleep,
            PowerState::Wakeup => self.wakeup,
            PowerState::Idle => self.idle,
            PowerState::Active => self.active,
        }
    }

    /// Are all four rates finite and non-negative?
    pub fn is_physical(&self) -> bool {
        PowerState::ALL
            .iter()
            .all(|&s| self.in_state(s).is_physical())
    }

    /// Weighted average power given a probability per state
    /// (Eq. 7 of the paper).
    pub fn average(&self, p_sleep: f64, p_wakeup: f64, p_idle: f64, p_active: f64) -> Power {
        self.sleep * p_sleep + self.wakeup * p_wakeup + self.idle * p_idle + self.active * p_active
    }
}

/// The simple sensor system's four *system* states (Fig. 10 / Table VII):
/// wait, receiving, computation, transmitting. (Distinct from
/// [`PowerState`], which describes one *component*.)
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FourState {
    /// Waiting for an event (paper bills `Temp_Place` time at this rate too).
    pub wait: Power,
    /// Receiving a message.
    pub receiving: Power,
    /// Computing.
    pub computation: Power,
    /// Transmitting results.
    pub transmitting: Power,
}

impl FourState {
    /// Weighted average power under state probabilities (Eq. 8).
    pub fn average(
        &self,
        p_wait: f64,
        p_receiving: f64,
        p_computation: f64,
        p_transmitting: f64,
    ) -> Power {
        self.wait * p_wait
            + self.receiving * p_receiving
            + self.computation * p_computation
            + self.transmitting * p_transmitting
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cp() -> ComponentPower {
        ComponentPower {
            sleep: Power::from_milliwatts(1.0),
            wakeup: Power::from_milliwatts(10.0),
            idle: Power::from_milliwatts(5.0),
            active: Power::from_milliwatts(20.0),
        }
    }

    #[test]
    fn in_state_selects() {
        let c = cp();
        assert_eq!(c.in_state(PowerState::Sleep).milliwatts(), 1.0);
        assert_eq!(c.in_state(PowerState::Wakeup).milliwatts(), 10.0);
        assert_eq!(c.in_state(PowerState::Idle).milliwatts(), 5.0);
        assert_eq!(c.in_state(PowerState::Active).milliwatts(), 20.0);
    }

    #[test]
    fn average_is_weighted() {
        let c = cp();
        // Equal quarters: (1+10+5+20)/4 = 9.
        let avg = c.average(0.25, 0.25, 0.25, 0.25);
        assert!((avg.milliwatts() - 9.0).abs() < 1e-12);
        // All active.
        assert!((c.average(0.0, 0.0, 0.0, 1.0).milliwatts() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn four_state_average() {
        let f = FourState {
            wait: Power::from_milliwatts(1.0),
            receiving: Power::from_milliwatts(2.0),
            computation: Power::from_milliwatts(3.0),
            transmitting: Power::from_milliwatts(4.0),
        };
        let avg = f.average(0.5, 0.0, 0.5, 0.0);
        assert!((avg.milliwatts() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn physicality() {
        assert!(cp().is_physical());
        let mut bad = cp();
        bad.idle = Power::from_milliwatts(-3.0);
        assert!(!bad.is_physical());
    }

    #[test]
    fn state_names() {
        assert_eq!(PowerState::Sleep.name(), "sleep");
        assert_eq!(PowerState::Active.name(), "active");
        assert_eq!(PowerState::ALL.len(), 4);
    }
}
