//! Markov-solver benchmarks: GTH vs uniformized power iteration, and the
//! ABL-ERLANG phase-type chains.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use markov::ctmc::Ctmc;
use markov::phase::{solve_phase_cpu, PhaseCpuConfig};
use markov::supplementary::CpuMarkovParams;

/// Random-ish irreducible chain of `n` states (ring + shortcuts).
fn chain(n: usize) -> Ctmc {
    let mut c = Ctmc::new(n);
    for i in 0..n {
        c.add_rate(i, (i + 1) % n, 1.0 + (i % 7) as f64).unwrap();
        c.add_rate(i, (i + 3) % n, 0.25).unwrap();
    }
    c
}

fn bench_gth(c: &mut Criterion) {
    let mut g = c.benchmark_group("markov/gth");
    for n in [16usize, 64, 256] {
        let chain = chain(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &chain, |b, ch| {
            b.iter(|| ch.steady_state_gth())
        });
    }
    g.finish();
}

fn bench_power_iteration(c: &mut Criterion) {
    let mut g = c.benchmark_group("markov/power");
    for n in [64usize, 256, 1024] {
        let chain = chain(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &chain, |b, ch| {
            b.iter(|| ch.steady_state_power(1_000_000, 1e-10).unwrap())
        });
    }
    g.finish();
}

fn bench_phase_cpu(c: &mut Criterion) {
    let mut g = c.benchmark_group("markov/phase_cpu");
    for k in [1u32, 8, 32] {
        let cfg = PhaseCpuConfig {
            params: CpuMarkovParams {
                lambda: 1.0,
                mu: 10.0,
                power_down_threshold: 0.3,
                power_up_delay: 0.3,
            },
            stages: k,
            max_queue: 30,
        };
        g.bench_with_input(BenchmarkId::from_parameter(k), &cfg, |b, cfg| {
            b.iter(|| solve_phase_cpu(cfg).unwrap())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Short windows: these benches document magnitudes, not micro-regressions.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(20);
    targets = bench_gth, bench_power_iteration, bench_phase_cpu
}
criterion_main!(benches);
