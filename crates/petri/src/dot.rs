//! Graphviz DOT export for visual inspection of nets.
//!
//! The paper presents its models as diagrams (Figs. 3, 10, 12, 13); this
//! module renders our reconstructions the same way:
//! `dot -Tpng net.dot -o net.png`.

use crate::net::Net;
use crate::timing::Timing;
use std::fmt::Write as _;

/// Render the net as a Graphviz `digraph`.
///
/// Places are circles (with initial token counts), timed transitions are
/// boxes, immediates are thin filled bars — the conventional SPN notation.
/// Inhibitor arcs use the `odot` arrowhead; guards appear in transition
/// labels.
pub fn to_dot(net: &Net) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", escape(&net.name));
    let _ = writeln!(s, "  rankdir=LR;");
    let _ = writeln!(s, "  node [fontsize=10];");

    for p in net.place_ids() {
        let place = net.place(p);
        let tokens = if place.initial.is_empty() {
            String::new()
        } else {
            format!("\\n{} tok", place.initial.len())
        };
        let _ = writeln!(
            s,
            "  p{} [shape=circle label=\"{}{}\"];",
            p.index(),
            escape(&place.name),
            tokens
        );
    }

    for t in net.transition_ids() {
        let tr = net.transition(t);
        let shape = "box";
        let label = match tr.timing {
            Timing::Immediate { priority, .. } => {
                format!("{} (imm p{})", escape(&tr.name), priority)
            }
            Timing::Deterministic { delay } => format!("{}\\nDET {delay}", escape(&tr.name)),
            Timing::Exponential { rate } => format!("{}\\nEXP rate={rate}", escape(&tr.name)),
            Timing::Uniform { low, high } => {
                format!("{}\\nUNI [{low},{high}]", escape(&tr.name))
            }
            Timing::Erlang { k, rate } => {
                format!("{}\\nERL k={k} rate={rate}", escape(&tr.name))
            }
        };
        let style = if tr.timing.is_immediate() {
            " style=filled fillcolor=gray20 fontcolor=white"
        } else {
            ""
        };
        let guard = tr
            .guard
            .as_ref()
            .map(|g| format!("\\nguard: {}", escape(&g.to_string())))
            .unwrap_or_default();
        let _ = writeln!(
            s,
            "  t{} [shape={shape}{style} label=\"{label}{guard}\"];",
            t.index()
        );

        for a in &tr.inputs {
            let mult = if a.multiplicity > 1 {
                format!(" [label=\"{}\"]", a.multiplicity)
            } else {
                String::new()
            };
            let _ = writeln!(s, "  p{} -> t{}{};", a.place.index(), t.index(), mult);
        }
        for a in &tr.outputs {
            let mult = if a.multiplicity > 1 {
                format!(" [label=\"{}\"]", a.multiplicity)
            } else {
                String::new()
            };
            let _ = writeln!(s, "  t{} -> p{}{};", t.index(), a.place.index(), mult);
        }
        for a in &tr.inhibitors {
            let _ = writeln!(
                s,
                "  p{} -> t{} [arrowhead=odot label=\"{}\"];",
                a.place.index(),
                t.index(),
                a.threshold
            );
        }
    }

    s.push_str("}\n");
    s
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetBuilder;
    use crate::expr::Expr;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut b = NetBuilder::new("demo");
        let p = b.place("Idle").tokens(1).build();
        let q = b.place("Busy").build();
        b.transition("start", Timing::immediate_pri(2))
            .input(p, 1)
            .output(q, 1)
            .build();
        b.transition("finish", Timing::exponential(2.0))
            .input(q, 1)
            .output(p, 1)
            .build();
        let net = b.build().unwrap();
        let dot = to_dot(&net);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("Idle"));
        assert!(dot.contains("Busy"));
        assert!(dot.contains("start"));
        assert!(dot.contains("EXP rate=2"));
        assert!(dot.contains("p0 -> t0"));
        assert!(dot.contains("t0 -> p1"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_shows_guards_and_inhibitors() {
        let mut b = NetBuilder::new("guards");
        let p = b.place("p").tokens(1).build();
        let gate = b.place("gate").build();
        b.transition("t", Timing::deterministic(0.5))
            .input(p, 1)
            .output(p, 1)
            .inhibitor(gate, 3)
            .guard(Expr::count(gate).eq_c(0))
            .build();
        let net = b.build().unwrap();
        let dot = to_dot(&net);
        assert!(dot.contains("guard:"));
        assert!(dot.contains("arrowhead=odot"));
        assert!(dot.contains("DET 0.5"));
    }

    #[test]
    fn dot_escapes_quotes() {
        let mut b = NetBuilder::new("quo\"te");
        let p = b.place("p\"lace").tokens(1).build();
        b.transition("t", Timing::immediate()).input(p, 1).build();
        let net = b.build().unwrap();
        let dot = to_dot(&net);
        assert!(dot.contains("quo\\\"te"));
        assert!(dot.contains("p\\\"lace"));
    }

    #[test]
    fn multiplicity_labels_rendered() {
        let mut b = NetBuilder::new("mult");
        let p = b.place("p").tokens(2).build();
        let q = b.place("q").build();
        b.transition("t", Timing::immediate())
            .input(p, 2)
            .output(q, 3)
            .build();
        let net = b.build().unwrap();
        let dot = to_dot(&net);
        assert!(dot.contains("label=\"2\""));
        assert!(dot.contains("label=\"3\""));
    }
}
