//! Emulated IMote2 measurement rig — the substitution for the paper's
//! physical bench (Fig. 11: power supply, 1 Ω sense resistor,
//! oscilloscope).
//!
//! The paper triggers a real IMote2 with 100 random events, measures the
//! average power over 266.5 s, and compares the measured energy
//! (0.336137 J) against the Petri-net prediction (0.326519 J, a 2.95 %
//! gap). We cannot source the hardware, so this module *emulates the
//! measurement*: it replays the same four-state behaviour (Fig. 10
//! semantics with the IMote2's 1 s minimum event spacing), draws the
//! measured per-state powers of Table VII, and corrupts the readings with
//! configurable oscilloscope noise and a small systematic bias calibrated
//! to the gap the paper observed between its model and its bench.
//!
//! The comparison code path (predicted vs "measured" energy, Table X) is
//! therefore exercised end-to-end; only the electrons are synthetic.

use crate::simple_node::SimpleNodeParams;
use des::rng::DesRng;
use energy::{Energy, FourState, IMOTE2_MEASURED};
use serde::{Deserialize, Serialize};

/// Configuration of the emulated measurement run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Imote2RigConfig {
    /// Number of triggered events (the paper uses 100).
    pub events: u32,
    /// Relative amplitude of zero-mean Gaussian oscilloscope noise on each
    /// sampled power reading (e.g. 0.02 = 2 %).
    pub noise_rel: f64,
    /// Systematic relative bias of the rig vs the model's power table
    /// (positive = the bench reads high). The paper's bench read ≈ +2.95 %
    /// relative to its model.
    pub bias_rel: f64,
    /// Power-sampling interval of the emulated oscilloscope (s).
    pub sample_interval: f64,
}

impl Default for Imote2RigConfig {
    fn default() -> Self {
        Imote2RigConfig {
            events: 100,
            noise_rel: 0.01,
            bias_rel: 0.0295,
            sample_interval: 0.01,
        }
    }
}

/// Outcome of an emulated bench run (the "measured" column of Table X).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Imote2Measurement {
    /// Wall-clock duration of the run (s); the paper's run took 266.5 s.
    pub duration_s: f64,
    /// Average measured power (mW); the paper reports 1.261 mW.
    pub average_power_mw: f64,
    /// Measured energy (J); the paper reports 0.336137 J.
    pub energy: Energy,
    /// Events completed.
    pub events: u32,
}

/// Replay the simple-system behaviour on the emulated rig.
///
/// The node follows the Fig. 10 cycle (`Wait → Temp → Receiving →
/// Computation → Transmitting`), drawing the Table VII state powers; the
/// rig integrates sampled power over the run.
pub fn run_rig(
    node: &SimpleNodeParams,
    rig: &Imote2RigConfig,
    powers: &FourState,
    seed: u64,
) -> Imote2Measurement {
    assert!(rig.events > 0, "need at least one event");
    assert!(
        rig.sample_interval > 0.0,
        "sample interval must be positive"
    );
    let mut rng = DesRng::seed_from_u64(seed);

    // Generate the exact state timeline for `events` cycles.
    // Segments: (duration, true power in mW).
    let mut segments: Vec<(f64, f64)> = Vec::with_capacity(rig.events as usize * 5);
    for _ in 0..rig.events {
        let wait = rng.exp(1.0 / node.job_arrival_mean);
        segments.push((wait, powers.wait.milliwatts()));
        // Temp_Place: the 1 s minimum spacing, billed at idle power like
        // Wait (Eq. 8).
        segments.push((node.temp_delay, powers.wait.milliwatts()));
        segments.push((node.receive_delay, powers.receiving.milliwatts()));
        segments.push((node.computation_delay, powers.computation.milliwatts()));
        segments.push((node.transmit_delay, powers.transmitting.milliwatts()));
    }
    let duration: f64 = segments.iter().map(|(d, _)| d).sum();

    // The oscilloscope samples instantaneous power every `sample_interval`
    // with multiplicative noise and systematic bias; energy is the
    // trapezoid-free running sum (matching how the paper averaged).
    let mut t_in_segment = 0.0;
    let mut seg_iter = segments.iter().copied();
    let mut current = seg_iter.next().expect("events > 0");
    let mut sampled_sum_mw = 0.0;
    let mut samples: u64 = 0;
    let mut t = 0.0;
    while t < duration {
        // Advance to the segment containing t.
        while t_in_segment + current.0 < t {
            t_in_segment += current.0;
            match seg_iter.next() {
                Some(s) => current = s,
                None => break,
            }
        }
        let true_mw = current.1;
        let noisy = true_mw * (1.0 + rig.bias_rel) * (1.0 + rng.gaussian(0.0, rig.noise_rel));
        sampled_sum_mw += noisy.max(0.0);
        samples += 1;
        t += rig.sample_interval;
    }

    let average_power_mw = if samples > 0 {
        sampled_sum_mw / samples as f64
    } else {
        0.0
    };
    let energy = Energy::from_joules(average_power_mw * 1e-3 * duration);
    Imote2Measurement {
        duration_s: duration,
        average_power_mw,
        energy,
        events: rig.events,
    }
}

/// Run the rig with the paper's configuration (100 events, Table VII
/// powers).
pub fn run_paper_rig(seed: u64) -> Imote2Measurement {
    run_rig(
        &SimpleNodeParams::default(),
        &Imote2RigConfig::default(),
        &IMOTE2_MEASURED,
        seed,
    )
}

/// The Table X comparison: predicted vs measured energy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TableXComparison {
    /// Emulated bench duration (s).
    pub execution_time_s: f64,
    /// Emulated average power (mW).
    pub average_power_mw: f64,
    /// Emulated measured energy (J).
    pub measured_energy_j: f64,
    /// Petri-net predicted energy over the same duration (J).
    pub petri_energy_j: f64,
    /// Percent difference, as the paper computes it.
    pub percent_difference: f64,
}

/// Produce the Table X comparison: emulate the bench, predict with the
/// Petri-net steady state, and compare.
pub fn table_x_comparison(seed: u64) -> TableXComparison {
    let node = SimpleNodeParams::default();
    let measured = run_paper_rig(seed);
    let predicted = crate::simple_node::analytic_probabilities(&node)
        .energy(&IMOTE2_MEASURED, measured.duration_s);
    let measured_j = measured.energy.joules();
    let predicted_j = predicted.joules();
    TableXComparison {
        execution_time_s: measured.duration_s,
        average_power_mw: measured.average_power_mw,
        measured_energy_j: measured_j,
        petri_energy_j: predicted_j,
        percent_difference: 100.0 * (measured_j - predicted_j).abs() / measured_j,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_scales_with_events() {
        // Mean cycle ≈ 5.04 s; 100 events ≈ 500 s (the paper saw 266.5 s —
        // within the spread of 100 exponential waits... their mean wait was
        // evidently shorter; we match the model, not their luck).
        let m = run_paper_rig(1);
        assert_eq!(m.events, 100);
        assert!(
            (300.0..700.0).contains(&m.duration_s),
            "duration {}",
            m.duration_s
        );
    }

    #[test]
    fn average_power_in_plausible_band() {
        // All four state powers are 1.0–1.3 mW, so the average (plus ~3 %
        // bias) must be in that band.
        let m = run_paper_rig(2);
        assert!(
            (1.0..1.4).contains(&m.average_power_mw),
            "avg power {}",
            m.average_power_mw
        );
    }

    #[test]
    fn energy_equals_power_times_duration() {
        let m = run_paper_rig(3);
        let expect = m.average_power_mw * 1e-3 * m.duration_s;
        assert!((m.energy.joules() - expect).abs() < 1e-12);
    }

    #[test]
    fn table_x_gap_matches_paper_band() {
        // The paper observed 2.95 %; with the calibrated bias the emulated
        // gap lands in the same few-percent band.
        let c = table_x_comparison(4);
        assert!(
            (0.5..6.0).contains(&c.percent_difference),
            "percent difference {}",
            c.percent_difference
        );
        assert!(c.measured_energy_j > c.petri_energy_j * 0.95);
    }

    #[test]
    fn zero_noise_zero_bias_matches_prediction_tightly() {
        let node = SimpleNodeParams::default();
        let rig = Imote2RigConfig {
            noise_rel: 0.0,
            bias_rel: 0.0,
            ..Default::default()
        };
        let m = run_rig(&node, &rig, &IMOTE2_MEASURED, 5);
        let predicted = crate::simple_node::analytic_probabilities(&node)
            .energy(&IMOTE2_MEASURED, m.duration_s);
        let rel = (m.energy.joules() - predicted.joules()).abs() / predicted.joules();
        // Finite-run state-mix fluctuation only (the wait fraction of a
        // 100-cycle run wobbles a few percent around its mean).
        assert!(rel < 0.03, "relative gap {rel}");
    }

    #[test]
    fn reproducible_per_seed() {
        let a = run_paper_rig(7);
        let b = run_paper_rig(7);
        assert_eq!(a, b);
        let c = run_paper_rig(8);
        assert_ne!(a, c);
    }

    #[test]
    fn bias_moves_measurement() {
        let node = SimpleNodeParams::default();
        let hi = Imote2RigConfig {
            bias_rel: 0.10,
            noise_rel: 0.0,
            ..Default::default()
        };
        let lo = Imote2RigConfig {
            bias_rel: 0.0,
            noise_rel: 0.0,
            ..Default::default()
        };
        let m_hi = run_rig(&node, &hi, &IMOTE2_MEASURED, 9);
        let m_lo = run_rig(&node, &lo, &IMOTE2_MEASURED, 9);
        let ratio = m_hi.average_power_mw / m_lo.average_power_mw;
        assert!((ratio - 1.10).abs() < 0.01, "ratio {ratio}");
    }
}
