//! Figs. 14/15: Power-Down-Threshold sweeps of the node models with full
//! energy breakdowns, plus the paper's optimum-threshold analysis
//! (Sec. VII).

use super::jobs::{decode_obs, NodeSweepJob, NODE_SWEEP_WATCH_TOTAL_J};
use crate::node::NodePetriResult;
use des::Workload;
use energy::{NodeBreakdown, CC2420_RADIO, PXA271_CPU};
use serde::{Deserialize, Serialize};
use sim_runtime::{Exec, StoppingRule};

/// One sweep point: threshold, energy breakdown, and wake-up counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSweepPoint {
    /// Power-Down Threshold (s).
    pub pdt: f64,
    /// The eight-series energy breakdown.
    pub breakdown: NodeBreakdown,
    /// CPU wake-ups over the horizon.
    pub cpu_wakeups: f64,
    /// Radio wake-ups over the horizon.
    pub radio_wakeups: f64,
    /// Completed cycles.
    pub cycles: f64,
    /// Replications actually averaged into this point (fixed mode: the
    /// configured count; adaptive mode: whatever the stopping rule spent).
    pub replications: u64,
    /// Whether the point's watched metric settled (always `true` in fixed
    /// mode; in adaptive mode, `false` means the budget ran out first).
    pub converged: bool,
}

impl NodeSweepPoint {
    /// Total node energy (J).
    pub fn total_j(&self) -> f64 {
        self.breakdown.total().joules()
    }
}

/// A full Fig. 14/15 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSweep {
    /// The workload that was swept.
    pub workload: Workload,
    /// Horizon (s); the paper evaluates 15 min = 900 s.
    pub horizon: f64,
    /// Replications averaged per point (1 for the deterministic closed
    /// model).
    pub replications: u32,
    /// Points in threshold order.
    pub points: Vec<NodeSweepPoint>,
}

/// The paper's Sec. VII headline numbers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimumAnalysis {
    /// Threshold minimizing total energy.
    pub optimal_pdt: f64,
    /// Energy at the optimum (J).
    pub optimal_energy_j: f64,
    /// Energy at the smallest swept threshold ("immediately powered down").
    pub immediate_energy_j: f64,
    /// Energy at the largest swept threshold ("never powered down").
    pub never_energy_j: f64,
    /// Percent saved vs immediate power-down (paper: 35 % closed / 55 %
    /// open).
    pub savings_vs_immediate_pct: f64,
    /// Percent saved vs never powering down (paper: 29 % closed / 26 %
    /// open).
    pub savings_vs_never_pct: f64,
}

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct NodeSweepConfig {
    /// Horizon (s).
    pub horizon: f64,
    /// Fixed replications per point (averaged; use > 1 for the open
    /// model). Ignored for the open model when `open_rule` is set.
    pub replications: u32,
    /// Base seed.
    pub seed: u64,
    /// Execution backend (threads / shards).
    pub exec: Exec,
    /// Adaptive replication budget for the *open* (stochastic) model:
    /// when set, each point runs replications until the 95 % CI of its
    /// total energy satisfies the rule instead of a fixed count. `None`
    /// (and the deterministic closed model always) uses
    /// `replications` — the exact-repro escape hatch behind
    /// `repro --fixed-reps`.
    pub open_rule: Option<StoppingRule>,
}

impl Default for NodeSweepConfig {
    fn default() -> Self {
        NodeSweepConfig {
            horizon: 900.0,
            replications: 1,
            seed: 0xF14,
            exec: Exec::default(),
            open_rule: None,
        }
    }
}

/// Run a Fig. 14/15 sweep over `grid` thresholds.
///
/// The `(threshold × replication)` grid is described as a portable
/// [`NodeSweepJob`] and scheduled on the configured executor backend —
/// in-process threads or `--shards` worker subprocesses, byte-identical
/// either way since per-point averages fold in replication order.
///
/// Replications per point are heterogeneous: the deterministic closed
/// model needs exactly one, the open model averages `cfg.replications` —
/// or, with `cfg.open_rule` set, runs adaptive rounds until each point's
/// total-energy CI settles (spending replications only where the noise
/// is).
pub fn run_node_sweep(workload: Workload, grid: &[f64], cfg: &NodeSweepConfig) -> NodeSweep {
    assert!(cfg.replications >= 1, "need at least one replication");
    let job = NodeSweepJob {
        workload,
        horizon: cfg.horizon,
        grid: grid.to_vec(),
    };
    let seed_of = |_point: usize, r: u64| petri_core::rng::SimRng::child_seed(cfg.seed, r);
    let points = match (workload, &cfg.open_rule) {
        (Workload::Open { .. }, Some(rule)) => {
            let adaptive = cfg
                .exec
                .runner()
                .run_adaptive_job(
                    &job,
                    grid.len(),
                    rule,
                    &[NODE_SWEEP_WATCH_TOTAL_J],
                    &seed_of,
                )
                .unwrap_or_else(|e| panic!("adaptive node sweep failed: {e}"));
            grid.iter()
                .zip(adaptive)
                .map(|(&pdt, p)| {
                    // Means of the per-replication observations, folded in
                    // index order by the adaptive runner.
                    let res = NodePetriResult {
                        cpu_probabilities: std::array::from_fn(|i| p.stats[1 + i].mean()),
                        radio_probabilities: std::array::from_fn(|i| p.stats[5 + i].mean()),
                        cpu_wakeups: p.stats[9].mean(),
                        radio_wakeups: p.stats[10].mean(),
                        cycles_completed: p.stats[11].mean(),
                        horizon: cfg.horizon,
                    };
                    point_from_mean(pdt, &res, p.replications, p.converged)
                })
                .collect()
        }
        _ => {
            // The closed model is deterministic, so one replication is
            // exact.
            let reps = match workload {
                Workload::Closed { .. } => 1,
                Workload::Open { .. } => cfg.replications,
            };
            let reps_per_point = vec![reps as u64; grid.len()];
            let per_point = cfg
                .exec
                .runner()
                .run_job(&job, &reps_per_point, &seed_of)
                .unwrap_or_else(|e| panic!("node sweep grid failed: {e}"));
            grid.iter()
                .zip(per_point)
                .map(|(&pdt, slots)| {
                    // Replication-index-ordered fold (deterministic
                    // aggregation).
                    let mut acc = NodeBreakdown::default();
                    let mut cpu_wakeups = 0.0;
                    let mut radio_wakeups = 0.0;
                    let mut cycles = 0.0;
                    for bytes in &slots {
                        let obs =
                            decode_obs(bytes, "node-sweep slot").unwrap_or_else(|e| panic!("{e}"));
                        let out = job.result_from_obs(&obs).unwrap_or_else(|e| panic!("{e}"));
                        let b = out.breakdown(&PXA271_CPU, &CC2420_RADIO);
                        acc.cpu.sleep += b.cpu.sleep;
                        acc.cpu.wakeup += b.cpu.wakeup;
                        acc.cpu.idle += b.cpu.idle;
                        acc.cpu.active += b.cpu.active;
                        acc.radio.sleep += b.radio.sleep;
                        acc.radio.wakeup += b.radio.wakeup;
                        acc.radio.idle += b.radio.idle;
                        acc.radio.active += b.radio.active;
                        cpu_wakeups += out.cpu_wakeups;
                        radio_wakeups += out.radio_wakeups;
                        cycles += out.cycles_completed;
                    }
                    let n = reps as f64;
                    let scale = 1.0 / n;
                    let avg = NodeBreakdown {
                        cpu: energy::ComponentBreakdown {
                            sleep: acc.cpu.sleep * scale,
                            wakeup: acc.cpu.wakeup * scale,
                            idle: acc.cpu.idle * scale,
                            active: acc.cpu.active * scale,
                        },
                        radio: energy::ComponentBreakdown {
                            sleep: acc.radio.sleep * scale,
                            wakeup: acc.radio.wakeup * scale,
                            idle: acc.radio.idle * scale,
                            active: acc.radio.active * scale,
                        },
                    };
                    NodeSweepPoint {
                        pdt,
                        breakdown: avg,
                        cpu_wakeups: cpu_wakeups / n,
                        radio_wakeups: radio_wakeups / n,
                        cycles: cycles / n,
                        replications: reps as u64,
                        converged: true,
                    }
                })
                .collect()
        }
    };
    NodeSweep {
        workload,
        horizon: cfg.horizon,
        replications: cfg.replications,
        points,
    }
}

/// Build a sweep point from the mean per-replication result of the
/// adaptive mode.
fn point_from_mean(
    pdt: f64,
    res: &NodePetriResult,
    replications: u64,
    converged: bool,
) -> NodeSweepPoint {
    NodeSweepPoint {
        pdt,
        breakdown: res.breakdown(&PXA271_CPU, &CC2420_RADIO),
        cpu_wakeups: res.cpu_wakeups,
        radio_wakeups: res.radio_wakeups,
        cycles: res.cycles_completed,
        replications,
        converged,
    }
}

impl NodeSweep {
    /// The minimum-energy point.
    pub fn optimum(&self) -> &NodeSweepPoint {
        self.points
            .iter()
            .min_by(|a, b| a.total_j().total_cmp(&b.total_j()))
            .expect("non-empty sweep")
    }

    /// The Sec. VII analysis: optimum vs the two extremes.
    pub fn optimum_analysis(&self) -> OptimumAnalysis {
        let opt = self.optimum();
        let first = self.points.first().expect("non-empty sweep");
        let last = self.points.last().expect("non-empty sweep");
        OptimumAnalysis {
            optimal_pdt: opt.pdt,
            optimal_energy_j: opt.total_j(),
            immediate_energy_j: first.total_j(),
            never_energy_j: last.total_j(),
            savings_vs_immediate_pct: 100.0 * (1.0 - opt.total_j() / first.total_j()),
            savings_vs_never_pct: 100.0 * (1.0 - opt.total_j() / last.total_j()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::FIG14_15_PDT_GRID;

    fn quick_cfg() -> NodeSweepConfig {
        NodeSweepConfig {
            horizon: 300.0,
            replications: 2,
            exec: Exec::in_process(2),
            ..Default::default()
        }
    }

    #[test]
    fn closed_sweep_has_interior_optimum() {
        let grid = [1e-9, 0.00177, 0.01, 1.0, 100.0];
        let sweep = run_node_sweep(Workload::Closed { interval: 1.0 }, &grid, &quick_cfg());
        let a = sweep.optimum_analysis();
        assert!(a.savings_vs_immediate_pct > 0.0, "{a:?}");
        assert!(a.savings_vs_never_pct > 0.0, "{a:?}");
        // The optimum lands at one of the interior knees, not an extreme.
        assert!(a.optimal_pdt > 1e-9 && a.optimal_pdt < 100.0, "{a:?}");
    }

    #[test]
    fn closed_optimum_at_the_gap() {
        // With the full grid the optimum is the 0.00177 s knee (or a point
        // in its flat basin up to the 1 s event period).
        let cfg = NodeSweepConfig {
            horizon: 300.0,
            ..quick_cfg()
        };
        let sweep = run_node_sweep(Workload::Closed { interval: 1.0 }, &FIG14_15_PDT_GRID, &cfg);
        let a = sweep.optimum_analysis();
        assert!(
            (0.00177..=1.0).contains(&a.optimal_pdt),
            "optimum at {}",
            a.optimal_pdt
        );
    }

    #[test]
    fn open_sweep_has_interior_optimum() {
        let grid = [1e-9, 0.00177, 0.01, 1.0, 100.0];
        let sweep = run_node_sweep(Workload::Open { rate: 1.0 }, &grid, &quick_cfg());
        let a = sweep.optimum_analysis();
        assert!(a.savings_vs_immediate_pct > 0.0, "{a:?}");
        assert!(a.savings_vs_never_pct > 0.0, "{a:?}");
        for p in &sweep.points {
            assert_eq!(p.replications, 2);
            assert!(p.converged);
        }
    }

    #[test]
    fn open_sweep_adaptive_spends_replications_per_point() {
        let grid = [1e-9, 0.01, 1.0];
        let cfg = NodeSweepConfig {
            horizon: 150.0,
            open_rule: Some(StoppingRule::relative(0.08).with_budget(3, 24, 3)),
            ..quick_cfg()
        };
        let sweep = run_node_sweep(Workload::Open { rate: 1.0 }, &grid, &cfg);
        for p in &sweep.points {
            assert!(p.replications >= 3, "{p:?}");
            assert!(p.replications <= 24, "{p:?}");
            assert!(p.breakdown.total().joules() > 0.0);
        }
        // Bit-identical at any thread count, budget decisions included.
        let a = run_node_sweep(Workload::Open { rate: 1.0 }, &grid, &cfg);
        let mut cfg1 = cfg.clone();
        cfg1.exec = Exec::in_process(1);
        let b = run_node_sweep(Workload::Open { rate: 1.0 }, &grid, &cfg1);
        assert_eq!(a, b);
    }

    #[test]
    fn closed_sweep_ignores_open_rule() {
        let grid = [1e-9, 0.01];
        let mut cfg = quick_cfg();
        let plain = run_node_sweep(Workload::Closed { interval: 1.0 }, &grid, &cfg);
        cfg.open_rule = Some(StoppingRule::relative(0.01).with_budget(4, 64, 4));
        let ruled = run_node_sweep(Workload::Closed { interval: 1.0 }, &grid, &cfg);
        assert_eq!(plain, ruled);
    }

    #[test]
    fn wakeups_monotone_nonincreasing_closed() {
        let grid = [1e-9, 0.00177, 0.01, 5.0, 100.0];
        let sweep = run_node_sweep(Workload::Closed { interval: 1.0 }, &grid, &quick_cfg());
        for w in sweep.points.windows(2) {
            assert!(
                w[1].cpu_wakeups <= w[0].cpu_wakeups + 1.0,
                "wakeups must not rise with threshold: {:?}",
                sweep
                    .points
                    .iter()
                    .map(|p| (p.pdt, p.cpu_wakeups))
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn breakdown_series_respond_to_threshold() {
        let grid = [1e-9, 100.0];
        let sweep = run_node_sweep(Workload::Closed { interval: 1.0 }, &grid, &quick_cfg());
        let tiny = &sweep.points[0];
        let huge = &sweep.points[1];
        // Tiny threshold: more wake-up transitional energy.
        assert!(
            tiny.breakdown.cpu.wakeup.joules() > huge.breakdown.cpu.wakeup.joules(),
            "wakeup energy must fall with threshold"
        );
        // Huge threshold: more idle energy.
        assert!(
            huge.breakdown.cpu.idle.joules() > tiny.breakdown.cpu.idle.joules(),
            "idle energy must rise with threshold"
        );
    }
}
