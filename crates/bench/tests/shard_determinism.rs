//! Acceptance suite for the sharded executor: `ShardedBackend` must be
//! **byte-identical** to the in-process backend for every portable job and
//! every experiment driver at shards ∈ {1, 2, 4} × threads ∈ {1, 2}, and
//! worker failures must propagate with lowest-flat-index-wins semantics
//! (matching `Runner::try_grid`).
//!
//! The worker subprocess is the real `repro --worker` binary
//! (`CARGO_BIN_EXE_repro`), so these tests cover the full wire protocol:
//! manifest encode → frame over stdin → registry decode → in-worker
//! scheduling → per-slot result frames → ordered gather.

use bench::shard::{CrashJob, FailJob, Mm1ReplicationJob};
use des::Workload;
use proptest::prelude::*;
use sim_runtime::{Exec, ExecError, StoppingRule};
use wsn::experiments::ablations::seed_ablation;
use wsn::experiments::cpu_comparison::{run_cpu_comparison, CpuComparisonConfig};
use wsn::experiments::node_energy::{run_node_sweep, NodeSweepConfig};
use wsn::experiments::validation::run_validation;
use wsn::CpuModelParams;

/// The real worker binary.
fn worker_cmd() -> Vec<String> {
    vec![
        env!("CARGO_BIN_EXE_repro").to_string(),
        "--worker".to_string(),
    ]
}

fn sharded(threads: usize, shards: usize) -> Exec {
    Exec::sharded(threads, shards).with_worker_cmd(worker_cmd())
}

const SHARD_GRID: [usize; 3] = [1, 2, 4];
const THREAD_GRID: [usize; 2] = [1, 2];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Uncolored net: an M/M/1 replication grid produces the same bytes
    /// in-process and under every shard × thread combination.
    #[test]
    fn mm1_uncolored_bit_identical_across_shards(base_seed in 0u64..10_000) {
        let job = Mm1ReplicationJob {
            horizon: 200.0,
            warmup: 20.0,
            mu_grid: vec![2.0, 5.0, 10.0],
        };
        let reps = [3u64, 1, 4];
        let seed_of = move |p: usize, r: u64| base_seed ^ ((p as u64) << 32) ^ r;
        let baseline = Exec::in_process(1)
            .runner()
            .run_job(&job, &reps, &seed_of)
            .unwrap();
        for shards in SHARD_GRID {
            for threads in THREAD_GRID {
                let out = sharded(threads, shards)
                    .runner()
                    .run_job(&job, &reps, &seed_of)
                    .unwrap();
                prop_assert!(
                    baseline == out,
                    "shards={} threads={} diverged",
                    shards,
                    threads
                );
            }
        }
    }
}

/// Colored net (the Fig. 12/13 node SCPN with DVS job colors): the fixed
/// open-workload sweep driver is bit-identical across backends.
#[test]
fn colored_node_sweep_driver_identical_across_shards() {
    let grid = [1e-9, 0.00177, 0.1, 10.0];
    let run = |exec: Exec| {
        run_node_sweep(
            Workload::Open { rate: 1.0 },
            &grid,
            &NodeSweepConfig {
                horizon: 120.0,
                replications: 3,
                exec,
                ..Default::default()
            },
        )
    };
    let baseline = run(Exec::in_process(2));
    for shards in SHARD_GRID {
        for threads in THREAD_GRID {
            assert_eq!(baseline, run(sharded(threads, shards)), "shards={shards}");
        }
    }
}

/// The adaptive open sweep: budget decisions (replications per point) and
/// folded statistics are identical when rounds run across worker shards.
#[test]
fn adaptive_node_sweep_identical_across_shards() {
    let grid = [1e-9, 0.01, 1.0];
    let run = |exec: Exec| {
        run_node_sweep(
            Workload::Open { rate: 1.0 },
            &grid,
            &NodeSweepConfig {
                horizon: 100.0,
                exec,
                open_rule: Some(StoppingRule::relative(0.08).with_budget(3, 12, 3)),
                ..Default::default()
            },
        )
    };
    let baseline = run(Exec::in_process(1));
    for shards in SHARD_GRID {
        assert_eq!(baseline, run(sharded(2, shards)), "shards={shards}");
    }
}

/// The closed node sweep (deterministic single-replication points).
#[test]
fn closed_node_sweep_driver_identical_across_shards() {
    let grid = [1e-9, 0.00177, 1.0];
    let run = |exec: Exec| {
        run_node_sweep(
            Workload::Closed { interval: 1.0 },
            &grid,
            &NodeSweepConfig {
                horizon: 120.0,
                exec,
                ..Default::default()
            },
        )
    };
    let baseline = run(Exec::in_process(2));
    for shards in SHARD_GRID {
        assert_eq!(baseline, run(sharded(1, shards)), "shards={shards}");
    }
}

/// The three-way CPU comparison driver (DES + colored-free CPU net +
/// closed-form Markov column).
#[test]
fn cpu_comparison_driver_identical_across_shards() {
    let grid = [0.001, 0.3, 1.0];
    let run = |exec: Exec| {
        run_cpu_comparison(
            0.3,
            &grid,
            &CpuComparisonConfig {
                horizon: 150.0,
                replications: 2,
                exec,
                ..Default::default()
            },
        )
    };
    let baseline = run(Exec::in_process(2));
    for shards in SHARD_GRID {
        for threads in THREAD_GRID {
            assert_eq!(baseline, run(sharded(threads, shards)), "shards={shards}");
        }
    }
}

/// The Petri-vs-DES validation driver, fixed and adaptive.
#[test]
fn validation_driver_identical_across_shards() {
    let grid = [1e-9, 0.01, 1.0];
    let fixed = |exec: Exec| {
        run_validation(
            Workload::Closed { interval: 1.0 },
            &grid,
            100.0,
            9,
            &exec,
            None,
        )
    };
    let rule = StoppingRule::relative(0.1).with_budget(3, 9, 3);
    let adaptive = |exec: Exec| {
        run_validation(
            Workload::Open { rate: 1.0 },
            &grid,
            100.0,
            9,
            &exec,
            Some(&rule),
        )
    };
    let fixed_base = fixed(Exec::in_process(2));
    let adaptive_base = adaptive(Exec::in_process(2));
    for shards in SHARD_GRID {
        assert_eq!(fixed_base, fixed(sharded(2, shards)), "shards={shards}");
        assert_eq!(
            adaptive_base,
            adaptive(sharded(1, shards)),
            "shards={shards}"
        );
    }
}

/// The seed-ablation driver (prefix-folded replication grid).
#[test]
fn seed_ablation_driver_identical_across_shards() {
    let params = CpuModelParams::paper_defaults(0.3, 0.3);
    let run = |exec: Exec| seed_ablation(&params, 150.0, &[3, 8], 0xCAFE, &exec);
    let baseline = run(Exec::in_process(2));
    for shards in SHARD_GRID {
        assert_eq!(baseline, run(sharded(2, shards)), "shards={shards}");
    }
}

/// Every slot from `(1, 1)` on fails, in every shard that owns one: the
/// surfaced error must be exactly the boundary slot — the lowest global
/// flat index — matching `try_grid`'s lowest-index-wins contract.
#[test]
fn lowest_index_task_error_wins_across_shards() {
    let job = FailJob {
        fail_point: 1,
        fail_rep: 1,
    };
    let reps = [3u64, 3, 3]; // boundary slot = flat index 4
    for shards in SHARD_GRID {
        for threads in THREAD_GRID {
            let err = sharded(threads, shards)
                .runner()
                .run_job(&job, &reps, &|_, _| 0)
                .unwrap_err();
            match err {
                ExecError::Task {
                    flat_index,
                    point,
                    replication,
                    ref message,
                } => {
                    assert_eq!(
                        (flat_index, point, replication),
                        (4, 1, 1),
                        "shards={shards} threads={threads}: {message}"
                    );
                }
                other => panic!("expected task error, got {other:?}"),
            }
        }
    }
}

/// Kill one worker (the job calls `process::exit` mid-shard): the gather
/// must surface a worker error attributed to the dead worker's slot range
/// while the other shards complete normally.
#[test]
fn killed_worker_propagates_error() {
    let reps = [2u64, 2, 2, 2]; // 8 slots; 4 shards of 2
                                // Crash inside the third shard (slots 4..6 → point 2).
    let job = CrashJob {
        crash_point: 2,
        crash_rep: 0,
    };
    let err = sharded(1, 4)
        .runner()
        .run_job(&job, &reps, &|_, _| 0)
        .unwrap_err();
    match err {
        ExecError::Worker {
            flat_index,
            ref message,
        } => {
            assert_eq!(flat_index, 4, "{message}");
        }
        other => panic!("expected worker error, got {other:?}"),
    }
    // Same grid with the crash slot out of range completes fine.
    let ok_job = CrashJob {
        crash_point: 99,
        crash_rep: 0,
    };
    let out = sharded(1, 4)
        .runner()
        .run_job(&ok_job, &reps, &|_, _| 7)
        .unwrap();
    assert_eq!(out.iter().map(Vec::len).sum::<usize>(), 8);
}

/// A worker command that is not a protocol speaker at all.
#[test]
fn non_protocol_worker_is_a_worker_error() {
    let job = Mm1ReplicationJob {
        horizon: 50.0,
        warmup: 0.0,
        mu_grid: vec![2.0],
    };
    let exec = Exec::sharded(1, 2).with_worker_cmd(vec!["/bin/true".into()]);
    let err = exec.runner().run_job(&job, &[2], &|_, _| 1).unwrap_err();
    assert!(matches!(err, ExecError::Worker { .. }), "{err:?}");
}
