//! The multi-host executor backend: manifests over TCP to `--worker
//! --listen` peers.

use crate::exec::{
    run_slots_in_process, ExecBackend, ExecError, InProcessBackend, PortableJob, TaskManifest,
};
use crate::fleet::chaos::{ChaosConfig, FaultInjector};
use crate::fleet::pool::pool;
use crate::fleet::supervisor::quarantine;
use crate::fleet::{fleet_stats, FaultPolicy, FleetStats};
use crate::grid::ProgressFn;
use crate::remote::async_backend::{probe_live, AsyncBackend};
use crate::remote::protocol::{
    collect_results, drain_chunk, encode_manifest_request, first_undelivered, keep_lowest_error,
    undelivered_remainder, ChunkSink, Drained,
};
use crate::remote::transport::{FrameTransport, TcpTransport};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::AtomicUsize;
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Duration;

/// The remote-host backend: partitions a [`TaskManifest`] across N TCP
/// peers (`<exe> --worker --listen <addr>`), streams per-slot results with
/// one drain thread per peer, and gathers in global flat-index order — so
/// the fold downstream is **byte-identical** to [`crate::exec::InProcessBackend`]
/// at any host × thread count.
///
/// **Failure semantics.** A task error travels in-band (`E` frame) and is
/// deterministic, so it is never retried; across peers the lowest global
/// flat index wins, exactly as in `Runner::try_grid` and the sharded
/// backend. A *peer death* (dropped connection, protocol violation) is
/// different: slots are seeded and pure, so the dead peer's undelivered
/// slots are re-dispatched to surviving peers — retry cannot change a
/// single output byte — up to the fault policy's retry budget per chunk
/// before the failure surfaces as [`ExecError::Worker`] (or, with
/// `fault.fallback`, degrades to in-process execution). Peers are
/// liveness-probed (see [`probe_live`]) after connect and before every
/// chunk dispatch, so a peer that died while idle never gets work
/// committed to it. Repeat offenders are quarantined (see
/// [`crate::fleet::supervisor`]): a host that keeps failing its connects
/// is skipped for a window instead of burning the budget every dispatch,
/// and a dispatch that finds **every** host quarantined fails fast with
/// [`ExecError::BackendUnavailable`].
///
/// With `pool` enabled (the default), connections are checked out of the
/// process-global pool and returned after the dispatch, so back-to-back
/// dispatches — adaptive stopping rounds, service job floods — reuse warm
/// connections; reconnects go through the policy's capped backoff.
#[derive(Debug, Clone)]
pub struct RemoteBackend {
    /// Peer addresses (`host:port`).
    pub hosts: Vec<String>,
    /// Worker threads *per peer*, carried in every request frame.
    pub worker_threads: usize,
    /// Batch width carried in every request frame: peers hand contiguous
    /// same-point slot runs of this size to `PortableJob::run_batch`.
    pub batch: usize,
    /// Per-peer connection timeout.
    pub connect_timeout: Duration,
    /// Unified fault policy: chunk retry budget, the silent-peer IO
    /// timeout (executing workers heartbeat every ~500 ms, so a peer
    /// silent for the timeout has vanished without FIN/RST), reconnect
    /// backoff, and the opt-in shrink-to-zero in-process fallback.
    pub fault: FaultPolicy,
    /// Keep peer connections warm in the process-global pool across
    /// dispatches.
    pub pool: bool,
    /// Deterministic frame-fault injection (chaos testing).
    pub chaos: Option<ChaosConfig>,
}

/// One live peer link: the connection plus the bookkeeping needed to
/// return it to the pool (or quarantine its host) afterwards.
struct PeerLink {
    host: String,
    transport: TcpTransport,
    /// Dispatches this connection had served before checkout.
    dispatches: u64,
}

impl RemoteBackend {
    /// A backend over the given peers (must be non-empty), with the
    /// default fault policy (2 re-dispatches per chunk, 15 s IO
    /// timeout).
    pub fn new(hosts: Vec<String>, worker_threads: usize) -> Self {
        assert!(!hosts.is_empty(), "remote backend needs at least one host");
        RemoteBackend {
            hosts,
            worker_threads: worker_threads.max(1),
            batch: 1,
            connect_timeout: Duration::from_secs(10),
            fault: FaultPolicy::default(),
            pool: true,
            chaos: None,
        }
    }

    /// Set the batch width peers run contiguous same-point slots at
    /// (clamped to >= 1); result bytes are identical at any width.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Override the per-chunk re-dispatch budget.
    pub fn with_retry_budget(mut self, retries: usize) -> Self {
        self.fault.retry_budget = retries;
        self
    }

    /// Override the silent-peer read timeout (`None` disables it).
    pub fn with_io_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.fault.io_timeout = timeout;
        self
    }

    /// Replace the whole fault policy.
    pub fn with_fault(mut self, fault: FaultPolicy) -> Self {
        self.fault = fault;
        self
    }

    /// Enable or disable the warm connection pool.
    pub fn with_pool(mut self, pool: bool) -> Self {
        self.pool = pool;
        self
    }

    /// Arm (or disarm) deterministic chaos injection.
    pub fn with_chaos(mut self, chaos: Option<ChaosConfig>) -> Self {
        self.chaos = chaos;
        self
    }

    /// Establish one link to `host`: a pooled warm connection if
    /// available, else a fresh connect with the policy's capped backoff
    /// between attempts. Every failed attempt is charged to the host's
    /// quarantine record; a success clears it.
    fn connect_one(&self, host: &str, salt: u64) -> Result<PeerLink, String> {
        if self.pool {
            if let Some((transport, dispatches)) = pool().checkout_peer(host) {
                return Ok(PeerLink {
                    host: host.to_string(),
                    transport,
                    dispatches,
                });
            }
        }
        let attempts = self.fault.retry_budget + 1;
        let mut last = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(self.fault.backoff_delay(attempt - 1, salt));
            }
            let fresh = (|| -> Result<TcpTransport, String> {
                let addr = host
                    .to_socket_addrs()
                    .map_err(|e| format!("{host}: cannot resolve: {e}"))?
                    .next()
                    .ok_or_else(|| format!("{host}: resolves to no address"))?;
                let stream = TcpStream::connect_timeout(&addr, self.connect_timeout)
                    .map_err(|e| format!("{host}: connect failed: {e}"))?;
                let t = TcpTransport::new(stream);
                if !probe_live(t.stream()) {
                    return Err(format!("{}: dead right after connect", t.peer()));
                }
                Ok(t)
            })();
            match fresh {
                Ok(transport) => {
                    quarantine().record_success(host);
                    if attempt > 0 {
                        FleetStats::bump(&fleet_stats().reconnects);
                    }
                    return Ok(PeerLink {
                        host: host.to_string(),
                        transport,
                        dispatches: 0,
                    });
                }
                Err(msg) => {
                    quarantine().record_failure(host);
                    last = msg;
                }
            }
        }
        Err(format!("{last} (after {attempts} connect attempt(s))"))
    }

    /// Connect to every non-quarantined host concurrently; returns the
    /// live links. Unreachable peers are reported on stderr and skipped —
    /// results are byte-identical however many peers survive — but zero
    /// usable peers is an error: [`ExecError::BackendUnavailable`] when
    /// the whole fleet is quarantined, [`ExecError::Protocol`] when
    /// connects failed outright.
    fn connect_all(&self) -> Result<Vec<PeerLink>, ExecError> {
        let usable: Vec<&String> = self
            .hosts
            .iter()
            .filter(|h| !quarantine().is_quarantined(h))
            .collect();
        if usable.is_empty() {
            return Err(ExecError::BackendUnavailable(format!(
                "all {} remote peer(s) quarantined (hosts {:?})",
                self.hosts.len(),
                self.hosts
            )));
        }
        let connector = AsyncBackend::new(usable.len());
        let attempts: Vec<Result<PeerLink, String>> = connector.overlap(
            usable
                .iter()
                .enumerate()
                .map(|(i, host)| {
                    let host = host.as_str();
                    move || self.connect_one(host, i as u64)
                })
                .collect(),
        );
        let skipped = self.hosts.len() - usable.len();
        let mut peers = Vec::with_capacity(attempts.len());
        let mut failures = Vec::new();
        for attempt in attempts {
            match attempt {
                Ok(link) => {
                    // Reads are bounded because workers heartbeat;
                    // writes are bounded because a healthy worker drains
                    // its request promptly — either timeout firing means
                    // the peer is gone, and Broken re-dispatches its
                    // chunk.
                    let _ = link.transport.set_read_timeout(self.fault.io_timeout);
                    let _ = link.transport.set_write_timeout(self.fault.io_timeout);
                    peers.push(link);
                }
                Err(msg) => failures.push(msg),
            }
        }
        for f in &failures {
            eprintln!("[remote] peer unavailable: {f}");
        }
        if skipped > 0 {
            eprintln!("[remote] {skipped} quarantined peer(s) skipped");
        }
        if peers.is_empty() {
            return Err(ExecError::Protocol(format!(
                "no reachable remote peer among {:?}: {}",
                self.hosts,
                failures.join("; ")
            )));
        }
        Ok(peers)
    }

    /// Dispatch one chunk over one peer connection and drain its
    /// responses into the shared gather state. The transport is wrapped
    /// in the chaos injector (a passthrough unless armed).
    fn run_chunk(
        &self,
        transport: &mut TcpTransport,
        chunk: &Pending,
        results: &[OnceLock<Vec<u8>>],
        completed: &AtomicUsize,
        grand_total: usize,
        progress: Option<&ProgressFn>,
    ) -> (Drained, Vec<bool>) {
        let slots = chunk.manifest.slots();
        let mut delivered = vec![false; slots.len()];
        let mut link = FaultInjector::new(transport, self.chaos);
        let request = encode_manifest_request(
            self.worker_threads,
            self.batch,
            &chunk.manifest,
            crate::trace::current(),
        );
        if let Err(e) = link.send(&request).and_then(|_| link.flush()) {
            return (
                Drained::Broken(format!("request write failed: {e}")),
                delivered,
            );
        }
        let outcome = drain_chunk(
            &mut link,
            ChunkSink {
                slots: &slots,
                global_flat: &chunk.global_flat,
                results,
                delivered: &mut delivered,
                completed,
                grand_total,
                progress,
            },
        );
        (outcome, delivered)
    }

    /// Run `chunk` in-process (the shrink-to-zero degradation path),
    /// returning the error to record, if any.
    #[allow(clippy::too_many_arguments)]
    fn fall_back(
        &self,
        job: &dyn PortableJob,
        chunk: &Pending,
        why: &str,
        results: &[OnceLock<Vec<u8>>],
        completed: &AtomicUsize,
        grand_total: usize,
        progress: Option<&ProgressFn>,
    ) -> Option<ExecError> {
        eprintln!(
            "[fleet] remote fleet exhausted for {} slot(s) ({why}); \
             degrading: running them in-process",
            chunk.global_flat.len(),
        );
        FleetStats::bump(&fleet_stats().fallbacks);
        run_slots_in_process(
            job,
            &chunk.manifest,
            &chunk.global_flat,
            results,
            completed,
            grand_total,
            progress,
        )
        .err()
    }
}

/// One unit of dispatchable work: a sub-manifest plus the global flat
/// index of each of its slots (contiguous for the initial split; possibly
/// gappy for a re-dispatched remainder).
struct Pending {
    manifest: TaskManifest,
    global_flat: Vec<usize>,
    /// Dispatch attempts already burnt on this work.
    retries: usize,
}

impl Pending {
    /// The remainder of `self` after a partial drain: every undelivered
    /// slot, re-packed into merged segments. `None` if everything landed.
    fn remainder(&self, delivered: &[bool]) -> Option<Pending> {
        undelivered_remainder(&self.manifest, &self.global_flat, delivered).map(
            |(manifest, global_flat)| Pending {
                manifest,
                global_flat,
                retries: self.retries,
            },
        )
    }
}

/// Gather state shared by the per-peer drain threads.
struct GatherState {
    queue: Vec<Pending>,
    /// Chunks currently being driven by some peer.
    in_flight: usize,
    /// Error candidates; the lowest global flat index wins at the end.
    errors: Vec<ExecError>,
}

struct Gather {
    state: Mutex<GatherState>,
    work: Condvar,
}

impl Gather {
    /// Block until a chunk is available or all work is finished; `None`
    /// means the gather is complete (or failed) and the peer may retire.
    fn claim(&self) -> Option<Pending> {
        let mut st = self.state.lock().expect("gather mutex never poisoned");
        loop {
            if let Some(chunk) = st.queue.pop() {
                st.in_flight += 1;
                return Some(chunk);
            }
            if st.in_flight == 0 {
                self.work.notify_all();
                return None;
            }
            st = self.work.wait(st).expect("gather mutex never poisoned");
        }
    }

    /// Mark a claimed chunk finished, optionally pushing follow-up work
    /// (a retry remainder) and/or an error candidate.
    fn settle(&self, requeue: Option<Pending>, error: Option<ExecError>) {
        let mut st = self.state.lock().expect("gather mutex never poisoned");
        st.in_flight -= 1;
        if let Some(chunk) = requeue {
            st.queue.push(chunk);
        }
        if let Some(e) = error {
            st.errors.push(e);
        }
        self.work.notify_all();
    }
}

impl ExecBackend for RemoteBackend {
    fn run_segments(
        &self,
        job: &dyn PortableJob,
        manifest: &TaskManifest,
        progress: Option<&ProgressFn>,
    ) -> Result<Vec<Vec<u8>>, ExecError> {
        manifest.validate()?;
        let total = manifest.total_slots();
        if total == 0 {
            return Ok(Vec::new());
        }
        let peers = match self.connect_all() {
            Ok(p) => p,
            Err(e) if self.fault.fallback => {
                eprintln!(
                    "[fleet] no remote fleet available ({e}); \
                     degrading: running the whole dispatch in-process"
                );
                FleetStats::bump(&fleet_stats().fallbacks);
                return InProcessBackend::new(self.worker_threads)
                    .with_batch(self.batch)
                    .run_segments(job, manifest, progress);
            }
            Err(e) => return Err(e),
        };
        let chunks: Vec<Pending> = manifest
            .split(peers.len())
            .into_iter()
            .map(|(start, m)| {
                let n = m.total_slots();
                Pending {
                    manifest: m,
                    global_flat: (start..start + n).collect(),
                    retries: 0,
                }
            })
            .collect();

        let results: Vec<OnceLock<Vec<u8>>> = (0..total).map(|_| OnceLock::new()).collect();
        let completed = AtomicUsize::new(0);
        let gather = Gather {
            state: Mutex::new(GatherState {
                queue: chunks,
                in_flight: 0,
                errors: Vec::new(),
            }),
            work: Condvar::new(),
        };

        // One drain thread per peer. A peer claims chunks until the queue
        // drains; a peer that dies re-queues its chunk's undelivered
        // remainder (retry budget permitting) and retires, leaving the
        // remainder to the survivors. Like the sharded backend, there is
        // no cross-peer cancellation on task errors: every chunk drains,
        // so lowest-flat-index error selection stays deterministic. A
        // peer that retires healthy returns its warm connection to the
        // pool for the next dispatch.
        std::thread::scope(|scope| {
            for mut link in peers {
                let gather = &gather;
                let results = &results;
                let completed = &completed;
                scope.spawn(move || {
                    loop {
                        let Some(chunk) = gather.claim() else {
                            // Healthy retirement: park the connection.
                            quarantine().record_success(&link.host);
                            if self.pool {
                                pool().return_peer(&link.host, link.transport, link.dispatches + 1);
                            }
                            return;
                        };
                        // Heartbeat: never commit work to a peer that died
                        // while idle. Not counted against the chunk's
                        // budget — it was never dispatched.
                        if !probe_live(link.transport.stream()) {
                            gather.settle(Some(chunk), None);
                            return;
                        }
                        let (outcome, delivered) = self.run_chunk(
                            &mut link.transport,
                            &chunk,
                            results,
                            completed,
                            total,
                            progress,
                        );
                        match outcome {
                            Drained::Complete => gather.settle(None, None),
                            Drained::TaskError(e) => gather.settle(None, Some(e)),
                            Drained::Broken(message) => {
                                quarantine().record_failure(&link.host);
                                let flat = first_undelivered(&chunk.global_flat, &delivered)
                                    .unwrap_or_else(|| {
                                        chunk.global_flat.first().copied().unwrap_or(0)
                                    });
                                let remainder = chunk.remainder(&delivered);
                                match remainder {
                                    Some(mut rest) if rest.retries < self.fault.retry_budget => {
                                        eprintln!(
                                            "[remote] peer {} died mid-chunk ({message}); \
                                             re-dispatching {} slot(s) (attempt {} of {})",
                                            link.transport.peer(),
                                            rest.global_flat.len(),
                                            rest.retries + 2,
                                            self.fault.retry_budget + 1,
                                        );
                                        rest.retries += 1;
                                        gather.settle(Some(rest), None);
                                    }
                                    Some(rest) if self.fault.fallback => {
                                        let err = self.fall_back(
                                            job,
                                            &rest,
                                            &format!("retry budget exhausted: {message}"),
                                            results,
                                            completed,
                                            total,
                                            progress,
                                        );
                                        gather.settle(None, err);
                                    }
                                    Some(rest) => gather.settle(
                                        None,
                                        Some(ExecError::Worker {
                                            flat_index: flat,
                                            message: format!(
                                                "peer {}: {message} ({} slot(s) undelivered \
                                                 after {} dispatch attempt(s))",
                                                link.transport.peer(),
                                                rest.global_flat.len(),
                                                rest.retries + 1,
                                            ),
                                        }),
                                    ),
                                    // Every slot landed before the break
                                    // (e.g. the stream died after the last
                                    // R frame but before D).
                                    None => gather.settle(None, None),
                                }
                                return; // this peer is dead
                            }
                        }
                    }
                });
            }
        });

        let st = gather
            .state
            .into_inner()
            .expect("gather mutex never poisoned");
        let mut first_error: Option<ExecError> = None;
        for e in st.errors {
            keep_lowest_error(&mut first_error, e);
        }
        // Chunks stranded because every peer died: degrade in-process
        // when the policy allows, else surface the stranding.
        for chunk in st.queue {
            if self.fault.fallback {
                if let Some(e) = self.fall_back(
                    job,
                    &chunk,
                    "no surviving remote peer",
                    &results,
                    &completed,
                    total,
                    progress,
                ) {
                    keep_lowest_error(&mut first_error, e);
                }
            } else {
                keep_lowest_error(
                    &mut first_error,
                    ExecError::Worker {
                        flat_index: chunk.global_flat.first().copied().unwrap_or(0),
                        message: format!(
                            "no surviving remote peer for {} queued slot(s) (hosts {:?})",
                            chunk.global_flat.len(),
                            self.hosts
                        ),
                    },
                );
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        collect_results(results)
    }

    fn label(&self) -> String {
        if self.batch > 1 {
            format!(
                "remote(hosts={}, threads/peer={}, batch={})",
                self.hosts.len(),
                self.worker_threads,
                self.batch
            )
        } else {
            format!(
                "remote(hosts={}, threads/peer={})",
                self.hosts.len(),
                self.worker_threads
            )
        }
    }
}
