//! Discrete-time Markov chains.

use crate::linalg::Matrix;

/// A DTMC given by its row-stochastic transition matrix.
#[derive(Debug, Clone)]
pub struct Dtmc {
    p: Matrix,
}

/// Errors from DTMC construction/solving.
#[derive(Debug, Clone, PartialEq)]
pub enum DtmcError {
    /// The matrix is not square.
    NotSquare,
    /// A row does not sum to 1 (within tolerance) or has negative entries.
    NotStochastic {
        /// Offending row.
        row: usize,
    },
    /// Power iteration failed to converge.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
    },
}

impl std::fmt::Display for DtmcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DtmcError::NotSquare => write!(f, "transition matrix must be square"),
            DtmcError::NotStochastic { row } => {
                write!(f, "row {row} is not a probability distribution")
            }
            DtmcError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for DtmcError {}

impl Dtmc {
    /// Validate and wrap a transition matrix.
    pub fn new(p: Matrix) -> Result<Self, DtmcError> {
        if p.rows() != p.cols() {
            return Err(DtmcError::NotSquare);
        }
        for i in 0..p.rows() {
            let mut sum = 0.0;
            for j in 0..p.cols() {
                let v = p[(i, j)];
                if !(0.0..=1.0 + 1e-9).contains(&v) {
                    return Err(DtmcError::NotStochastic { row: i });
                }
                sum += v;
            }
            if (sum - 1.0).abs() > 1e-9 {
                return Err(DtmcError::NotStochastic { row: i });
            }
        }
        Ok(Dtmc { p })
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.p.rows()
    }

    /// One step of the chain: `π' = π·P`.
    pub fn step(&self, pi: &[f64]) -> Vec<f64> {
        self.p.vec_mul(pi)
    }

    /// Distribution after `k` steps from `pi0`.
    pub fn distribution_after(&self, pi0: &[f64], k: usize) -> Vec<f64> {
        let mut pi = pi0.to_vec();
        for _ in 0..k {
            pi = self.step(&pi);
        }
        pi
    }

    /// Stationary distribution via power iteration on the *lazy* chain
    /// `P' = (P + I)/2`, which is aperiodic and shares `P`'s stationary
    /// distribution — so periodic chains (e.g. a two-state flip-flop)
    /// converge too.
    pub fn stationary(&self, max_iters: usize, tol: f64) -> Result<Vec<f64>, DtmcError> {
        let n = self.num_states();
        let mut pi = vec![1.0 / n as f64; n];
        for _ in 0..max_iters {
            let stepped = self.step(&pi);
            let mut diff: f64 = 0.0;
            let mut next = stepped;
            for i in 0..n {
                next[i] = 0.5 * (next[i] + pi[i]);
                diff = diff.max((next[i] - pi[i]).abs());
            }
            pi = next;
            if diff < tol {
                let total: f64 = pi.iter().sum();
                return Ok(pi.iter().map(|x| x / total).collect());
            }
        }
        Err(DtmcError::NoConvergence {
            iterations: max_iters,
        })
    }

    /// Stationary distribution via direct linear solve of
    /// `πᵀ(P - I) = 0, Σπ = 1` (replaces the last balance equation with the
    /// normalization row).
    pub fn stationary_direct(&self) -> Option<Vec<f64>> {
        let n = self.num_states();
        // Build (P^T - I) with the last row replaced by ones.
        let mut a = self.p.transpose();
        for i in 0..n {
            a[(i, i)] -= 1.0;
        }
        for j in 0..n {
            a[(n - 1, j)] = 1.0;
        }
        let mut b = vec![0.0; n];
        b[n - 1] = 1.0;
        a.solve(&b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state() -> Dtmc {
        Dtmc::new(Matrix::from_rows(&[&[0.9, 0.1], &[0.5, 0.5]])).unwrap()
    }

    #[test]
    fn validation() {
        assert!(matches!(
            Dtmc::new(Matrix::zeros(2, 3)),
            Err(DtmcError::NotSquare)
        ));
        assert!(matches!(
            Dtmc::new(Matrix::from_rows(&[&[0.5, 0.4], &[0.5, 0.5]])),
            Err(DtmcError::NotStochastic { row: 0 })
        ));
        assert!(matches!(
            Dtmc::new(Matrix::from_rows(&[&[1.5, -0.5], &[0.5, 0.5]])),
            Err(DtmcError::NotStochastic { row: 0 })
        ));
    }

    #[test]
    fn stationary_two_state() {
        // pi = (5/6, 1/6): solve pi0*0.1 = pi1*0.5.
        let d = two_state();
        let pi = d.stationary(100_000, 1e-13).unwrap();
        assert!((pi[0] - 5.0 / 6.0).abs() < 1e-6, "{pi:?}");
        assert!((pi[1] - 1.0 / 6.0).abs() < 1e-6);
        let direct = d.stationary_direct().unwrap();
        assert!((direct[0] - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn periodic_chain_converges_via_cesaro() {
        // Period-2 flip-flop: stationary = (0.5, 0.5).
        let d = Dtmc::new(Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]])).unwrap();
        let pi = d.stationary(200_000, 1e-10).unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-4, "{pi:?}");
        let direct = d.stationary_direct().unwrap();
        assert!((direct[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distribution_after_steps() {
        let d = two_state();
        let pi1 = d.distribution_after(&[1.0, 0.0], 1);
        assert!((pi1[0] - 0.9).abs() < 1e-15);
        assert!((pi1[1] - 0.1).abs() < 1e-15);
        let pi100 = d.distribution_after(&[1.0, 0.0], 100);
        assert!((pi100[0] - 5.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn identity_chain_stays_put() {
        let d = Dtmc::new(Matrix::identity(3)).unwrap();
        let pi = d.distribution_after(&[0.2, 0.3, 0.5], 10);
        assert_eq!(pi, vec![0.2, 0.3, 0.5]);
    }
}
