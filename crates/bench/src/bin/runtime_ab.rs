//! Paired A/B of the flattened two-level grid (`sim_runtime::Runner::grid`)
//! against the old one-level fan-out (parallel over sweep points, serial
//! replications inside each point), on the Fig. 4–9 CPU sweep workload.
//!
//! Two measurements, both over the same tasks:
//!
//! 1. **Wall clock** (paired adjacent blocks, median ratio — robust on
//!    noisy shared hosts): the end-to-end sweep in both modes at the given
//!    worker-thread count. On a single-CPU host both modes degenerate to
//!    the total serial work, so this doubles as a zero-overhead check for
//!    the runtime layer.
//! 2. **Modeled makespan**: per-task costs are *measured* (serially, so no
//!    interference), then replayed through the exact greedy claim
//!    discipline both executors use — next free worker takes the next task
//!    in claim order — at hypothetical thread counts. This isolates the
//!    scheduling structure from host parallelism: it is how the same
//!    workload lands on 8-, 32- or 64-core machines.
//!
//! Both modes must produce bit-identical sweep results; the binary asserts
//! this before timing anything.
//!
//! ```text
//! cargo run --release -p bench --bin runtime_ab [--threads N] [--pairs K]
//! ```

use sim_runtime::Runner;
use std::time::Instant;
use wsn::cpu_model::{simulate_cpu_model, CpuModelParams};
use wsn::sweep::fig4_9_pdt_grid;

const HORIZON: f64 = 1000.0;
const REPS: u64 = 8;
const SEED: u64 = 0x5EED;

/// One replication of one sweep point (the unit task of both modes).
fn task(pdt: f64, rep: u64) -> f64 {
    let seed = petri_core::rng::SimRng::child_seed(SEED, rep);
    let out = simulate_cpu_model(&CpuModelParams::paper_defaults(pdt, 0.3), HORIZON, seed);
    out.probabilities[0]
}

/// The pre-runtime shape: fan out over sweep points only; each point runs
/// its replications serially inside the point task.
fn one_level(grid: &[f64], threads: usize) -> Vec<f64> {
    Runner::new(threads).map(grid, |&pdt| {
        let mut acc = 0.0;
        for r in 0..REPS {
            acc += task(pdt, r);
        }
        acc / REPS as f64
    })
}

/// The flattened `(point × replication)` grid.
fn flattened(grid: &[f64], threads: usize) -> Vec<f64> {
    let reps = vec![REPS; grid.len()];
    Runner::new(threads)
        .grid(&reps, |point, r| task(grid[point], r))
        .into_iter()
        .map(|outputs| outputs.into_iter().sum::<f64>() / REPS as f64)
        .collect()
}

/// Greedy list schedule: worker that frees up first takes the next task in
/// claim order — exactly the atomic-claim executor with zero claim cost.
/// Returns the makespan.
fn greedy_makespan(costs: &[f64], workers: usize) -> f64 {
    let mut free_at = vec![0.0f64; workers.max(1)];
    for &c in costs {
        let w = free_at
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("at least one worker");
        free_at[w] += c;
    }
    free_at.iter().fold(0.0f64, |m, &t| m.max(t))
}

fn median(v: &mut [f64]) -> f64 {
    v.sort_by(|x, y| x.total_cmp(y));
    v[v.len() / 2]
}

fn main() {
    let mut threads = sim_runtime::default_threads();
    let mut pairs = 9usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => threads = n,
                _ => {
                    eprintln!("--threads needs a positive integer");
                    std::process::exit(2);
                }
            },
            "--pairs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => pairs = n,
                _ => {
                    eprintln!("--pairs needs a positive integer");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown arg: {other}");
                std::process::exit(2);
            }
        }
    }
    let grid = fig4_9_pdt_grid();
    eprintln!(
        "workload: {} sweep points x {REPS} replications (CPU Petri net, {HORIZON} s horizon); {threads} thread(s), {pairs} pairs",
        grid.len(),
    );

    // Correctness first: both modes must agree bit-for-bit.
    let a = one_level(&grid, threads);
    let b = flattened(&grid, threads);
    assert_eq!(a, b, "one-level and flattened sweeps must be bit-identical");

    // 1. Paired wall clock.
    let mut ratios = Vec::new();
    let mut one_ms = Vec::new();
    let mut flat_ms = Vec::new();
    for p in 0..pairs {
        let (t_one, t_flat) = if p % 2 == 0 {
            let t0 = Instant::now();
            std::hint::black_box(one_level(&grid, threads));
            let t_one = t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            std::hint::black_box(flattened(&grid, threads));
            (t_one, t0.elapsed().as_secs_f64())
        } else {
            let t0 = Instant::now();
            std::hint::black_box(flattened(&grid, threads));
            let t_flat = t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            std::hint::black_box(one_level(&grid, threads));
            (t0.elapsed().as_secs_f64(), t_flat)
        };
        ratios.push(t_one / t_flat);
        one_ms.push(t_one * 1e3);
        flat_ms.push(t_flat * 1e3);
    }
    let wall_ratio = median(&mut ratios);
    let wall_one = median(&mut one_ms);
    let wall_flat = median(&mut flat_ms);

    // 2. Modeled makespan from serially measured per-task costs.
    let mut rep_cost = vec![vec![0.0f64; REPS as usize]; grid.len()];
    for (i, &pdt) in grid.iter().enumerate() {
        for r in 0..REPS {
            let t0 = Instant::now();
            std::hint::black_box(task(pdt, r));
            rep_cost[i][r as usize] = t0.elapsed().as_secs_f64();
        }
    }
    let point_costs: Vec<f64> = rep_cost.iter().map(|rs| rs.iter().sum()).collect();
    let flat_costs: Vec<f64> = rep_cost.iter().flatten().copied().collect();

    println!("{{");
    println!("  \"workload\": \"fig4_9 sweep: {} points x {REPS} replications, CPU Petri net, {HORIZON} s horizon\",", grid.len());
    println!("  \"host_threads\": {},", sim_runtime::default_threads());
    println!("  \"wall_clock\": {{");
    println!("    \"threads\": {threads},");
    println!("    \"one_level_ms\": {wall_one:.1},");
    println!("    \"flattened_ms\": {wall_flat:.1},");
    println!("    \"median_paired_speedup\": {wall_ratio:.3}");
    println!("  }},");
    println!("  \"modeled_makespan\": {{");
    println!("    \"note\": \"greedy claim-order schedule replayed over serially measured per-task costs; isolates scheduling structure from host core count\",");
    print!("    \"by_threads\": [");
    let mut first = true;
    for t in [1usize, 2, 4, 8, 16, 32, 64] {
        let m_one = greedy_makespan(&point_costs, t.min(grid.len()));
        let m_flat = greedy_makespan(&flat_costs, t);
        if !first {
            print!(", ");
        }
        first = false;
        print!(
            "{{\"threads\": {t}, \"one_level_ms\": {:.2}, \"flattened_ms\": {:.2}, \"speedup\": {:.3}}}",
            m_one * 1e3,
            m_flat * 1e3,
            m_one / m_flat
        );
    }
    println!("]");
    println!("  }}");
    println!("}}");
}
