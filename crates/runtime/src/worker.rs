//! The worker half of the sharded executor protocol.
//!
//! A worker subprocess (`<exe> --worker`) reads **one** request frame from
//! stdin — protocol version, worker-thread count, and a
//! [`TaskManifest`] — decodes the job through its [`JobRegistry`], executes
//! the manifest on the in-process scheduling core, and answers on stdout
//! with one `R` frame **per completed slot, as it completes** (so the
//! parent's progress callback ticks live and the worker never buffers its
//! shard), followed by `D` — or a single `E` frame carrying the
//! lowest-flat-index task error. All framing is length-prefixed; see
//! [`crate::wire`]. The worker writes nothing else to stdout — diagnostics
//! belong on stderr.

use crate::exec::{frame, JobRegistry, TaskManifest, WIRE_VERSION};
use crate::grid::run_segments_core;
use crate::wire::{self, Reader, WireError};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Why a slot could not be delivered: the task itself failed (reported
/// in-band) vs. the response stream broke (fatal).
enum SlotFailure {
    Task(String),
    Io(String),
}

/// Serve exactly one shard request from `input`, answering on `output`.
///
/// Task errors travel in-band (`E` frame) and yield `Ok(())` — the worker
/// process should still exit 0, since the parent learned everything it
/// needs. `Err` is reserved for protocol-level failures (garbage frames,
/// unknown job kinds, I/O errors), after which the process should exit
/// non-zero.
pub fn serve(
    registry: &JobRegistry,
    input: &mut dyn Read,
    output: &mut (dyn Write + Send),
) -> Result<(), WireError> {
    let request = wire::read_frame(input)
        .map_err(|e| WireError::new(format!("request read failed: {e}")))?
        .ok_or_else(|| WireError::new("EOF before request frame"))?;
    let mut r = Reader::new(&request);
    let version = r.get_u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::new(format!(
            "protocol version {version} (worker speaks {WIRE_VERSION})"
        )));
    }
    let threads = (r.get_u32()? as usize).max(1);
    let manifest = TaskManifest::decode(&mut r)?;
    r.finish()?;

    let job = registry.decode(&manifest.kind, &manifest.payload)?;

    // Run the shard on the shared scheduling core, streaming each slot's
    // `R` frame the moment it completes: results are never buffered
    // worker-side, and the parent can tick progress while the shard runs.
    // Frames may interleave in any completion order — they carry the slot
    // index, and the parent stores by index.
    let out = Mutex::new(output);
    let delivered = AtomicU64::new(0);
    let outcome = run_segments_core(
        threads,
        None,
        &manifest.segments,
        &|flat, point, rep| match job.run_slot(point, rep, manifest.seeds[flat]) {
            Ok(bytes) => {
                let mut body = Vec::with_capacity(bytes.len() + 16);
                wire::put_u8(&mut body, frame::RESULT);
                wire::put_u64(&mut body, flat as u64);
                wire::put_bytes(&mut body, &bytes);
                let mut w = out.lock().expect("output mutex never poisoned");
                wire::write_frame(*w, &body)
                    .map_err(|e| SlotFailure::Io(format!("response write failed: {e}")))?;
                delivered.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(message) => Err(SlotFailure::Task(message)),
        },
    );

    let io_err = |e: std::io::Error| WireError::new(format!("response write failed: {e}"));
    let w = out.into_inner().expect("output mutex never poisoned");
    match outcome {
        Ok(_) => {
            let mut done = Vec::new();
            wire::put_u8(&mut done, frame::DONE);
            wire::put_u64(&mut done, delivered.load(Ordering::Relaxed));
            wire::write_frame(w, &done).map_err(io_err)?;
        }
        Err((flat, SlotFailure::Task(message))) => {
            // The parent discards any `R` frames it already received for
            // this shard once the error arrives.
            let mut body = Vec::new();
            wire::put_u8(&mut body, frame::ERROR);
            wire::put_u64(&mut body, flat as u64);
            wire::put_str(&mut body, &message);
            wire::write_frame(w, &body).map_err(io_err)?;
        }
        Err((_flat, SlotFailure::Io(message))) => return Err(WireError::new(message)),
    }
    w.flush().map_err(io_err)
}

/// [`serve`] over this process's stdin/stdout: the canonical body of a
/// binary's `--worker` mode. The caller maps the outcome to its exit code
/// (0 on `Ok` — in-band task errors included — non-zero on protocol
/// failures).
pub fn serve_stdio(registry: &JobRegistry) -> Result<(), WireError> {
    let stdin = std::io::stdin();
    // `Stdout` (not the non-`Send` lock guard): `serve` writes from worker
    // threads under its own mutex.
    let mut stdout = std::io::stdout();
    serve(registry, &mut stdin.lock(), &mut stdout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::tests::{decode_mul, MulJob};
    use crate::exec::{PortableJob, TaskManifest};
    use crate::grid::Segment;

    fn registry() -> JobRegistry {
        let mut reg = JobRegistry::new();
        reg.register("test-mul", decode_mul);
        reg
    }

    fn request_bytes(threads: u32, manifest: &TaskManifest) -> Vec<u8> {
        let mut body = Vec::new();
        wire::put_u8(&mut body, WIRE_VERSION);
        wire::put_u32(&mut body, threads);
        manifest.encode_into(&mut body);
        let mut framed = Vec::new();
        wire::write_frame(&mut framed, &body).unwrap();
        framed
    }

    fn mul_manifest(reps: &[u64]) -> TaskManifest {
        let job = MulJob { factor: 5 };
        let segments = reps
            .iter()
            .enumerate()
            .map(|(point, &n)| Segment {
                point,
                base_rep: 0,
                count: n as usize,
            })
            .collect();
        TaskManifest::for_job(&job, segments, &|p, r| 100 * p as u64 + r)
    }

    #[test]
    fn serve_round_trips_results_in_memory() {
        let m = mul_manifest(&[2, 3]);
        let req = request_bytes(2, &m);
        let mut out = Vec::new();
        serve(&registry(), &mut &req[..], &mut out).unwrap();

        // Parse the response stream: 5 R frames (any slot order) + D.
        let job = MulJob { factor: 5 };
        let expect: Vec<Vec<u8>> = m
            .slots()
            .iter()
            .map(|&(p, r, s)| job.run_slot(p, r, s).unwrap())
            .collect();
        let mut seen = vec![None; expect.len()];
        let mut stream = &out[..];
        let mut done = false;
        while let Some(body) = wire::read_frame(&mut stream).unwrap() {
            let mut r = Reader::new(&body);
            match r.get_u8().unwrap() {
                frame::RESULT => {
                    let local = r.get_u64().unwrap() as usize;
                    seen[local] = Some(r.get_bytes().unwrap().to_vec());
                }
                frame::DONE => {
                    assert_eq!(r.get_u64().unwrap(), 5);
                    done = true;
                }
                tag => panic!("unexpected tag {tag}"),
            }
        }
        assert!(done);
        let seen: Vec<Vec<u8>> = seen.into_iter().map(|s| s.unwrap()).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn serve_reports_task_error_in_band() {
        struct Boom;
        impl PortableJob for Boom {
            fn kind(&self) -> &'static str {
                "test-boom"
            }
            fn encode_payload(&self, _buf: &mut Vec<u8>) {}
            fn run_slot(&self, point: usize, rep: u64, _seed: u64) -> Result<Vec<u8>, String> {
                if point == 0 && rep == 1 {
                    Err("kaboom".into())
                } else {
                    Ok(vec![0])
                }
            }
        }
        let mut reg = JobRegistry::new();
        reg.register("test-boom", |_p| Ok(Box::new(Boom)));
        let m = TaskManifest::for_job(
            &Boom,
            vec![Segment {
                point: 0,
                base_rep: 0,
                count: 3,
            }],
            &|_, _| 0,
        );
        let req = request_bytes(1, &m);
        let mut out = Vec::new();
        serve(&reg, &mut &req[..], &mut out).unwrap();
        // Completed slots stream their `R` frames before the error is
        // known (slot 0 here); the stream must then end with exactly one
        // `E` frame and no `D`.
        let mut stream = &out[..];
        let mut error_seen = false;
        while let Some(body) = wire::read_frame(&mut stream).unwrap() {
            let mut r = Reader::new(&body);
            match r.get_u8().unwrap() {
                frame::RESULT => {
                    assert!(!error_seen, "R frame after E");
                    assert_eq!(r.get_u64().unwrap(), 0);
                }
                frame::ERROR => {
                    assert_eq!(r.get_u64().unwrap(), 1); // lowest failing flat index
                    assert_eq!(r.get_str().unwrap(), "kaboom");
                    error_seen = true;
                }
                tag => panic!("unexpected tag {tag}"),
            }
        }
        assert!(error_seen);
    }

    #[test]
    fn serve_rejects_unknown_kind_and_bad_version() {
        let m = mul_manifest(&[1]);
        // Unknown job kind.
        let mut other = m.clone();
        other.kind = "never-registered".into();
        let req = request_bytes(1, &other);
        let mut out = Vec::new();
        assert!(serve(&registry(), &mut &req[..], &mut out).is_err());
        // Wrong protocol version.
        let mut body = Vec::new();
        wire::put_u8(&mut body, WIRE_VERSION + 1);
        wire::put_u32(&mut body, 1);
        m.encode_into(&mut body);
        let mut framed = Vec::new();
        wire::write_frame(&mut framed, &body).unwrap();
        assert!(serve(&registry(), &mut &framed[..], &mut Vec::new()).is_err());
        // Empty stdin.
        assert!(serve(&registry(), &mut &[][..], &mut Vec::new()).is_err());
    }
}
