//! The paper's power parameter tables.
//!
//! * [`PXA271_CPU`] / [`CC2420_RADIO`] — Table III: "System model Petri net
//!   power parameters" for the iMote2 platform (values originally from
//!   Jung et al. [12]).
//! * [`IMOTE2_MEASURED`] — Table VII: bench-measured whole-node power in the
//!   four operating states of the simple sensor system (Sec. V).

use crate::power::{ComponentPower, FourState};
use crate::units::Power;

/// Table III, CPU rows (PXA271): standby 17 mW, idle 88 mW,
/// power-up 192.976 mW, active 193 mW.
pub const PXA271_CPU: ComponentPower = ComponentPower {
    sleep: Power::from_milliwatts(17.0),
    idle: Power::from_milliwatts(88.0),
    wakeup: Power::from_milliwatts(192.976),
    active: Power::from_milliwatts(193.0),
};

/// Table III, radio rows (CC2420): standby 1.44e-4 mW, idle 0.712 mW,
/// power-up 0.034175 mW, active 78 mW.
pub const CC2420_RADIO: ComponentPower = ComponentPower {
    sleep: Power::from_milliwatts(1.44e-4),
    idle: Power::from_milliwatts(0.712),
    wakeup: Power::from_milliwatts(0.034175),
    active: Power::from_milliwatts(78.0),
};

/// Table VII: measured IMote2 whole-node power in the simple system's four
/// states (mW): idle 1.216, receiving 1.213, computation 1.253,
/// transmission 1.028.
///
/// The paper notes the transmission state draws *less* than idle because an
/// idle CC2420 keeps its receiver listening (18.8 mA RX vs 17.4 mA TX).
pub const IMOTE2_MEASURED: FourState = FourState {
    wait: Power::from_milliwatts(1.216),
    receiving: Power::from_milliwatts(1.213),
    computation: Power::from_milliwatts(1.253),
    transmitting: Power::from_milliwatts(1.028),
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_cpu_values() {
        assert_eq!(PXA271_CPU.sleep.milliwatts(), 17.0);
        assert_eq!(PXA271_CPU.idle.milliwatts(), 88.0);
        assert_eq!(PXA271_CPU.wakeup.milliwatts(), 192.976);
        assert_eq!(PXA271_CPU.active.milliwatts(), 193.0);
        assert!(PXA271_CPU.is_physical());
    }

    #[test]
    fn table_iii_radio_values() {
        assert_eq!(CC2420_RADIO.sleep.milliwatts(), 1.44e-4);
        assert_eq!(CC2420_RADIO.idle.milliwatts(), 0.712);
        assert_eq!(CC2420_RADIO.wakeup.milliwatts(), 0.034175);
        assert_eq!(CC2420_RADIO.active.milliwatts(), 78.0);
        assert!(CC2420_RADIO.is_physical());
    }

    #[test]
    fn table_vii_values() {
        assert_eq!(IMOTE2_MEASURED.wait.milliwatts(), 1.216);
        assert_eq!(IMOTE2_MEASURED.receiving.milliwatts(), 1.213);
        assert_eq!(IMOTE2_MEASURED.computation.milliwatts(), 1.253);
        assert_eq!(IMOTE2_MEASURED.transmitting.milliwatts(), 1.028);
        // The paper's observation: TX below idle.
        assert!(IMOTE2_MEASURED.transmitting < IMOTE2_MEASURED.wait);
    }

    #[test]
    fn cpu_ordering_sanity() {
        // sleep < idle < wakeup <= active for the PXA271.
        assert!(PXA271_CPU.sleep < PXA271_CPU.idle);
        assert!(PXA271_CPU.idle < PXA271_CPU.wakeup);
        assert!(PXA271_CPU.wakeup <= PXA271_CPU.active);
    }
}
