//! The paper's Markov model of the power-managed CPU, solved with the
//! method of supplementary variables (Cox 1955).
//!
//! Implements equations (1)–(6) of Shareef & Zhu (2010) verbatim:
//!
//! ```text
//! denom = e^{λT} + (1-ρ)(1-e^{-λD}) + ρλD          with ρ = λ/μ
//! p_s   = (1-ρ)                    / denom          (standby)       (1)
//! p_i   = (1-ρ)(e^{λT} - 1)        / denom          (idle)          (2)
//! p_u   = (1-ρ)(1-e^{-λD})         / denom          (power-up)      (3)
//! G₀(1) = ρ(e^{λT} + λD)           / denom          (active/busy)   (4)
//! L(1)  = ρ/(1-ρ) · [e^{λT} + ½(1-ρ)λ²D² + (2-ρ)λD] / denom         (5)
//! E     = (p_i·P_idle + p_s·P_standby + p_u·P_powerup + G₀·P_active)
//!         · (N + L(1)/2)/λ                                          (6)
//! ```
//!
//! `T` is the Power-Down Threshold, `D` the (deterministic) Power-Up Delay,
//! `N` the number of jobs. The deterministic `T` and `D` are what force the
//! supplementary-variable treatment: the underlying process is *not* a
//! Markov chain (the paper's central observation), and this closed form is
//! an approximation whose error grows with `D` — Figs. 6/9 show it failing
//! completely at `D = 10 s`, which our reproduction confirms.
//!
//! The published Eq. (6) typesets the last factor ambiguously
//! ("(N + L(1)2)/λ"); we read it as `(N + L(1)/2)/λ`. For the paper's
//! parameters the alternative reading differs by < 0.1 % (see DESIGN.md).

use serde::{Deserialize, Serialize};

/// Parameters of the supplementary-variable CPU model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuMarkovParams {
    /// Job arrival rate λ (jobs/s).
    pub lambda: f64,
    /// Job service rate μ (jobs/s). The paper's Table II quotes
    /// "Service Rate .1 per second" which we interpret as a mean service
    /// *time* of 0.1 s (μ = 10/s); see DESIGN.md §4.
    pub mu: f64,
    /// Power-Down Threshold `T` (s): idle time before entering standby.
    pub power_down_threshold: f64,
    /// Power-Up Delay `D` (s): fixed wake-up duration.
    pub power_up_delay: f64,
}

/// Steady-state probabilities from equations (1)–(5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuMarkovSolution {
    /// `p_s`: probability of standby.
    pub p_standby: f64,
    /// `p_i`: probability of idle.
    pub p_idle: f64,
    /// `p_u`: probability of powering up.
    pub p_powerup: f64,
    /// `G₀(1)`: probability of active (busy).
    pub p_active: f64,
    /// `L(1)`: mean queue-length related quantity used by Eq. (6).
    pub l1: f64,
}

/// Power rates (mW) for the four CPU states, as in Table III.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuPowerRates {
    /// Standby power (mW).
    pub standby: f64,
    /// Idle power (mW).
    pub idle: f64,
    /// Power-up power (mW).
    pub powerup: f64,
    /// Active power (mW).
    pub active: f64,
}

impl CpuPowerRates {
    /// The PXA271 rates of Table III (mW).
    pub const PXA271: CpuPowerRates = CpuPowerRates {
        standby: 17.0,
        idle: 88.0,
        powerup: 192.976,
        active: 193.0,
    };
}

/// Threshold above which `exp(λT)` would overflow; beyond it the asymptotic
/// limits are exact to machine precision anyway.
const EXP_GUARD: f64 = 700.0;

impl CpuMarkovParams {
    /// Utilization ρ = λ/μ.
    pub fn rho(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Evaluate equations (1)–(5).
    ///
    /// Panics if parameters are non-positive or the queue is unstable
    /// (ρ ≥ 1), where the closed form is meaningless.
    pub fn solve(&self) -> CpuMarkovSolution {
        assert!(self.lambda > 0.0 && self.mu > 0.0, "rates must be positive");
        assert!(
            self.power_down_threshold >= 0.0 && self.power_up_delay >= 0.0,
            "delays must be non-negative"
        );
        let rho = self.rho();
        assert!(rho < 1.0, "unstable system: rho = {rho} >= 1");
        let lt = self.lambda * self.power_down_threshold;
        let ld = self.lambda * self.power_up_delay;

        if lt > EXP_GUARD {
            // e^{λT} dominates every term: the CPU never reaches standby.
            return CpuMarkovSolution {
                p_standby: 0.0,
                p_idle: 1.0 - rho,
                p_powerup: 0.0,
                p_active: rho,
                l1: rho / (1.0 - rho),
            };
        }

        let elt = lt.exp();
        let emld = (-ld).exp();
        let denom = elt + (1.0 - rho) * (1.0 - emld) + rho * ld;

        let p_standby = (1.0 - rho) / denom;
        let p_idle = (1.0 - rho) * (elt - 1.0) / denom;
        let p_powerup = (1.0 - rho) * (1.0 - emld) / denom;
        let p_active = rho * (elt + ld) / denom;
        let l1 = rho / (1.0 - rho) * (elt + 0.5 * (1.0 - rho) * ld * ld + (2.0 - rho) * ld) / denom;

        CpuMarkovSolution {
            p_standby,
            p_idle,
            p_powerup,
            p_active,
            l1,
        }
    }

    /// Equation (6): total energy (Joules) for `n_jobs` jobs with the given
    /// power rates in mW. The time factor `(N + L(1)/2)/λ` is the model's
    /// estimate of the elapsed time for `N` jobs.
    pub fn energy_joules(&self, rates: &CpuPowerRates, n_jobs: f64) -> f64 {
        let s = self.solve();
        let p_avg_mw = s.p_idle * rates.idle
            + s.p_standby * rates.standby
            + s.p_powerup * rates.powerup
            + s.p_active * rates.active;
        let time_s = (n_jobs + s.l1 / 2.0) / self.lambda;
        p_avg_mw * 1e-3 * time_s
    }

    /// Energy over a fixed horizon (Eq. 7 style): average power × duration.
    /// Used when comparing against simulators run for a fixed simulated
    /// time rather than a fixed job count.
    pub fn energy_for_duration(&self, rates: &CpuPowerRates, duration_s: f64) -> f64 {
        let s = self.solve();
        let p_avg_mw = s.p_idle * rates.idle
            + s.p_standby * rates.standby
            + s.p_powerup * rates.powerup
            + s.p_active * rates.active;
        p_avg_mw * 1e-3 * duration_s
    }
}

impl CpuMarkovSolution {
    /// The four state probabilities as an array
    /// `[standby, powerup, idle, active]`.
    pub fn probabilities(&self) -> [f64; 4] {
        [self.p_standby, self.p_powerup, self.p_idle, self.p_active]
    }

    /// Sum of the four state probabilities (should be 1; exposed for
    /// validation).
    pub fn total_probability(&self) -> f64 {
        self.p_standby + self.p_idle + self.p_powerup + self.p_active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_params(t: f64, d: f64) -> CpuMarkovParams {
        CpuMarkovParams {
            lambda: 1.0,
            mu: 10.0,
            power_down_threshold: t,
            power_up_delay: d,
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        for &t in &[0.001, 0.01, 0.1, 0.5, 1.0, 10.0] {
            for &d in &[0.001, 0.3, 10.0] {
                let s = paper_params(t, d).solve();
                assert!(
                    (s.total_probability() - 1.0).abs() < 1e-12,
                    "T={t} D={d}: sum={}",
                    s.total_probability()
                );
            }
        }
    }

    #[test]
    fn tiny_thresholds_mostly_standby() {
        // T -> 0, D -> 0: the CPU drops to standby the instant it idles and
        // wakes instantly: p_standby ~ 1-rho, p_active ~ rho.
        let s = paper_params(1e-9, 1e-9).solve();
        assert!((s.p_standby - 0.9).abs() < 1e-6, "{s:?}");
        assert!((s.p_active - 0.1).abs() < 1e-6);
        assert!(s.p_idle < 1e-6);
        assert!(s.p_powerup < 1e-6);
    }

    #[test]
    fn huge_threshold_never_sleeps() {
        // T -> inf: no standby, idle takes the 1-rho share.
        let s = paper_params(1e6, 0.3).solve();
        assert_eq!(s.p_standby, 0.0);
        assert!((s.p_idle - 0.9).abs() < 1e-12);
        assert!((s.p_active - 0.1).abs() < 1e-12);
    }

    #[test]
    fn idle_increases_with_threshold() {
        let mut last = -1.0;
        for &t in &[0.001, 0.01, 0.1, 0.3, 0.6, 1.0] {
            let s = paper_params(t, 0.001).solve();
            assert!(s.p_idle > last, "idle must increase with T");
            last = s.p_idle;
        }
    }

    #[test]
    fn standby_decreases_with_threshold() {
        let mut last = 2.0;
        for &t in &[0.001, 0.01, 0.1, 0.3, 0.6, 1.0] {
            let s = paper_params(t, 0.001).solve();
            assert!(s.p_standby < last, "standby must decrease with T");
            last = s.p_standby;
        }
    }

    #[test]
    fn active_roughly_constant_at_small_d() {
        // Fig. 4's observation: Active ≈ rho regardless of T (at small D).
        for &t in &[0.001, 0.1, 0.5, 1.0] {
            let s = paper_params(t, 0.001).solve();
            assert!((s.p_active - 0.1).abs() < 0.01, "T={t}: {}", s.p_active);
        }
    }

    #[test]
    fn large_powerup_delay_inflates_active_estimate() {
        // The known failure mode (Fig. 6): at D = 10 s the closed form
        // overestimates busy probability well beyond rho.
        let s = paper_params(0.001, 10.0).solve();
        assert!(
            s.p_active > 0.3,
            "expected inflated active estimate, got {}",
            s.p_active
        );
    }

    #[test]
    fn energy_positive_and_monotone_window() {
        let rates = CpuPowerRates::PXA271;
        let e1 = paper_params(0.001, 0.001).energy_joules(&rates, 1000.0);
        let e2 = paper_params(1.0, 0.001).energy_joules(&rates, 1000.0);
        assert!(e1 > 0.0 && e2 > 0.0);
        // At tiny D, larger T burns more idle power.
        assert!(e2 > e1);
    }

    #[test]
    fn energy_for_duration_scales_linearly() {
        let rates = CpuPowerRates::PXA271;
        let p = paper_params(0.1, 0.3);
        let e1 = p.energy_for_duration(&rates, 100.0);
        let e2 = p.energy_for_duration(&rates, 200.0);
        assert!((e2 / e1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn exp_guard_kicks_in() {
        // λT > 700 must not overflow to NaN/inf.
        let s = paper_params(1e4, 0.3).solve();
        assert!(s.total_probability().is_finite());
        assert!((s.total_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn unstable_rejected() {
        let _ = CpuMarkovParams {
            lambda: 1.0,
            mu: 0.1, // the literal (wrong) reading of Table II
            power_down_threshold: 0.1,
            power_up_delay: 0.001,
        }
        .solve();
    }

    #[test]
    fn pxa271_rates_match_table_iii() {
        let r = CpuPowerRates::PXA271;
        assert_eq!(r.standby, 17.0);
        assert_eq!(r.idle, 88.0);
        assert_eq!(r.powerup, 192.976);
        assert_eq!(r.active, 193.0);
    }
}
