//! A thin HTTP/1.1 gateway over the service daemon, hand-rolled on std
//! TCP like every other wire layer in this workspace.
//!
//! The gateway translates a small JSON/text surface onto the binary
//! protocol's verbs, so `curl` (and anything that speaks HTTP) can drive
//! a daemon without linking the client crate:
//!
//! | route | verb | answer |
//! |---|---|---|
//! | `GET /healthz` | — | `ok` (the daemon is accepting) |
//! | `GET /stats` | `Stats` | [`ServiceStats`] as JSON |
//! | `GET /jobs/<id>` | `Status` | `{"id","state","progress"}` JSON |
//! | `GET /jobs/<id>/result` | `Fetch` | the raw result blob bytes |
//! | `GET /jobs/<id>/trace` | `Trace` | Chrome trace-event JSON |
//! | `POST /submit` | `Submit` | `{"job","disposition"}` JSON |
//! | `GET /metrics` | — | Prometheus text exposition |
//!
//! `POST /submit` accepts either a wire-encoded
//! [`TaskManifest`](crate::exec::TaskManifest) as the request body
//! (exactly the bytes [`TaskManifest::encode_into`] produces — how a
//! programmatic client submits without the binary protocol), or, with an
//! empty body, query parameters handed to the embedding binary's
//! [`SpecParser`] (e.g. `POST /submit?spec=mm1&seed=7` in `repro`).
//!
//! `/metrics` renders the process-global telemetry registry (which
//! carries the fleet counters as a registered source) plus this daemon's
//! service counters as `extra` series. Metrics are **per-process**:
//! engine counters recorded inside sharded worker subprocesses live in
//! those processes, so a daemon on the in-process backend shows engine
//! series and a sharded daemon shows the dispatch-side series only.
//!
//! One thread per connection, `Connection: close` on every response —
//! the gateway serves monitoring probes and CI smoke, not bulk traffic.
//! Responses never touch job scheduling; like the progress frames, the
//! gateway is observation only.

use super::{Fetched, Service};
use crate::exec::TaskManifest;
use crate::wire::Reader;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

/// Builds a [`TaskManifest`] from `POST /submit` query parameters.
///
/// The service crate knows nothing about concrete experiments, so the
/// embedding binary injects the translation — `repro serve --http`
/// supplies one that understands `spec=mm1&seed=<n>` and builds the same
/// manifest `repro submit` would.
pub type SpecParser =
    dyn Fn(&BTreeMap<String, String>) -> Result<TaskManifest, String> + Send + Sync;

/// Serve the HTTP surface on a pre-bound listener until the service
/// stops (observed on the first accept after [`Service::stop`]; poke the
/// port with a bare TCP connect to unblock a parked accept).
///
/// Each connection gets its own handler thread; handlers hold no locks
/// across I/O and a blocking `/result` fetch on one connection never
/// stalls another.
pub fn serve_http(
    service: Arc<Service>,
    listener: TcpListener,
    spec: Option<Arc<SpecParser>>,
) -> std::io::Result<()> {
    for conn in listener.incoming() {
        let stream = match conn {
            Ok(s) => s,
            Err(e) => {
                eprintln!("[http] accept failed: {e}");
                std::thread::sleep(std::time::Duration::from_millis(100));
                continue;
            }
        };
        if service.is_stopping() {
            return Ok(());
        }
        let service = service.clone();
        let spec = spec.clone();
        std::thread::spawn(move || {
            if let Err(e) = handle_http(&service, spec.as_deref(), stream) {
                eprintln!("[http] connection failed: {e}");
            }
        });
    }
    Ok(())
}

/// One HTTP response, rendered by [`HttpResponse::write_to`].
struct HttpResponse {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    body: Vec<u8>,
}

impl HttpResponse {
    fn ok(content_type: &'static str, body: Vec<u8>) -> Self {
        HttpResponse {
            status: 200,
            reason: "OK",
            content_type,
            body,
        }
    }

    fn error(status: u16, reason: &'static str, msg: String) -> Self {
        HttpResponse {
            status,
            reason,
            content_type: "text/plain; charset=utf-8",
            body: format!("{msg}\n").into_bytes(),
        }
    }

    fn write_to(&self, out: &mut dyn Write) -> std::io::Result<()> {
        write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason,
            self.content_type,
            self.body.len()
        )?;
        out.write_all(&self.body)?;
        out.flush()
    }
}

/// Read one request (request line, headers, `Content-Length` body),
/// route it, write the response, close.
fn handle_http(
    service: &Service,
    spec: Option<&SpecParser>,
    mut stream: TcpStream,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(std::time::Duration::from_secs(10)))?;
    let (method, target, body) = match read_request(&mut stream) {
        Ok(req) => req,
        Err(resp) => return resp.write_to(&mut stream),
    };
    let response = route(service, spec, &method, &target, &body);
    response.write_to(&mut stream)
}

/// Request-line byte cap: beyond it the request is answered 431 without
/// reading further (a client streaming an endless first line must not tie
/// the handler to a 64 KB crawl).
const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Whole-head (request line + headers) byte cap → 431.
const MAX_HEAD: usize = 64 * 1024;
/// Declared body byte cap → 413.
const MAX_BODY: usize = 64 * 1024 * 1024;

/// Parse one HTTP/1.1 request off the stream. Returns
/// `(method, target, body)`; the error is a fully typed response —
/// 431 for an oversized request line or header section, 413 for an
/// oversized declared body, 400 for everything malformed — so misbehaving
/// clients get told what they did instead of a silent close or a
/// catch-all 400.
fn read_request(stream: &mut TcpStream) -> Result<(String, String, Vec<u8>), HttpResponse> {
    let bad = |msg: String| HttpResponse::error(400, "Bad Request", msg);
    let too_large = |what: &str, cap: usize| {
        HttpResponse::error(
            431,
            "Request Header Fields Too Large",
            format!("{what} exceeds {cap} bytes"),
        )
    };
    // Accumulate until the blank line; headers are small, so byte-at-a-
    // time buffered reads are fine for a monitoring surface.
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    let mut in_request_line = true;
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() > MAX_HEAD {
            return Err(too_large("request head", MAX_HEAD));
        }
        if in_request_line {
            if head.ends_with(b"\r\n") {
                in_request_line = false;
            } else if head.len() > MAX_REQUEST_LINE {
                return Err(too_large("request line", MAX_REQUEST_LINE));
            }
        }
        match stream.read(&mut byte) {
            Ok(0) => return Err(bad("connection closed mid-request".into())),
            Ok(_) => head.push(byte[0]),
            Err(e) => return Err(bad(format!("request read failed: {e}"))),
        }
    }
    let head = String::from_utf8_lossy(&head);
    let mut lines = head.split("\r\n");
    // Tolerate stray whitespace around the request line (some probes pad
    // it); split_whitespace already absorbs repeated interior spaces.
    let request_line = lines.next().unwrap_or("").trim();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("").to_string();
    if method.is_empty() || target.is_empty() {
        return Err(bad(format!("malformed request line {request_line:?}")));
    }
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad(format!("bad content-length {value:?}")))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(HttpResponse::error(
            413,
            "Payload Too Large",
            format!("declared body of {content_length} bytes exceeds {MAX_BODY}"),
        ));
    }
    let mut body = vec![0u8; content_length];
    stream
        .read_exact(&mut body)
        .map_err(|e| bad(format!("body read failed: {e}")))?;
    Ok((method, target, body))
}

/// Split a request target into path and query parameters. No percent-
/// decoding: spec parameters are plain tokens and numbers by design.
fn split_target(target: &str) -> (&str, BTreeMap<String, String>) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut params = BTreeMap::new();
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        match pair.split_once('=') {
            Some((k, v)) => params.insert(k.to_string(), v.to_string()),
            None => params.insert(pair.to_string(), String::new()),
        };
    }
    (path, params)
}

/// Dispatch one parsed request onto the service.
fn route(
    service: &Service,
    spec: Option<&SpecParser>,
    method: &str,
    target: &str,
    body: &[u8],
) -> HttpResponse {
    let (path, params) = split_target(target);
    match (method, path) {
        ("GET", "/healthz") => HttpResponse::ok("text/plain; charset=utf-8", b"ok\n".to_vec()),
        ("GET", "/stats") => HttpResponse::ok(
            "application/json",
            service.stats().render_json().into_bytes(),
        ),
        ("GET", "/metrics") => {
            // The per-daemon service counters are this gateway's own and
            // ride along as extra series; the process-global fleet
            // counters render from the registry's source hook, so every
            // scrape surface shares one definition of them.
            let extra: Vec<(String, u64)> = service
                .stats()
                .fields()
                .iter()
                .map(|(name, value)| (format!("service_{name}"), *value))
                .collect();
            HttpResponse::ok(
                "text/plain; version=0.0.4; charset=utf-8",
                crate::telemetry::telemetry()
                    .render_prometheus(&extra)
                    .into_bytes(),
            )
        }
        ("POST", "/submit") => {
            let manifest = if body.is_empty() {
                match spec {
                    None => {
                        return HttpResponse::error(
                            400,
                            "Bad Request",
                            "empty body and no spec parser configured; POST a wire-encoded \
                             manifest body"
                                .into(),
                        )
                    }
                    Some(parse) => match parse(&params) {
                        Ok(m) => m,
                        Err(msg) => return HttpResponse::error(400, "Bad Request", msg),
                    },
                }
            } else {
                let mut r = Reader::new(body);
                match TaskManifest::decode(&mut r).and_then(|m| r.finish().map(|_| m)) {
                    Ok(m) => m,
                    Err(e) => {
                        return HttpResponse::error(
                            400,
                            "Bad Request",
                            format!("undecodable manifest body: {e}"),
                        )
                    }
                }
            };
            match service.submit(manifest) {
                Ok((job, disposition)) => HttpResponse::ok(
                    "application/json",
                    format!("{{\"job\":{},\"disposition\":\"{disposition}\"}}", job.0).into_bytes(),
                ),
                Err(msg) => HttpResponse::error(400, "Bad Request", msg),
            }
        }
        ("GET", _) if path.starts_with("/jobs/") => {
            let rest = &path["/jobs/".len()..];
            let (id, suffix) = if let Some(id) = rest.strip_suffix("/result") {
                (id, "result")
            } else if let Some(id) = rest.strip_suffix("/trace") {
                (id, "trace")
            } else {
                (rest, "")
            };
            let Ok(id) = id.parse::<u64>() else {
                return HttpResponse::error(400, "Bad Request", format!("bad job id {id:?}"));
            };
            let job = super::JobId(id);
            match suffix {
                "result" => fetch_result(service, job),
                "trace" => match service.trace_json(job) {
                    Some(json) => HttpResponse::ok("application/json", json.into_bytes()),
                    None => HttpResponse::error(404, "Not Found", format!("unknown job {id}")),
                },
                _ => match (service.status(job), service.progress(job)) {
                    (Some(state), Some(p)) => HttpResponse::ok(
                        "application/json",
                        format!(
                            "{{\"id\":{id},\"state\":\"{state}\",\"progress\":{{\"done\":{},\
                             \"total\":{},\"point\":{},\"replication\":{}}}}}",
                            p.done, p.total, p.point, p.replication
                        )
                        .into_bytes(),
                    ),
                    _ => HttpResponse::error(404, "Not Found", format!("unknown job {id}")),
                },
            }
        }
        _ => HttpResponse::error(404, "Not Found", format!("no route {method} {path}")),
    }
}

/// Block until the job is terminal and answer with the raw blob bytes
/// (the exact bytes the binary `Fetch` verb returns, so CI can byte-diff
/// a gateway fetch against a direct run).
fn fetch_result(service: &Service, job: super::JobId) -> HttpResponse {
    match service.wait(job) {
        Ok(Fetched::Result(blob)) => HttpResponse::ok("application/octet-stream", blob.to_vec()),
        Ok(Fetched::Failed(e)) => HttpResponse::error(502, "Bad Gateway", e.to_string()),
        Err(msg) => HttpResponse::error(404, "Not Found", msg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::tests::{decode_mul, MulJob};
    use crate::exec::{Exec, JobRegistry};
    use crate::grid::Segment;
    use crate::service::{ServiceConfig, ServiceHandle};

    fn handle() -> ServiceHandle {
        let mut reg = JobRegistry::new();
        reg.register("test-mul", decode_mul);
        ServiceHandle::start(
            ServiceConfig {
                exec: Exec::in_process(1),
                cache_dir: None,
                ..Default::default()
            },
            Arc::new(reg),
        )
    }

    fn manifest(mix: u64) -> TaskManifest {
        TaskManifest::for_job(
            &MulJob { factor: 3 },
            vec![Segment {
                point: 0,
                base_rep: 0,
                count: 2,
            }],
            &|p, r| mix ^ ((p as u64) << 32) ^ r,
        )
    }

    /// Drive one raw HTTP request against a live gateway; returns
    /// `(status line, body)`.
    fn request(addr: std::net::SocketAddr, head: &str, body: &[u8]) -> (String, Vec<u8>) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "{head}Content-Length: {}\r\n\r\n", body.len()).unwrap();
        s.write_all(body).unwrap();
        s.flush().unwrap();
        let mut raw = Vec::new();
        s.read_to_end(&mut raw).unwrap();
        let split = raw
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .expect("header terminator");
        let head = String::from_utf8_lossy(&raw[..split]).to_string();
        let status = head.lines().next().unwrap_or("").to_string();
        (status, raw[split + 4..].to_vec())
    }

    #[test]
    fn gateway_round_trips_every_route() {
        let handle = handle();
        let service = handle.service();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let svc = service.clone();
        let gateway = std::thread::spawn(move || serve_http(svc, listener, None).unwrap());

        let (status, body) = request(addr, "GET /healthz HTTP/1.1\r\n", &[]);
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, b"ok\n");

        // Submit a wire-encoded manifest body and read the job id back.
        let mut encoded = Vec::new();
        manifest(5).encode_into(&mut encoded);
        let (status, body) = request(addr, "POST /submit HTTP/1.1\r\n", &encoded);
        assert!(status.contains("200"), "{status}");
        let text = String::from_utf8(body).unwrap();
        assert!(text.starts_with("{\"job\":"), "{text}");
        assert!(text.contains("\"disposition\":\"queued\""), "{text}");
        let id: u64 = text["{\"job\":".len()..]
            .split(',')
            .next()
            .unwrap()
            .parse()
            .unwrap();

        // The result route blocks until done and returns the exact blob.
        let (status, blob) = request(addr, &format!("GET /jobs/{id}/result HTTP/1.1\r\n"), &[]);
        assert!(status.contains("200"), "{status}");
        let direct = match service.wait(crate::service::JobId(id)).unwrap() {
            Fetched::Result(b) => b.to_vec(),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(blob, direct, "gateway bytes == binary-protocol bytes");

        // The trace route answers valid Chrome trace JSON for any known
        // job (tracing may be off in this environment — then the event
        // list is simply empty) and 404s unknown ids.
        let (status, body) = request(addr, &format!("GET /jobs/{id}/trace HTTP/1.1\r\n"), &[]);
        assert!(status.contains("200"), "{status}");
        let text = String::from_utf8(body).unwrap();
        assert!(text.contains("\"traceEvents\""), "{text}");
        let (status, _) = request(addr, "GET /jobs/999/trace HTTP/1.1\r\n", &[]);
        assert!(status.contains("404"), "{status}");

        // Status JSON for a finished job pins done == total.
        let (status, body) = request(addr, &format!("GET /jobs/{id} HTTP/1.1\r\n"), &[]);
        assert!(status.contains("200"), "{status}");
        let text = String::from_utf8(body).unwrap();
        assert!(text.contains("\"state\":\"done\""), "{text}");
        assert!(text.contains("\"done\":2,\"total\":2"), "{text}");

        // Stats JSON covers the submission; /metrics carries the bridged
        // service series (the registry itself may be disabled under
        // REPRO_TELEMETRY=off, but extras always render).
        let (status, body) = request(addr, "GET /stats HTTP/1.1\r\n", &[]);
        assert!(status.contains("200"), "{status}");
        let text = String::from_utf8(body).unwrap();
        assert!(text.contains("\"submitted\":1"), "{text}");
        let (status, body) = request(addr, "GET /metrics HTTP/1.1\r\n", &[]);
        assert!(status.contains("200"), "{status}");
        let text = String::from_utf8(body).unwrap();
        assert!(text.contains("service_submitted 1"), "{text}");
        assert!(text.contains("fleet_restarts "), "{text}");

        // Unknowns are typed, not hangs.
        let (status, _) = request(addr, "GET /jobs/999 HTTP/1.1\r\n", &[]);
        assert!(status.contains("404"), "{status}");
        let (status, _) = request(addr, "GET /nope HTTP/1.1\r\n", &[]);
        assert!(status.contains("404"), "{status}");
        let (status, _) = request(addr, "POST /submit HTTP/1.1\r\n", b"garbage");
        assert!(status.contains("400"), "{status}");

        // Stop + poke unblocks the accept loop.
        service.stop();
        let _ = TcpStream::connect(addr);
        gateway.join().unwrap();
        handle.stop();
    }

    #[test]
    fn spec_parser_builds_manifests_from_query_params() {
        let handle = handle();
        let service = handle.service();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let parser: Arc<SpecParser> = Arc::new(|params: &BTreeMap<String, String>| {
            match params.get("spec").map(String::as_str) {
                Some("mul") => {
                    let seed: u64 = params
                        .get("seed")
                        .and_then(|s| s.parse().ok())
                        .ok_or("seed must be an integer")?;
                    Ok(manifest(seed))
                }
                other => Err(format!("unknown spec {other:?}")),
            }
        });
        let svc = service.clone();
        let gateway = std::thread::spawn(move || serve_http(svc, listener, Some(parser)).unwrap());

        let (status, body) = request(addr, "POST /submit?spec=mul&seed=9 HTTP/1.1\r\n", &[]);
        assert!(status.contains("200"), "{status}");
        assert!(String::from_utf8(body).unwrap().contains("\"job\":"));
        let (status, body) = request(addr, "POST /submit?spec=wat HTTP/1.1\r\n", &[]);
        assert!(status.contains("400"), "{status}");
        assert!(String::from_utf8(body).unwrap().contains("unknown spec"));

        service.stop();
        let _ = TcpStream::connect(addr);
        gateway.join().unwrap();
        handle.stop();
    }

    /// Fire raw bytes at the gateway and return the response status line
    /// (for requests the well-formed `request` helper cannot express).
    fn raw_status(addr: std::net::SocketAddr, bytes: &[u8]) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        // Ignore write errors: the gateway may answer (and close) before
        // an oversized request finishes sending.
        let _ = s.write_all(bytes);
        let _ = s.flush();
        let _ = s.shutdown(std::net::Shutdown::Write);
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        String::from_utf8_lossy(&out)
            .lines()
            .next()
            .unwrap_or("")
            .to_string()
    }

    #[test]
    fn malformed_and_oversized_requests_get_typed_statuses() {
        let handle = handle();
        let service = handle.service();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let svc = service.clone();
        let gateway = std::thread::spawn(move || serve_http(svc, listener, None).unwrap());

        // Stray whitespace around the request line is tolerated.
        let status = raw_status(addr, b"  GET /healthz HTTP/1.1  \r\n\r\n");
        assert!(status.contains("200"), "{status}");

        // An empty request line is a plain 400.
        let status = raw_status(addr, b"\r\n\r\n");
        assert!(status.contains("400"), "{status}");

        // A request line past the cap draws 431 without waiting for the
        // head terminator.
        let mut long_line = b"GET /".to_vec();
        long_line.extend(std::iter::repeat_n(b'a', MAX_REQUEST_LINE + 16));
        let status = raw_status(addr, &long_line);
        assert!(status.contains("431"), "{status}");

        // So does a header section past the whole-head cap.
        let mut fat_head = b"GET /healthz HTTP/1.1\r\nX-Pad: ".to_vec();
        fat_head.extend(std::iter::repeat_n(b'b', MAX_HEAD + 16));
        let status = raw_status(addr, &fat_head);
        assert!(status.contains("431"), "{status}");

        // A declared body over the cap draws 413 before any body read.
        let status = raw_status(
            addr,
            format!(
                "POST /submit HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY + 1
            )
            .as_bytes(),
        );
        assert!(status.contains("413"), "{status}");

        // And a garbled content-length stays a 400.
        let status = raw_status(
            addr,
            b"POST /submit HTTP/1.1\r\nContent-Length: wat\r\n\r\n",
        );
        assert!(status.contains("400"), "{status}");

        service.stop();
        let _ = TcpStream::connect(addr);
        gateway.join().unwrap();
        handle.stop();
    }

    #[test]
    fn target_splitting_and_bad_requests() {
        let (path, params) = split_target("/submit?spec=mm1&seed=7&flag");
        assert_eq!(path, "/submit");
        assert_eq!(params.get("spec").unwrap(), "mm1");
        assert_eq!(params.get("seed").unwrap(), "7");
        assert_eq!(params.get("flag").unwrap(), "");
        let (path, params) = split_target("/healthz");
        assert_eq!(path, "/healthz");
        assert!(params.is_empty());
    }
}
