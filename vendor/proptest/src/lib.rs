//! Offline stand-in for `proptest`, implementing exactly the surface this
//! workspace uses: the `proptest!` macro with `arg in strategy` bindings,
//! range strategies over integers and floats, tuple strategies,
//! `Strategy::prop_map`, `collection::vec`, `option::of`,
//! `ProptestConfig::with_cases`, and the `prop_assert*` macros.
//!
//! Unlike the real proptest there is no shrinking: cases are generated from
//! a deterministic per-test RNG (seeded from the test name), so failures
//! reproduce exactly across runs and machines.

use std::fmt;
use std::ops::Range;

/// Error carried out of a failing property body by the `prop_assert*`
/// macros.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Subset of proptest's run configuration: just the case count.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator backing the harness (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (the test name), so every property has
    /// its own reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name gives a stable, implementation-independent seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. Ranges, tuples, and `collection::vec` implement
/// this.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a pure function
    /// (`Strategy::prop_map` in real proptest).
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                // Widen to i128 so spans crossing zero can't overflow.
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

signed_int_strategy!(i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($s:ident $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(S0 0, S1 1);
tuple_strategy!(S0 0, S1 1, S2 2);
tuple_strategy!(S0 0, S1 1, S2 2, S3 3);
tuple_strategy!(S0 0, S1 1, S2 2, S3 3, S4 4);
tuple_strategy!(S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
tuple_strategy!(S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6);
tuple_strategy!(S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7);
tuple_strategy!(S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7, S8 8);
tuple_strategy!(S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7, S8 8, S9 9);
tuple_strategy!(S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7, S8 8, S9 9, S10 10);
tuple_strategy!(S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7, S8 8, S9 9, S10 10, S11 11);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit() as f32
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Accepted vector-length specifications: a half-open range or an exact
    /// length.
    pub struct SizeRange(Range<usize>);

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    /// Strategy producing a `Vec` of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, len)`: a vector whose length is drawn uniformly from a
    /// range, or fixed when `len` is a single `usize`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::sample(&self.size.0, rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Optional-value strategies (`proptest::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `of(element)`: `Some` three times out of four (biased toward
    /// `Some`, as in real proptest), `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Declare property tests: each `arg in strategy` binding is sampled per
/// case, and the body runs `config.cases` times with a per-test
/// deterministic RNG.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            // `#[test]` is captured (and re-emitted) as one of the metas.
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("property {} failed at case {}: {}", stringify!($name), case, e);
                    }
                }
            }
        )*
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(x in 1u64..10, y in 0.5f64..2.0) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&y), "y = {}", y);
        }

        #[test]
        fn vec_lengths_in_bounds(v in crate::collection::vec(0u8..3, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&b| b < 3));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = super::TestRng::deterministic("abc");
        let mut b = super::TestRng::deterministic("abc");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
