//! The immutable net structure produced by [`crate::builder::NetBuilder`].
//!
//! A [`Net`] is validated once at build time and then shared (immutably,
//! cheaply, across threads) by any number of simulator instances — the
//! replication harness in [`crate::replicate`] relies on `Net: Sync`.

use crate::ids::{PlaceId, TransitionId};
use crate::marking::Marking;
use crate::token::Color;
use crate::transition::Transition;
use std::sync::Arc;

/// A place definition: name + initial tokens.
#[derive(Debug, Clone)]
pub struct Place {
    /// Human-readable name (unique within the net).
    pub name: String,
    /// Initial token colors (FIFO order).
    pub initial: Vec<Color>,
}

/// An immutable, validated Petri net.
#[derive(Debug, Clone)]
pub struct Net {
    /// Net name (for diagnostics and DOT export).
    pub name: String,
    pub(crate) places: Vec<Place>,
    pub(crate) transitions: Vec<Transition>,
    /// `affected_by[p]` = transitions whose enabling status can change when
    /// the token count of place `p` changes (inputs, inhibitors, or guard
    /// references). Built once; drives incremental enabling re-checks.
    pub(crate) affected_by: Vec<Vec<TransitionId>>,
    /// Color-flow result: `colored[p]` iff place `p` can ever hold a
    /// non-[`Color::NONE`] token. Count-only places get the dense O(1)
    /// marking layout (see [`crate::marking`]).
    pub(crate) colored: Arc<[bool]>,
}

impl Net {
    /// Number of places.
    #[inline]
    pub fn num_places(&self) -> usize {
        self.places.len()
    }

    /// Number of transitions.
    #[inline]
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// Place metadata.
    #[inline]
    pub fn place(&self, p: PlaceId) -> &Place {
        &self.places[p.index()]
    }

    /// Transition metadata.
    #[inline]
    pub fn transition(&self, t: TransitionId) -> &Transition {
        &self.transitions[t.index()]
    }

    /// Iterate over all place ids.
    pub fn place_ids(&self) -> impl Iterator<Item = PlaceId> {
        (0..self.places.len()).map(PlaceId::from_index)
    }

    /// Iterate over all transition ids.
    pub fn transition_ids(&self) -> impl Iterator<Item = TransitionId> {
        (0..self.transitions.len()).map(TransitionId::from_index)
    }

    /// Look up a place by name.
    pub fn place_by_name(&self, name: &str) -> Option<PlaceId> {
        self.places
            .iter()
            .position(|p| p.name == name)
            .map(PlaceId::from_index)
    }

    /// Look up a transition by name.
    pub fn transition_by_name(&self, name: &str) -> Option<TransitionId> {
        self.transitions
            .iter()
            .position(|t| t.name == name)
            .map(TransitionId::from_index)
    }

    /// The initial marking, laid out per the net's color-flow analysis:
    /// places that can never hold colors are stored count-only.
    pub fn initial_marking(&self) -> Marking {
        let mut m = Marking::empty_masked(Arc::clone(&self.colored));
        for (i, p) in self.places.iter().enumerate() {
            let pid = PlaceId::from_index(i);
            for &c in &p.initial {
                m.deposit(pid, c);
            }
        }
        m
    }

    /// Can place `p` ever hold a non-[`Color::NONE`] token? (Result of the
    /// build-time color-flow fixpoint.)
    #[inline]
    pub fn place_may_hold_colors(&self, p: PlaceId) -> bool {
        self.colored[p.index()]
    }

    /// Transitions whose enabling may be affected by a token-count change in
    /// place `p`.
    #[inline]
    pub(crate) fn affected_by(&self, p: PlaceId) -> &[TransitionId] {
        &self.affected_by[p.index()]
    }

    /// All transitions (slice access for the engine's hot loop).
    #[inline]
    pub(crate) fn transitions(&self) -> &[Transition] {
        &self.transitions
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::NetBuilder;
    use crate::timing::Timing;

    #[test]
    fn lookups_by_name() {
        let mut b = NetBuilder::new("lookup");
        let p = b.place("Wait").tokens(1).build();
        let q = b.place("Run").build();
        let t = b
            .transition("go", Timing::immediate())
            .input(p, 1)
            .output(q, 1)
            .build();
        let net = b.build().unwrap();
        assert_eq!(net.place_by_name("Wait"), Some(p));
        assert_eq!(net.place_by_name("Run"), Some(q));
        assert_eq!(net.place_by_name("Nope"), None);
        assert_eq!(net.transition_by_name("go"), Some(t));
        assert_eq!(net.transition_by_name("stop"), None);
        assert_eq!(net.num_places(), 2);
        assert_eq!(net.num_transitions(), 1);
    }

    #[test]
    fn initial_marking_reflects_builder() {
        let mut b = NetBuilder::new("init");
        let p = b.place("a").tokens(2).build();
        let q = b.place("b").build();
        b.transition("t", Timing::immediate()).input(p, 1).build();
        let net = b.build().unwrap();
        let m = net.initial_marking();
        assert_eq!(m.count(p), 2);
        assert_eq!(m.count(q), 0);
    }

    #[test]
    fn affected_by_covers_inputs_inhibitors_and_guards() {
        use crate::expr::Expr;
        let mut b = NetBuilder::new("adj");
        let a = b.place("a").tokens(1).build();
        let g = b.place("g").build();
        let inh = b.place("inh").build();
        let out = b.place("out").build();
        let t = b
            .transition("t", Timing::immediate())
            .input(a, 1)
            .output(out, 1)
            .inhibitor(inh, 1)
            .guard(Expr::count(g).eq_c(0))
            .build();
        let net = b.build().unwrap();
        for p in [a, g, inh] {
            assert!(
                net.affected_by(p).contains(&t),
                "transition should be indexed under {p:?}"
            );
        }
        // Output-only places also wake the transition's re-check; harmless
        // and required for self-loop nets.
        assert!(net.affected_by(out).contains(&t));
    }
}
