//! Seeded sampling for the DES simulators (independent of petri-core's RNG
//! so the two substrates share no code paths — they are meant to
//! cross-validate each other).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Reproducible random stream for DES runs.
#[derive(Debug, Clone)]
pub struct DesRng {
    inner: SmallRng,
}

impl DesRng {
    /// Create from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        DesRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Exponential with the given rate (inverse transform).
    #[inline]
    pub fn exp(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0);
        -(1.0 - self.unit()).ln() / rate
    }

    /// Gaussian via Box–Muller.
    pub fn gaussian(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = (1.0 - self.unit()).max(f64::MIN_POSITIVE);
        let u2 = self.unit();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible() {
        let mut a = DesRng::seed_from_u64(9);
        let mut b = DesRng::seed_from_u64(9);
        for _ in 0..50 {
            assert_eq!(a.unit(), b.unit());
        }
    }

    #[test]
    fn exp_mean() {
        let mut r = DesRng::seed_from_u64(3);
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| r.exp(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.2).abs() < 0.005, "mean={mean}");
    }

    #[test]
    fn gaussian_mean() {
        let mut r = DesRng::seed_from_u64(4);
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| r.gaussian(3.0, 1.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean={mean}");
    }
}
