//! The experiment service: a persistent daemon with a bounded job queue,
//! a scheduler over the executor backends, and a two-tier
//! content-addressed result cache.
//!
//! Every result in this workspace is a pure function of its
//! [`TaskManifest`](crate::exec::TaskManifest) — byte-identical across
//! threads, shards and hosts (PRs 1–4). This module turns that determinism
//! into a serving layer:
//!
//! * [`Service`] — the daemon core: submissions are keyed by a canonical
//!   SHA-256 of the wire-encoded manifest ([`cache::CacheKey`]); repeat
//!   requests are answered from an in-memory LRU over a disk store (a hit
//!   is byte-identical to a fresh run *by construction*); identical
//!   in-flight requests **coalesce onto one execution** (single-flight);
//!   everything else goes through a bounded FIFO queue to dispatcher
//!   threads that run the job on any configured
//!   [`ExecBackend`](crate::exec::ExecBackend) — in-process, sharded
//!   subprocesses, or remote TCP hosts;
//! * [`protocol`] — the versioned submit/status/fetch/cancel/stats codec
//!   clients speak over a [`FrameTransport`](crate::remote::FrameTransport)
//!   (responses in request order, so clients can pipeline);
//! * [`client`] — [`client::ServiceClient`] (the verb-level API) and
//!   [`client::ServiceBackend`], an `ExecBackend` that routes a dispatch
//!   through a daemon — which is how every existing experiment driver runs
//!   via the service unchanged (`repro --service <addr>`);
//! * [`serve`] / [`serve_on`] — the TCP front (`repro serve --listen
//!   <addr>`): one connection handler thread per client, shut down by an
//!   explicit protocol verb;
//! * [`http`] — a thin HTTP/1.1 gateway (`repro serve --http <addr>`)
//!   translating `GET /healthz`, `/stats`, `/jobs/<id>`, `/metrics`
//!   (Prometheus text) and `POST /submit` onto the same service core,
//!   for `curl` and monitoring scrapes.

pub mod cache;
pub mod client;
pub mod http;
pub mod protocol;
pub mod queue;

mod scheduler;

pub use client::{ServiceBackend, ServiceClient, ServiceError};
pub use http::{serve_http, SpecParser};
pub use protocol::{Disposition, JobId, JobProgress, JobState, ServiceStats};

use crate::exec::{Exec, ExecBackend, ExecError, JobRegistry, TaskManifest};
use crate::remote::transport::{FrameTransport, TcpTransport};
use crate::wire::WireError;
use cache::{CacheKey, DiskStore, MemCache};
use protocol::{ServiceRequest, ServiceResponse};
use queue::{ClaimedJob, JobTable};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Configuration of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The backend every job is dispatched onto (threads / shards /
    /// hosts). Must not itself be a service backend.
    pub exec: Exec,
    /// Bound on *queued* (not running) jobs; submissions beyond it are
    /// rejected so a flood degrades loudly instead of accumulating
    /// unbounded state.
    pub queue_capacity: usize,
    /// Dispatcher threads (concurrent jobs). Within-job parallelism comes
    /// from `exec`.
    pub dispatchers: usize,
    /// In-memory LRU capacity, in cached results (0 disables the tier).
    pub mem_cache_entries: usize,
    /// Disk cache directory (`None` disables the persistent tier). The
    /// daemon defaults to `results/cache/`.
    pub cache_dir: Option<PathBuf>,
    /// Byte budget for the disk tier: after every write, least-recently-
    /// used entries are evicted until total entry bytes fit. `None`
    /// (the default) leaves the tier unbounded.
    pub cache_budget: Option<u64>,
    /// Terminal job records kept for late `status`/`fetch` callers.
    pub retain_terminal: usize,
    /// Recent terminal records that keep their result blob pinned in
    /// memory (beyond the cache tiers). Older `Done` jobs drop the blob
    /// and late fetches re-resolve it through the cache by key — so
    /// daemon memory is bounded by this window plus the LRU, not by
    /// every result ever served.
    pub retain_results: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            exec: Exec::default(),
            queue_capacity: 256,
            dispatchers: 1,
            mem_cache_entries: 64,
            cache_dir: Some(PathBuf::from("results/cache")),
            cache_budget: None,
            retain_terminal: 4096,
            retain_results: 64,
        }
    }
}

#[derive(Debug, Default)]
struct StatCounters {
    submitted: AtomicU64,
    hits_mem: AtomicU64,
    hits_disk: AtomicU64,
    coalesced: AtomicU64,
    executed: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    cancelled: AtomicU64,
}

/// What a fetch resolved to once the job turned terminal.
#[derive(Debug, Clone)]
pub enum Fetched {
    /// The encoded result blob (see [`cache::decode_blob`]).
    Result(Arc<Vec<u8>>),
    /// The job failed (or was cancelled); the error round-trips to the
    /// client losslessly.
    Failed(ExecError),
}

/// The daemon core. Shared across connection-handler and dispatcher
/// threads behind an `Arc`; all mutable state sits behind one mutex, with
/// two condvars (new work for dispatchers, state transitions for fetch
/// waiters).
pub struct Service {
    cfg: ServiceConfig,
    registry: Arc<JobRegistry>,
    table: Mutex<JobTable>,
    /// Notified when work is enqueued or the service stops.
    work: Condvar,
    /// Notified on every terminal job transition.
    job_done: Condvar,
    mem: Mutex<MemCache>,
    disk: Option<DiskStore>,
    stats: StatCounters,
    /// The process-global fleet counters at construction. [`Service::stats`]
    /// reports the delta past this baseline, so a service created after
    /// earlier fleet activity in the same process (benches spinning up
    /// several daemons, unit tests) reports only its own degradation.
    fleet_baseline: crate::fleet::FleetSnapshot,
    stopping: AtomicBool,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("exec", &self.cfg.exec.label())
            .field("queue_capacity", &self.cfg.queue_capacity)
            .field("cache_dir", &self.cfg.cache_dir)
            .finish()
    }
}

impl Service {
    /// Build a service (no dispatcher threads yet — see
    /// [`ServiceHandle::start`] for the running daemon, or drive
    /// [`Service::step`] manually in tests).
    pub fn new(cfg: ServiceConfig, registry: Arc<JobRegistry>) -> Self {
        assert!(
            !cfg.exec.is_service(),
            "a service cannot dispatch onto another service (backend loop)"
        );
        let disk = cfg
            .cache_dir
            .as_ref()
            .map(|dir| DiskStore::new(dir).with_budget(cfg.cache_budget));
        Service {
            table: Mutex::new(JobTable::new(
                cfg.queue_capacity,
                cfg.retain_terminal,
                cfg.retain_results,
            )),
            work: Condvar::new(),
            job_done: Condvar::new(),
            mem: Mutex::new(MemCache::new(cfg.mem_cache_entries)),
            disk,
            stats: StatCounters::default(),
            fleet_baseline: crate::fleet::fleet_stats().snapshot(),
            stopping: AtomicBool::new(false),
            registry,
            cfg,
        }
    }

    /// The job registry submissions are validated (and in-process
    /// dispatches decoded) against.
    pub fn registry(&self) -> &JobRegistry {
        &self.registry
    }

    /// The backend one job dispatch runs on.
    pub(crate) fn backend(&self) -> Box<dyn ExecBackend> {
        self.cfg.exec.runner().backend_impl()
    }

    /// Submit a manifest. Returns the job to poll/fetch plus where its
    /// answer will come from; `Err` is a request-level rejection (invalid
    /// manifest, unknown job kind, queue full).
    pub fn submit(&self, manifest: TaskManifest) -> Result<(JobId, Disposition), String> {
        let tr = crate::trace::tracer();
        if !tr.is_enabled() {
            return self.submit_inner(manifest);
        }
        let trace = crate::trace::trace_id_of(&manifest);
        let started = tr.start();
        let out = self.submit_inner(manifest);
        tr.record(
            trace,
            crate::trace::name::SUBMIT,
            crate::trace::cat::SERVICE,
            0,
            started,
        );
        out
    }

    fn submit_inner(&self, manifest: TaskManifest) -> Result<(JobId, Disposition), String> {
        if self.is_stopping() {
            return Err("service is stopping; submission refused".into());
        }
        manifest
            .validate()
            .map_err(|e| format!("invalid manifest: {e}"))?;
        // Validate kind + payload up front: a submission the workers could
        // never decode must fail at the door, not in a dispatcher.
        self.registry
            .decode(&manifest.kind, &manifest.payload)
            .map_err(|e| format!("unserveable submission: {e}"))?;
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        let key = CacheKey::of_manifest(&manifest);

        // Optimistic cache probes, each under only its own lock (the
        // guards are dropped before the table is touched — the global
        // lock order is table → mem, never the reverse).
        let tele = crate::telemetry::telemetry();
        let probed = { self.mem.lock().expect("mem cache lock").get(&key) };
        if let Some(blob) = probed {
            self.stats.hits_mem.fetch_add(1, Ordering::Relaxed);
            tele.counter("service_cache_hit_mem").inc();
            let id = self.table.lock().expect("table lock").admit_hit(key, blob);
            return Ok((id, Disposition::HitMem));
        }
        if let Some(blob) = self.disk.as_ref().and_then(|d| d.get(&key)) {
            self.stats.hits_disk.fetch_add(1, Ordering::Relaxed);
            tele.counter("service_cache_hit_disk").inc();
            let blob = Arc::new(blob);
            self.mem
                .lock()
                .expect("mem cache lock")
                .put(key, blob.clone());
            let id = self.table.lock().expect("table lock").admit_hit(key, blob);
            return Ok((id, Disposition::HitDisk));
        }
        tele.counter("service_cache_miss").inc();

        // Slow path under the table lock. An identical job may have
        // *published* between the probes above and here (its cache fills
        // happen-before its table completion), so re-check single-flight
        // and the mem tier atomically with the admit — otherwise that
        // window would silently re-execute the job.
        let mut table = self.table.lock().expect("table lock");
        if let Some(live) = table.live(&key) {
            self.stats.coalesced.fetch_add(1, Ordering::Relaxed);
            return Ok((live, Disposition::Coalesced));
        }
        let recheck = { self.mem.lock().expect("mem cache lock").get(&key) };
        if let Some(blob) = recheck {
            self.stats.hits_mem.fetch_add(1, Ordering::Relaxed);
            let id = table.admit_hit(key, blob);
            return Ok((id, Disposition::HitMem));
        }
        match table.admit(key, manifest) {
            Ok((id, Disposition::Queued)) => {
                tele.gauge("service_queue_depth")
                    .set(table.queued_len() as i64);
                drop(table);
                self.work.notify_one();
                Ok((id, Disposition::Queued))
            }
            Ok((id, disposition)) => {
                debug_assert_eq!(disposition, Disposition::Coalesced);
                self.stats.coalesced.fetch_add(1, Ordering::Relaxed);
                Ok((id, disposition))
            }
            Err(rejected) => {
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                Err(rejected.to_string())
            }
        }
    }

    /// A job's current state, if its record is still retained.
    pub fn status(&self, job: JobId) -> Option<JobState> {
        self.table
            .lock()
            .expect("table lock")
            .get(job)
            .map(|r| r.state)
    }

    /// A job's live progress counters, if its record is still retained.
    /// `total == 0` means no execution ever started (cache hits, or a
    /// queued job no dispatcher has claimed yet).
    pub fn progress(&self, job: JobId) -> Option<JobProgress> {
        self.table
            .lock()
            .expect("table lock")
            .get(job)
            .map(|r| r.progress.snapshot())
    }

    /// Render a job's collected spans as Chrome trace-event JSON (the
    /// trace verb and the gateway's `GET /jobs/<id>/trace`). `None` means
    /// the job id is unknown; a job served with tracing disabled (or
    /// whose spans were evicted from the bounded ring) yields valid JSON
    /// with fewer — possibly zero — events, never an error.
    pub fn trace_json(&self, job: JobId) -> Option<String> {
        let key = self
            .table
            .lock()
            .expect("table lock")
            .get(job)
            .map(|r| r.key)?;
        let trace = key.trace_id();
        let spans = crate::trace::tracer().spans_for(trace);
        Some(crate::trace::render_chrome_trace(trace, &spans))
    }

    /// Block until `job` is terminal; `Err` means the id is unknown (never
    /// submitted, or evicted from terminal retention).
    ///
    /// If the service stops while the job is still queued, the wait ends
    /// with a typed failure instead of blocking forever — dispatchers
    /// exit without claiming it (running jobs still finish and answer
    /// normally).
    pub fn wait(&self, job: JobId) -> Result<Fetched, String> {
        loop {
            if let Some(outcome) = self.wait_for(job, std::time::Duration::from_secs(3600))? {
                return Ok(outcome);
            }
        }
    }

    /// [`Service::wait`] with a bound: gives up after `timeout` with
    /// `Ok(None)` so callers can emit keep-alives (the TCP front sends a
    /// heartbeat frame per expiry, letting clients bound their read
    /// timeouts without mistaking a long job for a dead daemon).
    pub fn wait_for(
        &self,
        job: JobId,
        timeout: std::time::Duration,
    ) -> Result<Option<Fetched>, String> {
        let deadline = std::time::Instant::now() + timeout;
        let (state, key, outcome) = {
            let mut table = self.table.lock().expect("table lock");
            loop {
                let Some(rec) = table.get(job) else {
                    return Err(format!("unknown {job}"));
                };
                if rec.state.is_terminal() {
                    let resolved = match (&rec.result, &rec.error) {
                        (Some(blob), _) => Some(Fetched::Result(blob.clone())),
                        (None, Some(e)) => Some(Fetched::Failed(e.clone())),
                        // An aged Done record dropped its pinned blob;
                        // resolve through the cache tiers below, outside
                        // the table lock.
                        (None, None) => None,
                    };
                    break (rec.state, rec.key, resolved);
                }
                if rec.state == JobState::Queued && self.is_stopping() {
                    return Ok(Some(Fetched::Failed(ExecError::Protocol(format!(
                        "{job} abandoned: service stopped before it was scheduled"
                    )))));
                }
                let now = std::time::Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Ok(None);
                };
                let (guard, _timed_out) = self
                    .job_done
                    .wait_timeout(table, remaining)
                    .expect("table lock");
                table = guard;
            }
        };
        if let Some(outcome) = outcome {
            return Ok(Some(outcome));
        }
        debug_assert_eq!(state, JobState::Done);
        Ok(Some(match self.lookup_cached(&key) {
            Some(blob) => Fetched::Result(blob),
            None => Fetched::Failed(ExecError::Protocol(format!(
                "{job} finished, but its result aged out of retention and the \
                 cache no longer holds it; resubmit the manifest"
            ))),
        }))
    }

    /// Resolve a blob by key through the cache tiers (memory first, then
    /// disk with promotion). Never called with the table lock held — the
    /// submit path nests mem → table, so table → mem here would invert
    /// the lock order.
    fn lookup_cached(&self, key: &CacheKey) -> Option<Arc<Vec<u8>>> {
        if let Some(blob) = self.mem.lock().expect("mem cache lock").get(key) {
            return Some(blob);
        }
        let blob = Arc::new(self.disk.as_ref()?.get(key)?);
        self.mem
            .lock()
            .expect("mem cache lock")
            .put(*key, blob.clone());
        Some(blob)
    }

    /// Cancel a queued job; `None` means the id is unknown. A job other
    /// submissions coalesced onto, a running job, and terminal jobs are
    /// all refused with the reason (see [`queue::CancelOutcome`]).
    pub fn cancel(&self, job: JobId) -> Option<queue::CancelOutcome> {
        let outcome = self.table.lock().expect("table lock").cancel(job)?;
        if outcome == queue::CancelOutcome::Cancelled {
            self.stats.cancelled.fetch_add(1, Ordering::Relaxed);
            self.job_done.notify_all();
        }
        Some(outcome)
    }

    /// Snapshot the daemon counters. The fleet-degradation counters come
    /// from the process-global fleet (restarts, quarantines, in-process
    /// fallbacks across every backend this daemon dispatched onto),
    /// reported relative to the service's construction-time baseline so
    /// earlier fleet activity in the same process is not attributed to
    /// this daemon; the cache-hygiene counters from the disk tier.
    pub fn stats(&self) -> ServiceStats {
        let fleet = crate::fleet::fleet_stats()
            .snapshot()
            .delta_since(&self.fleet_baseline);
        ServiceStats {
            submitted: self.stats.submitted.load(Ordering::Relaxed),
            hits_mem: self.stats.hits_mem.load(Ordering::Relaxed),
            hits_disk: self.stats.hits_disk.load(Ordering::Relaxed),
            coalesced: self.stats.coalesced.load(Ordering::Relaxed),
            executed: self.stats.executed.load(Ordering::Relaxed),
            failed: self.stats.failed.load(Ordering::Relaxed),
            rejected: self.stats.rejected.load(Ordering::Relaxed),
            cancelled: self.stats.cancelled.load(Ordering::Relaxed),
            restarts: fleet.restarts,
            quarantined: fleet.quarantined,
            fallbacks: fleet.fallbacks,
            cache_evicted: self.disk.as_ref().map_or(0, DiskStore::evicted),
            cache_corrupt: self.disk.as_ref().map_or(0, DiskStore::corrupt_deleted),
        }
    }

    /// Ask dispatchers (and [`ServiceHandle`] joins) to wind down. New
    /// submissions are refused, queued-job fetch waiters are woken with a
    /// typed failure, and in-flight executions finish normally.
    pub fn stop(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        self.work.notify_all();
        self.job_done.notify_all();
    }

    /// Whether [`Service::stop`] has been called.
    pub fn is_stopping(&self) -> bool {
        self.stopping.load(Ordering::SeqCst)
    }

    /// Claim the next queued job, blocking until work arrives or the
    /// service stops (`None`).
    pub(super) fn next_claim(&self) -> Option<ClaimedJob> {
        let mut table = self.table.lock().expect("table lock");
        loop {
            if self.is_stopping() {
                return None;
            }
            if let Some(claimed) = table.claim() {
                crate::telemetry::telemetry()
                    .gauge("service_queue_depth")
                    .set(table.queued_len() as i64);
                return Some(claimed);
            }
            table = self.work.wait(table).expect("table lock");
        }
    }

    /// Execute at most one queued job synchronously (the single-step
    /// variant of a dispatcher thread, for tests and embedding). Returns
    /// whether a job was run.
    pub fn step(&self) -> bool {
        let claimed = { self.table.lock().expect("table lock").claim() };
        match claimed {
            Some(c) => {
                scheduler::execute(self, c);
                true
            }
            None => false,
        }
    }

    /// Publish a finished job: store the blob in both cache tiers, mark
    /// `Done`, wake fetch waiters. (A failed disk write is logged and
    /// ignored — caching is an optimization, never a correctness gate.)
    pub(crate) fn publish_done(&self, job: JobId, key: CacheKey, blob: Arc<Vec<u8>>) {
        self.stats.executed.fetch_add(1, Ordering::Relaxed);
        if let Some(disk) = &self.disk {
            if let Err(e) = disk.put(&key, &blob) {
                eprintln!("[service] cache write for {job} failed: {e}");
            }
        }
        self.mem
            .lock()
            .expect("mem cache lock")
            .put(key, blob.clone());
        self.table.lock().expect("table lock").complete(job, blob);
        self.job_done.notify_all();
    }

    /// Publish a failed job (failures are deliberately *not* cached: a
    /// transient worker death must not poison the key forever).
    pub(crate) fn publish_failed(&self, job: JobId, error: ExecError) {
        self.stats.executed.fetch_add(1, Ordering::Relaxed);
        self.stats.failed.fetch_add(1, Ordering::Relaxed);
        self.table.lock().expect("table lock").fail(job, error);
        self.job_done.notify_all();
    }
}

/// A running daemon: the service plus its dispatcher threads.
pub struct ServiceHandle {
    service: Arc<Service>,
    dispatchers: Vec<std::thread::JoinHandle<()>>,
}

impl ServiceHandle {
    /// Start `cfg.dispatchers` dispatcher threads over a fresh service.
    pub fn start(cfg: ServiceConfig, registry: Arc<JobRegistry>) -> Self {
        let dispatchers = cfg.dispatchers.max(1);
        let service = Arc::new(Service::new(cfg, registry));
        let threads = (0..dispatchers)
            .map(|_| {
                let svc = service.clone();
                std::thread::spawn(move || scheduler::dispatcher_loop(&svc))
            })
            .collect();
        ServiceHandle {
            service,
            dispatchers: threads,
        }
    }

    /// The shared service core.
    pub fn service(&self) -> Arc<Service> {
        self.service.clone()
    }

    /// Stop the dispatchers and join them. In-flight jobs finish; queued
    /// jobs stay queued (and are lost with the process).
    pub fn stop(mut self) {
        self.service.stop();
        for t in self.dispatchers.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        self.service.stop();
        for t in self.dispatchers.drain(..) {
            let _ = t.join();
        }
    }
}

// --- the TCP front -------------------------------------------------------

/// Serve the protocol on `addr`, announcing the bound address on stdout
/// as `serving <addr>` (binding port 0 is how harnesses get an ephemeral
/// port). Returns after a client sends the shutdown verb. The caller owns
/// daemon teardown (typically [`ServiceHandle::stop`]).
pub fn serve(service: Arc<Service>, addr: &str) -> Result<(), WireError> {
    let listener = std::net::TcpListener::bind(addr)
        .map_err(|e| WireError::new(format!("bind {addr}: {e}")))?;
    let local = listener
        .local_addr()
        .map_err(|e| WireError::new(format!("local_addr: {e}")))?;
    println!("serving {local}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    serve_on(service, listener)
}

/// Concurrent client connections the TCP front accepts; over the cap,
/// new connections are turned away with an in-band error frame instead of
/// growing one OS thread each without bound.
pub const MAX_CONNECTIONS: usize = 1024;

/// How often a blocking fetch emits a keep-alive heartbeat frame, and the
/// floor any client read timeout must comfortably exceed.
pub(crate) const FETCH_KEEPALIVE: std::time::Duration = std::time::Duration::from_millis(500);

/// How long daemon shutdown waits for in-flight request handlers (fetch
/// waiters on running jobs, responses mid-write) to drain before exiting
/// anyway.
const SHUTDOWN_DRAIN: std::time::Duration = std::time::Duration::from_secs(60);

/// [`serve`] over a pre-bound listener (no announcement line).
///
/// Each accepted connection gets its own handler thread (capped at
/// [`MAX_CONNECTIONS`]) running the request loop; responses go back **in
/// request order**, so pipelined clients work and a blocking fetch on one
/// connection never stalls another client. Returns once a connection
/// delivers the shutdown verb — after stopping the service (queued-job
/// waiters get a typed failure) and draining in-flight handlers, so
/// running jobs still answer their waiters before the process exits.
pub fn serve_on(service: Arc<Service>, listener: std::net::TcpListener) -> Result<(), WireError> {
    use std::sync::atomic::AtomicUsize;
    let local = listener
        .local_addr()
        .map_err(|e| WireError::new(format!("local_addr: {e}")))?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let connections = Arc::new(AtomicUsize::new(0));
    // Handlers busy processing a request (as opposed to parked in recv on
    // an idle connection); shutdown drains this to zero before returning.
    let busy = Arc::new((Mutex::new(0usize), Condvar::new()));
    loop {
        let (stream, peer) = match listener.accept() {
            Ok(conn) => conn,
            Err(e) => {
                eprintln!("[service {local}] accept failed: {e}");
                std::thread::sleep(std::time::Duration::from_millis(100));
                continue;
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            drain_busy(&busy, local);
            return Ok(());
        }
        if connections.load(Ordering::SeqCst) >= MAX_CONNECTIONS {
            // Reject loudly and cheaply on the accept thread; never a
            // thread per flood connection.
            let mut t = TcpTransport::new(stream);
            let _ = t
                .send(
                    &ServiceResponse::Err(format!(
                        "connection limit reached ({MAX_CONNECTIONS}); retry later"
                    ))
                    .encode(),
                )
                .and_then(|_| t.flush());
            continue;
        }
        connections.fetch_add(1, Ordering::SeqCst);
        let service = service.clone();
        let shutdown = shutdown.clone();
        let connections = connections.clone();
        let busy = busy.clone();
        std::thread::spawn(move || {
            let mut transport = TcpTransport::new(stream);
            let outcome = handle_connection(&service, &mut transport, &busy);
            connections.fetch_sub(1, Ordering::SeqCst);
            match outcome {
                Ok(true) => {
                    // Stop the service first: new submissions are refused
                    // and fetch waiters on never-to-be-claimed queued jobs
                    // wake with a typed failure, so the busy drain below
                    // cannot deadlock on them.
                    service.stop();
                    shutdown.store(true, Ordering::SeqCst);
                    // Self-connect so the accept loop observes the flag.
                    // A daemon bound to the unspecified address (0.0.0.0 /
                    // [::]) is not connectable at that literal IP on every
                    // platform — aim at loopback on the bound port instead.
                    let mut wake = local;
                    if wake.ip().is_unspecified() {
                        wake.set_ip(match wake.ip() {
                            std::net::IpAddr::V4(_) => {
                                std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST)
                            }
                            std::net::IpAddr::V6(_) => {
                                std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST)
                            }
                        });
                    }
                    if let Err(e) = std::net::TcpStream::connect(wake) {
                        eprintln!(
                            "[service {local}] shutdown wake-up connect failed ({e}); \
                             the accept loop will exit on the next connection"
                        );
                    }
                }
                Ok(false) => {}
                Err(e) => eprintln!("[service {local}] connection {peer}: {e}"),
            }
        });
    }
}

/// Wait (bounded) for in-flight request handlers to finish writing their
/// responses, so fetch waiters whose jobs completed are answered before
/// the process exits.
fn drain_busy(busy: &(Mutex<usize>, Condvar), local: std::net::SocketAddr) {
    let (lock, cv) = busy;
    let deadline = std::time::Instant::now() + SHUTDOWN_DRAIN;
    let mut count = lock.lock().expect("busy lock");
    while *count > 0 {
        let Some(remaining) = deadline.checked_duration_since(std::time::Instant::now()) else {
            eprintln!(
                "[service {local}] shutdown drain timed out with {count} handler(s) in flight"
            );
            return;
        };
        let (guard, _) = cv.wait_timeout(count, remaining).expect("busy lock");
        count = guard;
    }
}

/// RAII increment of the busy-handler count for one request's lifetime.
struct BusyGuard<'a>(&'a (Mutex<usize>, Condvar));

impl<'a> BusyGuard<'a> {
    fn enter(busy: &'a (Mutex<usize>, Condvar)) -> Self {
        *busy.0.lock().expect("busy lock") += 1;
        BusyGuard(busy)
    }
}

impl Drop for BusyGuard<'_> {
    fn drop(&mut self) {
        *self.0 .0.lock().expect("busy lock") -= 1;
        self.0 .1.notify_all();
    }
}

/// Drive one client connection; `Ok(true)` means the client requested
/// daemon shutdown. `busy` is held (via [`BusyGuard`]) from request
/// decode to response flush, so shutdown can drain in-flight answers.
fn handle_connection(
    service: &Service,
    transport: &mut dyn FrameTransport,
    busy: &(Mutex<usize>, Condvar),
) -> Result<bool, WireError> {
    loop {
        let body = match transport
            .recv()
            .map_err(|e| WireError::new(format!("request read failed: {e}")))?
        {
            Some(b) => b,
            None => return Ok(false), // client hung up
        };
        let _busy = BusyGuard::enter(busy);
        // A frame that decodes to garbage gets an in-band error and the
        // connection stays usable (framing is intact — only the body was
        // wrong, e.g. a version mismatch).
        let decoded = ServiceRequest::decode(&body);
        let verb_hist = match &decoded {
            Ok(ServiceRequest::Submit { .. }) => "service_verb_submit_ns",
            Ok(ServiceRequest::Status(_)) => "service_verb_status_ns",
            Ok(ServiceRequest::Fetch(_)) => "service_verb_fetch_ns",
            Ok(ServiceRequest::Cancel(_)) => "service_verb_cancel_ns",
            Ok(ServiceRequest::Stats) => "service_verb_stats_ns",
            Ok(ServiceRequest::Shutdown) => "service_verb_shutdown_ns",
            Ok(ServiceRequest::Trace(_)) => "service_verb_trace_ns",
            Err(_) => "service_verb_invalid_ns",
        };
        let verb_started = std::time::Instant::now();
        let response = match decoded {
            Err(e) => ServiceResponse::Err(e.to_string()),
            Ok(ServiceRequest::Submit {
                threads: _advisory,
                manifest,
            }) => match service.submit(manifest) {
                Ok((job, disposition)) => ServiceResponse::Submitted { job, disposition },
                Err(msg) => ServiceResponse::Err(msg),
            },
            Ok(ServiceRequest::Status(job)) => match service.status(job) {
                Some(state) => ServiceResponse::Status { job, state },
                None => ServiceResponse::Err(format!("unknown {job}")),
            },
            Ok(ServiceRequest::Fetch(job)) => loop {
                // Bounded waits with keep-alive frames in between: a
                // client can cap its read timeout well under any job
                // runtime and still tell "long job" from "dead daemon".
                // Once the job has a live progress record the keep-alive
                // carries it; a job with no record yet (or a cache hit,
                // whose total stays 0) keeps the plain heartbeat.
                match service.wait_for(job, FETCH_KEEPALIVE) {
                    Ok(Some(Fetched::Result(blob))) => {
                        // One final progress frame pins the sequence at
                        // done == total before the result lands, so a
                        // watcher never ends on a stale partial count
                        // (ticks are sampled, not exhaustive).
                        if let Some(p) = service.progress(job).filter(|p| p.total > 0) {
                            let done = ServiceResponse::Progress {
                                job,
                                progress: JobProgress { done: p.total, ..p },
                            };
                            transport
                                .send(&done.encode())
                                .and_then(|_| transport.flush())
                                .map_err(|e| {
                                    WireError::new(format!("progress write failed: {e}"))
                                })?;
                        }
                        break ServiceResponse::Result {
                            job,
                            blob: blob.to_vec(),
                        };
                    }
                    Ok(Some(Fetched::Failed(error))) => {
                        break ServiceResponse::Failed { job, error }
                    }
                    Err(msg) => break ServiceResponse::Err(msg),
                    Ok(None) => {
                        let keep_alive = match service.progress(job).filter(|p| p.total > 0) {
                            Some(progress) => ServiceResponse::Progress { job, progress },
                            None => ServiceResponse::Heartbeat,
                        };
                        transport
                            .send(&keep_alive.encode())
                            .and_then(|_| transport.flush())
                            .map_err(|e| WireError::new(format!("keep-alive write failed: {e}")))?;
                    }
                }
            },
            Ok(ServiceRequest::Cancel(job)) => match service.cancel(job) {
                Some(queue::CancelOutcome::Cancelled) => ServiceResponse::Ok,
                Some(queue::CancelOutcome::Shared { waiters }) => ServiceResponse::Err(format!(
                    "{job} is shared: {waiters} other submission(s) coalesced onto it; \
                     refusing to cancel work they are waiting on"
                )),
                Some(queue::CancelOutcome::NotQueued(state)) => {
                    ServiceResponse::Err(format!("{job} is {state}; only queued jobs cancel"))
                }
                None => ServiceResponse::Err(format!("unknown {job}")),
            },
            Ok(ServiceRequest::Stats) => ServiceResponse::Stats(service.stats()),
            Ok(ServiceRequest::Trace(job)) => match service.trace_json(job) {
                Some(json) => ServiceResponse::Trace { job, json },
                None => ServiceResponse::Err(format!("unknown {job}")),
            },
            Ok(ServiceRequest::Shutdown) => {
                let send = transport
                    .send(&ServiceResponse::Ok.encode())
                    .and_then(|_| transport.flush());
                if let Err(e) = send {
                    return Err(WireError::new(format!("shutdown ack failed: {e}")));
                }
                return Ok(true);
            }
        };
        crate::telemetry::telemetry()
            .histogram(verb_hist)
            .record_duration(verb_started.elapsed());
        transport
            .send(&response.encode())
            .and_then(|_| transport.flush())
            .map_err(|e| WireError::new(format!("response write failed: {e}")))?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::tests::{decode_mul, MulJob};
    use crate::exec::{InProcessBackend, PortableJob};
    use crate::grid::Segment;

    fn registry() -> Arc<JobRegistry> {
        let mut reg = JobRegistry::new();
        reg.register("test-mul", decode_mul);
        reg.register("test-svc-fail", |_p| {
            struct Boom;
            impl PortableJob for Boom {
                fn kind(&self) -> &'static str {
                    "test-svc-fail"
                }
                fn encode_payload(&self, _buf: &mut Vec<u8>) {}
                fn run_slot(&self, point: usize, rep: u64, _seed: u64) -> Result<Vec<u8>, String> {
                    if point == 0 && rep == 1 {
                        Err("svc boom".into())
                    } else {
                        Ok(vec![0])
                    }
                }
            }
            Ok(Box::new(Boom))
        });
        Arc::new(reg)
    }

    fn mul_manifest(mix: u64, reps: u64) -> TaskManifest {
        TaskManifest::for_job(
            &MulJob { factor: 3 },
            vec![Segment {
                point: 0,
                base_rep: 0,
                count: reps as usize,
            }],
            &|p, r| mix ^ ((p as u64) << 32) ^ r,
        )
    }

    fn mem_only_cfg() -> ServiceConfig {
        ServiceConfig {
            exec: Exec::in_process(1),
            cache_dir: None,
            ..Default::default()
        }
    }

    fn unique_dir(tag: &str) -> std::path::PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "svc-test-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn expected_blob(manifest: &TaskManifest) -> Vec<u8> {
        let job = MulJob { factor: 3 };
        let slots = InProcessBackend::new(1)
            .run_segments(&job, manifest, None)
            .unwrap();
        cache::encode_blob(&slots)
    }

    #[test]
    fn submit_step_fetch_round_trips_and_repeat_hits_memory() {
        let svc = Service::new(mem_only_cfg(), registry());
        let m = mul_manifest(1, 3);
        let (job, d) = svc.submit(m.clone()).unwrap();
        assert_eq!(d, Disposition::Queued);
        assert_eq!(svc.status(job), Some(JobState::Queued));
        assert!(svc.step());
        assert!(!svc.step(), "queue drained");
        assert_eq!(svc.status(job), Some(JobState::Done));
        let Fetched::Result(blob) = svc.wait(job).unwrap() else {
            panic!("expected a result");
        };
        assert_eq!(*blob, expected_blob(&m), "served bytes == direct bytes");

        // Identical resubmission: answered from memory, born Done, same
        // bytes, no second execution.
        let (job2, d2) = svc.submit(m).unwrap();
        assert_eq!(d2, Disposition::HitMem);
        assert_ne!(job2, job);
        let Fetched::Result(blob2) = svc.wait(job2).unwrap() else {
            panic!("expected a result");
        };
        assert_eq!(blob, blob2);
        let s = svc.stats();
        assert_eq!((s.submitted, s.executed, s.hits_mem), (2, 1, 1));
    }

    #[test]
    fn disk_tier_survives_a_service_restart() {
        let dir = unique_dir("disk");
        let cfg = ServiceConfig {
            exec: Exec::in_process(1),
            cache_dir: Some(dir.clone()),
            ..Default::default()
        };
        let m = mul_manifest(7, 2);
        let first_blob;
        {
            let svc = Service::new(cfg.clone(), registry());
            let (job, _) = svc.submit(m.clone()).unwrap();
            svc.step();
            let Fetched::Result(blob) = svc.wait(job).unwrap() else {
                panic!("expected a result");
            };
            first_blob = blob.to_vec();
        }
        // A brand-new service over the same directory: disk hit, no
        // execution, identical bytes.
        let svc = Service::new(cfg, registry());
        let (job, d) = svc.submit(m).unwrap();
        assert_eq!(d, Disposition::HitDisk);
        let Fetched::Result(blob) = svc.wait(job).unwrap() else {
            panic!("expected a result");
        };
        assert_eq!(*blob, first_blob);
        assert_eq!(svc.stats().executed, 0);
        // And the blob is now promoted: a third submission hits memory.
        assert_eq!(
            svc.submit(mul_manifest(7, 2)).unwrap().1,
            Disposition::HitMem
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn single_flight_coalesces_and_all_waiters_get_the_same_bytes() {
        let svc = Service::new(mem_only_cfg(), registry());
        let m = mul_manifest(3, 4);
        let (a, da) = svc.submit(m.clone()).unwrap();
        let (b, db) = svc.submit(m.clone()).unwrap();
        assert_eq!((da, db), (Disposition::Queued, Disposition::Coalesced));
        assert_eq!(a, b, "coalesced submission shares the job");
        assert!(svc.step());
        assert!(!svc.step(), "one execution for two submissions");
        let Fetched::Result(blob) = svc.wait(a).unwrap() else {
            panic!("expected a result");
        };
        assert_eq!(*blob, expected_blob(&m));
        let s = svc.stats();
        assert_eq!((s.coalesced, s.executed), (1, 1));
    }

    #[test]
    fn failures_propagate_losslessly_and_are_not_cached() {
        let svc = Service::new(mem_only_cfg(), registry());
        let m = TaskManifest {
            kind: "test-svc-fail".into(),
            payload: Vec::new(),
            segments: vec![Segment {
                point: 0,
                base_rep: 0,
                count: 3,
            }],
            seeds: vec![0; 3],
        };
        let (job, _) = svc.submit(m.clone()).unwrap();
        svc.step();
        assert_eq!(svc.status(job), Some(JobState::Failed));
        let Fetched::Failed(e) = svc.wait(job).unwrap() else {
            panic!("expected a failure");
        };
        match e {
            ExecError::Task {
                flat_index,
                point,
                replication,
                ref message,
            } => {
                assert_eq!((flat_index, point, replication), (1, 0, 1));
                assert_eq!(message, "svc boom");
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Resubmission is fresh work — failures never become cache hits.
        let (_job2, d) = svc.submit(m).unwrap();
        assert_eq!(d, Disposition::Queued);
        assert_eq!(svc.stats().failed, 1);
    }

    #[test]
    fn bounded_queue_rejects_and_invalid_submissions_fail_at_the_door() {
        let cfg = ServiceConfig {
            queue_capacity: 1,
            ..mem_only_cfg()
        };
        let svc = Service::new(cfg, registry());
        svc.submit(mul_manifest(1, 1)).unwrap();
        let err = svc.submit(mul_manifest(2, 1)).unwrap_err();
        assert!(err.contains("queue full"), "{err}");
        assert_eq!(svc.stats().rejected, 1);

        // Unknown job kind.
        let mut bad = mul_manifest(3, 1);
        bad.kind = "never-registered".into();
        assert!(svc.submit(bad).unwrap_err().contains("unserveable"));
        // Seed table mismatch.
        let mut bad = mul_manifest(3, 2);
        bad.seeds.pop();
        assert!(svc.submit(bad).unwrap_err().contains("invalid manifest"));
    }

    #[test]
    fn cancel_verb_semantics() {
        let svc = Service::new(mem_only_cfg(), registry());
        let (a, _) = svc.submit(mul_manifest(1, 1)).unwrap();
        let (b, _) = svc.submit(mul_manifest(2, 1)).unwrap();
        assert_eq!(svc.cancel(b), Some(queue::CancelOutcome::Cancelled));
        assert_eq!(svc.status(b), Some(JobState::Cancelled));
        let Fetched::Failed(e) = svc.wait(b).unwrap() else {
            panic!("cancelled job must fetch as a failure");
        };
        assert!(e.to_string().contains("cancelled"), "{e}");
        // Only the surviving job executes.
        assert!(svc.step());
        assert!(!svc.step());
        assert_eq!(svc.status(a), Some(JobState::Done));
        assert_eq!(
            svc.cancel(a),
            Some(queue::CancelOutcome::NotQueued(JobState::Done))
        );
        assert_eq!(svc.cancel(JobId(12345)), None);
        assert_eq!(svc.stats().cancelled, 1);
    }

    #[test]
    fn blocking_fetch_streams_heartbeats_and_bounded_waits_time_out() {
        // wait_for semantics first: with no dispatcher, a bounded wait on
        // a queued job expires with Ok(None).
        let svc = Service::new(mem_only_cfg(), registry());
        let (job, _) = svc.submit(mul_manifest(1, 1)).unwrap();
        assert!(matches!(
            svc.wait_for(job, std::time::Duration::from_millis(30)),
            Ok(None)
        ));

        // Over TCP: a job slower than the keep-alive interval makes the
        // daemon emit heartbeat frames before the result, and a client
        // whose read timeout is far below the job runtime still gets the
        // answer (the liveness-parity contract with the remote backend).
        let mut reg = JobRegistry::new();
        reg.register("test-mul", decode_mul);
        reg.register("test-slow", |p| {
            struct Slow(u64);
            impl PortableJob for Slow {
                fn kind(&self) -> &'static str {
                    "test-slow"
                }
                fn encode_payload(&self, buf: &mut Vec<u8>) {
                    crate::wire::put_u64(buf, self.0);
                }
                fn run_slot(&self, _p: usize, _r: u64, seed: u64) -> Result<Vec<u8>, String> {
                    std::thread::sleep(std::time::Duration::from_millis(self.0));
                    Ok(vec![seed as u8])
                }
            }
            let mut r = crate::wire::Reader::new(p);
            let ms = r.get_u64()?;
            r.finish()?;
            Ok(Box::new(Slow(ms)))
        });
        let handle = ServiceHandle::start(
            ServiceConfig {
                exec: Exec::in_process(1),
                cache_dir: None,
                ..Default::default()
            },
            Arc::new(reg),
        );
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let svc = handle.service();
        let server = std::thread::spawn(move || serve_on(svc, listener).unwrap());

        struct Slow(u64);
        impl PortableJob for Slow {
            fn kind(&self) -> &'static str {
                "test-slow"
            }
            fn encode_payload(&self, buf: &mut Vec<u8>) {
                crate::wire::put_u64(buf, self.0);
            }
            fn run_slot(&self, _p: usize, _r: u64, seed: u64) -> Result<Vec<u8>, String> {
                Ok(vec![seed as u8])
            }
        }
        let slow = TaskManifest::for_job(
            &Slow(1300), // ≈ 2–3 keep-alive intervals
            vec![Segment {
                point: 0,
                base_rep: 0,
                count: 1,
            }],
            &|_, _| 7,
        );
        // Raw transport so the heartbeat frames are visible.
        let mut t = TcpTransport::new(std::net::TcpStream::connect(addr).unwrap());
        t.set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        t.send(
            &ServiceRequest::Submit {
                threads: 1,
                manifest: slow,
            }
            .encode(),
        )
        .unwrap();
        let submitted = ServiceResponse::decode(&t.recv().unwrap().unwrap()).unwrap();
        let ServiceResponse::Submitted { job, .. } = submitted else {
            panic!("unexpected {submitted:?}");
        };
        t.send(&ServiceRequest::Fetch(job).encode()).unwrap();
        t.flush().unwrap();
        let mut keep_alives = 0;
        let mut last_progress: Option<protocol::JobProgress> = None;
        let result = loop {
            match ServiceResponse::decode(&t.recv().unwrap().unwrap()).unwrap() {
                ServiceResponse::Heartbeat => keep_alives += 1,
                ServiceResponse::Progress { progress, .. } => {
                    keep_alives += 1;
                    if let Some(prev) = last_progress {
                        assert!(progress.done >= prev.done, "progress must be monotone");
                    }
                    last_progress = Some(progress);
                }
                other => break other,
            }
        };
        assert!(
            keep_alives >= 1,
            "a 1.3 s job must keep-alive at least once before answering"
        );
        let final_p = last_progress.expect("an executed job streams progress frames");
        assert_eq!(
            (final_p.done, final_p.total),
            (1, 1),
            "the final progress frame pins done == total"
        );
        match result {
            ServiceResponse::Result { blob, .. } => {
                assert_eq!(cache::decode_blob(&blob).unwrap(), vec![vec![7u8]]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The high-level client consumes heartbeats transparently, with a
        // read timeout far below the job runtime.
        let mut client =
            ServiceClient::connect(&addr.to_string(), std::time::Duration::from_secs(2)).unwrap();
        let slow2 = TaskManifest::for_job(
            &Slow(1300),
            vec![Segment {
                point: 0,
                base_rep: 0,
                count: 1,
            }],
            &|_, _| 9, // distinct seed → no cache hit
        );
        let (job2, _) = client.submit(&slow2, 1).unwrap();
        assert_eq!(client.fetch(job2).unwrap(), vec![vec![9u8]]);

        client.shutdown().unwrap();
        server.join().unwrap();
        handle.stop();
    }

    #[test]
    fn dead_silent_daemon_times_out_instead_of_hanging() {
        // A listener that accepts and never answers: the client's read
        // timeout must surface an error, not hang the caller forever.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || {
            let (_stream, _) = listener.accept().unwrap();
            std::thread::sleep(std::time::Duration::from_secs(20));
        });
        let mut client =
            ServiceClient::connect(&addr.to_string(), std::time::Duration::from_millis(600))
                .unwrap();
        let t0 = std::time::Instant::now();
        let err = client.status(JobId(1)).unwrap_err();
        assert!(matches!(err, ServiceError::Io(_)), "{err:?}");
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(10),
            "silent daemon must time out promptly"
        );
        drop(client);
        drop(hold); // detached sleeper dies with the test process
    }

    #[test]
    fn stop_unblocks_queued_fetch_waiters_and_refuses_new_work() {
        // Regression: stop() used to notify only the dispatcher condvar,
        // leaving a fetch waiter on a still-queued job blocked forever.
        let svc = Arc::new(Service::new(mem_only_cfg(), registry()));
        let (job, _) = svc.submit(mul_manifest(1, 2)).unwrap();
        let waiter = {
            let svc = svc.clone();
            std::thread::spawn(move || svc.wait(job))
        };
        // Give the waiter time to park on the condvar.
        std::thread::sleep(std::time::Duration::from_millis(50));
        svc.stop();
        let outcome = waiter.join().unwrap().unwrap();
        let Fetched::Failed(e) = outcome else {
            panic!("queued job must fail once the service stops");
        };
        assert!(e.to_string().contains("abandoned"), "{e}");
        // And the door is closed for new work.
        let err = svc.submit(mul_manifest(2, 2)).unwrap_err();
        assert!(err.contains("stopping"), "{err}");
    }

    #[test]
    fn aged_done_records_resolve_via_cache_tiers_or_fail_typed() {
        // With a pinned-result window of 1 and no cache tiers at all,
        // only the most recent result stays fetchable — older fetches get
        // a typed "aged out" failure, never a hang or wrong bytes.
        let cfg = ServiceConfig {
            exec: Exec::in_process(1),
            cache_dir: None,
            mem_cache_entries: 0,
            retain_results: 1,
            ..Default::default()
        };
        let svc = Service::new(cfg, registry());
        let ma = mul_manifest(1, 2);
        let mb = mul_manifest(2, 2);
        let (a, _) = svc.submit(ma.clone()).unwrap();
        svc.step();
        let (b, _) = svc.submit(mb.clone()).unwrap();
        svc.step();
        // B is inside the window; A's blob was unpinned and nothing else
        // holds it.
        let Fetched::Result(blob_b) = svc.wait(b).unwrap() else {
            panic!("recent result must fetch");
        };
        assert_eq!(*blob_b, expected_blob(&mb));
        let Fetched::Failed(e) = svc.wait(a).unwrap() else {
            panic!("aged result without cache tiers must fail typed");
        };
        assert!(e.to_string().contains("aged out"), "{e}");

        // Same shape with the disk tier on: the aged fetch resolves from
        // disk with the exact executed bytes.
        let dir = unique_dir("aged");
        let cfg = ServiceConfig {
            exec: Exec::in_process(1),
            cache_dir: Some(dir.clone()),
            mem_cache_entries: 0,
            retain_results: 1,
            ..Default::default()
        };
        let svc = Service::new(cfg, registry());
        let (a, _) = svc.submit(ma.clone()).unwrap();
        svc.step();
        let (b2, _) = svc.submit(mb).unwrap();
        svc.step();
        let _ = b2;
        let Fetched::Result(blob_a) = svc.wait(a).unwrap() else {
            panic!("aged result must resolve from the disk tier");
        };
        assert_eq!(*blob_a, expected_blob(&ma));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dispatcher_threads_drain_the_queue() {
        let handle = ServiceHandle::start(
            ServiceConfig {
                dispatchers: 2,
                ..mem_only_cfg()
            },
            registry(),
        );
        let svc = handle.service();
        let mut jobs = Vec::new();
        for mix in 0..6u64 {
            let (job, _) = svc.submit(mul_manifest(mix, 2)).unwrap();
            jobs.push((job, mul_manifest(mix, 2)));
        }
        for (job, m) in jobs {
            let Fetched::Result(blob) = svc.wait(job).unwrap() else {
                panic!("expected a result");
            };
            assert_eq!(*blob, expected_blob(&m));
        }
        assert_eq!(svc.stats().executed, 6);
        handle.stop();
    }

    #[test]
    fn tcp_front_serves_pipelined_requests_in_order() {
        let handle = ServiceHandle::start(mem_only_cfg(), registry());
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let svc = handle.service();
        let server = std::thread::spawn(move || serve_on(svc, listener).unwrap());

        let m = mul_manifest(11, 2);
        let mut t = TcpTransport::new(std::net::TcpStream::connect(addr).unwrap());
        // Pipeline: submit, fetch (ids are deterministic in a fresh
        // daemon: first job is 1), identical resubmit, stats — one write
        // burst, four in-order responses.
        for req in [
            ServiceRequest::Submit {
                threads: 1,
                manifest: m.clone(),
            },
            ServiceRequest::Fetch(JobId(1)),
            ServiceRequest::Submit {
                threads: 1,
                manifest: m.clone(),
            },
            ServiceRequest::Stats,
        ] {
            t.send(&req.encode()).unwrap();
        }
        t.flush().unwrap();
        let mut responses = Vec::new();
        while responses.len() < 4 {
            let body = t.recv().unwrap().expect("response frame");
            match ServiceResponse::decode(&body).unwrap() {
                // Keep-alive frames (including the fetch's final progress
                // frame) are not responses; pipelined accounting skips
                // them exactly like the client does.
                ServiceResponse::Heartbeat | ServiceResponse::Progress { .. } => {}
                resp => responses.push(resp),
            }
        }
        assert_eq!(
            responses[0],
            ServiceResponse::Submitted {
                job: JobId(1),
                disposition: Disposition::Queued
            }
        );
        match &responses[1] {
            ServiceResponse::Result { job, blob } => {
                assert_eq!(*job, JobId(1));
                assert_eq!(*blob, expected_blob(&m));
            }
            other => panic!("unexpected {other:?}"),
        }
        match &responses[2] {
            ServiceResponse::Submitted { disposition, .. } => {
                // The fetch before it guarantees the first job is done, so
                // the resubmission is a memory hit.
                assert_eq!(*disposition, Disposition::HitMem);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &responses[3] {
            ServiceResponse::Stats(s) => {
                assert_eq!(s.hits_mem, 1);
                assert_eq!(s.executed, 1);
            }
            other => panic!("unexpected {other:?}"),
        }

        // A garbled request gets an in-band error; the connection and the
        // daemon survive.
        let mut body = ServiceRequest::Stats.encode();
        body[1] = protocol::SERVICE_WIRE_VERSION + 9;
        t.send(&body).unwrap();
        t.flush().unwrap();
        match ServiceResponse::decode(&t.recv().unwrap().unwrap()).unwrap() {
            ServiceResponse::Err(msg) => assert!(msg.contains("version"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }

        // Shutdown verb ends the accept loop.
        t.send(&ServiceRequest::Shutdown.encode()).unwrap();
        t.flush().unwrap();
        assert_eq!(
            ServiceResponse::decode(&t.recv().unwrap().unwrap()).unwrap(),
            ServiceResponse::Ok
        );
        server.join().unwrap();
        handle.stop();
    }

    #[test]
    fn unknown_kind_rejected_over_tcp_and_unknown_job_errors() {
        let handle = ServiceHandle::start(mem_only_cfg(), registry());
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let svc = handle.service();
        let server = std::thread::spawn(move || serve_on(svc, listener).unwrap());

        let mut t = TcpTransport::new(std::net::TcpStream::connect(addr).unwrap());
        let mut m = mul_manifest(1, 1);
        m.kind = "nope".into();
        t.send(
            &ServiceRequest::Submit {
                threads: 1,
                manifest: m,
            }
            .encode(),
        )
        .unwrap();
        t.send(&ServiceRequest::Status(JobId(777)).encode())
            .unwrap();
        t.send(&ServiceRequest::Fetch(JobId(777)).encode()).unwrap();
        t.flush().unwrap();
        for _ in 0..3 {
            match ServiceResponse::decode(&t.recv().unwrap().unwrap()).unwrap() {
                ServiceResponse::Err(_) => {}
                other => panic!("expected an error, got {other:?}"),
            }
        }
        t.send(&ServiceRequest::Shutdown.encode()).unwrap();
        t.flush().unwrap();
        let _ = t.recv();
        server.join().unwrap();
        handle.stop();
    }

    #[test]
    fn service_refuses_a_service_backend() {
        let result = std::panic::catch_unwind(|| {
            Service::new(
                ServiceConfig {
                    exec: Exec::service(1, "127.0.0.1:1".into()),
                    ..Default::default()
                },
                registry(),
            )
        });
        assert!(result.is_err(), "service-on-service must be refused");
    }
}
