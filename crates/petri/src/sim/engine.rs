//! The simulation engine: enabling, scheduling, firing, reward integration.

use super::rewards::{RewardId, RewardSpec, RewardSpecError};
use super::trace::{TraceBuffer, TraceEvent};
use crate::error::SimError;
use crate::ids::{PlaceId, TransitionId};
use crate::marking::Marking;
use crate::net::Net;
use crate::rng::SimRng;
use crate::timing::MemoryPolicy;
use crate::token::Color;
use crate::transition::Transition;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Run-independent simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Simulated time horizon (seconds).
    pub end_time: f64,
    /// Rewards are only accumulated after this much simulated time
    /// (steady-state warm-up deletion). Default 0.
    pub warmup: f64,
    /// Abort with [`SimError::ImmediateLivelock`] after this many firings
    /// without time advancing. Default 100 000.
    pub max_zero_time_firings: u64,
    /// Abort with [`SimError::TokenOverflow`] if any place exceeds this
    /// token count. Default 1 000 000.
    pub max_tokens_per_place: usize,
    /// Record up to this many firings in the output trace. Default 0 (off).
    pub trace_capacity: usize,
}

impl SimConfig {
    /// Config with the given horizon and library defaults for everything
    /// else.
    pub fn for_horizon(end_time: f64) -> Self {
        SimConfig {
            end_time,
            warmup: 0.0,
            max_zero_time_firings: 100_000,
            max_tokens_per_place: 1_000_000,
            trace_capacity: 0,
        }
    }

    /// Builder-style: set the warm-up window.
    pub fn with_warmup(mut self, warmup: f64) -> Self {
        self.warmup = warmup;
        self
    }

    /// Builder-style: enable trace recording.
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }
}

/// Results of one simulation run.
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// The configured horizon actually simulated.
    pub end_time: f64,
    /// `end_time - warmup`: the window over which rewards were measured.
    pub observed_time: f64,
    /// One value per configured reward, in [`RewardId`] order.
    pub rewards: Vec<f64>,
    /// Total firings per transition over the whole run (including warm-up).
    pub firing_counts: Vec<u64>,
    /// Marking at the end of the run.
    pub final_marking: Marking,
    /// Recorded firings (empty unless `trace_capacity > 0`).
    pub trace: Vec<TraceEvent>,
    /// Firings not recorded because the trace buffer filled up.
    pub trace_dropped: u64,
}

impl SimOutput {
    /// Value of a configured reward.
    #[inline]
    pub fn reward(&self, id: RewardId) -> f64 {
        self.rewards[id.index()]
    }

    /// Total number of firings across all transitions.
    pub fn total_firings(&self) -> u64 {
        self.firing_counts.iter().sum()
    }
}

/// A configured, reusable simulator for one net.
///
/// Immutable after setup; [`Simulator::run`] takes `&self`, so independent
/// replications can run concurrently on multiple threads.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    net: &'a Net,
    cfg: SimConfig,
    rewards: Vec<RewardSpec>,
}

impl<'a> Simulator<'a> {
    /// Create a simulator for `net` with the given configuration.
    pub fn new(net: &'a Net, cfg: SimConfig) -> Self {
        Simulator {
            net,
            cfg,
            rewards: Vec::new(),
        }
    }

    /// Register a reward measure; the returned id indexes
    /// [`SimOutput::rewards`].
    pub fn reward(&mut self, spec: RewardSpec) -> Result<RewardId, RewardSpecError> {
        spec.validate(self.net)?;
        let id = RewardId(self.rewards.len());
        self.rewards.push(spec);
        Ok(id)
    }

    /// Convenience: time-average token count of a place.
    pub fn reward_place(&mut self, p: PlaceId) -> RewardId {
        self.reward(RewardSpec::PlaceTokens(p))
            .expect("place id from the same net")
    }

    /// Convenience: fraction of time a predicate holds.
    pub fn reward_predicate(&mut self, e: crate::expr::Expr) -> Result<RewardId, RewardSpecError> {
        self.reward(RewardSpec::Predicate(e))
    }

    /// Convenience: firing count of a transition.
    pub fn reward_firings(&mut self, t: TransitionId) -> RewardId {
        self.reward(RewardSpec::FiringCount(t))
            .expect("transition id from the same net")
    }

    /// The net this simulator runs.
    pub fn net(&self) -> &Net {
        self.net
    }

    /// Number of configured rewards.
    pub fn reward_count(&self) -> usize {
        self.rewards.len()
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Execute one independent run with the given seed.
    pub fn run(&self, seed: u64) -> Result<SimOutput, SimError> {
        Engine::new(self.net, &self.cfg, &self.rewards, seed).run()
    }
}

// ---------------------------------------------------------------------------
// Engine internals
// ---------------------------------------------------------------------------

/// Heap key for pending timed firings. Min-order: earliest time first; ties
/// broken by transition-definition order (see module docs of [`super`]).
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapKey {
    time: f64,
    tid: u32,
    gen: u64,
}

impl Eq for HeapKey {}

impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the *smallest* key on
        // top.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.tid.cmp(&self.tid))
            .then_with(|| other.gen.cmp(&self.gen))
    }
}

impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-transition scheduling state.
#[derive(Debug, Clone, Default)]
struct SchedState {
    /// Generation counter; heap entries with a stale generation are ignored.
    gen: u64,
    /// Pending firing time, if scheduled.
    fire_at: Option<f64>,
    /// Frozen remaining delay (RaceAge policy only).
    remaining: Option<f64>,
}

/// Per-reward accumulator.
#[derive(Debug, Clone)]
enum RewardAcc {
    /// Integral of token count over observed time.
    PlaceTokens { place: PlaceId, integral: f64 },
    /// Integral of the indicator over observed time.
    Predicate {
        expr: crate::expr::Expr,
        integral: f64,
    },
    /// Post-warmup firing counter, reported as rate.
    Throughput { tid: TransitionId, count: u64 },
    /// Post-warmup firing counter, reported raw.
    FiringCount { tid: TransitionId, count: u64 },
}

struct Engine<'a> {
    net: &'a Net,
    cfg: &'a SimConfig,
    rng: SimRng,
    now: f64,
    marking: Marking,
    heap: BinaryHeap<HeapKey>,
    sched: Vec<SchedState>,
    firing_counts: Vec<u64>,
    accs: Vec<RewardAcc>,
    /// Cached ids of immediate transitions (checked every vanishing loop).
    immediates: Vec<TransitionId>,
    /// Cached ids of timed transitions with the Resample policy (re-checked
    /// after every firing regardless of adjacency).
    resamplers: Vec<TransitionId>,
    /// Scratch: colors consumed by the current firing, grouped by arc.
    consumed: Vec<Color>,
    consumed_offsets: Vec<usize>,
    /// Scratch: transitions to re-check after a firing.
    recheck: Vec<TransitionId>,
    recheck_flag: Vec<bool>,
    trace: TraceBuffer,
    zero_time_firings: u64,
}

impl<'a> Engine<'a> {
    fn new(net: &'a Net, cfg: &'a SimConfig, rewards: &[RewardSpec], seed: u64) -> Self {
        let nt = net.num_transitions();
        let accs = rewards
            .iter()
            .map(|spec| match spec {
                RewardSpec::PlaceTokens(p) => RewardAcc::PlaceTokens {
                    place: *p,
                    integral: 0.0,
                },
                RewardSpec::Predicate(e) => RewardAcc::Predicate {
                    expr: e.clone(),
                    integral: 0.0,
                },
                RewardSpec::Throughput(t) => RewardAcc::Throughput { tid: *t, count: 0 },
                RewardSpec::FiringCount(t) => RewardAcc::FiringCount { tid: *t, count: 0 },
            })
            .collect();
        let immediates = net
            .transition_ids()
            .filter(|t| net.transition(*t).timing.is_immediate())
            .collect();
        let resamplers = net
            .transition_ids()
            .filter(|t| {
                let tr = net.transition(*t);
                !tr.timing.is_immediate() && tr.memory == MemoryPolicy::Resample
            })
            .collect();
        Engine {
            net,
            cfg,
            rng: SimRng::seed_from_u64(seed),
            now: 0.0,
            marking: net.initial_marking(),
            heap: BinaryHeap::with_capacity(nt * 2),
            sched: vec![SchedState::default(); nt],
            firing_counts: vec![0; nt],
            accs,
            immediates,
            resamplers,
            consumed: Vec::with_capacity(8),
            consumed_offsets: Vec::with_capacity(8),
            recheck: Vec::with_capacity(nt),
            recheck_flag: vec![false; nt],
            trace: TraceBuffer::new(cfg.trace_capacity),
            zero_time_firings: 0,
        }
    }

    // ---- enabling ----

    #[inline]
    fn is_enabled(&self, t: &Transition) -> bool {
        for arc in &t.inputs {
            if self.marking.count_matching(arc.place, &arc.filter) < arc.multiplicity as usize {
                return false;
            }
        }
        for inh in &t.inhibitors {
            if self.marking.count_matching(inh.place, &inh.filter) >= inh.threshold as usize {
                return false;
            }
        }
        if let Some(g) = &t.guard {
            if !g.eval_bool(&self.marking) {
                return false;
            }
        }
        true
    }

    // ---- scheduling ----

    fn schedule(&mut self, tid: TransitionId, fire_at: f64) {
        let s = &mut self.sched[tid.index()];
        s.gen += 1;
        s.fire_at = Some(fire_at);
        self.heap.push(HeapKey {
            time: fire_at,
            tid: tid.0,
            gen: s.gen,
        });
    }

    fn cancel(&mut self, tid: TransitionId) -> Option<f64> {
        let s = &mut self.sched[tid.index()];
        let fire_at = s.fire_at.take();
        if fire_at.is_some() {
            s.gen += 1; // invalidate the heap entry lazily
        }
        fire_at
    }

    /// Bring one timed transition's schedule in line with its enabling
    /// status.
    fn recheck_timed(&mut self, tid: TransitionId) {
        let net = self.net;
        let t = net.transition(tid);
        debug_assert!(!t.timing.is_immediate());
        let enabled = self.is_enabled(t);
        let scheduled = self.sched[tid.index()].fire_at.is_some();
        match (enabled, scheduled) {
            (true, false) => {
                let delay = match t.memory {
                    MemoryPolicy::RaceAge => self.sched[tid.index()]
                        .remaining
                        .take()
                        .unwrap_or_else(|| t.timing.sample_delay(&mut self.rng)),
                    _ => t.timing.sample_delay(&mut self.rng),
                };
                self.schedule(tid, self.now + delay);
            }
            (true, true) => {
                if t.memory == MemoryPolicy::Resample {
                    self.cancel(tid);
                    let delay = t.timing.sample_delay(&mut self.rng);
                    self.schedule(tid, self.now + delay);
                }
                // RaceEnable / RaceAge: clock keeps running.
            }
            (false, true) => {
                let fire_at = self.cancel(tid).expect("scheduled implies fire_at");
                if t.memory == MemoryPolicy::RaceAge {
                    self.sched[tid.index()].remaining = Some((fire_at - self.now).max(0.0));
                }
            }
            (false, false) => {}
        }
    }

    /// Mark a transition for re-check (deduplicated).
    #[inline]
    fn mark_recheck(&mut self, tid: TransitionId) {
        if !self.recheck_flag[tid.index()] {
            self.recheck_flag[tid.index()] = true;
            self.recheck.push(tid);
        }
    }

    /// Re-check every timed transition whose enabling may have changed after
    /// `fired` consumed/produced tokens.
    fn update_schedules_after(&mut self, fired: TransitionId) {
        self.recheck.clear();
        // Copy the net reference out of `self` so iterating its adjacency
        // lists does not conflict with the `&mut self` pushes below
        // (zero-cost: `&'a Net` is Copy).
        let net = self.net;
        let t = net.transition(fired);
        // Collect affected transitions from the dependency index.
        for arc_place in t
            .inputs
            .iter()
            .map(|a| a.place)
            .chain(t.outputs.iter().map(|a| a.place))
        {
            for &tid in net.affected_by(arc_place) {
                self.mark_recheck(tid);
            }
        }
        // The fired transition's own clock was consumed by firing.
        self.mark_recheck(fired);
        // Resample-policy transitions re-sample on *every* marking change.
        for i in 0..self.resamplers.len() {
            let tid = self.resamplers[i];
            self.mark_recheck(tid);
        }

        for i in 0..self.recheck.len() {
            let tid = self.recheck[i];
            self.recheck_flag[tid.index()] = false;
            if !net.transition(tid).timing.is_immediate() {
                self.recheck_timed(tid);
            }
        }
        self.recheck.clear();
    }

    // ---- firing ----

    fn fire(&mut self, tid: TransitionId) -> Result<(), SimError> {
        // Copy the net reference so `t` does not pin `self` (see
        // `update_schedules_after`).
        let net = self.net;
        let t: &Transition = &net.transitions()[tid.index()];
        self.consumed.clear();
        self.consumed_offsets.clear();
        for arc in &t.inputs {
            self.consumed_offsets.push(self.consumed.len());
            for _ in 0..arc.multiplicity {
                let c = self
                    .marking
                    .withdraw(arc.place, &arc.filter)
                    .expect("transition fired while not enabled");
                self.consumed.push(c);
            }
        }
        for arc in &t.outputs {
            for _ in 0..arc.multiplicity {
                let c = arc
                    .color
                    .eval(&self.consumed, &self.consumed_offsets, &mut self.rng);
                self.marking.deposit(arc.place, c);
            }
            if self.marking.count(arc.place) > self.cfg.max_tokens_per_place {
                return Err(SimError::TokenOverflow {
                    place: arc.place.index(),
                    time: self.now,
                    limit: self.cfg.max_tokens_per_place,
                });
            }
        }
        self.firing_counts[tid.index()] += 1;
        if self.cfg.trace_capacity > 0 {
            self.trace.record(self.now, tid);
        }
        if self.now >= self.cfg.warmup {
            for acc in &mut self.accs {
                match acc {
                    RewardAcc::Throughput { tid: rt, count } if *rt == tid => *count += 1,
                    RewardAcc::FiringCount { tid: rt, count } if *rt == tid => *count += 1,
                    _ => {}
                }
            }
        }
        Ok(())
    }

    /// Fire enabled immediates (highest priority first, weighted conflicts)
    /// until none remain enabled.
    fn fire_immediates(&mut self) -> Result<(), SimError> {
        // Scratch buffers reused across iterations.
        let mut candidates: Vec<TransitionId> = Vec::new();
        let mut weights: Vec<f64> = Vec::new();
        loop {
            let mut best_pri: Option<u8> = None;
            candidates.clear();
            for &tid in &self.immediates {
                let t = self.net.transition(tid);
                let pri = t.timing.priority().expect("immediate");
                // Skip transitions that cannot beat the current best.
                if let Some(bp) = best_pri {
                    if pri < bp {
                        continue;
                    }
                }
                if self.is_enabled(t) {
                    match best_pri {
                        Some(bp) if pri > bp => {
                            best_pri = Some(pri);
                            candidates.clear();
                            candidates.push(tid);
                        }
                        Some(_) => candidates.push(tid),
                        None => {
                            best_pri = Some(pri);
                            candidates.push(tid);
                        }
                    }
                }
            }
            let Some(_) = best_pri else { break };
            let chosen = if candidates.len() == 1 {
                candidates[0]
            } else {
                weights.clear();
                weights.extend(
                    candidates
                        .iter()
                        .map(|&c| self.net.transition(c).timing.weight().expect("immediate")),
                );
                candidates[self.rng.weighted_choice(&weights)]
            };
            self.fire(chosen)?;
            self.update_schedules_after(chosen);
            self.bump_zero_time_counter()?;
        }
        Ok(())
    }

    #[inline]
    fn bump_zero_time_counter(&mut self) -> Result<(), SimError> {
        self.zero_time_firings += 1;
        if self.zero_time_firings > self.cfg.max_zero_time_firings {
            return Err(SimError::ImmediateLivelock {
                time: self.now,
                limit: self.cfg.max_zero_time_firings,
            });
        }
        Ok(())
    }

    // ---- reward integration ----

    /// Integrate rewards over `[self.now, until)`, clipping to the warm-up
    /// boundary.
    fn integrate_rewards(&mut self, until: f64) {
        let from = self.now.max(self.cfg.warmup);
        let dt = until - from;
        if dt <= 0.0 {
            return;
        }
        for acc in &mut self.accs {
            match acc {
                RewardAcc::PlaceTokens { place, integral } => {
                    *integral += self.marking.count(*place) as f64 * dt;
                }
                RewardAcc::Predicate { expr, integral } => {
                    if expr.eval_bool(&self.marking) {
                        *integral += dt;
                    }
                }
                RewardAcc::Throughput { .. } | RewardAcc::FiringCount { .. } => {}
            }
        }
    }

    // ---- main loop ----

    fn run(mut self) -> Result<SimOutput, SimError> {
        // Initial scheduling pass over all transitions.
        for tid in self.net.transition_ids() {
            if !self.net.transition(tid).timing.is_immediate() {
                self.recheck_timed(tid);
            }
        }
        self.fire_immediates()?;

        loop {
            // Find the next valid timed event.
            let next = loop {
                match self.heap.peek() {
                    None => break None,
                    Some(key) => {
                        let s = &self.sched[key.tid as usize];
                        let valid = s.gen == key.gen && s.fire_at == Some(key.time);
                        if valid {
                            break Some(*key);
                        }
                        self.heap.pop();
                    }
                }
            };

            match next {
                Some(key) if key.time < self.cfg.end_time => {
                    self.heap.pop();
                    let tid = TransitionId(key.tid);
                    self.integrate_rewards(key.time);
                    if key.time > self.now {
                        self.zero_time_firings = 0;
                    }
                    self.now = key.time;
                    // Consume the schedule entry.
                    self.sched[tid.index()].fire_at = None;
                    self.sched[tid.index()].gen += 1;
                    self.fire(tid)?;
                    self.bump_zero_time_counter()?;
                    self.update_schedules_after(tid);
                    self.fire_immediates()?;
                }
                _ => {
                    // No more events before the horizon: integrate the tail
                    // and stop.
                    self.integrate_rewards(self.cfg.end_time);
                    self.now = self.cfg.end_time;
                    break;
                }
            }
        }

        let observed = (self.cfg.end_time - self.cfg.warmup).max(0.0);
        let rewards = self
            .accs
            .iter()
            .map(|acc| match acc {
                RewardAcc::PlaceTokens { integral, .. } => {
                    if observed > 0.0 {
                        integral / observed
                    } else {
                        0.0
                    }
                }
                RewardAcc::Predicate { integral, .. } => {
                    if observed > 0.0 {
                        integral / observed
                    } else {
                        0.0
                    }
                }
                RewardAcc::Throughput { count, .. } => {
                    if observed > 0.0 {
                        *count as f64 / observed
                    } else {
                        0.0
                    }
                }
                RewardAcc::FiringCount { count, .. } => *count as f64,
            })
            .collect();

        Ok(SimOutput {
            end_time: self.cfg.end_time,
            observed_time: observed,
            rewards,
            firing_counts: self.firing_counts,
            final_marking: self.marking,
            trace_dropped: self.trace.dropped,
            trace: self.trace.into_events(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetBuilder;
    use crate::expr::Expr;
    use crate::timing::Timing;

    /// Single deterministic transition cycling one token: P -> T(1s) -> P.
    #[test]
    fn deterministic_clock_fires_once_per_second() {
        let mut b = NetBuilder::new("clock");
        let p = b.place("p").tokens(1).build();
        let t = b
            .transition("tick", Timing::deterministic(1.0))
            .input(p, 1)
            .output(p, 1)
            .build();
        let net = b.build().unwrap();
        let mut sim = Simulator::new(&net, SimConfig::for_horizon(10.5));
        let firings = sim.reward_firings(t);
        let out = sim.run(1).unwrap();
        // Fires at t = 1, 2, ..., 10.
        assert_eq!(out.reward(firings), 10.0);
    }

    /// Immediate transitions fire before any time passes.
    #[test]
    fn immediates_fire_at_time_zero() {
        let mut b = NetBuilder::new("imm");
        let a = b.place("a").tokens(3).build();
        let z = b.place("z").build();
        b.transition("move", Timing::immediate())
            .input(a, 1)
            .output(z, 1)
            .build();
        let net = b.build().unwrap();
        let sim = Simulator::new(&net, SimConfig::for_horizon(1.0));
        let out = sim.run(1).unwrap();
        assert_eq!(out.final_marking.count(z), 3);
        assert_eq!(out.final_marking.count(a), 0);
    }

    /// Higher-priority immediates win conflicts outright.
    #[test]
    fn immediate_priority_wins() {
        let mut b = NetBuilder::new("pri");
        let a = b.place("a").tokens(1).build();
        let hi = b.place("hi").build();
        let lo = b.place("lo").build();
        b.transition("to_lo", Timing::immediate_pri(1))
            .input(a, 1)
            .output(lo, 1)
            .build();
        b.transition("to_hi", Timing::immediate_pri(2))
            .input(a, 1)
            .output(hi, 1)
            .build();
        let net = b.build().unwrap();
        let sim = Simulator::new(&net, SimConfig::for_horizon(1.0));
        for seed in 0..20 {
            let out = sim.run(seed).unwrap();
            assert_eq!(out.final_marking.count(hi), 1, "seed {seed}");
            assert_eq!(out.final_marking.count(lo), 0, "seed {seed}");
        }
    }

    /// Equal-priority immediates split according to weight.
    #[test]
    fn immediate_weights_split_conflicts() {
        let mut b = NetBuilder::new("weights");
        let src = b.place("src").build();
        let left = b.place("left").build();
        let right = b.place("right").build();
        // Token generator: one token per second.
        b.transition("gen", Timing::deterministic(1.0))
            .output(src, 1)
            .build();
        b.transition(
            "to_left",
            Timing::Immediate {
                priority: 1,
                weight: 1.0,
            },
        )
        .input(src, 1)
        .output(left, 1)
        .build();
        b.transition(
            "to_right",
            Timing::Immediate {
                priority: 1,
                weight: 3.0,
            },
        )
        .input(src, 1)
        .output(right, 1)
        .build();
        let net = b.build().unwrap();
        let sim = Simulator::new(&net, SimConfig::for_horizon(4000.0));
        let out = sim.run(99).unwrap();
        let l = out.final_marking.count(left) as f64;
        let r = out.final_marking.count(right) as f64;
        let frac = r / (l + r);
        assert!((frac - 0.75).abs() < 0.03, "frac={frac}");
    }

    /// Time-average token count of a place fed at rate 1 and drained at
    /// rate 2 matches M/M/1 with rho = 0.5: E[N] = rho/(1-rho) = 1.
    #[test]
    fn mm1_queue_length() {
        let mut b = NetBuilder::new("mm1");
        let q = b.place("q").build();
        b.transition("arrive", Timing::exponential(1.0))
            .output(q, 1)
            .build();
        b.transition("serve", Timing::exponential(2.0))
            .input(q, 1)
            .build();
        let net = b.build().unwrap();
        let mut sim = Simulator::new(&net, SimConfig::for_horizon(60_000.0).with_warmup(1000.0));
        let n = sim.reward_place(q);
        let out = sim.run(7).unwrap();
        let avg = out.reward(n);
        assert!((avg - 1.0).abs() < 0.08, "E[N]={avg}");
    }

    /// Guards gate enabling: a transition whose guard is false never fires.
    #[test]
    fn guard_blocks_firing() {
        let mut b = NetBuilder::new("guard");
        let p = b.place("p").tokens(1).build();
        let gate = b.place("gate").build(); // stays empty
        let out_p = b.place("out").build();
        let t = b
            .transition("t", Timing::deterministic(0.1))
            .input(p, 1)
            .output(out_p, 1)
            .guard(Expr::count(gate).gt_c(0))
            .build();
        let net = b.build().unwrap();
        let mut sim = Simulator::new(&net, SimConfig::for_horizon(10.0));
        let f = sim.reward_firings(t);
        let out = sim.run(1).unwrap();
        assert_eq!(out.reward(f), 0.0);
        assert_eq!(out.final_marking.count(p), 1);
    }

    /// Inhibitor arcs disable while tokens are present.
    #[test]
    fn inhibitor_blocks_firing() {
        let mut b = NetBuilder::new("inh");
        let p = b.place("p").tokens(1).build();
        let blocker = b.place("blocker").tokens(1).build();
        let out_p = b.place("out").build();
        b.transition("t", Timing::deterministic(0.1))
            .input(p, 1)
            .output(out_p, 1)
            .inhibitor(blocker, 1)
            .build();
        // Drain the blocker at t = 5.
        b.transition("unblock", Timing::deterministic(5.0))
            .input(blocker, 1)
            .build();
        let net = b.build().unwrap();
        let sim = Simulator::new(&net, SimConfig::for_horizon(10.0));
        let out = sim.run(1).unwrap();
        assert_eq!(out.final_marking.count(out_p), 1);
        // Fired only after the blocker drained (t = 5.1), not at 0.1.
    }

    /// RaceEnable: disabling a deterministic transition discards its clock.
    /// A PDT-style timer that keeps getting interrupted never fires.
    #[test]
    fn race_enable_restarts_clock() {
        let mut b = NetBuilder::new("race");
        let idle = b.place("idle").tokens(1).build();
        let buf = b.place("buf").build();
        let slept = b.place("slept").build();
        // Job arrives every 0.5 s and is served instantly.
        b.transition("arrive", Timing::deterministic(0.5))
            .output(buf, 1)
            .build();
        b.transition("serve", Timing::immediate())
            .input(buf, 1)
            .build();
        // Sleep timer: 0.8 s of continuous idleness required; the guard
        // breaks every 0.5 s when a job lands.
        b.transition("sleep", Timing::deterministic(0.8))
            .input(idle, 1)
            .output(slept, 1)
            .guard(Expr::count(buf).eq_c(0))
            .build();
        let net = b.build().unwrap();
        let sim = Simulator::new(&net, SimConfig::for_horizon(100.0));
        let out = sim.run(1).unwrap();
        assert_eq!(
            out.final_marking.count(slept),
            0,
            "timer must restart on every interruption"
        );
    }

    /// RaceAge: the same interrupted timer accumulates age and eventually
    /// fires.
    #[test]
    fn race_age_accumulates() {
        let mut b = NetBuilder::new("age");
        let idle = b.place("idle").tokens(1).build();
        let buf = b.place("buf").build();
        let slept = b.place("slept").build();
        b.transition("arrive", Timing::deterministic(0.5))
            .output(buf, 1)
            .build();
        b.transition("serve", Timing::deterministic(0.1))
            .input(buf, 1)
            .build();
        b.transition("sleep", Timing::deterministic(0.8))
            .input(idle, 1)
            .output(slept, 1)
            .guard(Expr::count(buf).eq_c(0))
            .memory(MemoryPolicy::RaceAge)
            .build();
        let net = b.build().unwrap();
        let sim = Simulator::new(&net, SimConfig::for_horizon(100.0));
        let out = sim.run(1).unwrap();
        assert_eq!(
            out.final_marking.count(slept),
            1,
            "aged timer must eventually fire"
        );
    }

    /// Immediate livelock is detected, not spun on.
    #[test]
    fn immediate_livelock_detected() {
        let mut b = NetBuilder::new("livelock");
        let a = b.place("a").tokens(1).build();
        let z = b.place("z").build();
        b.transition("ab", Timing::immediate())
            .input(a, 1)
            .output(z, 1)
            .build();
        b.transition("ba", Timing::immediate())
            .input(z, 1)
            .output(a, 1)
            .build();
        let net = b.build().unwrap();
        let mut cfg = SimConfig::for_horizon(1.0);
        cfg.max_zero_time_firings = 1000;
        let sim = Simulator::new(&net, cfg);
        assert!(matches!(
            sim.run(1),
            Err(SimError::ImmediateLivelock { .. })
        ));
    }

    /// Unbounded generators trip the token-overflow guard instead of eating
    /// all memory.
    #[test]
    fn token_overflow_detected() {
        let mut b = NetBuilder::new("overflow");
        let q = b.place("q").build();
        b.transition("gen", Timing::deterministic(0.001))
            .output(q, 1)
            .build();
        let net = b.build().unwrap();
        let mut cfg = SimConfig::for_horizon(1e9);
        cfg.max_tokens_per_place = 500;
        let sim = Simulator::new(&net, cfg);
        assert!(matches!(sim.run(1), Err(SimError::TokenOverflow { .. })));
    }

    /// Same seed, same trajectory; different seed, different trajectory.
    #[test]
    fn reproducibility() {
        let mut b = NetBuilder::new("repro");
        let q = b.place("q").build();
        b.transition("arrive", Timing::exponential(1.0))
            .output(q, 1)
            .build();
        b.transition("serve", Timing::exponential(1.5))
            .input(q, 1)
            .build();
        let net = b.build().unwrap();
        let mut sim = Simulator::new(&net, SimConfig::for_horizon(500.0));
        let n = sim.reward_place(q);
        let a = sim.run(42).unwrap();
        let b2 = sim.run(42).unwrap();
        let c = sim.run(43).unwrap();
        assert_eq!(a.reward(n), b2.reward(n));
        assert_eq!(a.firing_counts, b2.firing_counts);
        assert_ne!(a.reward(n), c.reward(n));
    }

    /// Predicate rewards measure conjunction states.
    #[test]
    fn predicate_reward_measures_fraction() {
        let mut b = NetBuilder::new("pred");
        let p = b.place("p").tokens(1).build();
        let q = b.place("q").build();
        // Token oscillates: 1 s in p, 1 s in q.
        b.transition("pq", Timing::deterministic(1.0))
            .input(p, 1)
            .output(q, 1)
            .build();
        b.transition("qp", Timing::deterministic(1.0))
            .input(q, 1)
            .output(p, 1)
            .build();
        let net = b.build().unwrap();
        let mut sim = Simulator::new(&net, SimConfig::for_horizon(1000.0));
        let in_p = sim.reward_predicate(Expr::count(p).gt_c(0)).unwrap();
        let out = sim.run(1).unwrap();
        assert!((out.reward(in_p) - 0.5).abs() < 1e-9);
    }

    /// Warm-up deletion removes the initial transient from rewards.
    #[test]
    fn warmup_excluded_from_rewards() {
        let mut b = NetBuilder::new("warm");
        let p = b.place("p").tokens(1).build();
        let q = b.place("q").build();
        // One-shot move at t = 1: p empty afterwards.
        b.transition("move", Timing::deterministic(1.0))
            .input(p, 1)
            .output(q, 1)
            .build();
        let net = b.build().unwrap();
        let mut sim = Simulator::new(&net, SimConfig::for_horizon(11.0).with_warmup(1.0));
        let avg_p = sim.reward_place(p);
        let out = sim.run(1).unwrap();
        // After warm-up the token is always in q.
        assert_eq!(out.reward(avg_p), 0.0);
        assert_eq!(out.observed_time, 10.0);
    }

    /// Trace recording captures firings in time order.
    #[test]
    fn trace_records_firings() {
        let mut b = NetBuilder::new("trace");
        let p = b.place("p").tokens(1).build();
        let t = b
            .transition("tick", Timing::deterministic(2.0))
            .input(p, 1)
            .output(p, 1)
            .build();
        let net = b.build().unwrap();
        let sim = Simulator::new(&net, SimConfig::for_horizon(7.0).with_trace(10));
        let out = sim.run(1).unwrap();
        let times: Vec<f64> = out.trace.iter().map(|e| e.time).collect();
        assert_eq!(times, vec![2.0, 4.0, 6.0]);
        assert!(out.trace.iter().all(|e| e.transition == t));
    }

    /// Simultaneous deterministic firings resolve in definition order.
    #[test]
    fn simultaneous_firings_use_definition_order() {
        let mut b = NetBuilder::new("tie");
        let a = b.place("a").tokens(1).build();
        let winner = b.place("winner").build();
        let loser = b.place("loser").build();
        // Both want the single token at exactly t = 1.0.
        b.transition("first", Timing::deterministic(1.0))
            .input(a, 1)
            .output(winner, 1)
            .build();
        b.transition("second", Timing::deterministic(1.0))
            .input(a, 1)
            .output(loser, 1)
            .build();
        let net = b.build().unwrap();
        let sim = Simulator::new(&net, SimConfig::for_horizon(2.0));
        for seed in 0..10 {
            let out = sim.run(seed).unwrap();
            assert_eq!(out.final_marking.count(winner), 1, "seed {seed}");
            assert_eq!(out.final_marking.count(loser), 0, "seed {seed}");
        }
    }

    /// Colored tokens flow through Transfer output arcs unchanged.
    #[test]
    fn color_transfer_pipeline() {
        use crate::arc::ColorExpr;
        use crate::token::{Color, ColorFilter};
        let mut b = NetBuilder::new("colors");
        let src = b
            .place("src")
            .token_colored(Color(1))
            .token_colored(Color(2))
            .build();
        let fast = b.place("fast").build();
        let slow = b.place("slow").build();
        let mid = b.place("mid").build();
        // Move everything to mid, preserving colors.
        b.transition("stage", Timing::immediate())
            .input(src, 1)
            .output_colored(mid, 1, ColorExpr::Transfer { arc_index: 0 })
            .build();
        // Color-filtered consumers.
        b.transition("take1", Timing::immediate())
            .input_filtered(mid, 1, ColorFilter::Eq(Color(1)))
            .output(fast, 1)
            .build();
        b.transition("take2", Timing::immediate())
            .input_filtered(mid, 1, ColorFilter::Eq(Color(2)))
            .output(slow, 1)
            .build();
        let net = b.build().unwrap();
        let sim = Simulator::new(&net, SimConfig::for_horizon(1.0));
        let out = sim.run(5).unwrap();
        assert_eq!(out.final_marking.count(fast), 1);
        assert_eq!(out.final_marking.count(slow), 1);
    }

    /// Throughput reward equals firings / observed time.
    #[test]
    fn throughput_reward() {
        let mut b = NetBuilder::new("thru");
        let p = b.place("p").tokens(1).build();
        let t = b
            .transition("tick", Timing::deterministic(0.25))
            .input(p, 1)
            .output(p, 1)
            .build();
        let net = b.build().unwrap();
        let mut sim = Simulator::new(&net, SimConfig::for_horizon(100.0));
        let thru = sim.reward(RewardSpec::Throughput(t)).unwrap();
        let out = sim.run(1).unwrap();
        assert!((out.reward(thru) - 4.0).abs() < 0.05);
    }

    /// Deterministic(0) transitions advance state without advancing time and
    /// do not livelock when they terminate.
    #[test]
    fn zero_delay_deterministic_ok() {
        let mut b = NetBuilder::new("zerodelay");
        let a = b.place("a").tokens(5).build();
        let z = b.place("z").build();
        b.transition("move", Timing::deterministic(0.0))
            .input(a, 1)
            .output(z, 1)
            .build();
        let net = b.build().unwrap();
        let sim = Simulator::new(&net, SimConfig::for_horizon(1.0));
        let out = sim.run(1).unwrap();
        assert_eq!(out.final_marking.count(z), 5);
    }
}
