//! The client half of the experiment service: a verb-level API over one
//! daemon connection, and the [`ExecBackend`] adapter that lets every
//! existing experiment driver execute through a daemon unchanged.
//!
//! [`ServiceClient`] speaks the [`protocol`](super::protocol) verbs —
//! submit, status, fetch (blocking), cancel, stats, shutdown — over a
//! single TCP connection; because the daemon answers in request order, a
//! client may pipeline several submissions before fetching any of them.
//!
//! [`ServiceBackend`] plugs the client into the
//! [`ExecBackend`](crate::exec::ExecBackend) seam: a dispatch becomes
//! submit + fetch, so `Exec::service(threads, addr)` routes a whole
//! experiment driver (fixed grids and adaptive rounds alike) through the
//! daemon's queue, single-flight dedup and result cache — with bytes
//! identical to direct execution by the cache-key construction.

use super::cache::decode_blob;
use super::protocol::{
    Disposition, JobId, JobProgress, JobState, ServiceRequest, ServiceResponse, ServiceStats,
};
use crate::exec::{ExecBackend, ExecError, PortableJob, TaskManifest};
use crate::grid::ProgressFn;
use crate::remote::transport::{FrameTransport, TcpTransport};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A client-side failure talking to the daemon.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// Connection / transport problem.
    Io(String),
    /// The daemon rejected the request or answered out of protocol.
    Protocol(String),
    /// The fetched job failed; the executor error round-trips losslessly.
    Exec(ExecError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Io(m) => write!(f, "service I/O error: {m}"),
            ServiceError::Protocol(m) => write!(f, "service error: {m}"),
            ServiceError::Exec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<ServiceError> for ExecError {
    fn from(e: ServiceError) -> Self {
        match e {
            ServiceError::Exec(inner) => inner,
            other => ExecError::Protocol(other.to_string()),
        }
    }
}

/// One connection to an experiment service daemon.
pub struct ServiceClient {
    transport: TcpTransport,
}

impl ServiceClient {
    /// Connect to a daemon at `addr` (`host:port`). `timeout` bounds both
    /// the connect and every per-frame read: a blocking fetch is kept
    /// alive by daemon heartbeat frames (emitted every ~500 ms while the
    /// job runs — see the service's fetch keep-alive), so a peer silent
    /// for longer than `timeout` is a dead daemon, not a long job, and
    /// the call fails instead of hanging forever.
    pub fn connect(addr: &str, timeout: Duration) -> Result<Self, ServiceError> {
        let sock = addr
            .to_socket_addrs()
            .map_err(|e| ServiceError::Io(format!("{addr}: cannot resolve: {e}")))?
            .next()
            .ok_or_else(|| ServiceError::Io(format!("{addr}: resolves to no address")))?;
        let stream = TcpStream::connect_timeout(&sock, timeout)
            .map_err(|e| ServiceError::Io(format!("{addr}: connect failed: {e}")))?;
        let transport = TcpTransport::new(stream);
        let _ = transport.set_read_timeout(Some(timeout));
        Ok(ServiceClient { transport })
    }

    /// Send one request frame (without reading the response — the
    /// pipelining building block).
    pub fn send(&mut self, request: &ServiceRequest) -> Result<(), ServiceError> {
        self.transport
            .send(&request.encode())
            .and_then(|_| self.transport.flush())
            .map_err(|e| ServiceError::Io(format!("request write failed: {e}")))
    }

    /// Read one response frame, keep-alives included.
    fn recv_response(&mut self) -> Result<ServiceResponse, ServiceError> {
        let body = self
            .transport
            .recv()
            .map_err(|e| ServiceError::Io(format!("response read failed: {e}")))?
            .ok_or_else(|| ServiceError::Io("daemon closed the connection".into()))?;
        ServiceResponse::decode(&body).map_err(|e| ServiceError::Protocol(e.to_string()))
    }

    /// Read the next response frame. Keep-alives (plain heartbeats and
    /// progress frames, emitted by the daemon while a fetch waits) are
    /// consumed transparently.
    pub fn recv(&mut self) -> Result<ServiceResponse, ServiceError> {
        loop {
            let resp = self.recv_response()?;
            if !matches!(
                resp,
                ServiceResponse::Heartbeat | ServiceResponse::Progress { .. }
            ) {
                return Ok(resp);
            }
        }
    }

    fn round_trip(&mut self, request: &ServiceRequest) -> Result<ServiceResponse, ServiceError> {
        self.send(request)?;
        match self.recv()? {
            ServiceResponse::Err(msg) => Err(ServiceError::Protocol(msg)),
            other => Ok(other),
        }
    }

    /// Submit a manifest; returns the job id and where its answer will
    /// come from (queued, cache hit, or coalesced onto in-flight work).
    pub fn submit(
        &mut self,
        manifest: &TaskManifest,
        threads: usize,
    ) -> Result<(JobId, Disposition), ServiceError> {
        match self.round_trip(&ServiceRequest::Submit {
            threads: threads as u32,
            manifest: manifest.clone(),
        })? {
            ServiceResponse::Submitted { job, disposition } => Ok((job, disposition)),
            other => Err(ServiceError::Protocol(format!(
                "unexpected submit response {other:?}"
            ))),
        }
    }

    /// A job's current state.
    pub fn status(&mut self, job: JobId) -> Result<JobState, ServiceError> {
        match self.round_trip(&ServiceRequest::Status(job))? {
            ServiceResponse::Status { state, .. } => Ok(state),
            other => Err(ServiceError::Protocol(format!(
                "unexpected status response {other:?}"
            ))),
        }
    }

    /// Block until `job` is terminal; returns the raw result blob.
    pub fn fetch_blob(&mut self, job: JobId) -> Result<Vec<u8>, ServiceError> {
        match self.round_trip(&ServiceRequest::Fetch(job))? {
            ServiceResponse::Result { blob, .. } => Ok(blob),
            ServiceResponse::Failed { error, .. } => Err(ServiceError::Exec(error)),
            other => Err(ServiceError::Protocol(format!(
                "unexpected fetch response {other:?}"
            ))),
        }
    }

    /// Block until `job` is terminal; returns its per-slot result bytes in
    /// flat-index order — exactly what direct backend execution yields.
    pub fn fetch(&mut self, job: JobId) -> Result<Vec<Vec<u8>>, ServiceError> {
        let blob = self.fetch_blob(job)?;
        decode_blob(&blob).map_err(|e| ServiceError::Protocol(format!("result blob: {e}")))
    }

    /// [`Self::fetch_blob`] with a live progress callback: every progress
    /// frame the daemon streams while the job runs — ending with a final
    /// `done == total` frame just before the result — is handed to
    /// `on_progress` in arrival order. Progress is cosmetic: the returned
    /// bytes are identical to a plain fetch, and a daemon that streams no
    /// progress (cache hits answer instantly) simply never calls back.
    pub fn fetch_blob_with_progress(
        &mut self,
        job: JobId,
        on_progress: &mut dyn FnMut(JobProgress),
    ) -> Result<Vec<u8>, ServiceError> {
        self.send(&ServiceRequest::Fetch(job))?;
        loop {
            match self.recv_response()? {
                ServiceResponse::Heartbeat => {}
                ServiceResponse::Progress { progress, .. } => on_progress(progress),
                ServiceResponse::Result { blob, .. } => return Ok(blob),
                ServiceResponse::Failed { error, .. } => return Err(ServiceError::Exec(error)),
                ServiceResponse::Err(msg) => return Err(ServiceError::Protocol(msg)),
                other => {
                    return Err(ServiceError::Protocol(format!(
                        "unexpected fetch response {other:?}"
                    )))
                }
            }
        }
    }

    /// [`Self::fetch`] with a live progress callback (see
    /// [`Self::fetch_blob_with_progress`]).
    pub fn fetch_with_progress(
        &mut self,
        job: JobId,
        on_progress: &mut dyn FnMut(JobProgress),
    ) -> Result<Vec<Vec<u8>>, ServiceError> {
        let blob = self.fetch_blob_with_progress(job, on_progress)?;
        decode_blob(&blob).map_err(|e| ServiceError::Protocol(format!("result blob: {e}")))
    }

    /// Cancel a queued job.
    pub fn cancel(&mut self, job: JobId) -> Result<(), ServiceError> {
        match self.round_trip(&ServiceRequest::Cancel(job))? {
            ServiceResponse::Ok => Ok(()),
            other => Err(ServiceError::Protocol(format!(
                "unexpected cancel response {other:?}"
            ))),
        }
    }

    /// Snapshot the daemon counters.
    pub fn stats(&mut self) -> Result<ServiceStats, ServiceError> {
        match self.round_trip(&ServiceRequest::Stats)? {
            ServiceResponse::Stats(s) => Ok(s),
            other => Err(ServiceError::Protocol(format!(
                "unexpected stats response {other:?}"
            ))),
        }
    }

    /// Fetch a job's collected spans as Chrome trace-event JSON.
    pub fn trace(&mut self, job: JobId) -> Result<String, ServiceError> {
        match self.round_trip(&ServiceRequest::Trace(job))? {
            ServiceResponse::Trace { json, .. } => Ok(json),
            other => Err(ServiceError::Protocol(format!(
                "unexpected trace response {other:?}"
            ))),
        }
    }

    /// Ask the daemon to shut down (acknowledged before it exits).
    pub fn shutdown(&mut self) -> Result<(), ServiceError> {
        match self.round_trip(&ServiceRequest::Shutdown)? {
            ServiceResponse::Ok => Ok(()),
            other => Err(ServiceError::Protocol(format!(
                "unexpected shutdown response {other:?}"
            ))),
        }
    }
}

/// `ExecBackend` over a service daemon: a dispatch is one submit + one
/// blocking fetch on a fresh connection.
///
/// The daemon executes (or cache-answers) the manifest on *its* configured
/// backend; slot bytes come back in flat-index order, so every fold
/// downstream is byte-identical to local execution. A caller's progress
/// callback is fed from the daemon's streamed progress frames (sampled at
/// the keep-alive cadence, so ticks are coarser than local execution —
/// cosmetic only); adaptive drivers still work — each round is its own
/// dispatch.
#[derive(Debug, Clone)]
pub struct ServiceBackend {
    /// Daemon address (`host:port`).
    pub addr: String,
    /// Advisory worker-thread count carried in the submit verb.
    pub worker_threads: usize,
    /// Connection timeout.
    pub connect_timeout: Duration,
}

impl ServiceBackend {
    /// A backend submitting to the daemon at `addr`.
    pub fn new(addr: String, worker_threads: usize) -> Self {
        ServiceBackend {
            addr,
            worker_threads: worker_threads.max(1),
            connect_timeout: Duration::from_secs(10),
        }
    }
}

impl ExecBackend for ServiceBackend {
    fn run_segments(
        &self,
        _job: &dyn PortableJob,
        manifest: &TaskManifest,
        progress: Option<&ProgressFn>,
    ) -> Result<Vec<Vec<u8>>, ExecError> {
        manifest.validate()?;
        let mut client =
            ServiceClient::connect(&self.addr, self.connect_timeout).map_err(ExecError::from)?;
        let (job, _disposition) = client
            .submit(manifest, self.worker_threads)
            .map_err(ExecError::from)?;
        let slots = match progress {
            Some(cb) => {
                let mut forward = |p: JobProgress| {
                    cb(crate::grid::Progress {
                        point: p.point as usize,
                        replication: p.replication,
                        completed: p.done as usize,
                        total: p.total as usize,
                    });
                };
                client
                    .fetch_with_progress(job, &mut forward)
                    .map_err(ExecError::from)?
            }
            None => client.fetch(job).map_err(ExecError::from)?,
        };
        if slots.len() != manifest.total_slots() {
            return Err(ExecError::Protocol(format!(
                "service returned {} slot(s) for a {}-slot manifest",
                slots.len(),
                manifest.total_slots()
            )));
        }
        Ok(slots)
    }

    fn label(&self) -> String {
        format!(
            "service(addr={}, threads={})",
            self.addr, self.worker_threads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::tests::{decode_mul, MulJob};
    use crate::exec::{Exec, InProcessBackend, JobRegistry};
    use crate::grid::Segment;
    use crate::service::{ServiceConfig, ServiceHandle};
    use std::sync::Arc;

    fn start_daemon() -> (
        ServiceHandle,
        std::net::SocketAddr,
        std::thread::JoinHandle<()>,
    ) {
        let mut reg = JobRegistry::new();
        reg.register("test-mul", decode_mul);
        let handle = ServiceHandle::start(
            ServiceConfig {
                exec: Exec::in_process(2),
                cache_dir: None,
                ..Default::default()
            },
            Arc::new(reg),
        );
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let svc = handle.service();
        let server = std::thread::spawn(move || {
            crate::service::serve_on(svc, listener).unwrap();
        });
        (handle, addr, server)
    }

    fn mul_manifest(mix: u64, reps: &[u64]) -> TaskManifest {
        let segments = reps
            .iter()
            .enumerate()
            .map(|(point, &n)| Segment {
                point,
                base_rep: 0,
                count: n as usize,
            })
            .collect();
        TaskManifest::for_job(&MulJob { factor: 3 }, segments, &|p, r| {
            mix ^ ((p as u64) << 32) ^ r
        })
    }

    fn stop(
        handle: ServiceHandle,
        addr: std::net::SocketAddr,
        server: std::thread::JoinHandle<()>,
    ) {
        let mut c = ServiceClient::connect(&addr.to_string(), Duration::from_secs(5)).unwrap();
        c.shutdown().unwrap();
        server.join().unwrap();
        handle.stop();
    }

    #[test]
    fn service_backend_matches_in_process_bytes_and_hits_cache_on_repeat() {
        let (handle, addr, server) = start_daemon();
        let job = MulJob { factor: 3 };
        let m = mul_manifest(5, &[3, 1, 4]);
        let baseline = InProcessBackend::new(1)
            .run_segments(&job, &m, None)
            .unwrap();
        let backend = ServiceBackend::new(addr.to_string(), 2);
        assert_eq!(backend.run_segments(&job, &m, None).unwrap(), baseline);
        // Second dispatch: same bytes, answered from cache.
        assert_eq!(backend.run_segments(&job, &m, None).unwrap(), baseline);
        let mut c = ServiceClient::connect(&addr.to_string(), Duration::from_secs(5)).unwrap();
        let s = c.stats().unwrap();
        assert_eq!(s.executed, 1, "repeat dispatch must not re-execute");
        assert_eq!(s.hits(), 1);
        assert!(backend.label().contains("service"));
        stop(handle, addr, server);
    }

    #[test]
    fn client_verbs_round_trip_over_tcp() {
        let (handle, addr, server) = start_daemon();
        let mut c = ServiceClient::connect(&addr.to_string(), Duration::from_secs(5)).unwrap();
        let m = mul_manifest(8, &[2]);
        let (job, d) = c.submit(&m, 1).unwrap();
        assert_eq!(d, Disposition::Queued);
        let slots = c.fetch(job).unwrap();
        assert_eq!(slots.len(), 2);
        assert_eq!(c.status(job).unwrap(), JobState::Done);
        // Unknown job id errors cleanly.
        assert!(matches!(
            c.status(JobId(999_999)),
            Err(ServiceError::Protocol(_))
        ));
        stop(handle, addr, server);
    }

    #[test]
    fn fetch_with_progress_streams_a_final_done_frame() {
        let (handle, addr, server) = start_daemon();
        let mut c = ServiceClient::connect(&addr.to_string(), Duration::from_secs(5)).unwrap();
        let m = mul_manifest(21, &[3, 2]);
        let (job, d) = c.submit(&m, 1).unwrap();
        assert_eq!(d, Disposition::Queued);
        let mut seen: Vec<JobProgress> = Vec::new();
        let slots = c.fetch_with_progress(job, &mut |p| seen.push(p)).unwrap();
        assert_eq!(slots.len(), 5);
        // A fast job may skip the sampled keep-alive ticks entirely, but
        // the final done == total frame is unconditional for executed
        // work, and the sequence can never regress.
        assert!(!seen.is_empty(), "executed jobs stream a final frame");
        assert!(seen.windows(2).all(|w| w[0].done <= w[1].done), "{seen:?}");
        let last = seen.last().unwrap();
        assert_eq!((last.done, last.total), (5, 5), "{seen:?}");

        // The backend adapter forwards the frames into the standard
        // progress-callback shape.
        let job_impl = MulJob { factor: 3 };
        let m2 = mul_manifest(22, &[2]);
        let backend = ServiceBackend::new(addr.to_string(), 1);
        let ticks = Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = ticks.clone();
        let cb = move |p: crate::grid::Progress| {
            sink.lock().unwrap().push((p.completed, p.total));
        };
        let out = backend.run_segments(&job_impl, &m2, Some(&cb)).unwrap();
        assert_eq!(out.len(), 2);
        let ticks = ticks.lock().unwrap().clone();
        assert_eq!(ticks.last().copied(), Some((2, 2)), "{ticks:?}");
        stop(handle, addr, server);
    }

    #[test]
    fn unreachable_daemon_is_a_protocol_error() {
        let backend = ServiceBackend {
            addr: "127.0.0.1:1".into(),
            worker_threads: 1,
            connect_timeout: Duration::from_millis(300),
        };
        let job = MulJob { factor: 1 };
        let m = mul_manifest(0, &[1]);
        let err = backend.run_segments(&job, &m, None).unwrap_err();
        assert!(matches!(err, ExecError::Protocol(_)), "{err:?}");
    }
}
