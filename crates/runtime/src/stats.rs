//! Statistics utilities: streaming moments, confidence intervals, and batch
//! means for steady-state simulation output analysis.
//!
//! The paper runs its Petri nets "until steady state probability values were
//! obtained" (Sec. V). We make that notion precise: replications or batch
//! means feed a [`Welford`] accumulator, and a Student-t [`ConfidenceInterval`]
//! quantifies how settled the estimate is. The [`crate::stopping`] module
//! turns that quantity into a first-class stopping rule for the runtime.

use serde::{Deserialize, Serialize};

/// Streaming mean/variance accumulator (Welford's algorithm —
/// numerically stable single-pass moments).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 if fewer than 2 observations).
    #[inline]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population variance (0 if empty).
    #[inline]
    pub fn variance_population(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation.
    #[inline]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    #[inline]
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.variance() / self.n as f64).sqrt()
        }
    }

    /// Merge another accumulator into this one (parallel reduction;
    /// Chan et al. pairwise update).
    ///
    /// Note that merging is only *algebraically* equivalent to pushing the
    /// underlying observations in sequence — the floating-point result
    /// depends on the partition. Deterministic pipelines should push
    /// observations in a fixed order instead (see [`crate::grid`]).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }

    /// Two-sided Student-t confidence interval for the mean.
    pub fn confidence_interval(&self, level: ConfidenceLevel) -> ConfidenceInterval {
        let half = if self.n < 2 {
            f64::INFINITY
        } else {
            student_t_critical(level, self.n - 1) * self.std_error()
        };
        ConfidenceInterval {
            mean: self.mean(),
            half_width: half,
            level,
            n: self.n,
        }
    }
}

/// Supported confidence levels for interval estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConfidenceLevel {
    /// 90 % two-sided.
    P90,
    /// 95 % two-sided.
    P95,
    /// 99 % two-sided.
    P99,
}

/// A symmetric confidence interval `mean ± half_width`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub mean: f64,
    /// Half-width of the interval (infinite when `n < 2`).
    pub half_width: f64,
    /// The confidence level used.
    pub level: ConfidenceLevel,
    /// Number of observations behind the estimate.
    pub n: u64,
}

impl ConfidenceInterval {
    /// Lower bound.
    pub fn low(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound.
    pub fn high(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Does the interval contain `x`?
    pub fn contains(&self, x: f64) -> bool {
        x >= self.low() && x <= self.high()
    }

    /// Relative half-width (`half_width / |mean|`; infinite for zero mean).
    pub fn relative_half_width(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }
}

/// Two-sided Student-t critical value for the given confidence level and
/// degrees of freedom (tabulated for small df, normal approximation beyond).
pub fn student_t_critical(level: ConfidenceLevel, df: u64) -> f64 {
    // Rows: df 1..=30, then 40, 60, 120, then z.
    // Columns: 90 %, 95 %, 99 % two-sided.
    const TABLE: [[f64; 3]; 30] = [
        [6.314, 12.706, 63.657],
        [2.920, 4.303, 9.925],
        [2.353, 3.182, 5.841],
        [2.132, 2.776, 4.604],
        [2.015, 2.571, 4.032],
        [1.943, 2.447, 3.707],
        [1.895, 2.365, 3.499],
        [1.860, 2.306, 3.355],
        [1.833, 2.262, 3.250],
        [1.812, 2.228, 3.169],
        [1.796, 2.201, 3.106],
        [1.782, 2.179, 3.055],
        [1.771, 2.160, 3.012],
        [1.761, 2.145, 2.977],
        [1.753, 2.131, 2.947],
        [1.746, 2.120, 2.921],
        [1.740, 2.110, 2.898],
        [1.734, 2.101, 2.878],
        [1.729, 2.093, 2.861],
        [1.725, 2.086, 2.845],
        [1.721, 2.080, 2.831],
        [1.717, 2.074, 2.819],
        [1.714, 2.069, 2.807],
        [1.711, 2.064, 2.797],
        [1.708, 2.060, 2.787],
        [1.706, 2.056, 2.779],
        [1.703, 2.052, 2.771],
        [1.701, 2.048, 2.763],
        [1.699, 2.045, 2.756],
        [1.697, 2.042, 2.750],
    ];
    let col = match level {
        ConfidenceLevel::P90 => 0,
        ConfidenceLevel::P95 => 1,
        ConfidenceLevel::P99 => 2,
    };
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[(df - 1) as usize][col],
        31..=40 => [1.684, 2.021, 2.704][col],
        41..=60 => [1.671, 2.000, 2.660][col],
        61..=120 => [1.658, 1.980, 2.617][col],
        _ => [1.645, 1.960, 2.576][col],
    }
}

/// Batch-means estimator for a single long run: splits a stream of
/// correlated observations into contiguous batches of `batch_size` and
/// treats batch averages as (approximately) independent samples.
#[derive(Debug, Clone)]
pub struct BatchMeans {
    batch_size: u64,
    current_sum: f64,
    current_count: u64,
    batches: Welford,
}

impl BatchMeans {
    /// Accumulate observations into batches of `batch_size`.
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchMeans {
            batch_size,
            current_sum: 0.0,
            current_count: 0,
            batches: Welford::new(),
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.current_sum += x;
        self.current_count += 1;
        if self.current_count == self.batch_size {
            self.batches.push(self.current_sum / self.batch_size as f64);
            self.current_sum = 0.0;
            self.current_count = 0;
        }
    }

    /// Number of completed batches.
    pub fn num_batches(&self) -> u64 {
        self.batches.count()
    }

    /// Statistics over completed batch means.
    pub fn stats(&self) -> &Welford {
        &self.batches
    }
}

/// Descriptive statistics of a slice in one pass: `(mean, variance, std-dev,
/// RMSE-against-zero)`. The paper's Tables IV–VI report exactly these four
/// numbers for per-sweep-point energy differences; see
/// `wsn::metrics::DiffStats` for the table-shaped wrapper.
pub fn describe(xs: &[f64]) -> (f64, f64, f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0, 0.0, 0.0);
    }
    let mut w = Welford::new();
    let mut sq_sum = 0.0;
    for &x in xs {
        w.push(x);
        sq_sum += x * x;
    }
    let rmse = (sq_sum / xs.len() as f64).sqrt();
    (w.mean(), w.variance(), w.std_dev(), rmse)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_known_values() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance_population() - 4.0).abs() < 1e-12);
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_and_single() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        let mut w = Welford::new();
        w.push(3.0);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.std_error(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut seq = Welford::new();
        for &x in &xs {
            seq.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-10);
        assert!((a.variance() - seq.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(2.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&Welford::new());
        assert_eq!((a.count(), a.mean(), a.variance()), before);

        let mut empty = Welford::new();
        let mut b = Welford::new();
        b.push(5.0);
        empty.merge(&b);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), 5.0);
    }

    #[test]
    fn t_critical_values() {
        assert!((student_t_critical(ConfidenceLevel::P95, 1) - 12.706).abs() < 1e-9);
        assert!((student_t_critical(ConfidenceLevel::P95, 10) - 2.228).abs() < 1e-9);
        assert!((student_t_critical(ConfidenceLevel::P95, 1000) - 1.960).abs() < 1e-9);
        assert!((student_t_critical(ConfidenceLevel::P90, 5) - 2.015).abs() < 1e-9);
        assert!((student_t_critical(ConfidenceLevel::P99, 2) - 9.925).abs() < 1e-9);
        assert_eq!(student_t_critical(ConfidenceLevel::P95, 0), f64::INFINITY);
        // Monotone decreasing in df.
        assert!(
            student_t_critical(ConfidenceLevel::P95, 3)
                > student_t_critical(ConfidenceLevel::P95, 30)
        );
    }

    #[test]
    fn confidence_interval_basics() {
        let mut w = Welford::new();
        for x in [10.0, 12.0, 11.0, 9.0, 13.0, 11.0, 10.0, 12.0] {
            w.push(x);
        }
        let ci = w.confidence_interval(ConfidenceLevel::P95);
        assert!(ci.contains(w.mean()));
        assert!(ci.low() < ci.high());
        assert!(ci.half_width > 0.0);
        assert!(ci.relative_half_width() > 0.0);
        // Wider at higher confidence.
        let ci99 = w.confidence_interval(ConfidenceLevel::P99);
        assert!(ci99.half_width > ci.half_width);
    }

    #[test]
    fn confidence_interval_infinite_for_tiny_samples() {
        let mut w = Welford::new();
        w.push(1.0);
        let ci = w.confidence_interval(ConfidenceLevel::P95);
        assert!(ci.half_width.is_infinite());
    }

    #[test]
    fn batch_means_reduces_to_batches() {
        let mut bm = BatchMeans::new(10);
        for i in 0..95 {
            bm.push(i as f64);
        }
        // 9 full batches; the partial 10th is discarded.
        assert_eq!(bm.num_batches(), 9);
        // First batch mean = mean(0..10) = 4.5.
        assert!(bm.stats().mean() > 4.0);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn batch_means_rejects_zero() {
        let _ = BatchMeans::new(0);
    }

    #[test]
    fn describe_matches_manual() {
        let (mean, var, sd, rmse) = describe(&[3.0, 4.0]);
        assert!((mean - 3.5).abs() < 1e-12);
        assert!((var - 0.5).abs() < 1e-12);
        assert!((sd - 0.5f64.sqrt()).abs() < 1e-12);
        assert!((rmse - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn describe_empty() {
        assert_eq!(describe(&[]), (0.0, 0.0, 0.0, 0.0));
    }
}
