//! # sim-runtime — two-level experiment orchestration
//!
//! Every evaluation in this workspace is "a sweep over parameter points ×
//! independent replications per point, run until steady-state estimates
//! settle". This crate is the one shared executor for that shape, used by
//! `petri_core::replicate`, `wsn::sweep`, every experiment driver and the
//! `repro` binary:
//!
//! * [`grid::Runner`] — flattens the `(point × replication)` grid into one
//!   work-stealing task stream over one scoped thread pool: no idle cores
//!   on wide machines, no oversubscription from nested fan-out, first-error
//!   cancellation, optional progress callbacks.
//! * **Deterministic aggregation** — per-point results come back in
//!   replication-index order, so reductions are bit-identical at any
//!   thread count (1, 2 or 128 workers: same bits).
//! * [`stopping::StoppingRule`] — the paper's "until steady state
//!   probability values were obtained" as a first-class, budget-aware mode:
//!   per point, replications run in rounds until the Student-t CI
//!   half-width of watched metrics meets a target.
//! * [`exec`] — the **executor backend seam**: grids described as
//!   serializable [`exec::TaskManifest`]s over [`exec::PortableJob`]s,
//!   executed by an [`exec::ExecBackend`]. The scoped thread pool is one
//!   backend ([`exec::InProcessBackend`]); [`exec::ShardedBackend`]
//!   partitions the manifest across worker subprocesses
//!   (`<exe> --worker`, see [`worker`]) with **byte-identical** gathers at
//!   any shard × thread count.
//! * [`remote`] — the same seam **across machines**:
//!   [`remote::RemoteBackend`] dispatches manifests to
//!   `<exe> --worker --listen <addr>` TCP peers (one drain thread per
//!   peer, re-dispatch of a dead peer's undelivered slots, byte-identical
//!   gather), over the [`remote::FrameTransport`] trait shared with the
//!   pipe and stdio endpoints; [`remote::AsyncBackend`] overlaps I/O-bound
//!   work without an async runtime.
//! * [`service`] — the **experiment service daemon** over the same seam:
//!   a bounded job queue and scheduler dispatching onto any backend, a
//!   two-tier content-addressed result cache (in-memory LRU over a disk
//!   store, keyed by a SHA-256 of the wire-encoded manifest — a hit is
//!   byte-identical to a fresh run by construction), single-flight
//!   deduplication of identical in-flight requests, a versioned
//!   submit/status/fetch/cancel protocol, and
//!   [`service::ServiceBackend`], which routes any driver's dispatches
//!   through a daemon (`Exec::service`).
//! * [`fleet`] — the **supervised fleet layer** shared by the sharded,
//!   remote and service tiers: a process-global warm pool of worker
//!   subprocesses and peer connections (checkout/return, health probes,
//!   max-lifetime recycling), a unified [`fleet::FaultPolicy`] (retry
//!   budget, IO timeout, exponential backoff with seeded jitter,
//!   quarantine of repeat offenders, opt-in shrink-to-zero in-process
//!   fallback) and a deterministic chaos harness
//!   ([`fleet::chaos::FaultInjector`]) proving byte-identical gathers
//!   under injected failure.
//! * [`stats`] — Welford moments, Student-t confidence intervals and batch
//!   means (re-exported by `petri_core::stats` for compatibility).
//! * [`telemetry`] — the **metrics spine** every tier records into: a
//!   dependency-free registry of atomic counters, gauges and log-bucketed
//!   histograms behind one process-global [`telemetry::Telemetry`] handle
//!   (no-op under `REPRO_TELEMETRY=off`), rendered as Prometheus text by
//!   the HTTP gateway ([`service::http`]). Observably inert: recording
//!   never touches scheduling, seeding or gather order, so artifacts are
//!   byte-identical with telemetry on or off.
//! * [`trace`] — **causal job tracing** on top of the metrics spine: a
//!   bounded process-wide span collector with deterministic trace/span
//!   IDs (derived from the manifest SHA-256 + flat slot index),
//!   cross-process propagation over the worker wire protocol, Chrome
//!   trace-event export (`repro trace`, `GET /jobs/<id>/trace`), and a
//!   failure flight recorder. Inert under `REPRO_TRACE=off` with the
//!   same byte-identity guarantee.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod exec;
pub mod fleet;
pub mod grid;
pub mod remote;
pub mod service;
pub mod stats;
pub mod stopping;
pub mod telemetry;
pub mod trace;
pub mod wire;
pub mod worker;

pub use exec::{
    Exec, ExecBackend, ExecError, InProcessBackend, JobRegistry, PortableJob, ShardedBackend,
    TaskManifest,
};
pub use fleet::{chaos::ChaosConfig, fleet_stats, FaultPolicy, FleetSnapshot, FleetStats};
pub use grid::{default_threads, env_threads, Progress, Runner, Segment};
pub use remote::{AsyncBackend, FrameTransport, RemoteBackend};
pub use service::{
    Disposition, JobId, JobProgress, JobState, Service, ServiceBackend, ServiceClient,
    ServiceConfig, ServiceError, ServiceHandle, ServiceStats,
};
pub use stats::{
    describe, student_t_critical, BatchMeans, ConfidenceInterval, ConfidenceLevel, Welford,
};
pub use stopping::{AdaptivePoint, StoppingRule};
pub use telemetry::{telemetry, Telemetry};
pub use trace::{tracer, Tracer};
