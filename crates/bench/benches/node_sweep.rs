//! FIG14/FIG15 regeneration cost: one node-model evaluation per workload
//! (Petri net and DES oracle), plus a reduced full sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use des::{NodeSimParams, Workload};
use wsn::experiments::node_energy::{run_node_sweep, NodeSweepConfig};

fn bench_node_point_petri(c: &mut Criterion) {
    let mut g = c.benchmark_group("node/petri_point_900s");
    for (name, workload) in [
        ("closed", Workload::Closed { interval: 1.0 }),
        ("open", Workload::Open { rate: 1.0 }),
    ] {
        let params = NodeSimParams::paper_defaults(workload, 0.01);
        g.bench_with_input(BenchmarkId::from_parameter(name), &params, |b, p| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                wsn::simulate_node_model(p, seed)
            })
        });
    }
    g.finish();
}

fn bench_node_point_des(c: &mut Criterion) {
    let mut g = c.benchmark_group("node/des_point_900s");
    for (name, workload) in [
        ("closed", Workload::Closed { interval: 1.0 }),
        ("open", Workload::Open { rate: 1.0 }),
    ] {
        let params = NodeSimParams::paper_defaults(workload, 0.01);
        g.bench_with_input(BenchmarkId::from_parameter(name), &params, |b, p| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                des::simulate_node(p, seed)
            })
        });
    }
    g.finish();
}

fn bench_reduced_sweep(c: &mut Criterion) {
    let grid = [1e-9, 0.00177, 0.01, 1.0, 100.0];
    let cfg = NodeSweepConfig {
        horizon: 300.0,
        replications: 1,
        ..Default::default()
    };
    c.bench_function("node/fig14_sweep_5pts_300s", |b| {
        b.iter(|| run_node_sweep(Workload::Closed { interval: 1.0 }, &grid, &cfg))
    });
}

criterion_group! {
    name = benches;
    // Short windows: these benches document magnitudes, not micro-regressions.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(20);
    targets = bench_node_point_petri,
    bench_node_point_des,
    bench_reduced_sweep
}
criterion_main!(benches);
