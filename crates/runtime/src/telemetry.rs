//! The telemetry spine: a dependency-free metrics registry shared by
//! every execution tier.
//!
//! Instrumentation sites across the stack — the simulation engine, the
//! work-stealing grid, the fleet supervisor, the service daemon and its
//! caches — record into three metric kinds:
//!
//! * [`Counter`] — a monotone `u64` (events executed, tasks claimed,
//!   cache hits);
//! * [`Gauge`] — a signed instantaneous level (queue depth);
//! * [`Histogram`] — log-bucketed magnitudes (per-slot wall times,
//!   queue waits, verb latencies) with cheap p50/p90/p99 snapshots.
//!
//! All of it hangs off one process-global [`Telemetry`] handle
//! ([`telemetry()`]). The handle is **observably inert**: metrics are
//! plain relaxed atomics recorded off the result path, recording when
//! disabled (`REPRO_TELEMETRY=off`) is a no-op, and nothing here can
//! influence scheduling, seeding, or gather order — so artifacts are
//! byte-identical with telemetry on or off (enforced by the
//! `observability` integration suite and the `service_ab` overhead
//! gate).
//!
//! Exposition is pull-based: [`Telemetry::render_prometheus`] emits the
//! Prometheus text format served by the HTTP gateway's `/metrics`
//! (`crate::service::http`), and the snapshot accessors back `repro
//! stats --json`.
//!
//! Registration is name-keyed and idempotent: the first
//! `counter("x")`/`histogram("x")` call creates the metric, later calls
//! return the same instance. Hot call sites cache the returned `Arc` in
//! a `OnceLock` so steady-state recording is one atomic add with no
//! registry lock.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of log₂ buckets a [`Histogram`] spreads its samples over —
/// bucket `i` holds values in `[2^(i-1), 2^i)` (bucket 0 holds zero),
/// which covers the full `u64` range.
const BUCKETS: usize = 65;

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed level (e.g. queue depth).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Add `delta` (may be negative) to the level.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Set the level outright.
    #[inline]
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A log₂-bucketed magnitude histogram with quantile snapshots.
///
/// Recording is one relaxed `fetch_add` into the value's bucket plus
/// sum/count updates — no locks, no allocation, safe from any thread.
/// Buckets are powers of two, so quantile estimates are exact to within
/// a factor of two (plenty for latency triage) and the whole structure
/// is a fixed 67-word array.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0u64; BUCKETS].map(AtomicU64::new),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// Bucket index of a value: 0 for 0, else `64 - leading_zeros` (so
/// bucket `i ≥ 1` spans `[2^(i-1), 2^i)`).
#[inline]
fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a [`std::time::Duration`] in nanoseconds (saturating).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A consistent-enough point-in-time summary (individual loads are
    /// relaxed; concurrent recording can skew the quantiles by the
    /// in-flight samples, which is fine for monitoring).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let sum = self.sum.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // Rank of the q-quantile sample, 1-based, clamped into range.
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_bound(i);
                }
            }
            bucket_bound(BUCKETS - 1)
        };
        HistogramSnapshot {
            count,
            sum,
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }

    /// Per-bucket cumulative counts as `(inclusive upper bound, count)`
    /// pairs over the non-empty prefix — the shape Prometheus
    /// `_bucket{le=...}` series want.
    fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        let mut last_nonzero = 0usize;
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        for (i, &c) in counts.iter().enumerate() {
            if c > 0 {
                last_nonzero = i;
            }
        }
        for (i, &c) in counts.iter().enumerate().take(last_nonzero + 1) {
            cum += c;
            out.push((bucket_bound(i), cum));
        }
        out
    }
}

/// Point-in-time histogram summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all sample values.
    pub sum: u64,
    /// Median estimate (upper bound of the median's log₂ bucket).
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

/// A pull-time metrics source: a plain function returning `(name,
/// value)` counter pairs, sampled at every exposition. How subsystems
/// with their own atomic counters (the fleet supervisor) fold into the
/// `/metrics` scrape without double-bookkeeping.
pub type MetricsSource = fn() -> Vec<(&'static str, u64)>;

/// The name-keyed metric tables behind one [`Telemetry`] handle.
#[derive(Debug, Default)]
struct Registry {
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
    sources: Mutex<Vec<MetricsSource>>,
}

/// The process-global metrics handle.
///
/// When disabled, the lookup methods still return working metric
/// instances (so call sites never branch), but every instance is the
/// shared no-op sink that metrics render skips — recording costs one
/// predictable atomic add into a never-exposed cell and the exposition
/// side reports nothing.
#[derive(Debug)]
pub struct Telemetry {
    enabled: bool,
    registry: Registry,
}

impl Telemetry {
    /// Construct a handle with the given enable state (tests; production
    /// uses the [`telemetry()`] global, gated by `REPRO_TELEMETRY`).
    pub fn new(enabled: bool) -> Self {
        Telemetry {
            enabled,
            registry: Registry::default(),
        }
    }

    /// Whether this handle records and exposes metrics.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The counter named `name`, creating it on first use. Disabled
    /// handles return a shared sink that is never exposed.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        if !self.enabled {
            static SINK: OnceLock<Arc<Counter>> = OnceLock::new();
            return Arc::clone(SINK.get_or_init(Arc::default));
        }
        let mut map = self.registry.counters.lock().expect("telemetry lock");
        Arc::clone(map.entry(name).or_default())
    }

    /// The gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        if !self.enabled {
            static SINK: OnceLock<Arc<Gauge>> = OnceLock::new();
            return Arc::clone(SINK.get_or_init(Arc::default));
        }
        let mut map = self.registry.gauges.lock().expect("telemetry lock");
        Arc::clone(map.entry(name).or_default())
    }

    /// Register a pull-time [`MetricsSource`] sampled at every
    /// [`render_prometheus`](Self::render_prometheus) call.
    ///
    /// Sources render **regardless of the enabled flag**: they expose
    /// counters a subsystem maintains for its own correctness (fleet
    /// restart accounting, say), so the telemetry kill switch must not
    /// hide them — it only silences the registry's own metrics.
    pub fn register_source(&self, source: MetricsSource) {
        self.registry
            .sources
            .lock()
            .expect("telemetry lock")
            .push(source);
    }

    /// The histogram named `name`, creating it on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        if !self.enabled {
            static SINK: OnceLock<Arc<Histogram>> = OnceLock::new();
            return Arc::clone(SINK.get_or_init(Arc::default));
        }
        let mut map = self.registry.histograms.lock().expect("telemetry lock");
        Arc::clone(map.entry(name).or_default())
    }

    /// Every counter as `(name, value)`, name-sorted.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        let map = self.registry.counters.lock().expect("telemetry lock");
        map.iter().map(|(&n, c)| (n, c.get())).collect()
    }

    /// Every gauge as `(name, value)`, name-sorted.
    pub fn gauges(&self) -> Vec<(&'static str, i64)> {
        let map = self.registry.gauges.lock().expect("telemetry lock");
        map.iter().map(|(&n, g)| (n, g.get())).collect()
    }

    /// Every histogram as `(name, snapshot)`, name-sorted.
    pub fn histogram_snapshots(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        let map = self.registry.histograms.lock().expect("telemetry lock");
        map.iter().map(|(&n, h)| (n, h.snapshot())).collect()
    }

    /// Render every registered metric in the Prometheus text exposition
    /// format (version 0.0.4): counters as `_total`-suffixed counters
    /// (names already carry the suffix by convention), gauges plain, and
    /// histograms as cumulative `_bucket{le="..."}` series plus `_sum`
    /// and `_count`. Registered [`MetricsSource`]s are sampled next (they
    /// render even when the handle is disabled — see
    /// [`register_source`](Self::register_source)), then `extra` appends
    /// caller-supplied `(name, value)` series — how the gateway folds the
    /// per-service counters (which predate this registry) into one
    /// scrape.
    pub fn render_prometheus(&self, extra: &[(String, u64)]) -> String {
        let mut out = String::new();
        for (name, value) in self.counters() {
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in self.gauges() {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        {
            let map = self.registry.histograms.lock().expect("telemetry lock");
            for (name, h) in map.iter() {
                out.push_str(&format!("# TYPE {name} histogram\n"));
                for (le, cum) in h.cumulative_buckets() {
                    out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
                }
                let s = h.snapshot();
                out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", s.count));
                out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", s.sum, s.count));
            }
        }
        let sources = self.registry.sources.lock().expect("telemetry lock");
        for source in sources.iter() {
            for (name, value) in source() {
                out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
            }
        }
        drop(sources);
        for (name, value) in extra {
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        out
    }
}

/// The process-global [`Telemetry`] handle.
///
/// Enabled unless `REPRO_TELEMETRY` is set to `off`/`false`/`0` (read
/// once, at first use). Disabling is a kill switch for overhead
/// paranoia, not a correctness knob — results are byte-identical either
/// way.
pub fn telemetry() -> &'static Telemetry {
    static GLOBAL: OnceLock<Telemetry> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let off = std::env::var("REPRO_TELEMETRY")
            .map(|v| matches!(v.trim(), "off" | "false" | "0"))
            .unwrap_or(false);
        let t = Telemetry::new(!off);
        // Fold subsystems that keep their own counters into every scrape.
        // Only the global handle carries sources; unit-constructed
        // handles stay empty.
        t.register_source(crate::fleet::fleet_metrics_source);
        t
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_accumulate() {
        let t = Telemetry::new(true);
        let c = t.counter("jobs_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name, same instance.
        assert_eq!(t.counter("jobs_total").get(), 5);
        let g = t.gauge("depth");
        g.add(3);
        g.add(-1);
        assert_eq!(g.get(), 2);
        g.set(10);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn bucket_of_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        // Bucket bound is the inclusive top of each range.
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(11), 2047);
        assert_eq!(bucket_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_are_bucket_accurate() {
        let h = Histogram::default();
        // 100 samples: 90 fast (≈100 ns), 10 slow (≈1 ms).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 90 * 100 + 10 * 1_000_000);
        // p50 and p90 land in the 100-ns bucket [64,127]; p99 in the
        // 1-ms bucket.
        assert_eq!(s.p50, 127);
        assert_eq!(s.p90, 127);
        assert!(s.p99 >= 1_000_000 && s.p99 < 2_097_152, "p99={}", s.p99);
    }

    #[test]
    fn histogram_empty_and_single() {
        let h = Histogram::default();
        let s = h.snapshot();
        assert_eq!((s.count, s.sum, s.p50, s.p99), (0, 0, 0, 0));
        h.record(0);
        let s = h.snapshot();
        assert_eq!((s.count, s.p50, s.p99), (1, 0, 0));
    }

    #[test]
    fn histogram_single_nonzero_sample_pins_every_quantile() {
        let h = Histogram::default();
        h.record(1000);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 1000);
        // One sample: every quantile is that sample's bucket bound.
        assert_eq!(s.p50, 1023);
        assert_eq!(s.p90, 1023);
        assert_eq!(s.p99, 1023);
    }

    #[test]
    fn histogram_top_bucket_saturates_at_u64_max() {
        let h = Histogram::default();
        for _ in 0..3 {
            h.record(u64::MAX);
        }
        h.record(u64::MAX / 2 + 1); // also lands in the top bucket
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        // Sum wraps relaxed-atomically; quantiles must still report the
        // top bucket's inclusive bound, not overflow or truncate.
        assert_eq!(s.p50, u64::MAX);
        assert_eq!(s.p99, u64::MAX);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.last(), Some(&(u64::MAX, 4)));
    }

    #[test]
    fn sources_render_even_when_disabled() {
        fn probe() -> Vec<(&'static str, u64)> {
            vec![("probe_total", 11)]
        }
        let t = Telemetry::new(false);
        t.register_source(probe);
        // The registry itself stays silent when disabled, but sources
        // expose subsystem-owned counters regardless.
        assert_eq!(
            t.render_prometheus(&[]),
            "# TYPE probe_total counter\nprobe_total 11\n"
        );
        let t = Telemetry::new(true);
        t.register_source(probe);
        t.counter("reg_total").inc();
        let text = t.render_prometheus(&[]);
        assert!(text.contains("reg_total 1\n"));
        assert!(text.contains("probe_total 11\n"));
    }

    #[test]
    fn disabled_handle_records_nowhere_and_renders_nothing() {
        let t = Telemetry::new(false);
        assert!(!t.is_enabled());
        t.counter("hidden").add(7);
        t.gauge("hidden_g").set(3);
        t.histogram("hidden_h").record(9);
        assert!(t.counters().is_empty());
        assert!(t.gauges().is_empty());
        assert!(t.histogram_snapshots().is_empty());
        assert_eq!(t.render_prometheus(&[]), "");
    }

    #[test]
    fn prometheus_rendering_shape() {
        let t = Telemetry::new(true);
        t.counter("repro_jobs_total").add(3);
        t.gauge("repro_queue_depth").set(2);
        let h = t.histogram("repro_wait_ns");
        h.record(5);
        h.record(1000);
        let text = t.render_prometheus(&[("repro_extra_total".into(), 9)]);
        assert!(text.contains("# TYPE repro_jobs_total counter\nrepro_jobs_total 3\n"));
        assert!(text.contains("# TYPE repro_queue_depth gauge\nrepro_queue_depth 2\n"));
        assert!(text.contains("# TYPE repro_wait_ns histogram\n"));
        assert!(text.contains("repro_wait_ns_bucket{le=\"7\"} 1\n"));
        assert!(text.contains("repro_wait_ns_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("repro_wait_ns_sum 1005\nrepro_wait_ns_count 2\n"));
        assert!(text.contains("repro_extra_total 9\n"));
    }

    #[test]
    fn cumulative_buckets_are_monotone() {
        let h = Histogram::default();
        for v in [1u64, 2, 2, 700, 700, 700, 1 << 40] {
            h.record(v);
        }
        let buckets = h.cumulative_buckets();
        let mut prev = 0;
        for (_, c) in &buckets {
            assert!(*c >= prev);
            prev = *c;
        }
        assert_eq!(prev, 7);
    }
}
