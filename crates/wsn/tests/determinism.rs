//! Every sweep-based experiment driver must produce **bit-identical**
//! output at 1, 2 and 8 worker threads — the acceptance bar for the
//! flattened `(point × replication)` grid. The result structs all derive
//! `PartialEq` over raw `f64`s, so `assert_eq!` is an exact bits check.
//!
//! (Shard-count invariance — the same drivers across worker subprocesses —
//! is covered by `crates/bench/tests/shard_determinism.rs`, which owns the
//! `repro` worker binary.)

use des::Workload;
use sim_runtime::{Exec, StoppingRule};
use wsn::experiments::ablations::seed_ablation;
use wsn::experiments::cpu_comparison::{run_cpu_comparison, CpuComparisonConfig};
use wsn::experiments::node_energy::{run_node_sweep, NodeSweepConfig};
use wsn::experiments::validation::run_validation;
use wsn::CpuModelParams;

#[test]
fn cpu_comparison_identical_across_thread_counts() {
    let grid = [0.001, 0.3, 0.7, 1.0];
    let run = |threads| {
        run_cpu_comparison(
            0.3,
            &grid,
            &CpuComparisonConfig {
                horizon: 300.0,
                replications: 3,
                exec: Exec::in_process(threads),
                ..Default::default()
            },
        )
    };
    let base = run(1);
    assert_eq!(base, run(2));
    assert_eq!(base, run(8));
}

#[test]
fn node_sweep_identical_across_thread_counts_open() {
    // The open workload is the stochastic one: replications actually
    // average, so fold order matters.
    let grid = [1e-9, 0.00177, 0.1, 10.0];
    let run = |threads| {
        run_node_sweep(
            Workload::Open { rate: 1.0 },
            &grid,
            &NodeSweepConfig {
                horizon: 150.0,
                replications: 4,
                exec: Exec::in_process(threads),
                ..Default::default()
            },
        )
    };
    let base = run(1);
    assert_eq!(base, run(2));
    assert_eq!(base, run(8));
}

#[test]
fn node_sweep_identical_across_thread_counts_closed() {
    let grid = [1e-9, 0.00177, 1.0];
    let run = |threads| {
        run_node_sweep(
            Workload::Closed { interval: 1.0 },
            &grid,
            &NodeSweepConfig {
                horizon: 150.0,
                replications: 1,
                exec: Exec::in_process(threads),
                ..Default::default()
            },
        )
    };
    let base = run(1);
    assert_eq!(base, run(2));
    assert_eq!(base, run(8));
}

#[test]
fn node_sweep_adaptive_identical_across_thread_counts() {
    // The adaptive budget itself (how many replications each point gets)
    // must also be thread-count-invariant.
    let grid = [1e-9, 0.01, 1.0];
    let run = |threads| {
        run_node_sweep(
            Workload::Open { rate: 1.0 },
            &grid,
            &NodeSweepConfig {
                horizon: 120.0,
                exec: Exec::in_process(threads),
                open_rule: Some(StoppingRule::relative(0.08).with_budget(3, 18, 3)),
                ..Default::default()
            },
        )
    };
    let base = run(1);
    assert_eq!(base, run(2));
    assert_eq!(base, run(8));
}

#[test]
fn validation_identical_across_thread_counts() {
    let grid = [1e-9, 0.01, 1.0, 100.0];
    let run = |threads| {
        run_validation(
            Workload::Closed { interval: 1.0 },
            &grid,
            120.0,
            9,
            &Exec::in_process(threads),
            None,
        )
    };
    let base = run(1);
    assert_eq!(base, run(2));
    assert_eq!(base, run(8));
}

#[test]
fn validation_adaptive_identical_across_thread_counts() {
    let grid = [0.01, 1.0];
    let rule = StoppingRule::relative(0.1).with_budget(3, 12, 3);
    let run = |threads| {
        run_validation(
            Workload::Open { rate: 1.0 },
            &grid,
            150.0,
            9,
            &Exec::in_process(threads),
            Some(&rule),
        )
    };
    let base = run(1);
    assert_eq!(base, run(2));
    assert_eq!(base, run(8));
}

#[test]
fn seed_ablation_identical_across_thread_counts() {
    let params = CpuModelParams::paper_defaults(0.3, 0.3);
    let run = |threads| seed_ablation(&params, 200.0, &[3, 9], 0xCAFE, &Exec::in_process(threads));
    let base = run(1);
    assert_eq!(base, run(2));
    assert_eq!(base, run(8));
}
