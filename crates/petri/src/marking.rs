//! Markings: the global token state of a net.
//!
//! A [`Marking`] assigns a [`TokenBag`] to every place. The simulator
//! mutates a single marking in place; analysis code clones markings to
//! explore the reachability graph. For hashing/exploration a canonical
//! sorted form is available via [`Marking::canonical_key`] (FIFO order within
//! a place is a simulation artifact and must not distinguish states).

use crate::ids::PlaceId;
use crate::token::{Color, ColorFilter, TokenBag};

/// The token distribution over all places of a net.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Marking {
    places: Vec<TokenBag>,
}

impl Marking {
    /// A marking with `n` empty places.
    pub fn empty(n: usize) -> Self {
        Marking {
            places: vec![TokenBag::new(); n],
        }
    }

    /// Build from explicit bags (used by [`crate::net::Net::initial_marking`]).
    pub fn from_bags(places: Vec<TokenBag>) -> Self {
        Marking { places }
    }

    /// Number of places.
    #[inline]
    pub fn num_places(&self) -> usize {
        self.places.len()
    }

    /// Total tokens in place `p`.
    #[inline]
    pub fn count(&self, p: PlaceId) -> usize {
        self.places[p.index()].len()
    }

    /// Tokens of color `c` in place `p`.
    #[inline]
    pub fn count_color(&self, p: PlaceId, c: Color) -> usize {
        self.places[p.index()].count_color(c)
    }

    /// Tokens in `p` matching `filter`.
    #[inline]
    pub fn count_matching(&self, p: PlaceId, filter: &ColorFilter) -> usize {
        self.places[p.index()].count_matching(filter)
    }

    /// Deposit one token of color `c` into `p`.
    #[inline]
    pub fn deposit(&mut self, p: PlaceId, c: Color) {
        self.places[p.index()].push(c);
    }

    /// Remove the oldest token in `p` matching `filter`.
    #[inline]
    pub fn withdraw(&mut self, p: PlaceId, filter: &ColorFilter) -> Option<Color> {
        self.places[p.index()].take_matching(filter)
    }

    /// Immutable access to the bag of place `p`.
    #[inline]
    pub fn bag(&self, p: PlaceId) -> &TokenBag {
        &self.places[p.index()]
    }

    /// Total tokens across all places.
    pub fn total_tokens(&self) -> usize {
        self.places.iter().map(TokenBag::len).sum()
    }

    /// A canonical, order-independent key identifying this marking.
    ///
    /// Within each place, colors are sorted; across places the key embeds the
    /// place boundary. Two markings that differ only in FIFO order within a
    /// place map to the same key. Used by the reachability explorer.
    pub fn canonical_key(&self) -> Vec<u32> {
        // Encoding: for each place, the sorted colors followed by the
        // sentinel u32::MAX (colors are u32 but a place can never legally
        // hold a token of color u32::MAX — the builder rejects it).
        let mut key = Vec::with_capacity(self.total_tokens() + self.places.len());
        let mut scratch: Vec<u32> = Vec::new();
        for bag in &self.places {
            scratch.clear();
            scratch.extend(bag.iter().map(|c| c.0));
            scratch.sort_unstable();
            key.extend_from_slice(&scratch);
            key.push(u32::MAX);
        }
        key
    }

    /// Vector of per-place token counts (ignores colors). Handy for
    /// invariant checking and display.
    pub fn count_vector(&self) -> Vec<usize> {
        self.places.iter().map(TokenBag::len).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> PlaceId {
        PlaceId::from_index(i)
    }

    #[test]
    fn empty_marking() {
        let m = Marking::empty(3);
        assert_eq!(m.num_places(), 3);
        assert_eq!(m.total_tokens(), 0);
        assert_eq!(m.count(p(0)), 0);
    }

    #[test]
    fn deposit_withdraw_roundtrip() {
        let mut m = Marking::empty(2);
        m.deposit(p(0), Color(1));
        m.deposit(p(0), Color(2));
        m.deposit(p(1), Color::NONE);
        assert_eq!(m.count(p(0)), 2);
        assert_eq!(m.count(p(1)), 1);
        assert_eq!(m.total_tokens(), 3);
        assert_eq!(m.withdraw(p(0), &ColorFilter::Eq(Color(2))), Some(Color(2)));
        assert_eq!(m.count(p(0)), 1);
        assert_eq!(m.withdraw(p(0), &ColorFilter::Any), Some(Color(1)));
        assert_eq!(m.withdraw(p(0), &ColorFilter::Any), None);
    }

    #[test]
    fn canonical_key_ignores_fifo_order() {
        let mut a = Marking::empty(1);
        a.deposit(p(0), Color(2));
        a.deposit(p(0), Color(1));
        let mut b = Marking::empty(1);
        b.deposit(p(0), Color(1));
        b.deposit(p(0), Color(2));
        assert_ne!(a, b); // FIFO order differs...
        assert_eq!(a.canonical_key(), b.canonical_key()); // ...but the state is the same.
    }

    #[test]
    fn canonical_key_distinguishes_places() {
        let mut a = Marking::empty(2);
        a.deposit(p(0), Color(1));
        let mut b = Marking::empty(2);
        b.deposit(p(1), Color(1));
        assert_ne!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn count_vector_matches() {
        let mut m = Marking::empty(3);
        m.deposit(p(1), Color::NONE);
        m.deposit(p(1), Color(4));
        assert_eq!(m.count_vector(), vec![0, 2, 0]);
    }
}
