//! Discrete-event simulation of the full sensor node (radio + CPU +
//! workload generator).
//!
//! This is the independent cross-check for the SCPN node models of the
//! paper's Figs. 12 (closed workload) and 13 (open workload); the `wsn`
//! crate builds the same system as a colored Petri net, and the test suite
//! requires the two to agree.
//!
//! ## Cycle semantics (reconstructed; see DESIGN.md §5)
//!
//! One event triggers the stage chain
//! `Wait → Receiving → Computation → Transmitting → Wait`:
//!
//! * **Receiving** — radio start-up (0.000194 s) → channel listening
//!   (0.001 s) → packet reception (0.000576 s) → a *communication-handling*
//!   CPU job (DVS overhead + `DVS_3` service) that wakes the CPU if needed.
//!   The radio stays active until the CPU finishes the packet check, then
//!   idles (paper, Sec. VI-A).
//! * **Computation** — a CPU job (DVS overhead + `DVS_1`/`DVS_2` service +
//!   `TaskPerJob × Task_Delay_Per_Job`).
//! * **Transmitting** — same radio sequence as Receiving, then a
//!   communication-handling CPU job; the radio sleeps when the stage ends.
//!
//! The CPU's Power-Down Threshold timer runs whenever its buffer is empty;
//! the CPU-visible gap *inside* a cycle is
//! `0.000194 + 0.001 + 0.000576 = 0.00177 s` — exactly the optimal PDT the
//! paper reports for the closed model.

use crate::kernel::{EventId, EventQueue};
use crate::rng::DesRng;
use energy::{
    ComponentBreakdown, ComponentPower, Energy, NodeBreakdown, PowerState, StateTimes, StateTracker,
};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Workload generator kind.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Workload {
    /// Closed: the next event is generated a fixed interval after the
    /// system returns to `Wait` (Fig. 12, transition `T0` with guard
    /// `#Wait > 0`).
    Closed {
        /// Generator interval (s); the paper uses 1 s.
        interval: f64,
    },
    /// Open: events arrive in a Poisson stream regardless of system state
    /// (Fig. 13); closely spaced events queue and each still triggers a
    /// full cycle.
    Open {
        /// Arrival rate (events/s); the paper uses 1/s.
        rate: f64,
    },
}

/// Parameters of the node simulation (defaults = Table XI).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSimParams {
    /// Workload generator.
    pub workload: Workload,
    /// Radio start-up delay (s): `RadioStartUpDelay_R = _T` = 0.000194.
    pub radio_startup: f64,
    /// Channel-listening time (s): 0.001.
    pub channel_listen: f64,
    /// Packet transmit/receive time (s): `Transmitting_Receiving` 0.000576.
    pub tx_rx_time: f64,
    /// CPU power-up delay (s): 0.253.
    pub cpu_power_up_delay: f64,
    /// CPU Power-Down Threshold (s) — the swept variable of Figs. 14/15.
    pub power_down_threshold: f64,
    /// DVS mode-switch overhead (s): `DVS_Delay` 0.05.
    pub dvs_overhead: f64,
    /// DVS service times (s) for levels 1..=3: `DVS_1` 0.03, `DVS_2` 0.01,
    /// `DVS_3` 0.081578.
    pub dvs_levels: [f64; 3],
    /// DVS level of communication-handling jobs (paper: `Comm == 3.0`).
    pub comm_dvs_level: u8,
    /// DVS level of computation jobs.
    pub comp_dvs_level: u8,
    /// Tasks per computation job (`TaskPerJob`).
    pub tasks_per_job: u32,
    /// Per-task service time (s): `Task_Delay_Per_Job` 1e-6.
    pub task_delay_per_job: f64,
    /// Simulated horizon (s); the paper evaluates 15 min = 900 s.
    pub horizon: f64,
}

impl NodeSimParams {
    /// Table XI parameters with the given workload and threshold.
    pub fn paper_defaults(workload: Workload, power_down_threshold: f64) -> Self {
        NodeSimParams {
            workload,
            radio_startup: 0.000194,
            channel_listen: 0.001,
            tx_rx_time: 0.000576,
            cpu_power_up_delay: 0.253,
            power_down_threshold,
            dvs_overhead: 0.05,
            dvs_levels: [0.03, 0.01, 0.081578],
            comm_dvs_level: 3,
            comp_dvs_level: 1,
            tasks_per_job: 1,
            task_delay_per_job: 1e-6,
            horizon: 900.0,
        }
    }

    /// The CPU-visible gap inside one cycle: radio start-up + listening +
    /// packet time. With Table XI values this is exactly 0.00177 s — the
    /// paper's optimal closed-model PDT.
    pub fn intra_cycle_gap(&self) -> f64 {
        self.radio_startup + self.channel_listen + self.tx_rx_time
    }

    fn comm_job_duration(&self) -> f64 {
        self.dvs_overhead + self.dvs_levels[(self.comm_dvs_level - 1) as usize]
    }

    fn comp_job_duration(&self) -> f64 {
        self.dvs_overhead
            + self.dvs_levels[(self.comp_dvs_level - 1) as usize]
            + self.tasks_per_job as f64 * self.task_delay_per_job
    }
}

/// Results of one node simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSimResult {
    /// CPU dwell times.
    pub cpu_times: StateTimes,
    /// CPU sleep→wake transitions.
    pub cpu_wakeups: u64,
    /// Radio dwell times.
    pub radio_times: StateTimes,
    /// Radio sleep→wake transitions.
    pub radio_wakeups: u64,
    /// Full event cycles completed.
    pub cycles_completed: u64,
    /// Events generated by the workload.
    pub events_generated: u64,
    /// Largest backlog of pending events (open workload only).
    pub max_pending: u64,
}

impl NodeSimResult {
    /// Energy breakdown under the given power tables — one x-position of
    /// Fig. 14/15.
    pub fn breakdown(
        &self,
        cpu_power: &ComponentPower,
        radio_power: &ComponentPower,
    ) -> NodeBreakdown {
        NodeBreakdown {
            cpu: ComponentBreakdown::from_times(&self.cpu_times, cpu_power),
            radio: ComponentBreakdown::from_times(&self.radio_times, radio_power),
        }
    }

    /// Total node energy under the given power tables.
    pub fn total_energy(&self, cpu_power: &ComponentPower, radio_power: &ComponentPower) -> Energy {
        self.breakdown(cpu_power, radio_power).total()
    }
}

/// System stage within one event cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Wait,
    RxStartup,
    RxListen,
    RxData,
    RxHandle,
    CompHandle,
    TxStartup,
    TxListen,
    TxData,
    TxHandle,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    /// Closed-workload generator fires.
    GenFire,
    /// Open-workload Poisson arrival.
    OpenArrival,
    /// The current radio phase (startup/listen/data) completed.
    RadioPhaseDone,
    /// CPU finished powering up.
    CpuWakeupDone,
    /// CPU finished the job at the head of its buffer.
    CpuServiceDone,
    /// CPU idle timer expired.
    CpuPdtExpire,
}

struct Cpu {
    tracker: StateTracker,
    buffer: VecDeque<f64>,
    pdt_timer: Option<EventId>,
    pdt: f64,
    pud: f64,
}

impl Cpu {
    /// Add a job; wake or activate the CPU as needed.
    fn push_job(&mut self, dur: f64, now: f64, q: &mut EventQueue<Ev>) {
        self.buffer.push_back(dur);
        match self.tracker.state() {
            PowerState::Sleep => {
                self.tracker.transition_to(PowerState::Wakeup, now);
                q.schedule_in(self.pud, Ev::CpuWakeupDone);
            }
            PowerState::Wakeup | PowerState::Active => {}
            PowerState::Idle => {
                if let Some(id) = self.pdt_timer.take() {
                    q.cancel(id);
                }
                self.start_head(now, q);
            }
        }
    }

    fn start_head(&mut self, now: f64, q: &mut EventQueue<Ev>) {
        let dur = *self.buffer.front().expect("job available");
        self.tracker.transition_to(PowerState::Active, now);
        q.schedule_in(dur, Ev::CpuServiceDone);
    }

    fn on_wakeup_done(&mut self, now: f64, q: &mut EventQueue<Ev>) {
        debug_assert_eq!(self.tracker.state(), PowerState::Wakeup);
        if self.buffer.is_empty() {
            self.go_idle(now, q);
        } else {
            self.start_head(now, q);
        }
    }

    /// Returns true — a job finished (the caller advances the system stage).
    fn on_service_done(&mut self, now: f64, q: &mut EventQueue<Ev>) {
        debug_assert_eq!(self.tracker.state(), PowerState::Active);
        self.buffer.pop_front().expect("job being served");
        if self.buffer.is_empty() {
            self.go_idle(now, q);
        } else {
            self.start_head(now, q);
        }
    }

    fn go_idle(&mut self, now: f64, q: &mut EventQueue<Ev>) {
        self.tracker.transition_to(PowerState::Idle, now);
        // Priority 1: the power-down timer loses exact ties against
        // work-delivering events, so `PDT == gap` keeps the CPU awake
        // (the boundary the paper's optimum sits on).
        self.pdt_timer = Some(q.schedule_in_pri(self.pdt, 1, Ev::CpuPdtExpire));
    }

    fn on_pdt_expire(&mut self, now: f64) {
        debug_assert_eq!(self.tracker.state(), PowerState::Idle);
        self.pdt_timer = None;
        self.tracker.transition_to(PowerState::Sleep, now);
    }
}

/// Run the node simulation for the given seed (only the open workload is
/// stochastic; the closed model is deterministic, and the seed is unused).
pub fn simulate_node(params: &NodeSimParams, seed: u64) -> NodeSimResult {
    assert!(params.horizon > 0.0, "horizon must be positive");
    assert!(
        (1..=3).contains(&params.comm_dvs_level) && (1..=3).contains(&params.comp_dvs_level),
        "DVS levels are 1..=3"
    );
    assert!(
        params.power_down_threshold >= 0.0,
        "threshold must be non-negative"
    );

    let mut rng = DesRng::seed_from_u64(seed);
    let mut q: EventQueue<Ev> = EventQueue::new();
    let mut cpu = Cpu {
        tracker: StateTracker::new(PowerState::Sleep, 0.0),
        buffer: VecDeque::new(),
        pdt_timer: None,
        pdt: params.power_down_threshold,
        pud: params.cpu_power_up_delay,
    };
    let mut radio = StateTracker::new(PowerState::Sleep, 0.0);
    let mut stage = Stage::Wait;
    let mut pending: u64 = 0;
    let mut max_pending: u64 = 0;
    let mut cycles: u64 = 0;
    let mut events: u64 = 0;

    // Prime the workload.
    match params.workload {
        Workload::Closed { interval } => {
            q.schedule_in(interval, Ev::GenFire);
        }
        Workload::Open { rate } => {
            q.schedule_in(rng.exp(rate), Ev::OpenArrival);
        }
    }

    // Local helper: begin a cycle (system leaves Wait).
    fn begin_cycle(
        stage: &mut Stage,
        radio: &mut StateTracker,
        params: &NodeSimParams,
        now: f64,
        q: &mut EventQueue<Ev>,
    ) {
        debug_assert_eq!(*stage, Stage::Wait);
        *stage = Stage::RxStartup;
        radio.transition_to(PowerState::Wakeup, now);
        q.schedule_in(params.radio_startup, Ev::RadioPhaseDone);
    }

    while let Some(t_next) = q.peek_time() {
        if t_next >= params.horizon {
            break;
        }
        let (now, ev) = q.pop().expect("peeked");
        match ev {
            Ev::GenFire => {
                events += 1;
                begin_cycle(&mut stage, &mut radio, params, now, &mut q);
            }
            Ev::OpenArrival => {
                events += 1;
                let Workload::Open { rate } = params.workload else {
                    unreachable!("open arrival under closed workload")
                };
                q.schedule_in(rng.exp(rate), Ev::OpenArrival);
                if stage == Stage::Wait {
                    begin_cycle(&mut stage, &mut radio, params, now, &mut q);
                } else {
                    pending += 1;
                    max_pending = max_pending.max(pending);
                }
            }
            Ev::RadioPhaseDone => match stage {
                Stage::RxStartup | Stage::TxStartup => {
                    // Radio is up: start channel listening.
                    radio.transition_to(PowerState::Active, now);
                    stage = if stage == Stage::RxStartup {
                        Stage::RxListen
                    } else {
                        Stage::TxListen
                    };
                    q.schedule_in(params.channel_listen, Ev::RadioPhaseDone);
                }
                Stage::RxListen | Stage::TxListen => {
                    stage = if stage == Stage::RxListen {
                        Stage::RxData
                    } else {
                        Stage::TxData
                    };
                    q.schedule_in(params.tx_rx_time, Ev::RadioPhaseDone);
                }
                Stage::RxData | Stage::TxData => {
                    // Packet done: hand to the CPU; radio stays active until
                    // the handler completes (Sec. VI-A).
                    stage = if stage == Stage::RxData {
                        Stage::RxHandle
                    } else {
                        Stage::TxHandle
                    };
                    cpu.push_job(params.comm_job_duration(), now, &mut q);
                }
                _ => unreachable!("radio phase completion in stage {stage:?}"),
            },
            Ev::CpuWakeupDone => cpu.on_wakeup_done(now, &mut q),
            Ev::CpuServiceDone => {
                cpu.on_service_done(now, &mut q);
                match stage {
                    Stage::RxHandle => {
                        // Packet checked: radio idles; computation begins.
                        radio.transition_to(PowerState::Idle, now);
                        stage = Stage::CompHandle;
                        cpu.push_job(params.comp_job_duration(), now, &mut q);
                    }
                    Stage::CompHandle => {
                        // Results ready: wake the radio to transmit.
                        stage = Stage::TxStartup;
                        radio.transition_to(PowerState::Wakeup, now);
                        q.schedule_in(params.radio_startup, Ev::RadioPhaseDone);
                    }
                    Stage::TxHandle => {
                        // Cycle complete: radio sleeps, system waits.
                        radio.transition_to(PowerState::Sleep, now);
                        stage = Stage::Wait;
                        cycles += 1;
                        match params.workload {
                            Workload::Closed { interval } => {
                                q.schedule_in(interval, Ev::GenFire);
                            }
                            Workload::Open { .. } => {
                                if pending > 0 {
                                    pending -= 1;
                                    begin_cycle(&mut stage, &mut radio, params, now, &mut q);
                                }
                            }
                        }
                    }
                    _ => unreachable!("CPU completion in stage {stage:?}"),
                }
            }
            Ev::CpuPdtExpire => cpu.on_pdt_expire(now),
        }
    }

    let (cpu_times, cpu_wakeups) = cpu.tracker.finish(params.horizon);
    let (radio_times, radio_wakeups) = radio.finish(params.horizon);
    NodeSimResult {
        cpu_times,
        cpu_wakeups,
        radio_times,
        radio_wakeups,
        cycles_completed: cycles,
        events_generated: events,
        max_pending,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use energy::{CC2420_RADIO, PXA271_CPU};

    fn closed(pdt: f64) -> NodeSimParams {
        NodeSimParams::paper_defaults(Workload::Closed { interval: 1.0 }, pdt)
    }

    fn open(pdt: f64) -> NodeSimParams {
        NodeSimParams::paper_defaults(Workload::Open { rate: 1.0 }, pdt)
    }

    #[test]
    fn intra_cycle_gap_is_the_magic_constant() {
        // 0.000194 + 0.001 + 0.000576 = 0.00177 exactly.
        let gap = closed(0.1).intra_cycle_gap();
        assert!((gap - 0.00177).abs() < 1e-12, "gap = {gap}");
    }

    #[test]
    fn dwell_times_cover_horizon() {
        let r = simulate_node(&closed(0.01), 1);
        assert!((r.cpu_times.total() - 900.0).abs() < 1e-6);
        assert!((r.radio_times.total() - 900.0).abs() < 1e-6);
    }

    #[test]
    fn closed_model_completes_one_cycle_per_interval() {
        let r = simulate_node(&closed(0.1), 1);
        // Cycle duration ~1.6 s at PDT=0.1 (1 s wait + processing);
        // expect on the order of 900/1.6 ≈ 550 cycles.
        assert!(
            (400..=800).contains(&(r.cycles_completed as i64)),
            "cycles = {}",
            r.cycles_completed
        );
        assert_eq!(r.max_pending, 0, "closed model never queues events");
    }

    #[test]
    fn closed_model_is_deterministic() {
        let a = simulate_node(&closed(0.01), 1);
        let b = simulate_node(&closed(0.01), 999);
        assert_eq!(a, b, "closed model must not depend on the seed");
    }

    #[test]
    fn tiny_pdt_causes_two_wakeups_per_cycle() {
        // PDT below the intra-cycle gap: the CPU sleeps in the TX window
        // and between cycles -> 2 wake-ups per cycle.
        let r = simulate_node(&closed(1e-6), 1);
        let per_cycle = r.cpu_wakeups as f64 / r.cycles_completed as f64;
        assert!(
            (per_cycle - 2.0).abs() < 0.05,
            "wakeups/cycle = {per_cycle}"
        );
    }

    #[test]
    fn moderate_pdt_causes_one_wakeup_per_cycle() {
        // Gap < PDT < inter-cycle gap: idle through the TX window, sleep
        // between events only.
        let r = simulate_node(&closed(0.01), 1);
        let per_cycle = r.cpu_wakeups as f64 / r.cycles_completed as f64;
        assert!(
            (per_cycle - 1.0).abs() < 0.05,
            "wakeups/cycle = {per_cycle}"
        );
    }

    #[test]
    fn huge_pdt_never_sleeps() {
        let r = simulate_node(&closed(100.0), 1);
        assert!(r.cpu_wakeups <= 1, "wakeups = {}", r.cpu_wakeups);
        // Only the initial pre-first-event sleep (~1 s) remains.
        assert!(r.cpu_times.sleep < 1.5, "sleep = {}", r.cpu_times.sleep);
    }

    #[test]
    fn pdt_exactly_at_gap_does_not_sleep_in_gap() {
        // Boundary semantics: at PDT == gap the job deposit and the timer
        // fire simultaneously; FIFO event order lets the deposit win
        // (the paper's optimum sits exactly on this boundary).
        let gap = closed(0.0).intra_cycle_gap();
        let r = simulate_node(&closed(gap), 1);
        let per_cycle = r.cpu_wakeups as f64 / r.cycles_completed as f64;
        assert!(
            (per_cycle - 1.0).abs() < 0.05,
            "wakeups/cycle = {per_cycle}"
        );
    }

    #[test]
    fn optimum_beats_both_extremes_closed() {
        // The paper's headline (Fig. 14): an interior PDT beats both
        // immediate power-down and never-power-down.
        let e = |pdt: f64| {
            simulate_node(&closed(pdt), 1)
                .total_energy(&PXA271_CPU, &CC2420_RADIO)
                .joules()
        };
        let immediate = e(1e-9);
        let optimum = e(0.00177);
        let never = e(1e4);
        assert!(
            optimum < immediate,
            "optimum {optimum} must beat immediate {immediate}"
        );
        assert!(optimum < never, "optimum {optimum} must beat never {never}");
    }

    #[test]
    fn optimum_beats_both_extremes_open() {
        let e = |pdt: f64| {
            simulate_node(&open(pdt), 7)
                .total_energy(&PXA271_CPU, &CC2420_RADIO)
                .joules()
        };
        let immediate = e(1e-9);
        let optimum = e(0.01);
        let never = e(1e4);
        assert!(
            optimum < immediate,
            "optimum {optimum} must beat immediate {immediate}"
        );
        assert!(optimum < never, "optimum {optimum} must beat never {never}");
    }

    #[test]
    fn open_model_queues_bursts() {
        let r = simulate_node(&open(0.01), 3);
        assert!(r.events_generated > 700, "events = {}", r.events_generated);
        // Poisson bursts inevitably overlap a ~0.6 s cycle.
        assert!(r.max_pending >= 1);
        // All queued events eventually trigger cycles (no starvation):
        // completed cycles track generated events minus backlog.
        assert!(r.cycles_completed as i64 >= r.events_generated as i64 - 20);
    }

    #[test]
    fn open_model_reproducible_per_seed() {
        let a = simulate_node(&open(0.05), 11);
        let b = simulate_node(&open(0.05), 11);
        assert_eq!(a, b);
        let c = simulate_node(&open(0.05), 12);
        assert_ne!(a, c);
    }

    #[test]
    fn radio_wakes_twice_per_cycle() {
        let r = simulate_node(&closed(0.01), 1);
        let per_cycle = r.radio_wakeups as f64 / r.cycles_completed as f64;
        assert!(
            (per_cycle - 2.0).abs() < 0.05,
            "radio wakeups/cycle = {per_cycle}"
        );
    }

    #[test]
    fn breakdown_totals_match() {
        let r = simulate_node(&closed(0.01), 1);
        let b = r.breakdown(&PXA271_CPU, &CC2420_RADIO);
        let total = r.total_energy(&PXA271_CPU, &CC2420_RADIO);
        assert!((b.total().joules() - total.joules()).abs() < 1e-12);
        // CPU dominates the node budget with these tables.
        assert!(b.cpu.total().joules() > b.radio.total().joules());
    }
}
