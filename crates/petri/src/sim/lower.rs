//! The lowering pass: compile one (net × rewards) into a flat micro-op
//! program that the lowered engine ([`super::lowered`]) executes directly.
//!
//! The incremental interpreter ([`super::engine`]) still walks the compiled
//! net per event: it matches on the distribution kind and memory policy of
//! every re-scheduled transition, chases `Option<DensePlan>` and CSR
//! indirections, and re-dispatches on condition kinds that are invariant
//! for a given net. This module runs all of those decisions **once per
//! simulator** and serializes the result into one contiguous `u32` arena:
//!
//! * Each transition gets a **fire section** — SUB/ADD count ops (or one
//!   generic-fire op for colored transitions) followed by inline condition
//!   re-evaluation ops (place, threshold, and watching transition baked
//!   into the op stream; the `cond_epoch` dedup machinery is replaced by a
//!   precomputed first-touch-order row) and counter-reward hook ops.
//! * Each transition gets a **recheck section** — one op per timed
//!   transition whose clock may need attention after the firing, with the
//!   *(memory policy × distribution kind)* pair monomorphized into the
//!   opcode itself and the distribution parameters inlined as immediate
//!   words. The per-event `match` on `TimingKind`/`MemoryPolicy`
//!   disappears; an exponential RaceEnable re-check is a single opcode.
//! * A **startup program** replays the interpreter's initial scheduling
//!   pass (every timed transition re-checked in definition order).
//! * Time-based rewards become a flat integration program over dense
//!   accumulator stripes; counter rewards become hook ops.
//!
//! The program encodes *what the interpreter would do*, in the exact same
//! order, drawing from the RNG at the exact same points — the lowered
//! engine's outputs are bit-identical to the interpreter's and the
//! reference engine's, which `tests/lowered_differential.rs` proves on
//! every variant. Feature specialization (scan-vs-heap scheduling,
//! colored-vs-count-only firing) is selected once per net and baked into
//! const-generic instantiations of the hot loop, so the per-event path has
//! no dynamic dispatch left.

use super::engine::{
    CompiledSim, Simulator, TimingKind, COND_GUARD, COND_INHIB_ANY, COND_INHIB_FILTERED,
    COND_INPUT_ANY, COND_INPUT_FILTERED,
};
use super::rewards::RewardSpec;
use crate::expr::{CmpOp, CompiledExpr};
use crate::timing::MemoryPolicy;

/// Reduce a bare `count(place) cmp constant` program to an equivalent
/// count threshold: the boolean is `(count >= need) ^ lt` — i.e. `count >=
/// need` when `lt` is false, `count < need` when true. Counts are `u32`,
/// so every comparison against an in-range constant has such a form
/// (including the always-true/always-false degenerate ends); only `==` /
/// `!=` against a nonzero constant does not.
fn count_cmp_threshold(prog: &CompiledExpr) -> Option<(u32, bool, u32)> {
    const MAX: i64 = u32::MAX as i64;
    let (p, op, v) = prog.as_count_cmp()?;
    let (lt, need) = match op {
        // `count >= v` / `count > v`: v at or below zero is always true
        // (GE with need 0), past the count ceiling never true (LT 0).
        CmpOp::Ge if v <= 0 => (false, 0),
        CmpOp::Ge if v > MAX => (true, 0),
        CmpOp::Ge => (false, v),
        CmpOp::Gt if v < 0 => (false, 0),
        CmpOp::Gt if v >= MAX => (true, 0),
        CmpOp::Gt => (false, v + 1),
        // `count < v` / `count <= v`: mirrored.
        CmpOp::Lt if v <= 0 => (true, 0),
        CmpOp::Lt if v > MAX => (false, 0),
        CmpOp::Lt => (true, v),
        CmpOp::Le if v < 0 => (true, 0),
        CmpOp::Le if v >= MAX => (false, 0),
        CmpOp::Le => (true, v + 1),
        // Equality only reduces at the range ends.
        CmpOp::Eq if v == 0 => (true, 1),
        CmpOp::Eq if !(0..=MAX).contains(&v) => (true, 0),
        CmpOp::Ne if v == 0 => (false, 1),
        CmpOp::Ne if !(0..=MAX).contains(&v) => (false, 0),
        CmpOp::Eq | CmpOp::Ne => return None,
    };
    Some((p, lt, need as u32))
}

/// Transition-count ceiling for the scan scheduler (scalar and batched
/// lowered runs, and the interpreter's batch engine). Below it, the next
/// event is found by scanning the lane's contiguous `fire_at` stripe (at
/// 32 transitions the stripe is 256 bytes — four cache lines); above it,
/// per-lane lazy-deletion 4-ary heaps take over.
pub(super) const SCAN_MAX_TRANSITIONS: usize = 32;

// ---------------------------------------------------------------------------
// Op encoding
// ---------------------------------------------------------------------------
//
// A transition's **fire section** is segment-structured so the dense
// common case executes with *zero opcode dispatch*: one header word
// (segment counts + generic-fire flag), then `n_mov` two-word token moves,
// then `n_cnt` four-word count-condition records, then a variable
// dispatched tail that only carries the rare slow-path work (counter-
// reward hooks, filtered conditions, complex guard programs). Recheck
// sections use fixed-stride opcode records (see below); there the opcode
// *is* the monomorphized (policy × kind) pair.

/// Fire header: bits 0–15 = token-move count, bits 16–30 = count-condition
/// record count, bit 31 = generic colored fire (one trailing tid word).
pub(super) const HDR_GENERIC: u32 = 1 << 31;
/// Token-move place word, bit 31: add (with overflow check) instead of
/// subtract.
pub(super) const MOV_ADD: u32 = 1 << 31;
/// Count-condition place word, bit 31: the condition is `count < need`
/// instead of `count >= need`. Record layout: `[place|inv, need, ci, tid|flags]`.
pub(super) const CNT_INV: u32 = 1 << 31;

// Tail ops: opcode in the low 8 bits, a 24-bit argument in the high bits,
// trailing immediate words with length implied by the opcode.

/// Tail: bump counter accumulator `arg` if past warm-up.
pub(super) const OP_HOOK: u32 = 0;
/// Tail: filtered input condition `arg`: `count_matching(word2,
/// filters[word1]) >= word3`; `word4` = tid|flags.
pub(super) const OP_C_FGE: u32 = 1;
/// Tail: filtered inhibitor condition (same layout as [`OP_C_FGE`],
/// comparison inverted).
pub(super) const OP_C_FLT: u32 = 2;
/// Tail: guard condition `arg` evaluated via compiled program `word1`;
/// `word2` = tid|flags.
pub(super) const OP_C_GUARD: u32 = 3;

// Recheck ops: `arg` = the timed transition to re-check. The opcode fully
// determines (memory policy, distribution kind); parameters are inline.
// Layout: base + kind, policy blocks of 4 (RE, RA, RS). Unlike fire ops,
// every recheck record is padded to a fixed [`RECHECK_STRIDE`]-word
// stride: the executor's common path (clock already settled, nothing to
// do) then walks the section without any opcode dispatch, and parameters
// are only decoded when a clock actually changes.

/// RaceEnable × Exponential re-check: `word1..2` = rate.
pub(super) const OP_RE_EXP: u32 = 9;
/// RaceEnable × Deterministic: `word1..2` = delay (no RNG draw).
pub(super) const OP_RE_DET: u32 = 10;
/// RaceEnable × Uniform: `word1..2` = low, `word3..4` = high.
pub(super) const OP_RE_UNI: u32 = 11;
/// RaceEnable × Erlang: `word1..2` = rate, `word3` = stage count.
pub(super) const OP_RE_ERL: u32 = 12;
/// RaceAge × Exponential (frozen-remaining handling baked in).
pub(super) const OP_RA_EXP: u32 = 13;
/// RaceAge × Deterministic.
pub(super) const OP_RA_DET: u32 = 14;
/// RaceAge × Uniform.
pub(super) const OP_RA_UNI: u32 = 15;
/// RaceAge × Erlang.
pub(super) const OP_RA_ERL: u32 = 16;
/// Resample × Exponential (redraws while enabled-and-scheduled).
pub(super) const OP_RS_EXP: u32 = 17;
/// Resample × Deterministic.
pub(super) const OP_RS_DET: u32 = 18;
/// Resample × Uniform.
pub(super) const OP_RS_UNI: u32 = 19;
/// Resample × Erlang.
pub(super) const OP_RS_ERL: u32 = 20;

/// Bit 31 of a condition op's tid word: the watched transition is
/// immediate (flips maintain the enabled-immediates index).
pub(super) const TID_IMMEDIATE: u32 = 1 << 31;

/// Fixed width of one recheck record (op word + up to two f64 parameters),
/// so the settled-skip walk needs no per-record length decoding.
pub(super) const RECHECK_STRIDE: usize = 5;

/// Split an `f64` into two immediate words (little end first).
fn push_f64(ops: &mut Vec<u32>, x: f64) {
    let b = x.to_bits();
    ops.push(b as u32);
    ops.push((b >> 32) as u32);
}

/// Reassemble an `f64` from two immediate words at `ops[i..i+2]`.
#[inline(always)]
pub(super) fn dec_f64(ops: &[u32], i: usize) -> f64 {
    f64::from_bits(ops[i] as u64 | (ops[i + 1] as u64) << 32)
}

// ---------------------------------------------------------------------------
// Reward lowering
// ---------------------------------------------------------------------------

/// One step of the reward integration program, run per time advance.
#[derive(Debug, Clone, Copy)]
pub(super) enum IntegOp {
    /// `acc_f[acc] += count(place) * dt`.
    Place {
        /// Watched place (raw index).
        place: u32,
        /// Target slot in the lane's `f64` accumulator stripe.
        acc: u32,
    },
    /// `acc_f[acc] += dt` when `(count(place) >= need) ^ lt` holds (a
    /// `count cmp const` predicate lowered to its threshold form).
    PredCnt {
        /// Watched place (raw index).
        place: u32,
        /// Threshold (see [`count_cmp_threshold`]).
        need: u32,
        /// Invert the comparison (`count < need`).
        lt: bool,
        /// Target slot in the lane's `f64` accumulator stripe.
        acc: u32,
    },
    /// `acc_f[acc] += dt` when predicate `prog` holds.
    Pred {
        /// Index into the simulator's compiled predicate programs.
        prog: u32,
        /// Target slot in the lane's `f64` accumulator stripe.
        acc: u32,
    },
}

/// How one registered reward is reported at finalize, mapping the
/// [`super::rewards::RewardId`] order onto the dense accumulator stripes.
#[derive(Debug, Clone, Copy)]
pub(super) enum LoweredReward {
    /// Time integral in `acc_f[i]`, reported as average over observed time.
    Integral(u32),
    /// Counter in `acc_c[i]`, reported as rate over observed time.
    Rate(u32),
    /// Counter in `acc_c[i]`, reported raw.
    Count(u32),
}

// ---------------------------------------------------------------------------
// The lowered program
// ---------------------------------------------------------------------------

/// A complete lowered stepping program for one (net × rewards): one
/// contiguous op arena plus the section table, the startup program, the
/// reward integration program, and the feature-specialization flags that
/// select the hot-loop instantiation.
#[derive(Debug, Clone)]
pub(crate) struct LoweredNet {
    /// The op arena. Transition `ti`'s fire section is
    /// `ops[sec[2*ti]..sec[2*ti+1]]`, its recheck section
    /// `ops[sec[2*ti+1]..sec[2*ti+2]]`.
    pub(super) ops: Vec<u32>,
    /// Section offsets, length `2 * nt + 1`.
    pub(super) sec: Vec<u32>,
    /// Startup program: the initial scheduling pass (each timed transition
    /// re-checked once, in definition order), as recheck ops.
    pub(super) init_ops: Vec<u32>,
    /// Scan scheduling selected (`nt <= SCAN_MAX_TRANSITIONS`).
    pub(super) scan: bool,
    /// Colored/generic features present (generic fire, filtered
    /// conditions, or guards) — selects the hot-loop variant that carries
    /// the slow paths.
    pub(super) colored: bool,
    /// Reward integration program (time-based rewards only).
    pub(super) integ: Vec<IntegOp>,
    /// Stride of the per-lane `f64` accumulator stripe.
    pub(super) n_integ: usize,
    /// Stride of the per-lane counter accumulator stripe.
    pub(super) n_count: usize,
    /// Per-reward finalize mapping, in registration order.
    pub(super) reward_map: Vec<LoweredReward>,
}

impl LoweredNet {
    /// Lower `sim`'s compiled net and reward set into a flat program.
    pub(crate) fn build(sim: &Simulator<'_>) -> Self {
        let net = sim.net;
        let cs = &sim.compiled;
        let nt = net.num_transitions();
        let nc = cs.conds.len();
        let np = net.num_places();
        assert!(nc < (1 << 24), "condition index must fit a 24-bit op arg");
        assert!(np < (1 << 24), "place index must fit a 24-bit op arg");
        assert!(nt < (1 << 24), "transition index must fit a 24-bit op arg");

        // --- rewards: dense accumulator slots + finalize mapping ---
        let mut integ = Vec::new();
        let mut reward_map = Vec::with_capacity(sim.rewards.len());
        let mut counter_idx = vec![u32::MAX; sim.rewards.len()];
        let (mut n_integ, mut n_count) = (0u32, 0u32);
        for (i, spec) in sim.rewards.iter().enumerate() {
            match spec {
                RewardSpec::PlaceTokens(p) => {
                    integ.push(IntegOp::Place {
                        place: p.index() as u32,
                        acc: n_integ,
                    });
                    reward_map.push(LoweredReward::Integral(n_integ));
                    n_integ += 1;
                }
                RewardSpec::Predicate(_) => {
                    let prog = sim.pred_progs[i]
                        .as_ref()
                        .expect("predicate reward has a compiled program");
                    integ.push(match count_cmp_threshold(prog) {
                        Some((place, lt, need)) => IntegOp::PredCnt {
                            place,
                            need,
                            lt,
                            acc: n_integ,
                        },
                        None => IntegOp::Pred {
                            prog: i as u32,
                            acc: n_integ,
                        },
                    });
                    reward_map.push(LoweredReward::Integral(n_integ));
                    n_integ += 1;
                }
                RewardSpec::Throughput(_) => {
                    counter_idx[i] = n_count;
                    reward_map.push(LoweredReward::Rate(n_count));
                    n_count += 1;
                }
                RewardSpec::FiringCount(_) => {
                    counter_idx[i] = n_count;
                    reward_map.push(LoweredReward::Count(n_count));
                    n_count += 1;
                }
            }
        }
        assert!(n_integ < (1 << 24) && n_count < (1 << 24));

        // --- per-transition fire + recheck sections ---
        let mut ops: Vec<u32> = Vec::new();
        let mut sec: Vec<u32> = Vec::with_capacity(2 * nt + 1);
        sec.push(0);
        let mut colored = false;
        let mut seen = vec![false; nc];
        let mut trow: Vec<u32> = Vec::new();
        let mut tail: Vec<u32> = Vec::new();
        for ti in 0..nt {
            // Header slot (counts patched once the section is laid out).
            let hdr_at = ops.len();
            ops.push(0);
            let mut hdr = 0u32;
            // Token movement: the dense plan inlined as flagged
            // (place, multiplicity) pairs, or one generic-fire tid word.
            let mut n_mov = 0u32;
            match &cs.plans[ti] {
                Some(plan) => {
                    let (i0, i1) = plan.ins;
                    for &(p, m) in &cs.plan_dat[i0 as usize..i1 as usize] {
                        ops.extend([p, m]);
                        n_mov += 1;
                    }
                    let (o0, o1) = plan.outs;
                    for &(p, m) in &cs.plan_dat[o0 as usize..o1 as usize] {
                        ops.extend([p | MOV_ADD, m]);
                        n_mov += 1;
                    }
                }
                None => {
                    colored = true;
                    hdr |= HDR_GENERIC;
                    ops.push(ti as u32);
                }
            }
            assert!(n_mov < (1 << 16), "token moves must fit the header");
            // Conditions whose truth can change when `ti` fires, from the
            // precomputed first-touch row (all token moves complete before
            // any condition re-evaluation, so the flat row is equivalent
            // to the per-place walk + epoch dedup; conditions never draw
            // RNG and their flips commute, so splitting them into the
            // count segment + dispatched tail preserves bit-identity).
            trow.clear();
            for &p in cs.touched.row(ti) {
                for &ci in cs.place_conds.row(p as usize) {
                    if !seen[ci as usize] {
                        seen[ci as usize] = true;
                        trow.push(ci);
                    }
                }
            }
            for &ci in &trow {
                seen[ci as usize] = false;
            }
            let mut n_cnt = 0u32;
            tail.clear();
            for &ci in &trow {
                let cond = &cs.conds[ci as usize];
                let mut tf = cond.tid;
                if cs.hot[cond.tid as usize].kind == TimingKind::Immediate {
                    tf |= TID_IMMEDIATE;
                }
                let mut cnt_rec = |ops: &mut Vec<u32>, place: u32, inv: bool, need: u32| {
                    ops.extend([place | if inv { CNT_INV } else { 0 }, need, ci, tf]);
                    n_cnt += 1;
                };
                match cond.kind {
                    COND_INPUT_ANY => cnt_rec(&mut ops, cond.place, false, cond.need),
                    COND_INHIB_ANY => cnt_rec(&mut ops, cond.place, true, cond.need),
                    COND_INPUT_FILTERED => {
                        colored = true;
                        tail.extend([OP_C_FGE | ci << 8, cond.aux, cond.place, cond.need, tf]);
                    }
                    COND_INHIB_FILTERED => {
                        colored = true;
                        tail.extend([OP_C_FLT | ci << 8, cond.aux, cond.place, cond.need, tf]);
                    }
                    COND_GUARD => {
                        // A `count(p) cmp const` guard lowers to the same
                        // threshold record as a plain arc condition; only
                        // structurally complex guards keep the compiled
                        // postfix program (and force the slow-path
                        // hot-loop variant).
                        match count_cmp_threshold(&cs.guards[cond.aux as usize]) {
                            Some((p, inv, need)) => cnt_rec(&mut ops, p, inv, need),
                            None => {
                                colored = true;
                                tail.extend([OP_C_GUARD | ci << 8, cond.aux, tf]);
                            }
                        }
                    }
                    _ => unreachable!("invalid condition kind"),
                }
            }
            assert!(n_cnt < (1 << 15), "count conditions must fit the header");
            ops.extend_from_slice(&tail);
            // Counter-reward hooks (post-warmup increments).
            for &ri in &sim.firing_hooks[ti] {
                ops.push(OP_HOOK | counter_idx[ri as usize] << 8);
            }
            ops[hdr_at] = hdr | n_mov | n_cnt << 16;
            sec.push(ops.len() as u32);

            // Recheck section: monomorphized (policy × kind) ops over the
            // compiled recheck row (reference traversal order).
            for &t2 in cs.recheck_timed.row(ti) {
                emit_recheck(&mut ops, cs, t2);
            }
            sec.push(ops.len() as u32);
        }

        // Startup program: the interpreter's initial pass re-checks every
        // timed transition in definition order.
        let mut init_ops = Vec::new();
        for t2 in 0..nt {
            if cs.hot[t2].kind != TimingKind::Immediate {
                emit_recheck(&mut init_ops, cs, t2 as u32);
            }
        }

        LoweredNet {
            ops,
            sec,
            init_ops,
            scan: nt <= SCAN_MAX_TRANSITIONS,
            colored,
            integ,
            n_integ: n_integ as usize,
            n_count: n_count as usize,
            reward_map,
        }
    }
}

/// Emit the monomorphized re-check record for timed transition `t2`,
/// padded to [`RECHECK_STRIDE`] words.
fn emit_recheck(ops: &mut Vec<u32>, cs: &CompiledSim, t2: u32) {
    let hot = &cs.hot[t2 as usize];
    let kind = match hot.kind {
        TimingKind::Exponential => 0,
        TimingKind::Deterministic => 1,
        TimingKind::Uniform => 2,
        TimingKind::Erlang => 3,
        TimingKind::Immediate => unreachable!("immediates are never re-checked"),
    };
    let policy = match hot.memory {
        MemoryPolicy::RaceEnable => 0,
        MemoryPolicy::RaceAge => 1,
        MemoryPolicy::Resample => 2,
    };
    let start = ops.len();
    ops.push((OP_RE_EXP + 4 * policy + kind) | t2 << 8);
    match hot.kind {
        TimingKind::Exponential | TimingKind::Deterministic => push_f64(ops, hot.a),
        TimingKind::Uniform => {
            push_f64(ops, hot.a);
            push_f64(ops, hot.b);
        }
        TimingKind::Erlang => {
            push_f64(ops, hot.a);
            ops.push(hot.k);
        }
        TimingKind::Immediate => unreachable!(),
    }
    ops.resize(start + RECHECK_STRIDE, 0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetBuilder;
    use crate::sim::SimConfig;
    use crate::timing::Timing;

    #[test]
    fn f64_immediates_round_trip() {
        for x in [0.0, -0.0, 1.5, f64::NAN, f64::INFINITY, 1e-300, -42.25] {
            let mut ops = Vec::new();
            push_f64(&mut ops, x);
            assert_eq!(dec_f64(&ops, 0).to_bits(), x.to_bits());
        }
    }

    #[test]
    fn sections_are_contiguous_and_cover_the_arena() {
        let mut b = NetBuilder::new("mm1");
        let q = b.place("q").build();
        b.transition("arrive", Timing::exponential(0.8))
            .output(q, 1)
            .build();
        b.transition("serve", Timing::exponential(1.0))
            .input(q, 1)
            .build();
        let net = b.build().unwrap();
        let mut sim = Simulator::new(&net, SimConfig::for_horizon(10.0));
        sim.reward_place(crate::ids::PlaceId::from_index(0));
        let lw = LoweredNet::build(&sim);
        assert_eq!(lw.sec.len(), 2 * net.num_transitions() + 1);
        assert_eq!(lw.sec[0], 0);
        assert!(lw.sec.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*lw.sec.last().unwrap() as usize, lw.ops.len());
        assert!(lw.scan);
        assert!(!lw.colored);
        assert_eq!(lw.n_integ, 1);
        assert_eq!(lw.n_count, 0);
        // Two exponential RaceEnable transitions: the startup program is
        // two stride-padded OP_RE_EXP records with inline rates.
        assert_eq!(lw.init_ops.len(), 2 * RECHECK_STRIDE);
        assert_eq!(lw.init_ops[0] & 0xff, OP_RE_EXP);
        assert_eq!(dec_f64(&lw.init_ops, 1), 0.8);
        assert_eq!(lw.init_ops[RECHECK_STRIDE] & 0xff, OP_RE_EXP);
        assert_eq!(dec_f64(&lw.init_ops, RECHECK_STRIDE + 1), 1.0);
    }
}
