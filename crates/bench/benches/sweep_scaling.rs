//! ABL-SWEEP-PAR: parallel-sweep scaling — wall time of the same workload
//! at 1, 2, 4, … worker threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use des::Workload;
use wsn::experiments::node_energy::{run_node_sweep, NodeSweepConfig};
use wsn::sweep::parallel_map;

fn bench_parallel_map_scaling(c: &mut Criterion) {
    let inputs: Vec<f64> = (0..16).map(|i| 0.001 + i as f64 * 0.01).collect();
    let mut g = c.benchmark_group("scaling/parallel_map_cpu_des");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    parallel_map(&inputs, threads, |&pdt| {
                        let p = des::CpuSimParams::paper_defaults(pdt, 0.3);
                        des::simulate_cpu(&p, 1).times.total()
                    })
                })
            },
        );
    }
    g.finish();
}

fn bench_node_sweep_scaling(c: &mut Criterion) {
    let grid = [1e-9, 0.00177, 0.01, 0.1, 1.0, 10.0, 100.0, 0.005];
    let mut g = c.benchmark_group("scaling/node_sweep");
    g.sample_size(10);
    for threads in [1usize, 4] {
        let cfg = NodeSweepConfig {
            horizon: 300.0,
            replications: 1,
            exec: sim_runtime::Exec::in_process(threads),
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(threads), &cfg, |b, cfg| {
            b.iter(|| run_node_sweep(Workload::Closed { interval: 1.0 }, &grid, cfg))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Short windows: these benches document magnitudes, not micro-regressions.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(20);
    targets = bench_parallel_map_scaling, bench_node_sweep_scaling
}
criterion_main!(benches);
