//! The simulation engine: enabling, scheduling, firing, reward integration.
//!
//! This is the *incremental* engine. All static structure is compiled once
//! per [`Simulator`] (see `CompiledSim`), and the per-event work is driven
//! by incrementally maintained dynamic state:
//!
//! * **Enabling** is tracked as a per-transition *unsatisfied-condition
//!   counter*. Every input arc, inhibitor arc, and guard is flattened into
//!   a condition record indexed (CSR adjacency) by the places it reads;
//!   when a firing moves tokens, only the conditions watching the touched
//!   places are re-evaluated, and a transition's enabled bit flips exactly
//!   when its counter crosses zero. `is_enabled` full rescans survive only
//!   as `debug_assert!` cross-checks.
//! * **Immediate selection** reads an incrementally maintained
//!   enabled-immediates index instead of rescanning every immediate
//!   transition per vanishing-loop iteration.
//! * **Guards** and predicate rewards run as flat postfix programs
//!   ([`crate::expr`]'s `CompiledExpr`) over the marking's dense count
//!   vector — no tree walking mid-simulation.
//! * **Firing** of fully-uncolored transitions follows a precompiled dense
//!   plan: straight `u32` add/sub on the count vector, with no color
//!   filters, consumed-token bookkeeping, or color-expression evaluation.
//! * **Scheduling re-checks** after a firing walk a per-transition list
//!   precompiled from the dependency index (the traversal is static), in
//!   exactly the reference engine's order — the order determines which
//!   transition consumes which RNG draw.
//! * **Reward counters** are bumped through a per-transition dispatch index
//!   built once per run, not a per-firing scan over all accumulators.
//! * **The event queue** is a flat 4-ary min-heap over `(time, tid, gen)`
//!   with O(1) lazy cancellation via generation counters (cancellation is
//!   far more frequent than firing in conflict-heavy nets, so O(log n)
//!   eager removal loses).
//!
//! The original engine is preserved verbatim in [`super::reference`];
//! [`Simulator::run_reference`] runs it. Both engines consume the RNG in
//! exactly the same order, so trajectories are **bit-identical** — the
//! differential test suite (`tests/differential.rs`) proves it per commit.

use super::rewards::{RewardId, RewardSpec, RewardSpecError};
use super::trace::{TraceBuffer, TraceEvent};
use crate::error::SimError;
use crate::expr::CompiledExpr;
use crate::ids::{PlaceId, TransitionId};
use crate::marking::Marking;
use crate::net::Net;
use crate::rng::SimRng;
use crate::timing::{MemoryPolicy, Timing};
use crate::token::{Color, ColorFilter};
use crate::transition::Transition;

/// Run-independent simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Simulated time horizon (seconds).
    pub end_time: f64,
    /// Rewards are only accumulated after this much simulated time
    /// (steady-state warm-up deletion). Default 0.
    pub warmup: f64,
    /// Abort with [`SimError::ImmediateLivelock`] after this many firings
    /// without time advancing. Default 100 000.
    pub max_zero_time_firings: u64,
    /// Abort with [`SimError::TokenOverflow`] if any place exceeds this
    /// token count. Default 1 000 000.
    pub max_tokens_per_place: usize,
    /// Record up to this many firings in the output trace. Default 0 (off).
    pub trace_capacity: usize,
}

impl SimConfig {
    /// Config with the given horizon and library defaults for everything
    /// else.
    pub fn for_horizon(end_time: f64) -> Self {
        SimConfig {
            end_time,
            warmup: 0.0,
            max_zero_time_firings: 100_000,
            max_tokens_per_place: 1_000_000,
            trace_capacity: 0,
        }
    }

    /// Builder-style: set the warm-up window.
    pub fn with_warmup(mut self, warmup: f64) -> Self {
        self.warmup = warmup;
        self
    }

    /// Builder-style: enable trace recording.
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }
}

/// Token limit actually enforced by the engines: place counts are stored
/// as `u32` (saturating), so limits at or above `u32::MAX` are clamped to
/// keep the overflow guard effective.
pub(crate) fn effective_token_limit(cfg: &SimConfig) -> usize {
    cfg.max_tokens_per_place.min(u32::MAX as usize - 1)
}

/// Results of one simulation run.
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// The configured horizon actually simulated.
    pub end_time: f64,
    /// `end_time - warmup`: the window over which rewards were measured.
    pub observed_time: f64,
    /// One value per configured reward, in [`RewardId`] order.
    pub rewards: Vec<f64>,
    /// Total firings per transition over the whole run (including warm-up).
    pub firing_counts: Vec<u64>,
    /// Marking at the end of the run.
    pub final_marking: Marking,
    /// Recorded firings (empty unless `trace_capacity > 0`).
    pub trace: Vec<TraceEvent>,
    /// Firings not recorded because the trace buffer filled up.
    pub trace_dropped: u64,
}

impl SimOutput {
    /// Value of a configured reward.
    #[inline]
    pub fn reward(&self, id: RewardId) -> f64 {
        self.rewards[id.index()]
    }

    /// Total number of firings across all transitions.
    pub fn total_firings(&self) -> u64 {
        self.firing_counts.iter().sum()
    }
}

// ---------------------------------------------------------------------------
// Compiled static structure
// ---------------------------------------------------------------------------

/// Compressed sparse rows: `row(i)` is a contiguous `&[u32]` — one shared
/// allocation instead of a `Vec<Vec<u32>>`'s per-row pointer chase.
#[derive(Debug, Clone, Default)]
pub(super) struct Csr {
    off: Vec<u32>,
    dat: Vec<u32>,
}

impl Csr {
    fn from_rows(rows: &[Vec<u32>]) -> Csr {
        let mut off = Vec::with_capacity(rows.len() + 1);
        let mut dat = Vec::with_capacity(rows.iter().map(Vec::len).sum());
        off.push(0);
        for row in rows {
            dat.extend_from_slice(row);
            off.push(dat.len() as u32);
        }
        Csr { off, dat }
    }

    #[inline]
    pub(super) fn row(&self, i: usize) -> &[u32] {
        &self.dat[self.off[i] as usize..self.off[i + 1] as usize]
    }
}

/// Timing discriminant, split out so the hot loop never matches on the full
/// [`Timing`] enum through the [`Transition`] struct (and its cold fields).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum TimingKind {
    Immediate,
    Deterministic,
    Exponential,
    Uniform,
    Erlang,
}

/// Dense per-transition scheduling scalars: everything `recheck_timed` and
/// `fire_immediates` need, packed away from the cold `Transition` fields
/// (name strings, arc vectors).
#[derive(Debug, Clone)]
pub(super) struct TransHot {
    pub(super) kind: TimingKind,
    pub(super) memory: MemoryPolicy,
    pub(super) priority: u8,
    pub(super) weight: f64,
    /// Deterministic delay / exponential rate / uniform low / Erlang rate.
    pub(super) a: f64,
    /// Uniform high.
    pub(super) b: f64,
    /// Erlang stage count.
    pub(super) k: u32,
}

impl TransHot {
    fn from_timing(timing: &Timing, memory: MemoryPolicy) -> Self {
        let (kind, priority, weight, a, b, k) = match *timing {
            Timing::Immediate { priority, weight } => {
                (TimingKind::Immediate, priority, weight, 0.0, 0.0, 0)
            }
            Timing::Deterministic { delay } => (TimingKind::Deterministic, 0, 0.0, delay, 0.0, 0),
            Timing::Exponential { rate } => (TimingKind::Exponential, 0, 0.0, rate, 0.0, 0),
            Timing::Uniform { low, high } => (TimingKind::Uniform, 0, 0.0, low, high, 0),
            Timing::Erlang { k, rate } => (TimingKind::Erlang, 0, 0.0, rate, 0.0, k),
        };
        TransHot {
            kind,
            memory,
            priority,
            weight,
            a,
            b,
            k,
        }
    }

    /// Sample a firing delay; must draw from the RNG exactly as
    /// [`Timing::sample_delay`] does (the reference engine relies on it).
    #[inline]
    pub(super) fn sample_delay(&self, rng: &mut SimRng) -> f64 {
        match self.kind {
            TimingKind::Immediate => 0.0,
            TimingKind::Deterministic => self.a,
            TimingKind::Exponential => rng.exp(self.a),
            TimingKind::Uniform => rng.uniform(self.a, self.b),
            TimingKind::Erlang => {
                let mut total = 0.0;
                for _ in 0..self.k {
                    total += rng.exp(self.a);
                }
                total
            }
        }
    }
}

// Condition kinds (SoA record, 16 bytes; filters/guards live in side
// tables referenced through `aux`).
pub(super) const COND_INPUT_ANY: u8 = 0;
pub(super) const COND_INHIB_ANY: u8 = 1;
pub(super) const COND_INPUT_FILTERED: u8 = 2;
pub(super) const COND_INHIB_FILTERED: u8 = 3;
pub(super) const COND_GUARD: u8 = 4;

/// One elementary enabling condition. A transition is enabled iff all of
/// its conditions hold; the engine tracks the number of currently-false
/// conditions per transition.
#[derive(Debug, Clone)]
pub(super) struct Cond {
    pub(super) tid: u32,
    pub(super) kind: u8,
    /// Watched place (arc conditions; unused for guards).
    pub(super) place: u32,
    /// Required token count (inputs) / inhibition threshold (inhibitors).
    pub(super) need: u32,
    /// Index into the filter or guard side table.
    pub(super) aux: u32,
}

/// Precompiled dense firing plan: valid when every input arc consumes
/// color-blind from a count-only place and every output arc deposits plain
/// tokens into one (and no Choice arc would need an RNG draw). Firing is
/// then pure `u32` arithmetic on the count vector.
#[derive(Debug, Clone, Copy)]
pub(super) struct DensePlan {
    /// Range of (place, multiplicity) input entries in `plan_dat`.
    pub(super) ins: (u32, u32),
    /// Range of (place, multiplicity) output entries in `plan_dat`.
    pub(super) outs: (u32, u32),
}

/// Everything the engine precomputes per [`Simulator`] — shared, immutable,
/// reused by every run.
#[derive(Debug, Clone)]
pub(crate) struct CompiledSim {
    pub(super) conds: Vec<Cond>,
    pub(super) filters: Vec<ColorFilter>,
    pub(super) guards: Vec<CompiledExpr>,
    /// Place → indices of conditions that read it (ascending tid).
    pub(super) place_conds: Csr,
    /// Conditions that folded to constant-false at compile time (an input
    /// arc whose filter can never match an uncolored place) keep their
    /// transition permanently disabled via this base count.
    pub(super) base_unsat: Vec<u32>,
    /// Transition → places whose token count changes when it fires
    /// (inputs then outputs, deduplicated, arc order preserved).
    pub(super) touched: Csr,
    /// Transition → timed transitions to re-schedule after it fires, in
    /// exactly the reference engine's traversal order (dependency index
    /// over touched places, then self, then Resample transitions).
    pub(super) recheck_timed: Csr,
    pub(super) hot: Vec<TransHot>,
    pub(super) immediates: Vec<TransitionId>,
    pub(super) plans: Vec<Option<DensePlan>>,
    pub(super) plan_dat: Vec<(u32, u32)>,
    /// Scratch capacity needed by the largest guard program.
    pub(super) guard_stack: usize,
}

impl CompiledSim {
    fn build(net: &Net) -> Self {
        let nt = net.num_transitions();
        let np = net.num_places();
        let mut conds: Vec<Cond> = Vec::new();
        let mut filters: Vec<ColorFilter> = Vec::new();
        let mut guards: Vec<CompiledExpr> = Vec::new();
        let mut place_cond_rows: Vec<Vec<u32>> = vec![Vec::new(); np];
        let mut base_unsat = vec![0u32; nt];
        let mut touched_rows: Vec<Vec<u32>> = Vec::with_capacity(nt);
        let mut hot = Vec::with_capacity(nt);
        let mut plans: Vec<Option<DensePlan>> = Vec::with_capacity(nt);
        let mut plan_dat: Vec<(u32, u32)> = Vec::new();
        let mut guard_stack = 0usize;
        let mut guard_places: Vec<PlaceId> = Vec::new();

        for (ti, t) in net.transitions().iter().enumerate() {
            let tid = ti as u32;
            hot.push(TransHot::from_timing(&t.timing, t.memory));

            // --- enabling conditions ---
            for arc in &t.inputs {
                let p = arc.place.index();
                let colored = net.place_may_hold_colors(arc.place);
                let cond = match (&arc.filter, colored) {
                    (ColorFilter::Any, _) => Some(Cond {
                        tid,
                        kind: COND_INPUT_ANY,
                        place: p as u32,
                        need: arc.multiplicity,
                        aux: 0,
                    }),
                    (f, true) => {
                        filters.push(f.clone());
                        Some(Cond {
                            tid,
                            kind: COND_INPUT_FILTERED,
                            place: p as u32,
                            need: arc.multiplicity,
                            aux: (filters.len() - 1) as u32,
                        })
                    }
                    (f, false) if f.matches(Color::NONE) => Some(Cond {
                        tid,
                        kind: COND_INPUT_ANY,
                        place: p as u32,
                        need: arc.multiplicity,
                        aux: 0,
                    }),
                    // An uncolored place can never satisfy this filter: the
                    // transition is structurally dead.
                    _ => None,
                };
                match cond {
                    Some(cond) => {
                        place_cond_rows[p].push(conds.len() as u32);
                        conds.push(cond);
                    }
                    None => base_unsat[ti] += 1,
                }
            }

            for inh in &t.inhibitors {
                let p = inh.place.index();
                let colored = net.place_may_hold_colors(inh.place);
                let cond = match (&inh.filter, colored) {
                    (ColorFilter::Any, _) => Some(Cond {
                        tid,
                        kind: COND_INHIB_ANY,
                        place: p as u32,
                        need: inh.threshold,
                        aux: 0,
                    }),
                    (f, true) => {
                        filters.push(f.clone());
                        Some(Cond {
                            tid,
                            kind: COND_INHIB_FILTERED,
                            place: p as u32,
                            need: inh.threshold,
                            aux: (filters.len() - 1) as u32,
                        })
                    }
                    (f, false) if f.matches(Color::NONE) => Some(Cond {
                        tid,
                        kind: COND_INHIB_ANY,
                        place: p as u32,
                        need: inh.threshold,
                        aux: 0,
                    }),
                    // The filter can never match: the inhibitor never trips.
                    _ => None,
                };
                if let Some(cond) = cond {
                    place_cond_rows[p].push(conds.len() as u32);
                    conds.push(cond);
                }
            }

            if let Some(g) = &t.guard {
                let prog = CompiledExpr::compile(g);
                guard_stack = guard_stack.max(prog.stack_needed());
                guards.push(prog);
                guard_places.clear();
                g.collect_places(&mut guard_places);
                guard_places.sort_unstable();
                guard_places.dedup();
                for gp in &guard_places {
                    place_cond_rows[gp.index()].push(conds.len() as u32);
                }
                conds.push(Cond {
                    tid,
                    kind: COND_GUARD,
                    place: 0,
                    need: 0,
                    aux: (guards.len() - 1) as u32,
                });
            }

            // --- touched places (inputs then outputs, dedup) ---
            let mut tp: Vec<u32> = Vec::with_capacity(t.inputs.len() + t.outputs.len());
            for place in t
                .inputs
                .iter()
                .map(|a| a.place)
                .chain(t.outputs.iter().map(|a| a.place))
            {
                let p = place.index() as u32;
                if !tp.contains(&p) {
                    tp.push(p);
                }
            }
            touched_rows.push(tp);

            // --- dense firing plan ---
            let dense_ok = t
                .inputs
                .iter()
                .all(|a| !net.place_may_hold_colors(a.place) && a.filter.matches(Color::NONE))
                && t.outputs.iter().all(|a| {
                    !net.place_may_hold_colors(a.place)
                        && match &a.color {
                            crate::arc::ColorExpr::Const(c) => *c == Color::NONE,
                            // Transfer from a count-only place always moves a
                            // plain token and draws no RNG.
                            crate::arc::ColorExpr::Transfer { arc_index } => {
                                !net.place_may_hold_colors(t.inputs[*arc_index].place)
                            }
                            // Choice may consume an RNG draw; keep the
                            // general path so the stream stays aligned.
                            crate::arc::ColorExpr::Choice(_) => false,
                        }
                });
            if dense_ok {
                let ins_start = plan_dat.len() as u32;
                plan_dat.extend(
                    t.inputs
                        .iter()
                        .map(|a| (a.place.index() as u32, a.multiplicity)),
                );
                let outs_start = plan_dat.len() as u32;
                plan_dat.extend(
                    t.outputs
                        .iter()
                        .map(|a| (a.place.index() as u32, a.multiplicity)),
                );
                plans.push(Some(DensePlan {
                    ins: (ins_start, outs_start),
                    outs: (outs_start, plan_dat.len() as u32),
                }));
            } else {
                plans.push(None);
            }
        }

        // --- static re-check lists, in the reference engine's order ---
        let resamplers: Vec<u32> = (0..nt)
            .filter(|&ti| {
                hot[ti].kind != TimingKind::Immediate && hot[ti].memory == MemoryPolicy::Resample
            })
            .map(|ti| ti as u32)
            .collect();
        let mut recheck_rows: Vec<Vec<u32>> = Vec::with_capacity(nt);
        let mut seen = vec![false; nt];
        for (ti, t) in net.transitions().iter().enumerate() {
            let mut row: Vec<u32> = Vec::new();
            let mark = |row: &mut Vec<u32>, seen: &mut Vec<bool>, tid: u32| {
                if !seen[tid as usize] {
                    seen[tid as usize] = true;
                    row.push(tid);
                }
            };
            for place in t
                .inputs
                .iter()
                .map(|a| a.place)
                .chain(t.outputs.iter().map(|a| a.place))
            {
                for &tid in net.affected_by(place) {
                    mark(&mut row, &mut seen, tid.0);
                }
            }
            // The fired transition's own clock was consumed by firing.
            mark(&mut row, &mut seen, ti as u32);
            // Resample-policy transitions re-sample on every marking change.
            for &r in &resamplers {
                mark(&mut row, &mut seen, r);
            }
            for &tid in &row {
                seen[tid as usize] = false;
            }
            // Only timed transitions are re-scheduled (the reference engine
            // skips immediates here too, drawing no RNG), so pre-filter.
            row.retain(|&tid| hot[tid as usize].kind != TimingKind::Immediate);
            recheck_rows.push(row);
        }

        let immediates = net
            .transition_ids()
            .filter(|t| net.transition(*t).timing.is_immediate())
            .collect();

        CompiledSim {
            conds,
            filters,
            guards,
            place_conds: Csr::from_rows(&place_cond_rows),
            base_unsat,
            touched: Csr::from_rows(&touched_rows),
            recheck_timed: Csr::from_rows(&recheck_rows),
            hot,
            immediates,
            plans,
            plan_dat,
            guard_stack,
        }
    }

    /// Evaluate one condition against a marking.
    #[inline(always)]
    pub(super) fn eval_cond(&self, marking: &Marking, scratch: &mut Vec<i64>, cond: &Cond) -> bool {
        match cond.kind {
            COND_INPUT_ANY => marking.count_raw(cond.place) >= cond.need,
            COND_INHIB_ANY => marking.count_raw(cond.place) < cond.need,
            COND_INPUT_FILTERED => {
                let filter = &self.filters[cond.aux as usize];
                marking.count_matching(PlaceId(cond.place), filter) >= cond.need as usize
            }
            COND_INHIB_FILTERED => {
                let filter = &self.filters[cond.aux as usize];
                marking.count_matching(PlaceId(cond.place), filter) < cond.need as usize
            }
            COND_GUARD => self.guards[cond.aux as usize].eval_bool(marking, scratch),
            _ => unreachable!("invalid condition kind"),
        }
    }
}

// ---------------------------------------------------------------------------
// Lazily invalidated event heap
// ---------------------------------------------------------------------------

/// One pending firing. Entries are never removed on cancellation — the
/// per-transition generation counter marks them stale, and the main loop
/// discards stale entries as they surface. Min-order on `(time, tid, gen)`:
/// ties at the same instant fire in definition order.
#[derive(Debug, Clone, Copy)]
pub(super) struct HeapEntry {
    pub(super) time: f64,
    pub(super) tid: u32,
    pub(super) gen: u64,
}

#[inline]
pub(super) fn heap_less(a: &HeapEntry, b: &HeapEntry) -> bool {
    match a.time.total_cmp(&b.time) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Greater => false,
        std::cmp::Ordering::Equal => (a.tid, a.gen) < (b.tid, b.gen),
    }
}

// ---------------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------------

/// Which execution engine [`Simulator::run`] (and the batched runners)
/// dispatch to. The trajectory is bit-identical either way — the choice
/// only affects speed — which the differential suites prove on every CI
/// run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The incremental interpreter (`Engine` / `BatchEngine`): walks the
    /// compiled net's CSR tables per event, matching on distribution kind
    /// and memory policy as it goes.
    Interp,
    /// The lowered engine: executes a flat per-net micro-op program with
    /// monomorphized samplers and a feature-specialized hot loop (see
    /// [`super::lower`]). The default.
    Lowered,
}

impl EngineKind {
    /// Resolve the process-wide default: the `REPRO_ENGINE` environment
    /// variable (`interp` | `lowered`) if set, else [`EngineKind::Lowered`].
    pub fn from_env() -> Self {
        match std::env::var("REPRO_ENGINE").as_deref() {
            Ok("interp") => EngineKind::Interp,
            _ => EngineKind::Lowered,
        }
    }
}

/// A configured, reusable simulator for one net.
///
/// Static structure (flattened enabling conditions, compiled guard
/// programs, dense firing plans, per-transition timing scalars and re-check
/// lists) is built once here; immutable afterwards. [`Simulator::run`]
/// takes `&self`, so independent replications can run concurrently on
/// multiple threads.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    pub(super) net: &'a Net,
    pub(super) cfg: SimConfig,
    pub(super) rewards: Vec<RewardSpec>,
    /// Compiled predicate programs, parallel to `rewards` (None for
    /// non-predicate rewards).
    pub(super) pred_progs: Vec<Option<CompiledExpr>>,
    /// `firing_hooks[t]` = indices of counter rewards watching transition
    /// `t`; built here so runs share it instead of rebuilding per seed.
    pub(super) firing_hooks: Vec<Vec<u32>>,
    pub(super) compiled: CompiledSim,
    pub(super) engine: EngineKind,
    /// Lazily-built lowered program (net × rewards × config), shared by
    /// every run and every batch lane. Invalidated when a reward is added.
    pub(super) lowered: std::sync::OnceLock<super::lower::LoweredNet>,
    /// Debug builds shadow the first lowered run per simulator with the
    /// interpreter and assert identical output (cheap, once-per-net oracle
    /// on top of the differential suites).
    #[allow(dead_code)]
    pub(super) shadow_once: std::sync::OnceLock<()>,
}

impl<'a> Simulator<'a> {
    /// Create a simulator for `net` with the given configuration.
    pub fn new(net: &'a Net, cfg: SimConfig) -> Self {
        let firing_hooks = vec![Vec::new(); net.num_transitions()];
        Simulator {
            net,
            cfg,
            rewards: Vec::new(),
            pred_progs: Vec::new(),
            firing_hooks,
            compiled: CompiledSim::build(net),
            engine: EngineKind::from_env(),
            lowered: std::sync::OnceLock::new(),
            shadow_once: std::sync::OnceLock::new(),
        }
    }

    /// Select the execution engine for subsequent runs (builder style).
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// The engine [`Simulator::run`] currently dispatches to.
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// The lowered program for this simulator, building it on first use.
    pub(super) fn lowered_net(&self) -> &super::lower::LoweredNet {
        self.lowered
            .get_or_init(|| super::lower::LoweredNet::build(self))
    }

    /// Register a reward measure; the returned id indexes
    /// [`SimOutput::rewards`]. Predicate expressions are compiled to flat
    /// programs here, at setup time.
    pub fn reward(&mut self, spec: RewardSpec) -> Result<RewardId, RewardSpecError> {
        spec.validate(self.net)?;
        let prog = match &spec {
            RewardSpec::Predicate(e) => Some(CompiledExpr::compile(e)),
            _ => None,
        };
        let id = RewardId(self.rewards.len());
        if let RewardSpec::Throughput(t) | RewardSpec::FiringCount(t) = &spec {
            self.firing_hooks[t.index()].push(id.0 as u32);
        }
        self.rewards.push(spec);
        self.pred_progs.push(prog);
        // The lowered program bakes the reward set in; rebuild on next run.
        self.lowered.take();
        Ok(id)
    }

    /// Convenience: time-average token count of a place.
    pub fn reward_place(&mut self, p: PlaceId) -> RewardId {
        self.reward(RewardSpec::PlaceTokens(p))
            .expect("place id from the same net")
    }

    /// Convenience: fraction of time a predicate holds.
    pub fn reward_predicate(&mut self, e: crate::expr::Expr) -> Result<RewardId, RewardSpecError> {
        self.reward(RewardSpec::Predicate(e))
    }

    /// Convenience: firing count of a transition.
    pub fn reward_firings(&mut self, t: TransitionId) -> RewardId {
        self.reward(RewardSpec::FiringCount(t))
            .expect("transition id from the same net")
    }

    /// The net this simulator runs.
    pub fn net(&self) -> &Net {
        self.net
    }

    /// Number of configured rewards.
    pub fn reward_count(&self) -> usize {
        self.rewards.len()
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Execute one independent run with the given seed, on the engine
    /// selected by [`Simulator::with_engine`] (default: lowered).
    pub fn run(&self, seed: u64) -> Result<SimOutput, SimError> {
        let out = match self.engine {
            EngineKind::Interp => self.run_interp(seed),
            EngineKind::Lowered => self.run_lowered(seed),
        };
        // Telemetry only (run counts and event throughput); recording
        // happens after the run and never touches seeding or results.
        if let Ok(o) = &out {
            let events = o.total_firings();
            let tele = sim_runtime::telemetry();
            tele.counter("engine_runs_total").inc();
            tele.counter("engine_events_total").add(events);
            tele.histogram("engine_run_events").record(events);
        }
        out
    }

    /// Execute one run on the **incremental interpreter**, regardless of
    /// the configured engine. Kept as a differential oracle and A/B
    /// baseline; same seed ⇒ bit-identical output to [`Simulator::run`].
    pub fn run_interp(&self, seed: u64) -> Result<SimOutput, SimError> {
        Engine::new(self, seed).run()
    }

    /// Execute one run on the **lowered engine**, regardless of the
    /// configured engine. Same seed ⇒ bit-identical output to
    /// [`Simulator::run_interp`] and [`Simulator::run_reference`].
    pub fn run_lowered(&self, seed: u64) -> Result<SimOutput, SimError> {
        let out = super::lowered::run_single(self, seed);
        #[cfg(debug_assertions)]
        if self.shadow_once.set(()).is_ok() {
            super::lowered::debug_assert_outputs_eq(&out, &self.run_interp(seed));
        }
        out
    }

    /// Execute one run on the **reference engine** — the original
    /// non-incremental core kept as an executable specification (see
    /// [`super::reference`]). Same seed ⇒ bit-identical output to
    /// [`Simulator::run`]; used by differential tests and benchmarks.
    pub fn run_reference(&self, seed: u64) -> Result<SimOutput, SimError> {
        super::reference::ReferenceEngine::new(self.net, &self.cfg, &self.rewards, seed).run()
    }

    /// Execute `seeds.len()` independent replications together on the
    /// **batched engine** (see [`super::batch::BatchSimulator`]): one
    /// structure-of-arrays pass that amortizes the compiled net across the
    /// batch. Each returned entry is bit-identical to `self.run(seed)` for
    /// the seed at the same index.
    pub fn run_batch(&self, seeds: &[u64]) -> Vec<Result<SimOutput, SimError>> {
        super::batch::BatchSimulator::new(self).run(seeds)
    }
}

// ---------------------------------------------------------------------------
// Engine internals
// ---------------------------------------------------------------------------

/// Per-reward accumulator. Counter rewards are bumped through the
/// per-transition `firing_hooks` dispatch index, never by scanning.
#[derive(Debug, Clone)]
pub(super) enum RewardAcc {
    /// Integral of token count over observed time.
    PlaceTokens { place: PlaceId, integral: f64 },
    /// Integral of the indicator over observed time; the program lives in
    /// `Engine::pred_progs`.
    Predicate { prog: usize, integral: f64 },
    /// Post-warmup firing counter, reported as rate.
    Throughput { count: u64 },
    /// Post-warmup firing counter, reported raw.
    FiringCount { count: u64 },
}

pub(super) const NOT_QUEUED: u32 = u32::MAX;

// Per-transition scheduling state byte: lets the post-firing re-check loop
// skip settled transitions on a single byte compare.
/// Transition is enabled (unsatisfied-condition counter is zero).
pub(super) const ST_ENABLED: u8 = 0b001;
/// Transition has a pending event in the heap.
pub(super) const ST_SCHEDULED: u8 = 0b010;
/// Transition has the Resample memory policy (static).
pub(super) const ST_RESAMPLE: u8 = 0b100;

struct Engine<'a> {
    net: &'a Net,
    cfg: &'a SimConfig,
    /// `cfg.max_tokens_per_place` clamped below the u32 count ceiling.
    max_tokens: usize,
    cs: &'a CompiledSim,
    pred_progs: &'a [Option<CompiledExpr>],
    rng: SimRng,
    now: f64,
    marking: Marking,
    heap: Vec<HeapEntry>,
    /// Pending firing time per transition; NaN = unscheduled.
    fire_at: Vec<f64>,
    /// Generation counter per transition; a heap entry is valid iff its gen
    /// matches. u64 like the reference engine's: wrap-around is
    /// unreachable, so a stale entry can never be revived.
    gen: Vec<u64>,
    /// Frozen remaining delay (RaceAge policy only); NaN = none.
    remaining: Vec<f64>,
    /// Packed (enabled, scheduled, resample) bits per transition; the
    /// re-check fast path reads only this.
    sched_state: Vec<u8>,
    /// Current truth of each flattened condition.
    cond_true: Vec<bool>,
    /// Firing epoch at which each condition was last re-evaluated; dedups
    /// conditions (guards especially) watching several touched places.
    cond_epoch: Vec<u64>,
    epoch: u64,
    /// Per-transition count of false conditions; 0 ⇔ enabled.
    unsat: Vec<u32>,
    /// Enabled immediate transitions (unordered; `imm_pos` locates members).
    enabled_imm: Vec<u32>,
    imm_pos: Vec<u32>,
    firing_counts: Vec<u64>,
    accs: Vec<RewardAcc>,
    /// `firing_hooks[t]` = indices of counter accumulators watching `t`
    /// (borrowed from the simulator; identical across runs).
    firing_hooks: &'a [Vec<u32>],
    /// Scratch stack for compiled guard/predicate programs.
    guard_scratch: Vec<i64>,
    /// Scratch: colors consumed by the current firing, grouped by arc.
    consumed: Vec<Color>,
    consumed_offsets: Vec<usize>,
    /// Scratch for immediate conflict resolution.
    candidates: Vec<u32>,
    weights: Vec<f64>,
    trace: TraceBuffer,
    zero_time_firings: u64,
}

impl<'a> Engine<'a> {
    fn new(sim: &'a Simulator<'a>, seed: u64) -> Self {
        let net = sim.net;
        let cs = &sim.compiled;
        let nt = net.num_transitions();
        let accs: Vec<RewardAcc> = sim
            .rewards
            .iter()
            .enumerate()
            .map(|(i, spec)| match spec {
                RewardSpec::PlaceTokens(p) => RewardAcc::PlaceTokens {
                    place: *p,
                    integral: 0.0,
                },
                RewardSpec::Predicate(_) => RewardAcc::Predicate {
                    prog: i,
                    integral: 0.0,
                },
                RewardSpec::Throughput(_) => RewardAcc::Throughput { count: 0 },
                RewardSpec::FiringCount(_) => RewardAcc::FiringCount { count: 0 },
            })
            .collect();
        let pred_stack = sim
            .pred_progs
            .iter()
            .flatten()
            .map(|p| p.stack_needed())
            .max()
            .unwrap_or(0);
        let mut engine = Engine {
            net,
            cfg: &sim.cfg,
            max_tokens: effective_token_limit(&sim.cfg),
            cs,
            pred_progs: &sim.pred_progs,
            rng: SimRng::seed_from_u64(seed),
            now: 0.0,
            marking: net.initial_marking(),
            heap: Vec::with_capacity(nt * 2),
            fire_at: vec![f64::NAN; nt],
            gen: vec![0; nt],
            remaining: vec![f64::NAN; nt],
            sched_state: {
                let mut st = vec![0u8; nt];
                for (ti, h) in cs.hot.iter().enumerate() {
                    if h.kind != TimingKind::Immediate && h.memory == MemoryPolicy::Resample {
                        st[ti] = ST_RESAMPLE;
                    }
                }
                st
            },
            cond_true: vec![false; cs.conds.len()],
            cond_epoch: vec![0; cs.conds.len()],
            epoch: 0,
            unsat: vec![0; nt],
            enabled_imm: Vec::with_capacity(cs.immediates.len()),
            imm_pos: vec![NOT_QUEUED; nt],
            firing_counts: vec![0; nt],
            accs,
            firing_hooks: &sim.firing_hooks,
            guard_scratch: Vec::with_capacity(cs.guard_stack.max(pred_stack)),
            consumed: Vec::with_capacity(8),
            consumed_offsets: Vec::with_capacity(8),
            candidates: Vec::with_capacity(4),
            weights: Vec::with_capacity(4),
            trace: TraceBuffer::new(sim.cfg.trace_capacity),
            zero_time_firings: 0,
        };
        engine.init_conditions();
        engine
    }

    // ---- incremental enabling ----

    /// Evaluate every condition from scratch and build the enabled sets
    /// (start of run only).
    fn init_conditions(&mut self) {
        let cs = self.cs;
        self.unsat.copy_from_slice(&cs.base_unsat);
        for (ci, cond) in cs.conds.iter().enumerate() {
            let t = cs.eval_cond(&self.marking, &mut self.guard_scratch, cond);
            self.cond_true[ci] = t;
            if !t {
                self.unsat[cond.tid as usize] += 1;
            }
        }
        for ti in 0..self.unsat.len() {
            if self.unsat[ti] == 0 {
                self.sched_state[ti] |= ST_ENABLED;
            }
        }
        for &tid in &cs.immediates {
            if self.unsat[tid.index()] == 0 {
                self.imm_insert(tid.0);
            }
        }
    }

    /// Re-evaluate the conditions watching place `p`, flipping enabled bits
    /// where the truth value changed.
    fn refresh_place(&mut self, p: u32) {
        let cs = self.cs;
        for &ci in cs.place_conds.row(p as usize) {
            if self.cond_epoch[ci as usize] == self.epoch {
                continue;
            }
            self.cond_epoch[ci as usize] = self.epoch;
            let cond = &cs.conds[ci as usize];
            let now_true = cs.eval_cond(&self.marking, &mut self.guard_scratch, cond);
            if now_true == self.cond_true[ci as usize] {
                continue;
            }
            self.cond_true[ci as usize] = now_true;
            let ti = cond.tid as usize;
            let is_imm = cs.hot[ti].kind == TimingKind::Immediate;
            if now_true {
                self.unsat[ti] -= 1;
                if self.unsat[ti] == 0 {
                    self.sched_state[ti] |= ST_ENABLED;
                    if is_imm {
                        self.imm_insert(cond.tid);
                    }
                }
            } else {
                if self.unsat[ti] == 0 {
                    self.sched_state[ti] &= !ST_ENABLED;
                    if is_imm {
                        self.imm_remove(cond.tid);
                    }
                }
                self.unsat[ti] += 1;
            }
        }
    }

    #[inline]
    fn imm_insert(&mut self, tid: u32) {
        debug_assert_eq!(self.imm_pos[tid as usize], NOT_QUEUED);
        self.imm_pos[tid as usize] = self.enabled_imm.len() as u32;
        self.enabled_imm.push(tid);
    }

    #[inline]
    fn imm_remove(&mut self, tid: u32) {
        let i = self.imm_pos[tid as usize];
        debug_assert_ne!(i, NOT_QUEUED);
        self.imm_pos[tid as usize] = NOT_QUEUED;
        self.enabled_imm.swap_remove(i as usize);
        if let Some(&moved) = self.enabled_imm.get(i as usize) {
            self.imm_pos[moved as usize] = i;
        }
    }

    /// The retired full-rescan enabling check, kept as the `debug_assert!`
    /// oracle for the incremental counters.
    #[cfg(debug_assertions)]
    fn is_enabled_slow(&self, t: &Transition) -> bool {
        t.inputs
            .iter()
            .all(|a| self.marking.count_matching(a.place, &a.filter) >= a.multiplicity as usize)
            && t.inhibitors
                .iter()
                .all(|a| self.marking.count_matching(a.place, &a.filter) < a.threshold as usize)
            && t.guard.as_ref().is_none_or(|g| g.eval_bool(&self.marking))
    }

    #[cfg(debug_assertions)]
    fn assert_enabled_consistent(&self, tid: TransitionId) {
        let slow = self.is_enabled_slow(self.net.transition(tid));
        debug_assert_eq!(
            self.unsat[tid.index()] == 0,
            slow,
            "incremental enabled bit diverged from rescan for {:?}",
            self.net.transition(tid).name
        );
    }

    #[cfg(not(debug_assertions))]
    #[inline]
    fn assert_enabled_consistent(&self, _tid: TransitionId) {}

    // ---- event heap (lazy invalidation) ----

    #[inline]
    fn heap_push(&mut self, e: HeapEntry) {
        // 4-ary min-heap, hole-based sift-up: half the depth of a binary
        // heap and one element move per level instead of a swap.
        let mut i = self.heap.len();
        self.heap.push(e);
        while i > 0 {
            let parent = (i - 1) / 4;
            if heap_less(&e, &self.heap[parent]) {
                self.heap[i] = self.heap[parent];
                i = parent;
            } else {
                break;
            }
        }
        self.heap[i] = e;
    }

    fn heap_pop(&mut self) -> Option<HeapEntry> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        let n = self.heap.len();
        if n == 0 {
            return Some(top);
        }
        // Sift the displaced last element down from the root (hole method).
        let mut i = 0;
        loop {
            let c0 = 4 * i + 1;
            if c0 >= n {
                break;
            }
            let mut smallest = c0;
            let cend = (c0 + 4).min(n);
            for c in c0 + 1..cend {
                if heap_less(&self.heap[c], &self.heap[smallest]) {
                    smallest = c;
                }
            }
            if heap_less(&self.heap[smallest], &last) {
                self.heap[i] = self.heap[smallest];
                i = smallest;
            } else {
                break;
            }
        }
        self.heap[i] = last;
        Some(top)
    }

    // ---- scheduling ----

    fn schedule(&mut self, tid: usize, at: f64) {
        self.gen[tid] += 1;
        self.fire_at[tid] = at;
        self.sched_state[tid] |= ST_SCHEDULED;
        self.heap_push(HeapEntry {
            time: at,
            tid: tid as u32,
            gen: self.gen[tid],
        });
    }

    /// O(1) cancellation: bump the generation so the heap entry dies stale.
    fn cancel(&mut self, tid: usize) -> f64 {
        debug_assert!(!self.fire_at[tid].is_nan());
        self.gen[tid] += 1;
        self.sched_state[tid] &= !ST_SCHEDULED;
        let at = self.fire_at[tid];
        self.fire_at[tid] = f64::NAN;
        at
    }

    /// Bring one timed transition's schedule in line with its enabling
    /// status.
    fn recheck_timed(&mut self, tid: TransitionId) {
        self.assert_enabled_consistent(tid);
        let ti = tid.index();
        let hot = &self.cs.hot[ti];
        debug_assert!(hot.kind != TimingKind::Immediate);
        let state = self.sched_state[ti];
        let enabled = state & ST_ENABLED != 0;
        let scheduled = state & ST_SCHEDULED != 0;
        debug_assert_eq!(enabled, self.unsat[ti] == 0);
        debug_assert_eq!(scheduled, !self.fire_at[ti].is_nan());
        match (enabled, scheduled) {
            (true, false) => {
                let delay = if hot.memory == MemoryPolicy::RaceAge && !self.remaining[ti].is_nan() {
                    let r = self.remaining[ti];
                    self.remaining[ti] = f64::NAN;
                    r
                } else {
                    hot.sample_delay(&mut self.rng)
                };
                self.schedule(ti, self.now + delay);
            }
            (true, true) => {
                if hot.memory == MemoryPolicy::Resample {
                    self.cancel(ti);
                    let delay = hot.sample_delay(&mut self.rng);
                    self.schedule(ti, self.now + delay);
                }
                // RaceEnable / RaceAge: clock keeps running.
            }
            (false, true) => {
                let fire_at = self.cancel(ti);
                if hot.memory == MemoryPolicy::RaceAge {
                    self.remaining[ti] = (fire_at - self.now).max(0.0);
                }
            }
            (false, false) => {}
        }
    }

    /// Re-schedule every timed transition whose enabling may have changed
    /// after `fired` moved tokens, walking the precompiled list (reference
    /// traversal order — it determines which transition consumes which RNG
    /// draw).
    fn update_schedules_after(&mut self, fired: TransitionId) {
        // Copy the `&CompiledSim` out of `self` so iterating its rows does
        // not conflict with the `&mut self` calls below (zero-cost: the
        // reference is Copy and outlives the engine's own borrow).
        let cs = self.cs;
        for &tid in cs.recheck_timed.row(fired.index()) {
            // Settled states need no action: enabled-and-scheduled without
            // Resample, or disabled-and-unscheduled. One byte decides.
            let s = self.sched_state[tid as usize];
            if s == ST_ENABLED | ST_SCHEDULED || s & (ST_ENABLED | ST_SCHEDULED) == 0 {
                self.assert_enabled_consistent(TransitionId(tid));
                continue;
            }
            self.recheck_timed(TransitionId(tid));
        }
    }

    // ---- firing ----

    fn fire(&mut self, tid: TransitionId) -> Result<(), SimError> {
        let ti = tid.index();
        // Copy the `&CompiledSim` out of `self` (see update_schedules_after).
        let cs = self.cs;
        if let Some(plan) = &cs.plans[ti] {
            // Dense path: pure count-vector arithmetic.
            let (i0, i1) = plan.ins;
            let (o0, o1) = plan.outs;
            for &(p, m) in &cs.plan_dat[i0 as usize..i1 as usize] {
                self.marking.sub_plain(p, m);
            }
            for &(p, m) in &cs.plan_dat[o0 as usize..o1 as usize] {
                let c = self.marking.add_plain(p, m);
                if c as usize > self.max_tokens {
                    return Err(SimError::TokenOverflow {
                        place: p as usize,
                        time: self.now,
                        limit: self.cfg.max_tokens_per_place,
                    });
                }
            }
        } else {
            let net = self.net;
            let t: &Transition = &net.transitions()[ti];
            self.consumed.clear();
            self.consumed_offsets.clear();
            for arc in &t.inputs {
                self.consumed_offsets.push(self.consumed.len());
                for _ in 0..arc.multiplicity {
                    let c = self
                        .marking
                        .withdraw(arc.place, &arc.filter)
                        .expect("transition fired while not enabled");
                    self.consumed.push(c);
                }
            }
            for arc in &t.outputs {
                for _ in 0..arc.multiplicity {
                    let c = arc
                        .color
                        .eval(&self.consumed, &self.consumed_offsets, &mut self.rng);
                    self.marking.deposit(arc.place, c);
                }
                if self.marking.count(arc.place) > self.max_tokens {
                    return Err(SimError::TokenOverflow {
                        place: arc.place.index(),
                        time: self.now,
                        limit: self.cfg.max_tokens_per_place,
                    });
                }
            }
        }
        // Incremental enabling maintenance: only conditions watching the
        // places this transition touches are re-evaluated (each at most
        // once, via the epoch stamp).
        self.epoch += 1;
        for &p in cs.touched.row(ti) {
            self.refresh_place(p);
        }
        self.firing_counts[ti] += 1;
        if self.cfg.trace_capacity > 0 {
            self.trace.record(self.now, tid);
        }
        if self.now >= self.cfg.warmup && !self.firing_hooks[ti].is_empty() {
            // Dispatch index: no scan over unrelated accumulators.
            for hi in 0..self.firing_hooks[ti].len() {
                let ai = self.firing_hooks[ti][hi] as usize;
                match &mut self.accs[ai] {
                    RewardAcc::Throughput { count } | RewardAcc::FiringCount { count } => {
                        *count += 1
                    }
                    _ => unreachable!("firing hook points at a counter reward"),
                }
            }
        }
        Ok(())
    }

    /// Fire enabled immediates (highest priority first, weighted conflicts)
    /// until none remain enabled — reading the incrementally maintained
    /// enabled-immediates index, not rescanning every immediate.
    fn fire_immediates(&mut self) -> Result<(), SimError> {
        loop {
            #[cfg(debug_assertions)]
            self.assert_imm_index_consistent();
            if self.enabled_imm.is_empty() {
                break;
            }
            // Highest priority wins; collect the tied set.
            self.candidates.clear();
            let mut best_pri = 0u8;
            for i in 0..self.enabled_imm.len() {
                let tid = self.enabled_imm[i];
                let pri = self.cs.hot[tid as usize].priority;
                if self.candidates.is_empty() || pri > best_pri {
                    best_pri = pri;
                    self.candidates.clear();
                    self.candidates.push(tid);
                } else if pri == best_pri {
                    self.candidates.push(tid);
                }
            }
            // The index is unordered; conflict resolution must see the
            // candidates in definition order (reference semantics).
            self.candidates.sort_unstable();
            let chosen = if self.candidates.len() == 1 {
                self.candidates[0]
            } else {
                self.weights.clear();
                for i in 0..self.candidates.len() {
                    self.weights
                        .push(self.cs.hot[self.candidates[i] as usize].weight);
                }
                self.candidates[self.rng.weighted_choice(&self.weights)]
            };
            let chosen = TransitionId(chosen);
            self.fire(chosen)?;
            self.update_schedules_after(chosen);
            self.bump_zero_time_counter()?;
        }
        Ok(())
    }

    /// Cross-check the enabled-immediates index against full rescans.
    #[cfg(debug_assertions)]
    fn assert_imm_index_consistent(&self) {
        for &tid in &self.cs.immediates {
            let in_index = self.imm_pos[tid.index()] != NOT_QUEUED;
            let enabled = self.is_enabled_slow(self.net.transition(tid));
            debug_assert_eq!(
                in_index,
                enabled,
                "enabled-immediates index diverged for {:?}",
                self.net.transition(tid).name
            );
        }
    }

    #[inline]
    fn bump_zero_time_counter(&mut self) -> Result<(), SimError> {
        self.zero_time_firings += 1;
        if self.zero_time_firings > self.cfg.max_zero_time_firings {
            return Err(SimError::ImmediateLivelock {
                time: self.now,
                limit: self.cfg.max_zero_time_firings,
            });
        }
        Ok(())
    }

    // ---- reward integration ----

    /// Integrate time-based rewards over `[self.now, until)`, clipping to
    /// the warm-up boundary.
    fn integrate_rewards(&mut self, until: f64) {
        if self.accs.is_empty() {
            return;
        }
        let from = self.now.max(self.cfg.warmup);
        let dt = until - from;
        if dt <= 0.0 {
            return;
        }
        for acc in &mut self.accs {
            match acc {
                RewardAcc::PlaceTokens { place, integral } => {
                    *integral += self.marking.count(*place) as f64 * dt;
                }
                RewardAcc::Predicate { prog, integral } => {
                    let prog = self.pred_progs[*prog]
                        .as_ref()
                        .expect("predicate reward has a compiled program");
                    if prog.eval_bool(&self.marking, &mut self.guard_scratch) {
                        *integral += dt;
                    }
                }
                RewardAcc::Throughput { .. } | RewardAcc::FiringCount { .. } => {}
            }
        }
    }

    // ---- main loop ----

    fn run(mut self) -> Result<SimOutput, SimError> {
        // Initial scheduling pass over all transitions.
        for tid in self.net.transition_ids() {
            if self.cs.hot[tid.index()].kind != TimingKind::Immediate {
                self.recheck_timed(tid);
            }
        }
        self.fire_immediates()?;

        loop {
            // Surface the next *valid* entry (stale ones die here).
            let next = loop {
                match self.heap.first() {
                    None => break None,
                    Some(e) => {
                        if e.gen == self.gen[e.tid as usize] {
                            break Some(*e);
                        }
                        self.heap_pop();
                    }
                }
            };

            match next {
                Some(e) if e.time < self.cfg.end_time => {
                    self.heap_pop();
                    let tid = TransitionId(e.tid);
                    self.integrate_rewards(e.time);
                    if e.time > self.now {
                        self.zero_time_firings = 0;
                    }
                    self.now = e.time;
                    // Consume the schedule entry.
                    self.fire_at[e.tid as usize] = f64::NAN;
                    self.sched_state[e.tid as usize] &= !ST_SCHEDULED;
                    self.gen[e.tid as usize] += 1;
                    self.fire(tid)?;
                    self.bump_zero_time_counter()?;
                    self.update_schedules_after(tid);
                    self.fire_immediates()?;
                }
                _ => {
                    // No more events before the horizon: integrate the tail
                    // and stop.
                    self.integrate_rewards(self.cfg.end_time);
                    self.now = self.cfg.end_time;
                    break;
                }
            }
        }

        let observed = (self.cfg.end_time - self.cfg.warmup).max(0.0);
        let rewards = self
            .accs
            .iter()
            .map(|acc| match acc {
                RewardAcc::PlaceTokens { integral, .. } | RewardAcc::Predicate { integral, .. } => {
                    if observed > 0.0 {
                        integral / observed
                    } else {
                        0.0
                    }
                }
                RewardAcc::Throughput { count } => {
                    if observed > 0.0 {
                        *count as f64 / observed
                    } else {
                        0.0
                    }
                }
                RewardAcc::FiringCount { count } => *count as f64,
            })
            .collect();

        Ok(SimOutput {
            end_time: self.cfg.end_time,
            observed_time: observed,
            rewards,
            firing_counts: self.firing_counts,
            final_marking: self.marking,
            trace_dropped: self.trace.dropped,
            trace: self.trace.into_events(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetBuilder;
    use crate::expr::Expr;
    use crate::timing::Timing;

    /// Single deterministic transition cycling one token: P -> T(1s) -> P.
    #[test]
    fn deterministic_clock_fires_once_per_second() {
        let mut b = NetBuilder::new("clock");
        let p = b.place("p").tokens(1).build();
        let t = b
            .transition("tick", Timing::deterministic(1.0))
            .input(p, 1)
            .output(p, 1)
            .build();
        let net = b.build().unwrap();
        let mut sim = Simulator::new(&net, SimConfig::for_horizon(10.5));
        let firings = sim.reward_firings(t);
        let out = sim.run(1).unwrap();
        // Fires at t = 1, 2, ..., 10.
        assert_eq!(out.reward(firings), 10.0);
    }

    /// Immediate transitions fire before any time passes.
    #[test]
    fn immediates_fire_at_time_zero() {
        let mut b = NetBuilder::new("imm");
        let a = b.place("a").tokens(3).build();
        let z = b.place("z").build();
        b.transition("move", Timing::immediate())
            .input(a, 1)
            .output(z, 1)
            .build();
        let net = b.build().unwrap();
        let sim = Simulator::new(&net, SimConfig::for_horizon(1.0));
        let out = sim.run(1).unwrap();
        assert_eq!(out.final_marking.count(z), 3);
        assert_eq!(out.final_marking.count(a), 0);
    }

    /// Higher-priority immediates win conflicts outright.
    #[test]
    fn immediate_priority_wins() {
        let mut b = NetBuilder::new("pri");
        let a = b.place("a").tokens(1).build();
        let hi = b.place("hi").build();
        let lo = b.place("lo").build();
        b.transition("to_lo", Timing::immediate_pri(1))
            .input(a, 1)
            .output(lo, 1)
            .build();
        b.transition("to_hi", Timing::immediate_pri(2))
            .input(a, 1)
            .output(hi, 1)
            .build();
        let net = b.build().unwrap();
        let sim = Simulator::new(&net, SimConfig::for_horizon(1.0));
        for seed in 0..20 {
            let out = sim.run(seed).unwrap();
            assert_eq!(out.final_marking.count(hi), 1, "seed {seed}");
            assert_eq!(out.final_marking.count(lo), 0, "seed {seed}");
        }
    }

    /// Equal-priority immediates split according to weight.
    #[test]
    fn immediate_weights_split_conflicts() {
        let mut b = NetBuilder::new("weights");
        let src = b.place("src").build();
        let left = b.place("left").build();
        let right = b.place("right").build();
        // Token generator: one token per second.
        b.transition("gen", Timing::deterministic(1.0))
            .output(src, 1)
            .build();
        b.transition(
            "to_left",
            Timing::Immediate {
                priority: 1,
                weight: 1.0,
            },
        )
        .input(src, 1)
        .output(left, 1)
        .build();
        b.transition(
            "to_right",
            Timing::Immediate {
                priority: 1,
                weight: 3.0,
            },
        )
        .input(src, 1)
        .output(right, 1)
        .build();
        let net = b.build().unwrap();
        let sim = Simulator::new(&net, SimConfig::for_horizon(4000.0));
        let out = sim.run(99).unwrap();
        let l = out.final_marking.count(left) as f64;
        let r = out.final_marking.count(right) as f64;
        let frac = r / (l + r);
        assert!((frac - 0.75).abs() < 0.03, "frac={frac}");
    }

    /// Time-average token count of a place fed at rate 1 and drained at
    /// rate 2 matches M/M/1 with rho = 0.5: E[N] = rho/(1-rho) = 1.
    #[test]
    fn mm1_queue_length() {
        let mut b = NetBuilder::new("mm1");
        let q = b.place("q").build();
        b.transition("arrive", Timing::exponential(1.0))
            .output(q, 1)
            .build();
        b.transition("serve", Timing::exponential(2.0))
            .input(q, 1)
            .build();
        let net = b.build().unwrap();
        let mut sim = Simulator::new(&net, SimConfig::for_horizon(60_000.0).with_warmup(1000.0));
        let n = sim.reward_place(q);
        let out = sim.run(7).unwrap();
        let avg = out.reward(n);
        assert!((avg - 1.0).abs() < 0.08, "E[N]={avg}");
    }

    /// Guards gate enabling: a transition whose guard is false never fires.
    #[test]
    fn guard_blocks_firing() {
        let mut b = NetBuilder::new("guard");
        let p = b.place("p").tokens(1).build();
        let gate = b.place("gate").build(); // stays empty
        let out_p = b.place("out").build();
        let t = b
            .transition("t", Timing::deterministic(0.1))
            .input(p, 1)
            .output(out_p, 1)
            .guard(Expr::count(gate).gt_c(0))
            .build();
        let net = b.build().unwrap();
        let mut sim = Simulator::new(&net, SimConfig::for_horizon(10.0));
        let f = sim.reward_firings(t);
        let out = sim.run(1).unwrap();
        assert_eq!(out.reward(f), 0.0);
        assert_eq!(out.final_marking.count(p), 1);
    }

    /// Inhibitor arcs disable while tokens are present.
    #[test]
    fn inhibitor_blocks_firing() {
        let mut b = NetBuilder::new("inh");
        let p = b.place("p").tokens(1).build();
        let blocker = b.place("blocker").tokens(1).build();
        let out_p = b.place("out").build();
        b.transition("t", Timing::deterministic(0.1))
            .input(p, 1)
            .output(out_p, 1)
            .inhibitor(blocker, 1)
            .build();
        // Drain the blocker at t = 5.
        b.transition("unblock", Timing::deterministic(5.0))
            .input(blocker, 1)
            .build();
        let net = b.build().unwrap();
        let sim = Simulator::new(&net, SimConfig::for_horizon(10.0));
        let out = sim.run(1).unwrap();
        assert_eq!(out.final_marking.count(out_p), 1);
        // Fired only after the blocker drained (t = 5.1), not at 0.1.
    }

    /// RaceEnable: disabling a deterministic transition discards its clock.
    /// A PDT-style timer that keeps getting interrupted never fires.
    #[test]
    fn race_enable_restarts_clock() {
        let mut b = NetBuilder::new("race");
        let idle = b.place("idle").tokens(1).build();
        let buf = b.place("buf").build();
        let slept = b.place("slept").build();
        // Job arrives every 0.5 s and is served instantly.
        b.transition("arrive", Timing::deterministic(0.5))
            .output(buf, 1)
            .build();
        b.transition("serve", Timing::immediate())
            .input(buf, 1)
            .build();
        // Sleep timer: 0.8 s of continuous idleness required; the guard
        // breaks every 0.5 s when a job lands.
        b.transition("sleep", Timing::deterministic(0.8))
            .input(idle, 1)
            .output(slept, 1)
            .guard(Expr::count(buf).eq_c(0))
            .build();
        let net = b.build().unwrap();
        let sim = Simulator::new(&net, SimConfig::for_horizon(100.0));
        let out = sim.run(1).unwrap();
        assert_eq!(
            out.final_marking.count(slept),
            0,
            "timer must restart on every interruption"
        );
    }

    /// RaceAge: the same interrupted timer accumulates age and eventually
    /// fires.
    #[test]
    fn race_age_accumulates() {
        let mut b = NetBuilder::new("age");
        let idle = b.place("idle").tokens(1).build();
        let buf = b.place("buf").build();
        let slept = b.place("slept").build();
        b.transition("arrive", Timing::deterministic(0.5))
            .output(buf, 1)
            .build();
        b.transition("serve", Timing::deterministic(0.1))
            .input(buf, 1)
            .build();
        b.transition("sleep", Timing::deterministic(0.8))
            .input(idle, 1)
            .output(slept, 1)
            .guard(Expr::count(buf).eq_c(0))
            .memory(MemoryPolicy::RaceAge)
            .build();
        let net = b.build().unwrap();
        let sim = Simulator::new(&net, SimConfig::for_horizon(100.0));
        let out = sim.run(1).unwrap();
        assert_eq!(
            out.final_marking.count(slept),
            1,
            "aged timer must eventually fire"
        );
    }

    /// Immediate livelock is detected, not spun on.
    #[test]
    fn immediate_livelock_detected() {
        let mut b = NetBuilder::new("livelock");
        let a = b.place("a").tokens(1).build();
        let z = b.place("z").build();
        b.transition("ab", Timing::immediate())
            .input(a, 1)
            .output(z, 1)
            .build();
        b.transition("ba", Timing::immediate())
            .input(z, 1)
            .output(a, 1)
            .build();
        let net = b.build().unwrap();
        let mut cfg = SimConfig::for_horizon(1.0);
        cfg.max_zero_time_firings = 1000;
        let sim = Simulator::new(&net, cfg);
        assert!(matches!(
            sim.run(1),
            Err(SimError::ImmediateLivelock { .. })
        ));
    }

    /// Unbounded generators trip the token-overflow guard instead of eating
    /// all memory.
    #[test]
    fn token_overflow_detected() {
        let mut b = NetBuilder::new("overflow");
        let q = b.place("q").build();
        b.transition("gen", Timing::deterministic(0.001))
            .output(q, 1)
            .build();
        let net = b.build().unwrap();
        let mut cfg = SimConfig::for_horizon(1e9);
        cfg.max_tokens_per_place = 500;
        let sim = Simulator::new(&net, cfg);
        assert!(matches!(sim.run(1), Err(SimError::TokenOverflow { .. })));
    }

    /// Same seed, same trajectory; different seed, different trajectory.
    #[test]
    fn reproducibility() {
        let mut b = NetBuilder::new("repro");
        let q = b.place("q").build();
        b.transition("arrive", Timing::exponential(1.0))
            .output(q, 1)
            .build();
        b.transition("serve", Timing::exponential(1.5))
            .input(q, 1)
            .build();
        let net = b.build().unwrap();
        let mut sim = Simulator::new(&net, SimConfig::for_horizon(500.0));
        let n = sim.reward_place(q);
        let a = sim.run(42).unwrap();
        let b2 = sim.run(42).unwrap();
        let c = sim.run(43).unwrap();
        assert_eq!(a.reward(n), b2.reward(n));
        assert_eq!(a.firing_counts, b2.firing_counts);
        assert_ne!(a.reward(n), c.reward(n));
    }

    /// Predicate rewards measure conjunction states.
    #[test]
    fn predicate_reward_measures_fraction() {
        let mut b = NetBuilder::new("pred");
        let p = b.place("p").tokens(1).build();
        let q = b.place("q").build();
        // Token oscillates: 1 s in p, 1 s in q.
        b.transition("pq", Timing::deterministic(1.0))
            .input(p, 1)
            .output(q, 1)
            .build();
        b.transition("qp", Timing::deterministic(1.0))
            .input(q, 1)
            .output(p, 1)
            .build();
        let net = b.build().unwrap();
        let mut sim = Simulator::new(&net, SimConfig::for_horizon(1000.0));
        let in_p = sim.reward_predicate(Expr::count(p).gt_c(0)).unwrap();
        let out = sim.run(1).unwrap();
        assert!((out.reward(in_p) - 0.5).abs() < 1e-9);
    }

    /// Warm-up deletion removes the initial transient from rewards.
    #[test]
    fn warmup_excluded_from_rewards() {
        let mut b = NetBuilder::new("warm");
        let p = b.place("p").tokens(1).build();
        let q = b.place("q").build();
        // One-shot move at t = 1: p empty afterwards.
        b.transition("move", Timing::deterministic(1.0))
            .input(p, 1)
            .output(q, 1)
            .build();
        let net = b.build().unwrap();
        let mut sim = Simulator::new(&net, SimConfig::for_horizon(11.0).with_warmup(1.0));
        let avg_p = sim.reward_place(p);
        let out = sim.run(1).unwrap();
        // After warm-up the token is always in q.
        assert_eq!(out.reward(avg_p), 0.0);
        assert_eq!(out.observed_time, 10.0);
    }

    /// Trace recording captures firings in time order.
    #[test]
    fn trace_records_firings() {
        let mut b = NetBuilder::new("trace");
        let p = b.place("p").tokens(1).build();
        let t = b
            .transition("tick", Timing::deterministic(2.0))
            .input(p, 1)
            .output(p, 1)
            .build();
        let net = b.build().unwrap();
        let sim = Simulator::new(&net, SimConfig::for_horizon(7.0).with_trace(10));
        let out = sim.run(1).unwrap();
        let times: Vec<f64> = out.trace.iter().map(|e| e.time).collect();
        assert_eq!(times, vec![2.0, 4.0, 6.0]);
        assert!(out.trace.iter().all(|e| e.transition == t));
    }

    /// Simultaneous deterministic firings resolve in definition order.
    #[test]
    fn simultaneous_firings_use_definition_order() {
        let mut b = NetBuilder::new("tie");
        let a = b.place("a").tokens(1).build();
        let winner = b.place("winner").build();
        let loser = b.place("loser").build();
        // Both want the single token at exactly t = 1.0.
        b.transition("first", Timing::deterministic(1.0))
            .input(a, 1)
            .output(winner, 1)
            .build();
        b.transition("second", Timing::deterministic(1.0))
            .input(a, 1)
            .output(loser, 1)
            .build();
        let net = b.build().unwrap();
        let sim = Simulator::new(&net, SimConfig::for_horizon(2.0));
        for seed in 0..10 {
            let out = sim.run(seed).unwrap();
            assert_eq!(out.final_marking.count(winner), 1, "seed {seed}");
            assert_eq!(out.final_marking.count(loser), 0, "seed {seed}");
        }
    }

    /// Colored tokens flow through Transfer output arcs unchanged.
    #[test]
    fn color_transfer_pipeline() {
        use crate::arc::ColorExpr;
        use crate::token::{Color, ColorFilter};
        let mut b = NetBuilder::new("colors");
        let src = b
            .place("src")
            .token_colored(Color(1))
            .token_colored(Color(2))
            .build();
        let fast = b.place("fast").build();
        let slow = b.place("slow").build();
        let mid = b.place("mid").build();
        // Move everything to mid, preserving colors.
        b.transition("stage", Timing::immediate())
            .input(src, 1)
            .output_colored(mid, 1, ColorExpr::Transfer { arc_index: 0 })
            .build();
        // Color-filtered consumers.
        b.transition("take1", Timing::immediate())
            .input_filtered(mid, 1, ColorFilter::Eq(Color(1)))
            .output(fast, 1)
            .build();
        b.transition("take2", Timing::immediate())
            .input_filtered(mid, 1, ColorFilter::Eq(Color(2)))
            .output(slow, 1)
            .build();
        let net = b.build().unwrap();
        let sim = Simulator::new(&net, SimConfig::for_horizon(1.0));
        let out = sim.run(5).unwrap();
        assert_eq!(out.final_marking.count(fast), 1);
        assert_eq!(out.final_marking.count(slow), 1);
    }

    /// Throughput reward equals firings / observed time.
    #[test]
    fn throughput_reward() {
        let mut b = NetBuilder::new("thru");
        let p = b.place("p").tokens(1).build();
        let t = b
            .transition("tick", Timing::deterministic(0.25))
            .input(p, 1)
            .output(p, 1)
            .build();
        let net = b.build().unwrap();
        let mut sim = Simulator::new(&net, SimConfig::for_horizon(100.0));
        let thru = sim.reward(RewardSpec::Throughput(t)).unwrap();
        let out = sim.run(1).unwrap();
        assert!((out.reward(thru) - 4.0).abs() < 0.05);
    }

    /// Deterministic(0) transitions advance state without advancing time and
    /// do not livelock when they terminate.
    #[test]
    fn zero_delay_deterministic_ok() {
        let mut b = NetBuilder::new("zerodelay");
        let a = b.place("a").tokens(5).build();
        let z = b.place("z").build();
        b.transition("move", Timing::deterministic(0.0))
            .input(a, 1)
            .output(z, 1)
            .build();
        let net = b.build().unwrap();
        let sim = Simulator::new(&net, SimConfig::for_horizon(1.0));
        let out = sim.run(1).unwrap();
        assert_eq!(out.final_marking.count(z), 5);
    }

    /// A filtered input arc on a provably-uncolored place folds to
    /// constant-false: the transition is structurally dead, never fires,
    /// and never panics.
    #[test]
    fn impossible_filter_on_uncolored_place_is_dead() {
        use crate::token::{Color, ColorFilter};
        let mut b = NetBuilder::new("deadfilter");
        let p = b.place("p").tokens(2).build();
        let q = b.place("q").build();
        let t = b
            .transition("never", Timing::immediate())
            .input_filtered(p, 1, ColorFilter::Eq(Color(5)))
            .output(q, 1)
            .build();
        b.transition("drain", Timing::deterministic(1.0))
            .input(p, 1)
            .build();
        let net = b.build().unwrap();
        let mut sim = Simulator::new(&net, SimConfig::for_horizon(10.0));
        let f = sim.reward_firings(t);
        let out = sim.run(3).unwrap();
        assert_eq!(out.reward(f), 0.0);
        assert_eq!(out.final_marking.count(q), 0);
    }

    /// Token limits at or above the u32 count ceiling are clamped so the
    /// overflow guard stays effective (counts saturate, never wrap).
    #[test]
    fn token_limit_clamped_below_u32_ceiling() {
        let mut cfg = SimConfig::for_horizon(1.0);
        cfg.max_tokens_per_place = usize::MAX;
        assert_eq!(effective_token_limit(&cfg), u32::MAX as usize - 1);
        cfg.max_tokens_per_place = 500;
        assert_eq!(effective_token_limit(&cfg), 500);
    }

    /// Lazy heap invalidation: cancelled and rescheduled transitions
    /// never fire at their stale times, and ties at one instant resolve in
    /// definition order.
    #[test]
    fn stale_schedule_entries_are_ignored() {
        let mut b = NetBuilder::new("stale");
        let p = b.place("p").tokens(1).build();
        let gate = b.place("gate").tokens(1).build();
        let out = b.place("out").build();
        // `slow` keeps getting cancelled: `flap` empties the gate every
        // 0.3 s (disabling `slow` via its guard) and refills it instantly.
        b.transition("slow", Timing::deterministic(1.0))
            .input(p, 1)
            .output(out, 1)
            .guard(Expr::count(gate).gt_c(0))
            .build();
        let refill = b.place("refill").build();
        b.transition("flap", Timing::deterministic(0.3))
            .input(gate, 1)
            .output(refill, 1)
            .build();
        b.transition("restore", Timing::immediate())
            .input(refill, 1)
            .output(gate, 1)
            .build();
        let net = b.build().unwrap();
        let sim = Simulator::new(&net, SimConfig::for_horizon(10.0));
        let out_m = sim.run(3).unwrap();
        // RaceEnable: the 1.0 s timer restarts on every 0.3 s interruption
        // and can never elapse.
        assert_eq!(out_m.final_marking.count(out), 0);
        assert_eq!(out_m.final_marking.count(p), 1);
    }
}
