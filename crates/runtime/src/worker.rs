//! The worker half of the executor protocol, over any
//! [`FrameTransport`](crate::remote::FrameTransport).
//!
//! A worker serves **manifest requests** from its transport in a loop: each
//! `M` request frame carries the protocol version, a worker-thread count,
//! and a [`TaskManifest`]; the worker decodes the job through its
//! [`JobRegistry`], executes the manifest on the in-process scheduling
//! core, and answers with one `R` frame **per completed slot, as it
//! completes** (so the parent's progress callback ticks live and the worker
//! never buffers its shard), followed by `D` — or a single `E` frame
//! carrying the lowest-flat-index task error. The loop ends on a graceful
//! shutdown frame (`Q`) or clean EOF; serving several manifests per
//! connection is what lets remote peers survive adaptive stopping rounds
//! and chunk re-dispatch without reconnecting.
//!
//! Two deployments share this loop: `<exe> --worker` over stdin/stdout
//! ([`serve_stdio`]) and `<exe> --worker --listen <addr>` over accepted TCP
//! connections ([`crate::remote::serve_listener`]). Diagnostics belong on
//! stderr in both.

use crate::exec::{frame, JobRegistry, TaskManifest, WIRE_VERSION};
use crate::grid::{run_segments_core, run_segments_core_batched};
use crate::remote::transport::{FrameTransport, StdioTransport};
use crate::wire::{self, Reader, WireError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Why a slot could not be delivered: the task itself failed (reported
/// in-band) vs. the response stream broke (fatal).
enum SlotFailure {
    Task(String),
    Io(String),
}

/// How a serve loop ended (both are clean exits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    /// The peer closed the stream without a shutdown frame. In listen
    /// mode the worker simply accepts the next connection.
    Eof,
    /// An explicit shutdown frame: the worker process should exit.
    Shutdown,
}

/// Serve manifest requests from `transport` until shutdown or EOF.
///
/// Task errors travel in-band (`E` frame) and the loop continues — the
/// worker stays healthy, since the parent learned everything it needs.
/// `Err` is reserved for protocol-level failures (garbage frames, unknown
/// job kinds, I/O errors), after which the transport must be abandoned.
pub fn serve(
    registry: &JobRegistry,
    transport: &mut dyn FrameTransport,
) -> Result<ServeOutcome, WireError> {
    loop {
        let request = match transport
            .recv()
            .map_err(|e| WireError::new(format!("request read failed: {e}")))?
        {
            Some(body) => body,
            None => return Ok(ServeOutcome::Eof),
        };
        let mut r = Reader::new(&request);
        match r.get_u8()? {
            frame::SHUTDOWN => {
                r.finish()?;
                return Ok(ServeOutcome::Shutdown);
            }
            frame::MANIFEST => {
                let version = r.get_u8()?;
                if version != WIRE_VERSION {
                    return Err(WireError::new(format!(
                        "protocol version {version} (worker speaks {WIRE_VERSION})"
                    )));
                }
                let threads = (r.get_u32()? as usize).max(1);
                let batch = (r.get_u32()? as usize).max(1);
                let trace = r.get_u64()?;
                let manifest = TaskManifest::decode(&mut r)?;
                r.finish()?;
                serve_manifest(registry, threads, batch, trace, &manifest, transport)?;
            }
            tag => {
                return Err(WireError::new(format!(
                    "unknown request frame tag {tag:#x}"
                )))
            }
        }
    }
}

/// How often an executing worker streams a liveness/progress tick (`P`
/// frame). Remote parents set their read timeout to a comfortable
/// multiple of this (see
/// [`RemoteBackend::io_timeout`](crate::remote::RemoteBackend)), so a
/// silently vanished peer is detected without ever mistaking a slow slot
/// for a dead one.
pub(crate) const HEARTBEAT_INTERVAL: std::time::Duration = std::time::Duration::from_millis(500);

/// Execute one manifest and stream its response frames. `trace` is the
/// parent's trace ID (wire version 5; `0` = untraced): it becomes the
/// ambient trace context for the run, and the spans recorded under it
/// ship back in one advisory `T` frame ahead of the terminal `D`/`E`.
fn serve_manifest(
    registry: &JobRegistry,
    threads: usize,
    batch: usize,
    trace: u64,
    manifest: &TaskManifest,
    transport: &mut dyn FrameTransport,
) -> Result<(), WireError> {
    let job = registry.decode(&manifest.kind, &manifest.payload)?;
    let _trace_ctx = crate::trace::enter(trace);

    // Run the manifest on the shared scheduling core, streaming each
    // slot's `R` frame the moment it completes: results are never buffered
    // worker-side, and the parent can tick progress while the chunk runs.
    // Frames may interleave in any completion order — they carry the slot
    // index, and the parent stores by index. A heartbeat thread ticks `P`
    // progress frames (delivered/total counts) throughout, so remote
    // parents can bound their read timeouts without false-killing long
    // slots and can surface live per-chunk progress (send failures are
    // ignored here — the result path surfaces a broken transport on its
    // own).
    let out = Mutex::new(transport);
    let delivered = AtomicU64::new(0);
    let finished = Mutex::new(false);
    let finished_cv = std::sync::Condvar::new();
    let outcome = std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut done = finished.lock().expect("heartbeat mutex never poisoned");
            loop {
                // Predicate before wait: a manifest that finishes before
                // this thread first parks must not cost a lost
                // notification (= one full interval of latency on the
                // `D` frame).
                if *done {
                    return;
                }
                let (guard, timeout) = finished_cv
                    .wait_timeout(done, HEARTBEAT_INTERVAL)
                    .expect("heartbeat mutex never poisoned");
                done = guard;
                if timeout.timed_out() && !*done {
                    let mut body = Vec::with_capacity(17);
                    wire::put_u8(&mut body, frame::PROGRESS);
                    wire::put_u64(&mut body, delivered.load(Ordering::Relaxed));
                    wire::put_u64(&mut body, manifest.total_slots() as u64);
                    let mut t = out.lock().expect("output mutex never poisoned");
                    let _ = t.send(&body).and_then(|_| t.flush());
                }
            }
        });
        // Env-armable chaos points (REPRO_CHAOS_SEED +
        // REPRO_CHAOS_WORKER_{CRASH,STALL}): deterministic
        // per-slot decisions, re-rolled per process so a
        // restarted worker makes progress. A stall holds the
        // output mutex, silencing the heartbeat thread too —
        // exactly the silent-wedge failure the parent's IO
        // timeout exists to catch.
        let chaos_check = |flat: usize| {
            if let Some(chaos) = crate::fleet::chaos::worker_chaos() {
                let seed = manifest.seeds[flat];
                if let Some(stall) = chaos.roll_stall(seed) {
                    eprintln!("[chaos] worker stalling {stall:?} at slot {flat}");
                    let _gag = out.lock().expect("output mutex never poisoned");
                    std::thread::sleep(stall);
                }
                if chaos.roll_crash(seed) {
                    eprintln!("[chaos] worker crashing at slot {flat}");
                    std::process::exit(3);
                }
            }
        };
        let send_result = |flat: usize, bytes: &[u8]| -> Result<(), SlotFailure> {
            let mut body = Vec::with_capacity(bytes.len() + 16);
            wire::put_u8(&mut body, frame::RESULT);
            wire::put_u64(&mut body, flat as u64);
            wire::put_bytes(&mut body, bytes);
            let mut t = out.lock().expect("output mutex never poisoned");
            t.send(&body)
                .map_err(|e| SlotFailure::Io(format!("response write failed: {e}")))?;
            delivered.fetch_add(1, Ordering::Relaxed);
            Ok(())
        };
        let outcome = if batch > 1 {
            // Batched execution: each claim advances a run of contiguous
            // same-point slots through `PortableJob::run_batch` (the SoA
            // engine for simulator jobs), then streams the per-lane `R`
            // frames in replication order. Result bytes are identical to
            // the slot-at-a-time path — batching is a throughput knob.
            run_segments_core_batched(
                threads,
                batch,
                None,
                &manifest.segments,
                &|flat_base, point, base_rep, count| {
                    for lane in 0..count {
                        chaos_check(flat_base + lane);
                    }
                    let seeds = &manifest.seeds[flat_base..flat_base + count];
                    job.run_batch(point, base_rep, seeds)
                        .into_iter()
                        .enumerate()
                        .map(|(lane, res)| match res {
                            Ok(bytes) => send_result(flat_base + lane, &bytes),
                            Err(message) => Err(SlotFailure::Task(message)),
                        })
                        .collect()
                },
            )
        } else {
            run_segments_core(threads, None, &manifest.segments, &|flat, point, rep| {
                chaos_check(flat);
                match job.run_slot(point, rep, manifest.seeds[flat]) {
                    Ok(bytes) => send_result(flat, &bytes),
                    Err(message) => Err(SlotFailure::Task(message)),
                }
            })
        };
        *finished.lock().expect("heartbeat mutex never poisoned") = true;
        finished_cv.notify_all();
        outcome
    });

    let io_err = |e: std::io::Error| WireError::new(format!("response write failed: {e}"));
    let t = out.into_inner().expect("output mutex never poisoned");
    // Ship this manifest's span batch ahead of the terminal frame (the
    // parent's drain stops at `D`/`E`). Advisory like `P`: a send failure
    // is ignored — the result path will surface a broken transport on its
    // own, and a lost batch only costs observability.
    let tracer = crate::trace::tracer();
    if trace != 0 && tracer.is_enabled() {
        let spans = tracer.take_for(trace);
        if !spans.is_empty() {
            let mut body = Vec::new();
            wire::put_u8(&mut body, frame::SPANS);
            body.extend(crate::trace::encode_spans(&spans));
            let _ = t.send(&body);
        }
    }
    match outcome {
        Ok(_) => {
            let mut done = Vec::new();
            wire::put_u8(&mut done, frame::DONE);
            wire::put_u64(&mut done, delivered.load(Ordering::Relaxed));
            t.send(&done).map_err(io_err)?;
        }
        Err((flat, SlotFailure::Task(message))) => {
            // The parent discards any `R` frames it already received for
            // this chunk once the error arrives.
            let mut body = Vec::new();
            wire::put_u8(&mut body, frame::ERROR);
            wire::put_u64(&mut body, flat as u64);
            wire::put_str(&mut body, &message);
            t.send(&body).map_err(io_err)?;
        }
        Err((_flat, SlotFailure::Io(message))) => return Err(WireError::new(message)),
    }
    t.flush().map_err(io_err)
}

/// [`serve`] over this process's stdin/stdout: the canonical body of a
/// binary's `--worker` mode. The caller maps the outcome to its exit code
/// (0 on `Ok` — in-band task errors included — non-zero on protocol
/// failures).
pub fn serve_stdio(registry: &JobRegistry) -> Result<(), WireError> {
    let mut transport = StdioTransport::new();
    serve(registry, &mut transport).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::tests::{decode_mul, MulJob};
    use crate::exec::{PortableJob, TaskManifest};
    use crate::grid::Segment;
    use crate::remote::transport::MemTransport;

    fn registry() -> JobRegistry {
        let mut reg = JobRegistry::new();
        reg.register("test-mul", decode_mul);
        reg
    }

    fn manifest_request(threads: usize, manifest: &TaskManifest) -> Vec<u8> {
        batched_manifest_request(threads, 1, manifest)
    }

    fn batched_manifest_request(threads: usize, batch: usize, manifest: &TaskManifest) -> Vec<u8> {
        let mut framed = Vec::new();
        wire::write_frame(
            &mut framed,
            &crate::remote::protocol::encode_manifest_request(threads, batch, manifest, 0),
        )
        .unwrap();
        framed
    }

    fn shutdown_request() -> Vec<u8> {
        let mut framed = Vec::new();
        wire::write_frame(
            &mut framed,
            &crate::remote::protocol::encode_shutdown_request(),
        )
        .unwrap();
        framed
    }

    fn mul_manifest(reps: &[u64]) -> TaskManifest {
        let job = MulJob { factor: 5 };
        let segments = reps
            .iter()
            .enumerate()
            .map(|(point, &n)| Segment {
                point,
                base_rep: 0,
                count: n as usize,
            })
            .collect();
        TaskManifest::for_job(&job, segments, &|p, r| 100 * p as u64 + r)
    }

    #[test]
    fn serve_round_trips_results_in_memory() {
        let m = mul_manifest(&[2, 3]);
        let mut t = MemTransport::new(manifest_request(2, &m));
        assert_eq!(serve(&registry(), &mut t).unwrap(), ServeOutcome::Eof);

        // Parse the response stream: 5 R frames (any slot order) + D.
        let job = MulJob { factor: 5 };
        let expect: Vec<Vec<u8>> = m
            .slots()
            .iter()
            .map(|&(p, r, s)| job.run_slot(p, r, s).unwrap())
            .collect();
        let mut seen = vec![None; expect.len()];
        let mut stream = &t.output[..];
        let mut done = false;
        while let Some(body) = wire::read_frame(&mut stream).unwrap() {
            let mut r = Reader::new(&body);
            match r.get_u8().unwrap() {
                frame::RESULT => {
                    let local = r.get_u64().unwrap() as usize;
                    seen[local] = Some(r.get_bytes().unwrap().to_vec());
                }
                frame::DONE => {
                    assert_eq!(r.get_u64().unwrap(), 5);
                    done = true;
                }
                frame::HEARTBEAT | frame::PROGRESS | frame::SPANS => {}
                tag => panic!("unexpected tag {tag}"),
            }
        }
        assert!(done);
        let seen: Vec<Vec<u8>> = seen.into_iter().map(|s| s.unwrap()).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn batched_serve_is_byte_identical_to_scalar_serve() {
        // The same manifest served at every batch width must deliver the
        // same slot bytes — only frame interleaving may differ, and with
        // one thread not even that.
        let m = mul_manifest(&[3, 5, 2]);
        let collect = |batch: usize| {
            let mut t = MemTransport::new(batched_manifest_request(1, batch, &m));
            assert_eq!(serve(&registry(), &mut t).unwrap(), ServeOutcome::Eof);
            let mut seen = vec![None; m.total_slots()];
            let mut stream = &t.output[..];
            while let Some(body) = wire::read_frame(&mut stream).unwrap() {
                let mut r = Reader::new(&body);
                match r.get_u8().unwrap() {
                    frame::RESULT => {
                        let local = r.get_u64().unwrap() as usize;
                        seen[local] = Some(r.get_bytes().unwrap().to_vec());
                    }
                    frame::DONE => assert_eq!(r.get_u64().unwrap(), m.total_slots() as u64),
                    frame::HEARTBEAT | frame::PROGRESS | frame::SPANS => {}
                    tag => panic!("unexpected tag {tag}"),
                }
            }
            seen.into_iter()
                .map(|s| s.unwrap())
                .collect::<Vec<Vec<u8>>>()
        };
        let scalar = collect(1);
        for batch in [2usize, 4, 64] {
            assert_eq!(scalar, collect(batch), "batch={batch}");
        }
    }

    #[test]
    fn serve_handles_multiple_manifests_then_shutdown() {
        // Two manifests back to back, then an explicit shutdown frame:
        // exactly the shape a remote peer sees across adaptive rounds.
        let m1 = mul_manifest(&[2]);
        let m2 = mul_manifest(&[1, 1]);
        let mut input = manifest_request(1, &m1);
        input.extend(manifest_request(1, &m2));
        input.extend(shutdown_request());
        let mut t = MemTransport::new(input);
        assert_eq!(serve(&registry(), &mut t).unwrap(), ServeOutcome::Shutdown);

        // Response stream: 2 R + D for m1, then 2 R + D for m2.
        let mut stream = &t.output[..];
        let mut dones = 0;
        let mut results = 0;
        while let Some(body) = wire::read_frame(&mut stream).unwrap() {
            match body[0] {
                frame::RESULT => results += 1,
                frame::DONE => dones += 1,
                frame::HEARTBEAT | frame::PROGRESS | frame::SPANS => {}
                tag => panic!("unexpected tag {tag}"),
            }
        }
        assert_eq!((results, dones), (4, 2));
    }

    #[test]
    fn serve_reports_task_error_in_band_and_keeps_serving() {
        struct Boom;
        impl PortableJob for Boom {
            fn kind(&self) -> &'static str {
                "test-boom"
            }
            fn encode_payload(&self, _buf: &mut Vec<u8>) {}
            fn run_slot(&self, point: usize, rep: u64, _seed: u64) -> Result<Vec<u8>, String> {
                if point == 0 && rep == 1 {
                    Err("kaboom".into())
                } else {
                    Ok(vec![0])
                }
            }
        }
        let mut reg = JobRegistry::new();
        reg.register("test-boom", |_p| Ok(Box::new(Boom)));
        let m = TaskManifest::for_job(
            &Boom,
            vec![Segment {
                point: 0,
                base_rep: 0,
                count: 3,
            }],
            &|_, _| 0,
        );
        let mut input = manifest_request(1, &m);
        input.extend(shutdown_request());
        let mut t = MemTransport::new(input);
        // The task error is in-band; the loop continues to the shutdown
        // frame and exits cleanly.
        assert_eq!(serve(&reg, &mut t).unwrap(), ServeOutcome::Shutdown);
        // Completed slots stream their `R` frames before the error is
        // known (slot 0 here); the stream must then end with exactly one
        // `E` frame and no `D`.
        let mut stream = &t.output[..];
        let mut error_seen = false;
        while let Some(body) = wire::read_frame(&mut stream).unwrap() {
            let mut r = Reader::new(&body);
            match r.get_u8().unwrap() {
                frame::RESULT => {
                    assert!(!error_seen, "R frame after E");
                    assert_eq!(r.get_u64().unwrap(), 0);
                }
                frame::ERROR => {
                    assert_eq!(r.get_u64().unwrap(), 1); // lowest failing flat index
                    assert_eq!(r.get_str().unwrap(), "kaboom");
                    error_seen = true;
                }
                frame::HEARTBEAT | frame::PROGRESS | frame::SPANS => {}
                tag => panic!("unexpected tag {tag}"),
            }
        }
        assert!(error_seen);
    }

    #[test]
    fn serve_rejects_unknown_kind_bad_version_and_bad_tag() {
        let m = mul_manifest(&[1]);
        // Unknown job kind.
        let mut other = m.clone();
        other.kind = "never-registered".into();
        let mut t = MemTransport::new(manifest_request(1, &other));
        assert!(serve(&registry(), &mut t).is_err());
        // Wrong protocol version.
        let mut body = Vec::new();
        wire::put_u8(&mut body, frame::MANIFEST);
        wire::put_u8(&mut body, WIRE_VERSION + 1);
        wire::put_u32(&mut body, 1);
        wire::put_u32(&mut body, 1);
        m.encode_into(&mut body);
        let mut framed = Vec::new();
        wire::write_frame(&mut framed, &body).unwrap();
        let mut t = MemTransport::new(framed);
        assert!(serve(&registry(), &mut t).is_err());
        // Unknown request tag.
        let mut framed = Vec::new();
        wire::write_frame(&mut framed, &[0xFF]).unwrap();
        let mut t = MemTransport::new(framed);
        assert!(serve(&registry(), &mut t).is_err());
        // Empty stream is a clean EOF, not an error.
        let mut t = MemTransport::new(Vec::new());
        assert_eq!(serve(&registry(), &mut t).unwrap(), ServeOutcome::Eof);
    }
}
