//! Error metrics between model predictions — the Δ-energy statistics of the
//! paper's Tables IV, V and VI.

use petri_core::stats::describe;
use serde::{Deserialize, Serialize};

/// Aggregate statistics of per-sweep-point differences between two energy
/// curves (one row block of Tables IV–VI): average, variance, standard
/// deviation and RMSE of `|a_i - b_i|`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiffStats {
    /// Mean absolute difference ("Avg." row).
    pub avg: f64,
    /// Sample variance of the absolute differences ("Variance" row).
    pub variance: f64,
    /// Standard deviation ("STD DEV" row).
    pub std_dev: f64,
    /// Root-mean-square of the differences ("RMSE" row).
    pub rmse: f64,
}

impl DiffStats {
    /// Compute from two equal-length curves.
    pub fn between(a: &[f64], b: &[f64]) -> DiffStats {
        assert_eq!(a.len(), b.len(), "curves must have equal length");
        assert!(!a.is_empty(), "need at least one point");
        let diffs: Vec<f64> = a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).collect();
        let (avg, variance, std_dev, rmse) = describe(&diffs);
        DiffStats {
            avg,
            variance,
            std_dev,
            rmse,
        }
    }
}

/// One full Δ-energy table (the paper's Tables IV–VI): simulator vs Markov,
/// simulator vs Petri net, Markov vs Petri net.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeltaEnergyTable {
    /// |Simulation − Markov| statistics.
    pub sim_markov: DiffStats,
    /// |Simulation − Petri| statistics.
    pub sim_petri: DiffStats,
    /// |Markov − Petri| statistics.
    pub markov_petri: DiffStats,
}

impl DeltaEnergyTable {
    /// Build from three equal-length energy curves.
    pub fn from_curves(sim: &[f64], markov: &[f64], petri: &[f64]) -> DeltaEnergyTable {
        DeltaEnergyTable {
            sim_markov: DiffStats::between(sim, markov),
            sim_petri: DiffStats::between(sim, petri),
            markov_petri: DiffStats::between(markov, petri),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_curves_give_zero() {
        let a = [1.0, 2.0, 3.0];
        let d = DiffStats::between(&a, &a);
        assert_eq!(d.avg, 0.0);
        assert_eq!(d.variance, 0.0);
        assert_eq!(d.std_dev, 0.0);
        assert_eq!(d.rmse, 0.0);
    }

    #[test]
    fn constant_offset() {
        let a = [1.0, 2.0, 3.0];
        let b = [3.0, 4.0, 5.0];
        let d = DiffStats::between(&a, &b);
        assert!((d.avg - 2.0).abs() < 1e-12);
        assert!((d.variance - 0.0).abs() < 1e-12);
        assert!((d.rmse - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_differences() {
        // |diffs| = [1, 3]; avg 2; var 2; std sqrt(2); rmse sqrt(5).
        let d = DiffStats::between(&[0.0, 0.0], &[1.0, -3.0]);
        assert!((d.avg - 2.0).abs() < 1e-12);
        assert!((d.variance - 2.0).abs() < 1e-12);
        assert!((d.std_dev - 2.0f64.sqrt()).abs() < 1e-12);
        assert!((d.rmse - 5.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn table_from_curves() {
        let sim = [10.0, 20.0];
        let markov = [12.0, 22.0];
        let petri = [10.5, 20.5];
        let t = DeltaEnergyTable::from_curves(&sim, &markov, &petri);
        assert!((t.sim_markov.avg - 2.0).abs() < 1e-12);
        assert!((t.sim_petri.avg - 0.5).abs() < 1e-12);
        assert!((t.markov_petri.avg - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn unequal_lengths_rejected() {
        let _ = DiffStats::between(&[1.0], &[1.0, 2.0]);
    }
}
