//! Battery-lifetime estimation.
//!
//! The paper's motivation (Sec. I) is extending battery lifetime; Jung et
//! al. [12], the source of the power table, frame results as node lifetime.
//! This module closes that loop: given an average power draw and a battery,
//! estimate how long the node survives.

use crate::units::Power;
use serde::{Deserialize, Serialize};

/// An idealized battery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    /// Capacity in milliamp-hours.
    pub capacity_mah: f64,
    /// Nominal voltage in volts.
    pub voltage: f64,
    /// Usable fraction of nominal capacity (cutoff voltage, self-discharge
    /// etc.); 1.0 = ideal.
    pub usable_fraction: f64,
}

impl Battery {
    /// Two AA alkaline cells in series (the classic mote supply):
    /// ~2500 mAh at 3 V, ~80 % usable.
    pub const TWO_AA: Battery = Battery {
        capacity_mah: 2500.0,
        voltage: 3.0,
        usable_fraction: 0.8,
    };

    /// A CR2032 coin cell: 225 mAh at 3 V, ~70 % usable at mote currents.
    pub const CR2032: Battery = Battery {
        capacity_mah: 225.0,
        voltage: 3.0,
        usable_fraction: 0.7,
    };

    /// Usable energy content in Joules: `mAh · 3.6 · V · usable`.
    pub fn usable_energy_joules(&self) -> f64 {
        self.capacity_mah * 3.6 * self.voltage * self.usable_fraction
    }

    /// Lifetime in seconds at a constant average draw.
    pub fn lifetime_seconds(&self, draw: Power) -> f64 {
        assert!(draw.watts() > 0.0, "draw must be positive");
        self.usable_energy_joules() / draw.watts()
    }

    /// Lifetime in days at a constant average draw.
    pub fn lifetime_days(&self, draw: Power) -> f64 {
        self.lifetime_seconds(draw) / 86_400.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_content() {
        // 2500 mAh * 3.6 * 3 V * 0.8 = 21600 J.
        let e = Battery::TWO_AA.usable_energy_joules();
        assert!((e - 21_600.0).abs() < 1e-9);
    }

    #[test]
    fn lifetime_at_one_milliwatt() {
        // 21600 J / 1 mW = 21.6e6 s = 250 days.
        let days = Battery::TWO_AA.lifetime_days(Power::from_milliwatts(1.0));
        assert!((days - 250.0).abs() < 1e-9);
    }

    #[test]
    fn imote2_simple_node_lifetime_plausible() {
        // The measured simple node draws ~1.26 mW average (Table X):
        // two AA cells last ~198 days.
        let days = Battery::TWO_AA.lifetime_days(Power::from_milliwatts(1.261));
        assert!((150.0..250.0).contains(&days), "days = {days}");
    }

    #[test]
    fn higher_draw_shorter_life() {
        let lo = Battery::CR2032.lifetime_seconds(Power::from_milliwatts(0.5));
        let hi = Battery::CR2032.lifetime_seconds(Power::from_milliwatts(5.0));
        assert!((lo / hi - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "draw must be positive")]
    fn zero_draw_rejected() {
        let _ = Battery::TWO_AA.lifetime_seconds(Power::ZERO);
    }
}
