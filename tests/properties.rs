//! Property-based tests (proptest) over the core invariants of the whole
//! stack: random nets, random parameters, and cross-substrate agreement
//! that must hold for *any* input, not just the paper's.

use proptest::prelude::*;
use wsn_petri::prelude::*;

/// Build a random closed ring net: `n` places in a cycle, one token,
/// random timing per transition. Such a net conserves its token and never
/// deadlocks.
fn ring_net(n: usize, timings: &[u8], delay: f64) -> Net {
    let mut b = NetBuilder::new("ring");
    let places: Vec<_> = (0..n)
        .map(|i| {
            let mut pb = b.place(format!("p{i}"));
            if i == 0 {
                pb = pb.tokens(1);
            }
            pb.build()
        })
        .collect();
    for i in 0..n {
        let timing = match timings[i % timings.len()] % 3 {
            0 => Timing::deterministic(delay),
            1 => Timing::exponential(1.0 / delay.max(1e-6)),
            _ => Timing::uniform(0.0, 2.0 * delay),
        };
        b.transition(format!("t{i}"), timing)
            .input(places[i], 1)
            .output(places[(i + 1) % n], 1)
            .build();
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Token conservation: a ring net's total token count is always 1, so
    /// the sum of all time-average place counts is exactly 1.
    #[test]
    fn ring_net_conserves_tokens(
        n in 2usize..8,
        timings in proptest::collection::vec(0u8..3, 1..8),
        delay in 0.01f64..2.0,
        seed in 0u64..1000,
    ) {
        let net = ring_net(n, &timings, delay);
        let mut sim = Simulator::new(&net, SimConfig::for_horizon(200.0));
        let rewards: Vec<_> = net.place_ids().map(|p| sim.reward_place(p)).collect();
        let out = sim.run(seed).unwrap();
        let total: f64 = rewards.iter().map(|&r| out.reward(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "total {total}");
        prop_assert_eq!(out.final_marking.total_tokens(), 1);
    }

    /// P-invariant agreement: every invariant found structurally is
    /// numerically conserved along any simulated trajectory's endpoint.
    #[test]
    fn p_invariants_hold_at_trajectory_end(
        n in 2usize..6,
        timings in proptest::collection::vec(0u8..3, 1..6),
        delay in 0.05f64..1.0,
        seed in 0u64..1000,
    ) {
        let net = ring_net(n, &timings, delay);
        let invariants = petri_core::analysis::p_invariants(&net);
        prop_assert!(!invariants.is_empty());
        let initial_counts = net.initial_marking().count_vector();
        let sim = Simulator::new(&net, SimConfig::for_horizon(50.0));
        let out = sim.run(seed).unwrap();
        let final_counts = out.final_marking.count_vector();
        for inv in &invariants {
            prop_assert_eq!(inv.value(&initial_counts), inv.value(&final_counts));
        }
    }

    /// Reward sanity: predicate probabilities are in [0,1]; observed time
    /// equals horizon minus warm-up.
    #[test]
    fn rewards_are_well_formed(
        delay in 0.05f64..1.0,
        warmup in 0.0f64..10.0,
        seed in 0u64..1000,
    ) {
        let net = ring_net(3, &[0, 1, 2], delay);
        let p0 = net.place_by_name("p0").unwrap();
        let horizon = 40.0;
        let mut sim = Simulator::new(
            &net,
            SimConfig::for_horizon(horizon).with_warmup(warmup),
        );
        let pred = sim.reward_predicate(Expr::count(p0).gt_c(0)).unwrap();
        let avg = sim.reward_place(p0);
        let out = sim.run(seed).unwrap();
        prop_assert!((out.observed_time - (horizon - warmup)).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&out.reward(pred)));
        prop_assert!(out.reward(avg) >= 0.0);
        // With one token, the place average equals the predicate prob.
        prop_assert!((out.reward(avg) - out.reward(pred)).abs() < 1e-9);
    }

    /// Determinism: identical seeds give identical outputs for arbitrary
    /// ring nets.
    #[test]
    fn identical_seeds_identical_runs(
        n in 2usize..6,
        timings in proptest::collection::vec(0u8..3, 1..6),
        delay in 0.05f64..1.0,
        seed in 0u64..1000,
    ) {
        let net = ring_net(n, &timings, delay);
        let sim = Simulator::new(&net, SimConfig::for_horizon(60.0));
        let a = sim.run(seed).unwrap();
        let b = sim.run(seed).unwrap();
        prop_assert_eq!(a.firing_counts, b.firing_counts);
        prop_assert_eq!(a.final_marking, b.final_marking);
    }

    /// The DES CPU and the Petri CPU agree on state fractions for random
    /// parameters (same semantics, independent implementations).
    #[test]
    fn cpu_des_and_petri_agree_on_random_params(
        t in 0.01f64..2.0,
        d in 0.001f64..2.0,
        lambda in 0.2f64..2.0,
        seed in 0u64..100,
    ) {
        let mu = 10.0 * lambda; // keep rho = 0.1
        let horizon = 4000.0;
        let mut des_params = CpuSimParams { lambda, mu, power_down_threshold: t, power_up_delay: d, horizon };
        des_params.horizon = horizon;
        let des_probs = simulate_cpu(&des_params, seed).probabilities();
        let petri_probs = simulate_cpu_model(
            &CpuModelParams { lambda, mu, power_down_threshold: t, power_up_delay: d },
            horizon,
            seed.wrapping_add(7),
        ).probabilities;
        for i in 0..4 {
            prop_assert!(
                (des_probs[i] - petri_probs[i]).abs() < 0.06,
                "state {} at T={} D={} λ={}: des {} vs petri {}",
                i, t, d, lambda, des_probs[i], petri_probs[i]
            );
        }
    }

    /// GTH and the LU-based DTMC direct solve agree on random irreducible
    /// chains (via the embedded uniformized DTMC).
    #[test]
    fn gth_matches_direct_solve(
        n in 2usize..12,
        rates in proptest::collection::vec(0.1f64..5.0, 24),
    ) {
        // Ring + one shortcut per state => irreducible.
        let mut chain = Ctmc::new(n);
        for i in 0..n {
            chain.add_rate(i, (i + 1) % n, rates[i % rates.len()]).unwrap();
            if n > 2 {
                chain.add_rate(i, (i + 2) % n, rates[(i + 7) % rates.len()] * 0.3).unwrap();
            }
        }
        let gth = chain.steady_state_gth();
        // Build the uniformized DTMC and solve directly.
        let lambda_max: f64 = (0..n).map(|s| chain.exit_rate(s)).fold(0.0, f64::max) * 1.1;
        let mut p = markov::Matrix::zeros(n, n);
        for i in 0..n {
            p[(i, i)] = 1.0 - chain.exit_rate(i) / lambda_max;
        }
        chain.for_each_rate(|f, t, r| {
            p[(f, t)] += r / lambda_max;
        });
        let dtmc = markov::Dtmc::new(p).unwrap();
        let direct = dtmc.stationary_direct().unwrap();
        for i in 0..n {
            prop_assert!((gth[i] - direct[i]).abs() < 1e-8,
                "state {}: gth {} vs direct {}", i, gth[i], direct[i]);
        }
    }

    /// Energy accounting: for any dwell times, breakdown total equals the
    /// dot product of times and powers.
    #[test]
    fn breakdown_total_is_dot_product(
        sleep in 0.0f64..1000.0,
        wake in 0.0f64..100.0,
        idle in 0.0f64..1000.0,
        active in 0.0f64..1000.0,
    ) {
        let mut times = energy::StateTimes::default();
        times.add(PowerState::Sleep, sleep);
        times.add(PowerState::Wakeup, wake);
        times.add(PowerState::Idle, idle);
        times.add(PowerState::Active, active);
        let b = energy::ComponentBreakdown::from_times(&times, &PXA271_CPU);
        let manual = (17.0 * sleep + 192.976 * wake + 88.0 * idle + 193.0 * active) * 1e-3;
        prop_assert!((b.total().joules() - manual).abs() < 1e-9);
    }

    /// The supplementary-variable solution is a probability distribution
    /// for any stable parameters.
    #[test]
    fn markov_solution_is_distribution(
        t in 0.0f64..50.0,
        d in 0.0f64..50.0,
        lambda in 0.05f64..5.0,
        rho in 0.01f64..0.9,
    ) {
        let params = CpuMarkovParams {
            lambda,
            mu: lambda / rho,
            power_down_threshold: t,
            power_up_delay: d,
        };
        let s = params.solve();
        for p in [s.p_standby, s.p_idle, s.p_powerup, s.p_active] {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&p), "p = {p}");
        }
        prop_assert!((s.total_probability() - 1.0).abs() < 1e-9);
    }
}
