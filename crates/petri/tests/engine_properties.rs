//! Property-based tests of the simulation engine's core guarantees, on
//! randomly generated nets.

use petri_core::analysis::{extract_ctmc, p_invariants};
use petri_core::prelude::*;
use proptest::prelude::*;

/// A random fork/join net: a source place feeding `k` parallel branches
/// that rejoin. Token count is conserved (1 circulating token).
fn fork_join_net(branch_delays: &[f64]) -> (Net, PlaceId) {
    let mut b = NetBuilder::new("forkjoin");
    let start = b.place("start").tokens(1).build();
    let end = b.place("end").build();
    for (i, &d) in branch_delays.iter().enumerate() {
        let mid = b.place(format!("mid{i}")).build();
        b.transition(format!("enter{i}"), Timing::exponential(1.0 + i as f64))
            .input(start, 1)
            .output(mid, 1)
            .build();
        b.transition(format!("leave{i}"), Timing::deterministic(d))
            .input(mid, 1)
            .output(end, 1)
            .build();
    }
    b.transition("restart", Timing::deterministic(0.05))
        .input(end, 1)
        .output(start, 1)
        .build();
    (b.build().unwrap(), start)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Reward fractions of a 1-token net partition the timeline: summing
    /// the time-average of every place gives exactly 1.
    #[test]
    fn place_averages_partition_time(
        delays in proptest::collection::vec(0.01f64..0.5, 1..5),
        seed in 0u64..500,
    ) {
        let (net, _) = fork_join_net(&delays);
        let mut sim = Simulator::new(&net, SimConfig::for_horizon(100.0));
        let rs: Vec<_> = net.place_ids().map(|p| sim.reward_place(p)).collect();
        let out = sim.run(seed).unwrap();
        let total: f64 = rs.iter().map(|&r| out.reward(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// Firing counts balance: in a conservative cycle, every transition
    /// layer fires the same number of times (±1 for the in-flight token).
    #[test]
    fn firing_counts_balance_in_cycle(
        delays in proptest::collection::vec(0.01f64..0.3, 1..4),
        seed in 0u64..500,
    ) {
        let (net, _) = fork_join_net(&delays);
        let sim = Simulator::new(&net, SimConfig::for_horizon(200.0));
        let out = sim.run(seed).unwrap();
        let k = delays.len();
        let enter_total: u64 = (0..k)
            .map(|i| out.firing_counts[net.transition_by_name(&format!("enter{i}")).unwrap().index()])
            .sum();
        let leave_total: u64 = (0..k)
            .map(|i| out.firing_counts[net.transition_by_name(&format!("leave{i}")).unwrap().index()])
            .sum();
        let restart = out.firing_counts[net.transition_by_name("restart").unwrap().index()];
        prop_assert!(enter_total >= leave_total && enter_total - leave_total <= 1);
        prop_assert!(leave_total >= restart && leave_total - restart <= 1);
    }

    /// Warm-up never changes the trajectory, only the measuring window:
    /// firing counts are identical with and without warm-up.
    #[test]
    fn warmup_does_not_change_trajectory(
        delays in proptest::collection::vec(0.01f64..0.5, 1..4),
        warmup in 0.0f64..50.0,
        seed in 0u64..500,
    ) {
        let (net, _) = fork_join_net(&delays);
        let a = Simulator::new(&net, SimConfig::for_horizon(100.0)).run(seed).unwrap();
        let b = Simulator::new(&net, SimConfig::for_horizon(100.0).with_warmup(warmup))
            .run(seed)
            .unwrap();
        prop_assert_eq!(a.firing_counts, b.firing_counts);
        prop_assert_eq!(a.final_marking, b.final_marking);
    }

    /// Exponential-only nets: simulation converges to the extracted CTMC's
    /// steady state (tested on random 2-branch routing nets).
    #[test]
    fn exponential_net_matches_ctmc(
        r1 in 0.5f64..4.0,
        r2 in 0.5f64..4.0,
        r3 in 0.5f64..4.0,
        seed in 0u64..100,
    ) {
        let mut b = NetBuilder::new("route");
        let a = b.place("a").tokens(1).build();
        let c = b.place("c").build();
        let d = b.place("d").build();
        b.transition("ac", Timing::exponential(r1)).input(a, 1).output(c, 1).build();
        b.transition("ad", Timing::exponential(r2)).input(a, 1).output(d, 1).build();
        b.transition("ca", Timing::exponential(r3)).input(c, 1).output(a, 1).build();
        b.transition("da", Timing::exponential(r3 * 0.5)).input(d, 1).output(a, 1).build();
        let net = b.build().unwrap();

        let ext = extract_ctmc(&net, 100).unwrap();
        let chain = markov::Ctmc::from_rates(ext.states.len(), ext.rates.iter().copied()).unwrap();
        let pi = chain.steady_state().unwrap();
        let analytic_a: f64 = ext
            .states
            .iter()
            .zip(pi.iter())
            .map(|(m, p)| m.count(a) as f64 * p)
            .sum();

        let mut sim = Simulator::new(&net, SimConfig::for_horizon(20_000.0).with_warmup(100.0));
        let ra = sim.reward_place(a);
        let out = sim.run(seed).unwrap();
        prop_assert!(
            (out.reward(ra) - analytic_a).abs() < 0.03,
            "sim {} vs analytic {}", out.reward(ra), analytic_a
        );
    }

    /// Inhibitor arcs enforce an exact bound: a generator inhibited at `k`
    /// never pushes a place above `k` tokens.
    #[test]
    fn inhibitor_bounds_place(
        k in 1u32..6,
        rate in 0.5f64..5.0,
        seed in 0u64..500,
    ) {
        let mut b = NetBuilder::new("bounded");
        let q = b.place("q").build();
        b.transition("gen", Timing::exponential(rate))
            .output(q, 1)
            .inhibitor(q, k)
            .build();
        b.transition("drain", Timing::exponential(rate * 0.3))
            .input(q, 1)
            .build();
        let net = b.build().unwrap();
        let mut sim = Simulator::new(&net, SimConfig::for_horizon(300.0));
        let above = sim
            .reward_predicate(Expr::count(q).gt_c(k as i64))
            .unwrap();
        let out = sim.run(seed).unwrap();
        prop_assert_eq!(out.reward(above), 0.0);
        prop_assert!(out.final_marking.count(q) <= k as usize);
    }

    /// P-invariant weights are conserved along the whole trajectory, not
    /// just at the end: check at the horizon for every invariant of the
    /// fork/join family.
    #[test]
    fn invariants_conserved(
        delays in proptest::collection::vec(0.01f64..0.5, 1..4),
        seed in 0u64..500,
    ) {
        let (net, _) = fork_join_net(&delays);
        let invs = p_invariants(&net);
        prop_assert!(!invs.is_empty());
        let sim = Simulator::new(&net, SimConfig::for_horizon(77.0));
        let out = sim.run(seed).unwrap();
        let init = net.initial_marking().count_vector();
        let fin = out.final_marking.count_vector();
        for inv in &invs {
            prop_assert_eq!(inv.value(&init), inv.value(&fin));
        }
    }

    /// Erlang(k, k·r) transitions have the same mean as Exponential(r), so
    /// long-run throughputs agree.
    #[test]
    fn erlang_and_exponential_same_throughput(
        rate in 0.5f64..3.0,
        k in 1u32..8,
        seed in 0u64..200,
    ) {
        let horizon = 3000.0;
        let make = |timing: Timing| {
            let mut b = NetBuilder::new("thru");
            let p = b.place("p").tokens(1).build();
            let t = b.transition("t", timing).input(p, 1).output(p, 1).build();
            let net = b.build().unwrap();
            let mut sim = Simulator::new(&net, SimConfig::for_horizon(horizon));
            let r = sim.reward(RewardSpec::Throughput(t)).unwrap();
            let out = sim.run(seed).unwrap();
            out.reward(r)
        };
        let thru_exp = make(Timing::exponential(rate));
        let thru_erl = make(Timing::erlang(k, k as f64 * rate));
        prop_assert!(
            (thru_exp - thru_erl).abs() < 0.15 * rate,
            "exp {} vs erlang {}", thru_exp, thru_erl
        );
    }
}
