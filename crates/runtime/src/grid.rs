//! The two-level task grid and its in-process work-stealing executor.
//!
//! Every experiment in this workspace has the same shape: a *sweep* over
//! parameter points, each point estimated from some number of independent
//! *replications*. Running either level alone wastes cores — a 21-point
//! sweep on a 64-core box leaves two thirds of the machine idle while each
//! point's replications run serially, and spawning at both levels
//! oversubscribes. [`Runner`] instead flattens the whole
//! `(point × replication)` grid into one task stream over one scoped thread
//! pool:
//!
//! * workers claim flat task indices from a single atomic counter (work
//!   stealing, so wildly uneven points still balance);
//! * each task publishes its result into its own pre-allocated
//!   [`OnceLock`] slot — result publication never takes a shared lock;
//! * results are handed back **in index order per point**, so callers can
//!   reduce deterministically: the aggregate is bit-identical at any
//!   thread count;
//! * the first task error flips a cancellation flag; in-flight tasks finish
//!   but no new ones are claimed, and the lowest-flat-index error surfaces
//!   to the caller.
//!
//! The scoped thread pool here is *one backend* of the executor seam: the
//! same claim/fold discipline runs behind [`crate::exec::ExecBackend`], so
//! portable jobs can also be spread over worker subprocesses (see
//! [`crate::exec::ShardedBackend`]) with bit-identical results.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Number of worker threads to use by default (one per available core, at
/// least 1).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Worker-thread count from the environment variable `var`, if it holds a
/// positive integer (`0`, garbage, or unset all yield `None`, so callers
/// fall back uniformly — typically to [`default_threads`]).
pub fn env_threads(var: &str) -> Option<usize> {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// A progress tick, delivered to the runner's callback after each task.
#[derive(Debug, Clone, Copy)]
pub struct Progress {
    /// Sweep-point index of the task that just finished.
    pub point: usize,
    /// Replication index (within the point) of the task that just finished.
    pub replication: u64,
    /// Tasks finished so far across the whole grid (including this one).
    pub completed: usize,
    /// Total tasks in the grid (computed once when the grid is planned,
    /// never re-derived per tick).
    pub total: usize,
}

/// One contiguous run of replications for one point.
///
/// Segments describe whole grids, the incremental rounds of the adaptive
/// stopping rule, and — serialized inside a
/// [`crate::exec::TaskManifest`] — the shard assignments of worker
/// subprocesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Sweep-point index (global across the whole grid, even inside a
    /// shard's sub-manifest).
    pub point: usize,
    /// First replication index of this segment.
    pub base_rep: u64,
    /// Number of replications in this segment.
    pub count: usize,
}

/// The flat-index layout of a segment list, computed **once** per run:
/// prefix sums plus the grand total. All claim-to-segment mapping and every
/// progress tick reads totals from here instead of re-deriving them.
#[derive(Debug)]
pub(crate) struct GridPlan {
    /// `prefix[s]` = flat index of segment `s`'s first slot;
    /// `prefix[len]` = total.
    prefix: Vec<usize>,
    /// Total task count across all segments.
    total: usize,
}

impl GridPlan {
    pub(crate) fn new(segments: &[Segment]) -> Self {
        let mut prefix = Vec::with_capacity(segments.len() + 1);
        let mut total = 0usize;
        for seg in segments {
            prefix.push(total);
            total += seg.count;
        }
        prefix.push(total);
        GridPlan { prefix, total }
    }

    pub(crate) fn total(&self) -> usize {
        self.total
    }

    /// Map a flat task index to `(segment index, offset within segment)`.
    pub(crate) fn locate(&self, flat: usize) -> (usize, usize) {
        debug_assert!(flat < self.total);
        // prefix is sorted; the partition point is the first entry > flat.
        let seg = self.prefix.partition_point(|&p| p <= flat) - 1;
        (seg, flat - self.prefix[seg])
    }
}

pub(crate) type ProgressFn = dyn Fn(Progress) + Send + Sync;

/// Per-segment results in replication order, as produced by
/// [`run_segments_core`].
pub(crate) type SegmentResults<R> = Vec<(Segment, Vec<R>)>;

/// Execute `segments` as one flat task stream over a scoped thread pool;
/// returns each segment's results in replication order.
///
/// This free function is the single in-process scheduling core: it sits
/// under [`Runner::map`], [`Runner::try_grid`], the adaptive rounds in
/// [`crate::stopping`], **and** [`crate::exec::InProcessBackend`] (which is
/// how worker subprocesses of the sharded backend execute their shard).
///
/// The task receives `(flat_index, point, replication)`. On error the
/// lowest-flat-index failure is returned together with that index, so
/// callers (and remote gathers) can compare failures deterministically.
pub(crate) fn run_segments_core<R, E, F>(
    threads: usize,
    progress: Option<&ProgressFn>,
    segments: &[Segment],
    task: &F,
) -> Result<SegmentResults<R>, (usize, E)>
where
    R: Send + Sync,
    E: Send,
    F: Fn(usize, usize, u64) -> Result<R, E> + Sync,
{
    let plan = GridPlan::new(segments);
    let total = plan.total();

    if total == 0 {
        return Ok(segments.iter().map(|&s| (s, Vec::new())).collect());
    }

    // Telemetry handles are resolved once per grid, outside the claim
    // loop; per-slot recording is then two relaxed atomic adds —
    // observation only, never scheduling.
    let tele = crate::telemetry::telemetry();
    let claims = tele.counter("grid_tasks_claimed_total");
    let slot_wall = tele.histogram("grid_slot_wall_ns");
    // Like the metric handles, the trace context is resolved once per
    // grid: slot spans attribute to the ambient job trace (0 = untraced,
    // recording skipped).
    let tr = crate::trace::tracer();
    let trace = crate::trace::current();

    let threads = threads.max(1).min(total);
    if threads == 1 {
        // Sequential fast path: same claim order, no thread overhead.
        let mut out: Vec<(Segment, Vec<R>)> = segments
            .iter()
            .map(|&s| (s, Vec::with_capacity(s.count)))
            .collect();
        let mut flat = 0usize;
        for (seg, results) in out.iter_mut() {
            for local in 0..seg.count {
                let rep = seg.base_rep + local as u64;
                claims.inc();
                let span = tr.start();
                let started = Instant::now();
                results.push(task(flat, seg.point, rep).map_err(|e| (flat, e))?);
                slot_wall.record_duration(started.elapsed());
                tr.record(
                    trace,
                    crate::trace::name::SLOT,
                    crate::trace::cat::GRID,
                    flat as u64,
                    span,
                );
                flat += 1;
                if let Some(cb) = progress {
                    cb(Progress {
                        point: seg.point,
                        replication: rep,
                        completed: flat,
                        total,
                    });
                }
            }
        }
        return Ok(out);
    }

    let next = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);
    // Lowest-flat-index error wins, so the surfaced error does not depend
    // on which worker happened to trip first.
    let first_error: Mutex<Option<(usize, E)>> = Mutex::new(None);
    let slots: Vec<OnceLock<R>> = (0..total).map(|_| OnceLock::new()).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if cancelled.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let (seg_idx, offset) = plan.locate(i);
                let seg = &segments[seg_idx];
                let rep = seg.base_rep + offset as u64;
                claims.inc();
                let span = tr.start();
                let started = Instant::now();
                let outcome = task(i, seg.point, rep);
                slot_wall.record_duration(started.elapsed());
                tr.record(
                    trace,
                    crate::trace::name::SLOT,
                    crate::trace::cat::GRID,
                    i as u64,
                    span,
                );
                match outcome {
                    Ok(r) => {
                        // Each flat index is claimed exactly once, so the
                        // slot is guaranteed empty.
                        let _ = slots[i].set(r);
                        if let Some(cb) = progress {
                            let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                            cb(Progress {
                                point: seg.point,
                                replication: rep,
                                completed: done,
                                total,
                            });
                        }
                    }
                    Err(e) => {
                        let mut guard = first_error.lock().expect("error mutex never poisoned");
                        match &*guard {
                            Some((j, _)) if *j <= i => {}
                            _ => *guard = Some((i, e)),
                        }
                        drop(guard);
                        cancelled.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            });
        }
    });

    if let Some((i, e)) = first_error
        .into_inner()
        .expect("error mutex never poisoned")
    {
        return Err((i, e));
    }

    // Drain the slots back into per-segment, replication-ordered Vecs.
    let mut iter = slots.into_iter();
    let out = segments
        .iter()
        .map(|&seg| {
            let results: Vec<R> = iter
                .by_ref()
                .take(seg.count)
                .map(|s| s.into_inner().expect("every slot filled"))
                .collect();
            (seg, results)
        })
        .collect();
    Ok(out)
}

/// Execute `segments` as one flat stream of **batch runs** over a scoped
/// thread pool: workers claim up to `batch` contiguous same-point slots at
/// a time and hand the whole run to `task` in one call.
///
/// `task` receives `(flat_base, point, base_rep, count)` and must return
/// one `Result` per slot, in replication order. Results land in the same
/// per-segment, replication-ordered shape as [`run_segments_core`]; on
/// failure the lowest-flat-index error across every executed run is
/// returned. Batch runs never straddle a segment boundary, so a task that
/// folds its run through a batched engine (one compiled net, `count`
/// lanes) sees exactly one sweep point per call.
pub(crate) fn run_segments_core_batched<R, E, F>(
    threads: usize,
    batch: usize,
    progress: Option<&ProgressFn>,
    segments: &[Segment],
    task: &F,
) -> Result<SegmentResults<R>, (usize, E)>
where
    R: Send + Sync,
    E: Send,
    F: Fn(usize, usize, u64, usize) -> Vec<Result<R, E>> + Sync,
{
    let plan = GridPlan::new(segments);
    let total = plan.total();
    if total == 0 {
        return Ok(segments.iter().map(|&s| (s, Vec::new())).collect());
    }
    let batch = batch.max(1);

    // Pre-plan the claim units: each is up to `batch` contiguous slots of
    // one segment. Claim order is run order, so coverage (and the
    // error-selection candidates) are deterministic at any thread count.
    struct Run {
        flat_base: usize,
        point: usize,
        base_rep: u64,
        count: usize,
    }
    let mut runs = Vec::new();
    let mut flat = 0usize;
    for seg in segments {
        let mut offset = 0usize;
        while offset < seg.count {
            let count = batch.min(seg.count - offset);
            runs.push(Run {
                flat_base: flat + offset,
                point: seg.point,
                base_rep: seg.base_rep + offset as u64,
                count,
            });
            offset += count;
        }
        flat += seg.count;
    }

    let threads = threads.max(1).min(runs.len());
    let next = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);
    let first_error: Mutex<Option<(usize, E)>> = Mutex::new(None);
    let slots: Vec<OnceLock<R>> = (0..total).map(|_| OnceLock::new()).collect();

    // One claim per batch run (covering `count` slots); the run's wall
    // time goes in its own histogram since a run spans many slots.
    let tele = crate::telemetry::telemetry();
    let claims = tele.counter("grid_tasks_claimed_total");
    let batch_wall = tele.histogram("grid_batch_wall_ns");
    // One `slot` span per batch run (flat = the run's first slot), same
    // ambient-trace resolution as the scalar path.
    let tr = crate::trace::tracer();
    let trace = crate::trace::current();

    let consume_run = |run: &Run| -> Result<(), (usize, E)> {
        claims.add(run.count as u64);
        let span = tr.start();
        let started = Instant::now();
        let out = task(run.flat_base, run.point, run.base_rep, run.count);
        batch_wall.record_duration(started.elapsed());
        tr.record(
            trace,
            crate::trace::name::SLOT,
            crate::trace::cat::GRID,
            run.flat_base as u64,
            span,
        );
        debug_assert_eq!(out.len(), run.count, "batch task must fill every lane");
        let mut first: Option<(usize, E)> = None;
        for (lane, res) in out.into_iter().enumerate() {
            match res {
                Ok(r) => {
                    let _ = slots[run.flat_base + lane].set(r);
                    if let Some(cb) = progress {
                        let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                        cb(Progress {
                            point: run.point,
                            replication: run.base_rep + lane as u64,
                            completed: done,
                            total,
                        });
                    }
                }
                Err(e) => {
                    // Lanes are in flat order, so the first Err seen is
                    // the run's lowest-flat-index failure.
                    if first.is_none() {
                        first = Some((run.flat_base + lane, e));
                    }
                }
            }
        }
        match first {
            None => Ok(()),
            Some(err) => Err(err),
        }
    };

    if threads == 1 {
        // Sequential fast path: runs execute in flat order, so the first
        // failing run's lowest lane IS the global lowest-index error.
        let mut result = Ok(());
        for run in &runs {
            if let Err(e) = consume_run(run) {
                result = Err(e);
                break;
            }
        }
        result?;
    } else {
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    if cancelled.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= runs.len() {
                        break;
                    }
                    if let Err((flat, e)) = consume_run(&runs[i]) {
                        let mut guard = first_error.lock().expect("error mutex never poisoned");
                        match &*guard {
                            Some((j, _)) if *j <= flat => {}
                            _ => *guard = Some((flat, e)),
                        }
                        drop(guard);
                        cancelled.store(true, Ordering::Relaxed);
                        break;
                    }
                });
            }
        });
        if let Some(err) = first_error
            .into_inner()
            .expect("error mutex never poisoned")
        {
            return Err(err);
        }
    }

    let mut iter = slots.into_iter();
    let out = segments
        .iter()
        .map(|&seg| {
            let results: Vec<R> = iter
                .by_ref()
                .take(seg.count)
                .map(|s| s.into_inner().expect("every slot filled"))
                .collect();
            (seg, results)
        })
        .collect();
    Ok(out)
}

/// The shared executor: a worker-thread count, a backend selection, and an
/// optional progress callback.
///
/// `Runner` is cheap to construct; all execution state lives on the stack
/// of each call. With the default in-process backend, worker threads are
/// scoped (`std::thread::scope`), so borrowed tasks — closures capturing
/// `&Simulator`, slices, etc. — need no `Arc` and no `'static` bounds.
///
/// Closure-based grids ([`Runner::map`], [`Runner::grid`],
/// [`Runner::try_grid`]) always execute in-process: a closure is bound to
/// this address space. Portable jobs ([`Runner::run_job`],
/// [`Runner::run_adaptive_job`]) go through whichever
/// [`crate::exec::ExecBackend`] the runner was configured with, including
/// the multi-process [`crate::exec::ShardedBackend`].
pub struct Runner {
    pub(crate) threads: usize,
    /// Batch width for portable-job dispatch (contiguous same-point slots
    /// per `PortableJob::run_batch` call); closure grids ignore it.
    pub(crate) batch: usize,
    pub(crate) backend: crate::exec::BackendSel,
    pub(crate) progress: Option<Box<ProgressFn>>,
}

impl std::fmt::Debug for Runner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runner")
            .field("threads", &self.threads)
            .field("backend", &self.backend)
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

impl Runner {
    /// A runner with an explicit worker-thread count (clamped to ≥ 1) on
    /// the in-process backend.
    pub fn new(threads: usize) -> Self {
        Runner {
            threads: threads.max(1),
            batch: 1,
            backend: crate::exec::BackendSel::InProcess,
            progress: None,
        }
    }

    /// Set the portable-job batch width (clamped to ≥ 1): backends hand
    /// each worker claim up to this many contiguous same-point slots in
    /// one [`crate::exec::PortableJob::run_batch`] call. Results are
    /// byte-identical at any width.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// A runner with one worker per available core.
    pub fn with_default_threads() -> Self {
        Runner::new(default_threads())
    }

    /// The worker-thread count this runner schedules onto (per process:
    /// the sharded backend runs this many threads *in each* worker).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Install a progress callback, invoked after every finished task (from
    /// worker threads; keep it cheap and thread-safe). The grid total it
    /// reports is computed once up front when the grid is planned.
    pub fn on_progress(mut self, f: impl Fn(Progress) + Send + Sync + 'static) -> Self {
        self.progress = Some(Box::new(f));
        self
    }

    /// Map `f` over `inputs`, preserving order — a one-replication-per-point
    /// grid. The classic parameter-sweep entry point.
    pub fn map<T, R, F>(&self, inputs: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send + Sync,
        F: Fn(&T) -> R + Sync,
    {
        let reps = vec![1u64; inputs.len()];
        let per_point = self.grid(&reps, |point, _rep| f(&inputs[point]));
        per_point
            .into_iter()
            .map(|mut v| v.pop().expect("one replication per point"))
            .collect()
    }

    /// Run an infallible `(point × replication)` grid: `reps[p]` tasks for
    /// each point `p`, returning each point's results in replication order.
    pub fn grid<R, F>(&self, reps: &[u64], task: F) -> Vec<Vec<R>>
    where
        R: Send + Sync,
        F: Fn(usize, u64) -> R + Sync,
    {
        match self.try_grid(reps, |p, r| Ok::<R, std::convert::Infallible>(task(p, r))) {
            Ok(out) => out,
            Err(e) => match e {},
        }
    }

    /// Run a fallible `(point × replication)` grid.
    ///
    /// On success, returns each point's task results **in replication
    /// order** regardless of completion order — fold them left-to-right and
    /// the reduction is bit-identical at any thread count. On the first
    /// task error, in-flight work is cancelled (no new tasks start) and the
    /// lowest-flat-indexed error observed is returned.
    pub fn try_grid<R, E, F>(&self, reps: &[u64], task: F) -> Result<Vec<Vec<R>>, E>
    where
        R: Send + Sync,
        E: Send,
        F: Fn(usize, u64) -> Result<R, E> + Sync,
    {
        let segments: Vec<Segment> = reps
            .iter()
            .enumerate()
            .map(|(point, &n)| Segment {
                point,
                base_rep: 0,
                count: n as usize,
            })
            .collect();
        let mut out: Vec<Vec<R>> = (0..reps.len()).map(|_| Vec::new()).collect();
        for (seg, results) in self.run_segments(&segments, &task)? {
            debug_assert!(out[seg.point].is_empty());
            out[seg.point] = results;
        }
        Ok(out)
    }

    /// Execute a list of segments as one flat in-process task stream;
    /// returns each segment's results in replication order. Thin adapter
    /// over [`run_segments_core`] for closure-based callers.
    pub(crate) fn run_segments<R, E, F>(
        &self,
        segments: &[Segment],
        task: &F,
    ) -> Result<Vec<(Segment, Vec<R>)>, E>
    where
        R: Send + Sync,
        E: Send,
        F: Fn(usize, u64) -> Result<R, E> + Sync,
    {
        run_segments_core(
            self.threads,
            self.progress.as_deref(),
            segments,
            &|_flat, point, rep| task(point, rep),
        )
        .map_err(|(_flat, e)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_preserves_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = Runner::new(8).map(&inputs, |&x| x * x);
        let expect: Vec<u64> = inputs.iter().map(|&x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn map_empty_and_single() {
        let empty: [u32; 0] = [];
        let out: Vec<u32> = Runner::new(4).map(&empty, |&x| x);
        assert!(out.is_empty());
        let out = Runner::new(4).map(&[7], |&x: &u32| x + 1);
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn grid_heterogeneous_replication_counts() {
        // Point p gets p replications; task encodes (point, rep).
        let reps = [0u64, 1, 4, 2];
        let out = Runner::new(3).grid(&reps, |p, r| (p, r));
        assert_eq!(out.len(), 4);
        for (p, rows) in out.iter().enumerate() {
            assert_eq!(rows.len(), reps[p] as usize);
            for (r, &(tp, tr)) in rows.iter().enumerate() {
                assert_eq!((tp, tr), (p, r as u64));
            }
        }
    }

    #[test]
    fn grid_results_identical_across_thread_counts() {
        let reps = [3u64, 5, 1, 7, 2];
        let run = |threads| Runner::new(threads).grid(&reps, |p, r| (p as u64 + 1) * 1000 + r);
        let t1 = run(1);
        assert_eq!(t1, run(2));
        assert_eq!(t1, run(8));
    }

    #[test]
    fn try_grid_surfaces_lowest_index_error() {
        let reps = [4u64; 4];
        let err = Runner::new(4)
            .try_grid(&reps, |p, r| {
                if r >= 2 {
                    Err(format!("boom {p}/{r}"))
                } else {
                    Ok(p)
                }
            })
            .unwrap_err();
        // Some point's replication ≥ 2 failed; exact one depends on
        // scheduling, but an error must surface.
        assert!(err.starts_with("boom"), "{err}");
    }

    #[test]
    fn error_cancels_in_flight_work_promptly() {
        // 512 tasks; flat index 0 is claimed first by construction and
        // errors. Already-claimed tasks park until the error is raised
        // (keeping the test independent of scheduler timing on loaded
        // hosts), then finish; workers must observe the cancellation flag
        // instead of claiming further work, so only tasks in flight at
        // error time — at most one per worker, plus a small claim race —
        // ever execute.
        let error_raised = AtomicBool::new(false);
        let executed = AtomicUsize::new(0);
        let total_reps = [512u64];
        let res = Runner::new(4).try_grid(&total_reps, |_p, r| {
            if r == 0 {
                error_raised.store(true, Ordering::SeqCst);
                return Err("first task fails");
            }
            while !error_raised.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            executed.fetch_add(1, Ordering::SeqCst);
            Ok(r)
        });
        assert!(res.is_err());
        let ran = executed.load(Ordering::SeqCst);
        assert!(ran < 64, "cancellation too slow: {ran} of 511 tasks ran");
    }

    #[test]
    fn sequential_path_stops_at_first_error() {
        let executed = AtomicUsize::new(0);
        let res = Runner::new(1).try_grid(&[10u64], |_p, r| {
            executed.fetch_add(1, Ordering::Relaxed);
            if r == 3 {
                Err("stop")
            } else {
                Ok(r)
            }
        });
        assert!(res.is_err());
        assert_eq!(executed.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn progress_reports_every_task() {
        let ticks = std::sync::Arc::new(AtomicUsize::new(0));
        let t = ticks.clone();
        let runner = Runner::new(4).on_progress(move |p| {
            assert!(p.completed <= p.total);
            assert_eq!(p.total, 12);
            t.fetch_add(1, Ordering::Relaxed);
        });
        let out = runner.grid(&[4u64, 8], |p, r| (p, r));
        assert_eq!(out[0].len(), 4);
        assert_eq!(out[1].len(), 8);
        assert_eq!(ticks.load(Ordering::Relaxed), 12);
    }

    #[test]
    fn zero_task_grid() {
        let out: Vec<Vec<u32>> = Runner::new(4).grid(&[0u64, 0], |_, _| 1);
        assert_eq!(out, vec![Vec::<u32>::new(), Vec::new()]);
    }

    #[test]
    fn uneven_work_lands_in_order() {
        // Work items with wildly different costs still land in order.
        let inputs: Vec<u64> = (0..32).collect();
        let out = Runner::new(4).map(&inputs, |&x| {
            let mut acc = 0u64;
            for i in 0..(x % 7) * 10_000 {
                acc = acc.wrapping_add(i);
            }
            std::hint::black_box(acc);
            x
        });
        assert_eq!(out, inputs);
    }

    #[test]
    fn core_reports_flat_error_index() {
        // Two points × 3 reps; rep 1 of point 1 (flat index 4) and rep 2 of
        // point 0 (flat index 2) both fail — the flat-lower one wins.
        let segs = [
            Segment {
                point: 0,
                base_rep: 0,
                count: 3,
            },
            Segment {
                point: 1,
                base_rep: 0,
                count: 3,
            },
        ];
        for threads in [1, 4] {
            let err =
                run_segments_core::<u64, _, _>(threads, None, &segs, &|_flat, point, rep| match (
                    point, rep,
                ) {
                    (0, 2) | (1, 1) => Err("bad slot"),
                    _ => Ok(rep),
                })
                .unwrap_err();
            assert_eq!(err.1, "bad slot");
            assert!(err.0 == 2 || err.0 == 4, "flat index {}", err.0);
            if threads == 1 {
                // Sequential claim order guarantees the lowest index.
                assert_eq!(err.0, 2);
            }
        }
    }

    #[test]
    fn batched_core_matches_scalar_core_at_any_width() {
        let segs = [
            Segment {
                point: 0,
                base_rep: 0,
                count: 5,
            },
            Segment {
                point: 2,
                base_rep: 10,
                count: 7,
            },
            Segment {
                point: 1,
                base_rep: 0,
                count: 0,
            },
            Segment {
                point: 3,
                base_rep: 1,
                count: 3,
            },
        ];
        let scalar = run_segments_core::<u64, String, _>(1, None, &segs, &|flat, point, rep| {
            Ok((flat as u64) << 32 | (point as u64) << 16 | rep)
        })
        .unwrap();
        for batch in [1usize, 2, 3, 8, 64] {
            for threads in [1usize, 4] {
                let batched = run_segments_core_batched::<u64, String, _>(
                    threads,
                    batch,
                    None,
                    &segs,
                    &|flat_base, point, base_rep, count| {
                        (0..count)
                            .map(|i| {
                                Ok(((flat_base + i) as u64) << 32
                                    | (point as u64) << 16
                                    | (base_rep + i as u64))
                            })
                            .collect()
                    },
                )
                .unwrap();
                assert_eq!(scalar, batched, "batch={batch} threads={threads}");
            }
        }
    }

    #[test]
    fn batched_core_runs_stay_within_one_point() {
        let segs = [
            Segment {
                point: 0,
                base_rep: 0,
                count: 3,
            },
            Segment {
                point: 1,
                base_rep: 0,
                count: 4,
            },
        ];
        // Width 5 > either segment: every run must still be single-point.
        let out = run_segments_core_batched::<(usize, u64), String, _>(
            1,
            5,
            None,
            &segs,
            &|_flat, point, base_rep, count| {
                assert!(count <= 4);
                (0..count)
                    .map(|i| Ok((point, base_rep + i as u64)))
                    .collect()
            },
        )
        .unwrap();
        assert_eq!(out[0].1, vec![(0, 0), (0, 1), (0, 2)]);
        assert_eq!(out[1].1, vec![(1, 0), (1, 1), (1, 2), (1, 3)]);
    }

    #[test]
    fn batched_core_reports_lowest_lane_error() {
        let segs = [Segment {
            point: 0,
            base_rep: 0,
            count: 10,
        }];
        for threads in [1usize, 4] {
            let err = run_segments_core_batched::<u64, &str, _>(
                threads,
                4,
                None,
                &segs,
                &|flat_base, _point, _base_rep, count| {
                    (0..count)
                        .map(|i| {
                            let flat = flat_base + i;
                            if flat == 6 || flat == 7 {
                                Err("boom")
                            } else {
                                Ok(flat as u64)
                            }
                        })
                        .collect()
                },
            )
            .unwrap_err();
            assert_eq!(err, (6, "boom"), "threads={threads}");
        }
    }

    #[test]
    fn grid_plan_locates_every_slot() {
        let segs = [
            Segment {
                point: 3,
                base_rep: 10,
                count: 2,
            },
            Segment {
                point: 0,
                base_rep: 0,
                count: 0,
            },
            Segment {
                point: 1,
                base_rep: 5,
                count: 3,
            },
        ];
        let plan = GridPlan::new(&segs);
        assert_eq!(plan.total(), 5);
        assert_eq!(plan.locate(0), (0, 0));
        assert_eq!(plan.locate(1), (0, 1));
        assert_eq!(plan.locate(2), (2, 0));
        assert_eq!(plan.locate(4), (2, 2));
    }
}
