//! Focused edge-case tests of engine behaviours not exercised by the main
//! suites: uniform timing, color-count guards, weighted color choices at
//! runtime, age-memory arithmetic, arc multiplicities, and degenerate
//! configurations.

use petri_core::prelude::*;
use petri_core::sim::RewardSpec;

/// Uniform(a,b) transitions fire within their support and at the right
/// long-run rate.
#[test]
fn uniform_transition_rate() {
    let mut b = NetBuilder::new("uniform");
    let p = b.place("p").tokens(1).build();
    let t = b
        .transition("tick", Timing::uniform(0.5, 1.5))
        .input(p, 1)
        .output(p, 1)
        .build();
    let net = b.build().unwrap();
    let mut sim = Simulator::new(&net, SimConfig::for_horizon(10_000.0));
    let thru = sim.reward(RewardSpec::Throughput(t)).unwrap();
    let out = sim.run(3).unwrap();
    // Mean delay 1.0 -> throughput ~1.0.
    assert!(
        (out.reward(thru) - 1.0).abs() < 0.05,
        "throughput {}",
        out.reward(thru)
    );
}

/// `#place[color]` guards gate on specific colors only.
#[test]
fn color_count_guard() {
    let mut b = NetBuilder::new("colorguard");
    let jobs = b
        .place("jobs")
        .token_colored(Color(1))
        .token_colored(Color(2))
        .build();
    let fired = b.place("fired").build();
    // Only enabled while a color-2 token is present; consumes any token
    // (FIFO -> color 1 first).
    b.transition("t", Timing::deterministic(1.0))
        .input(jobs, 1)
        .output(fired, 1)
        .guard(Expr::count_color(jobs, Color(2)).gt_c(0))
        .build();
    let net = b.build().unwrap();
    let sim = Simulator::new(&net, SimConfig::for_horizon(10.0));
    let out = sim.run(1).unwrap();
    // First firing at t=1 consumes the color-1 token; color-2 remains so a
    // second firing at t=2 consumes it; then the guard is false forever.
    assert_eq!(out.final_marking.count(fired), 2);
    assert_eq!(out.final_marking.count(jobs), 0);
}

/// Weighted Choice output colors follow their distribution at runtime.
#[test]
fn choice_colors_in_simulation() {
    let mut b = NetBuilder::new("choice");
    let p = b.place("p").tokens(1).build();
    let sink1 = b.place("sink1").build();
    let sink2 = b.place("sink2").build();
    let staging = b.place("staging").build();
    b.transition("gen", Timing::deterministic(0.1))
        .input(p, 1)
        .output(p, 1)
        .output_colored(
            staging,
            1,
            ColorExpr::Choice(vec![(Color(1), 1.0), (Color(2), 4.0)]),
        )
        .build();
    b.transition("route1", Timing::immediate())
        .input_filtered(staging, 1, ColorFilter::Eq(Color(1)))
        .output(sink1, 1)
        .build();
    b.transition("route2", Timing::immediate())
        .input_filtered(staging, 1, ColorFilter::Eq(Color(2)))
        .output(sink2, 1)
        .build();
    let net = b.build().unwrap();
    let sim = Simulator::new(&net, SimConfig::for_horizon(2000.0));
    let out = sim.run(11).unwrap();
    let c1 = out.final_marking.count(sink1) as f64;
    let c2 = out.final_marking.count(sink2) as f64;
    let frac = c2 / (c1 + c2);
    assert!((frac - 0.8).abs() < 0.02, "frac {frac}");
}

/// RaceAge freezes the *remaining* time exactly: a timer interrupted
/// halfway resumes with half the delay left.
#[test]
fn race_age_remaining_time_is_exact() {
    let mut b = NetBuilder::new("age-exact");
    let idle = b.place("idle").tokens(1).build();
    let once = b.place("once").tokens(1).build(); // one-shot fuel
    let gate = b.place("gate").build();
    let done = b.place("done").build();
    // Interruptor: gate token present during [2, 7): the timer (10 s, age
    // memory, started at 0) runs 2 s, pauses 5 s, resumes with 8 s left,
    // and must fire at exactly 15.
    b.transition("block", Timing::deterministic(2.0))
        .input(once, 1)
        .output(gate, 1)
        .build();
    b.transition("unblock", Timing::deterministic(5.0))
        .input(gate, 1)
        .build();
    b.transition("timer", Timing::deterministic(10.0))
        .input(idle, 1)
        .output(done, 1)
        .guard(Expr::count(gate).eq_c(0))
        .memory(MemoryPolicy::RaceAge)
        .build();
    let net = b.build().unwrap();
    let sim = Simulator::new(&net, SimConfig::for_horizon(20.0).with_trace(16));
    let out = sim.run(1).unwrap();
    let timer_id = net.transition_by_name("timer").unwrap();
    let firing = out
        .trace
        .iter()
        .find(|e| e.transition == timer_id)
        .expect("timer fired");
    assert!(
        (firing.time - 15.0).abs() < 1e-9,
        "timer fired at {} (expected 15.0)",
        firing.time
    );
}

/// Arc multiplicities: a transition needing 3 tokens fires only on every
/// third arrival and produces its outputs in bulk.
#[test]
fn multiplicity_batching() {
    let mut b = NetBuilder::new("batch");
    let q = b.place("q").build();
    let out_p = b.place("out").build();
    b.transition("gen", Timing::deterministic(1.0))
        .output(q, 1)
        .build();
    b.transition("batch", Timing::immediate())
        .input(q, 3)
        .output(out_p, 2)
        .build();
    let net = b.build().unwrap();
    let sim = Simulator::new(&net, SimConfig::for_horizon(9.5));
    let out = sim.run(1).unwrap();
    // 9 tokens generated -> 3 batch firings -> 6 outputs, 0 left in q.
    assert_eq!(out.final_marking.count(out_p), 6);
    assert_eq!(out.final_marking.count(q), 0);
}

/// Zero-horizon runs are legal: no events, empty rewards, initial marking
/// preserved.
#[test]
fn zero_horizon() {
    let mut b = NetBuilder::new("zero");
    let p = b.place("p").tokens(2).build();
    b.transition("t", Timing::exponential(1.0))
        .input(p, 1)
        .build();
    let net = b.build().unwrap();
    let mut sim = Simulator::new(&net, SimConfig::for_horizon(0.0));
    let r = sim.reward_place(p);
    let out = sim.run(1).unwrap();
    assert_eq!(out.total_firings(), 0);
    assert_eq!(out.final_marking.count(p), 2);
    assert_eq!(out.reward(r), 0.0); // no observed time
}

/// A transition disabled mid-countdown by an inhibitor (not a guard) also
/// obeys race-enable: the clock restarts.
#[test]
fn inhibitor_disabling_restarts_clock() {
    let mut b = NetBuilder::new("inh-restart");
    let idle = b.place("idle").tokens(1).build();
    let blocker = b.place("blocker").build();
    let slept = b.place("slept").build();
    // Blocker pulses: appears at 0.4, cleared at 0.8, appears at 1.2, ...
    b.transition("pulse_on", Timing::deterministic(0.4))
        .output(blocker, 1)
        .inhibitor(blocker, 1)
        .build();
    b.transition("pulse_off", Timing::deterministic(0.4))
        .input(blocker, 1)
        .build();
    // Timer needs 0.9 s of uninterrupted enablement; pulses every 0.4 s
    // keep resetting it under race-enable.
    b.transition("timer", Timing::deterministic(0.9))
        .input(idle, 1)
        .output(slept, 1)
        .inhibitor(blocker, 1)
        .build();
    let net = b.build().unwrap();
    let sim = Simulator::new(&net, SimConfig::for_horizon(50.0));
    let out = sim.run(1).unwrap();
    assert_eq!(out.final_marking.count(slept), 0, "timer must never fire");
}

/// Transfer color expressions preserve the consumed token's color through
/// a timed (not just immediate) transition.
#[test]
fn transfer_through_timed_transition() {
    let mut b = NetBuilder::new("transfer-timed");
    let src = b
        .place("src")
        .token_colored(Color(7))
        .token_colored(Color(9))
        .build();
    let dst = b.place("dst").build();
    b.transition("move", Timing::deterministic(1.0))
        .input(src, 1)
        .output_colored(dst, 1, ColorExpr::Transfer { arc_index: 0 })
        .build();
    let net = b.build().unwrap();
    let sim = Simulator::new(&net, SimConfig::for_horizon(5.0));
    let out = sim.run(1).unwrap();
    assert_eq!(out.final_marking.count_color(dst, Color(7)), 1);
    assert_eq!(out.final_marking.count_color(dst, Color(9)), 1);
}

/// Simulators are reusable and runs are order-independent: interleaving
/// runs with different seeds does not change any individual run.
#[test]
fn runs_are_independent() {
    let mut b = NetBuilder::new("independent");
    let q = b.place("q").build();
    b.transition("a", Timing::exponential(1.0))
        .output(q, 1)
        .build();
    b.transition("s", Timing::exponential(2.0))
        .input(q, 1)
        .build();
    let net = b.build().unwrap();
    let sim = Simulator::new(&net, SimConfig::for_horizon(200.0));
    let a1 = sim.run(1).unwrap();
    let _ = sim.run(2).unwrap();
    let _ = sim.run(3).unwrap();
    let a2 = sim.run(1).unwrap();
    assert_eq!(a1.firing_counts, a2.firing_counts);
    assert_eq!(a1.final_marking, a2.final_marking);
}

/// Guards referencing the transition's own output place work (feedback
/// self-limitation): generator stops at 5 tokens via guard, not inhibitor.
#[test]
fn guard_on_own_output() {
    let mut b = NetBuilder::new("selflimit");
    let q = b.place("q").build();
    b.transition("gen", Timing::deterministic(0.1))
        .output(q, 1)
        .guard(Expr::count(q).lt_c(5))
        .build();
    let net = b.build().unwrap();
    let sim = Simulator::new(&net, SimConfig::for_horizon(100.0));
    let out = sim.run(1).unwrap();
    assert_eq!(out.final_marking.count(q), 5);
}
