//! The parent half of the worker protocol, transport-agnostic.
//!
//! Request framing (manifest dispatch, graceful shutdown) and the response
//! drain — the loop that turns a worker's `R`/`E`/`D` frame stream back
//! into ordered slot results — live here once, shared by
//! [`crate::exec::ShardedBackend`] (pipes) and
//! [`crate::remote::RemoteBackend`] (TCP). Before this module both
//! endpoints inlined their own copy of the frame loop.

use crate::exec::{frame, ExecError, TaskManifest, WIRE_VERSION};
use crate::grid::{Progress, ProgressFn, Segment};
use crate::remote::transport::FrameTransport;
use crate::wire::{self, Reader, WireError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Encode a manifest-dispatch request: tag, protocol version, worker
/// thread count, batch width, trace ID (wire version 5; `0` = no job
/// trace context), then the manifest itself.
pub(crate) fn encode_manifest_request(
    threads: usize,
    batch: usize,
    manifest: &TaskManifest,
    trace: u64,
) -> Vec<u8> {
    let mut body = Vec::new();
    wire::put_u8(&mut body, frame::MANIFEST);
    wire::put_u8(&mut body, WIRE_VERSION);
    wire::put_u32(&mut body, threads as u32);
    wire::put_u32(&mut body, batch.max(1) as u32);
    wire::put_u64(&mut body, trace);
    manifest.encode_into(&mut body);
    body
}

/// Encode a graceful-shutdown request (no payload).
pub(crate) fn encode_shutdown_request() -> Vec<u8> {
    vec![frame::SHUTDOWN]
}

/// How one chunk's response stream ended.
#[derive(Debug)]
pub(crate) enum Drained {
    /// `D` received and every slot of the chunk was delivered; the
    /// transport is clean and reusable.
    Complete,
    /// The worker reported a task error in-band (`E`): the chunk's
    /// lowest-flat-index failure. The transport is clean and reusable —
    /// the error is deterministic, so re-dispatching would fail again.
    TaskError(ExecError),
    /// The stream broke: EOF mid-chunk, I/O failure, or a protocol
    /// violation. The transport is unusable; `sink.delivered` records which
    /// slots were salvaged before the break (re-dispatch material for
    /// backends that retry).
    Broken(String),
}

/// Where one chunk's results land while its response stream drains.
///
/// Results go straight into the **global** flat-index table (`results`,
/// sized for the whole manifest) so gathers need no per-chunk reshuffle;
/// `delivered` is the chunk-local bitmap retry logic consumes.
pub(crate) struct ChunkSink<'a> {
    /// `(point, replication, seed)` of each chunk-local slot.
    pub slots: &'a [(usize, u64, u64)],
    /// Chunk-local slot index → global flat index.
    pub global_flat: &'a [usize],
    /// The whole manifest's result table, indexed by global flat index.
    pub results: &'a [OnceLock<Vec<u8>>],
    /// Chunk-local delivery bitmap (same length as `slots`).
    pub delivered: &'a mut [bool],
    /// Grand-total completion counter shared across all chunks.
    pub completed: &'a AtomicUsize,
    /// Total slots in the whole manifest (for progress ticks).
    pub grand_total: usize,
    /// Progress callback, if any.
    pub progress: Option<&'a ProgressFn>,
}

/// Drain one chunk's response frames from `transport` into `sink`.
///
/// Reads until `D` (complete), `E` (in-band task error) or a stream
/// failure. Never returns early on a decode problem without classifying the
/// transport as broken — a worker that emits garbage cannot be trusted with
/// further chunks.
pub(crate) fn drain_chunk(transport: &mut dyn FrameTransport, sink: ChunkSink<'_>) -> Drained {
    debug_assert_eq!(sink.slots.len(), sink.global_flat.len());
    debug_assert_eq!(sink.slots.len(), sink.delivered.len());
    loop {
        let body = match transport.recv() {
            Ok(Some(b)) => b,
            Ok(None) => return Drained::Broken("EOF before chunk completed".into()),
            Err(e) => return Drained::Broken(format!("frame read failed: {e}")),
        };
        let mut r = Reader::new(&body);
        let step = (|| -> Result<Option<Drained>, WireError> {
            match r.get_u8()? {
                frame::RESULT => {
                    let local = r.get_u64()? as usize;
                    let bytes = r.get_bytes()?.to_vec();
                    r.finish()?;
                    if local >= sink.slots.len() {
                        return Err(WireError::new(format!(
                            "result slot {local} out of range ({} slots)",
                            sink.slots.len()
                        )));
                    }
                    if sink.delivered[local]
                        || sink.results[sink.global_flat[local]].set(bytes).is_err()
                    {
                        return Err(WireError::new(format!("slot {local} delivered twice")));
                    }
                    sink.delivered[local] = true;
                    let done_now = sink.completed.fetch_add(1, Ordering::Relaxed) + 1;
                    if let Some(cb) = sink.progress {
                        let (point, rep, _seed) = sink.slots[local];
                        cb(Progress {
                            point,
                            replication: rep,
                            completed: done_now,
                            total: sink.grand_total,
                        });
                    }
                    Ok(None)
                }
                frame::ERROR => {
                    let local = r.get_u64()? as usize;
                    let message = r.get_str()?.to_string();
                    r.finish()?;
                    // Same trust boundary as the RESULT arm: an
                    // out-of-range slot is a protocol violation, not an
                    // error report — a worker that garbles indices gets
                    // its transport abandoned, never a fabricated Task
                    // error that could win lowest-index selection.
                    let &(point, rep, _seed) = sink.slots.get(local).ok_or_else(|| {
                        WireError::new(format!(
                            "error slot {local} out of range ({} slots)",
                            sink.slots.len()
                        ))
                    })?;
                    Ok(Some(Drained::TaskError(ExecError::Task {
                        flat_index: sink.global_flat[local],
                        point,
                        replication: rep,
                        message,
                    })))
                }
                frame::HEARTBEAT => {
                    // Liveness tick from an executing worker: resets the
                    // transport's read timeout simply by having arrived.
                    r.finish()?;
                    Ok(None)
                }
                frame::PROGRESS => {
                    // Progress tick (wire version 4): liveness plus the
                    // worker's delivered/total counts. The counts are
                    // advisory — completion accounting derives solely from
                    // `R` frames (which this drain already turns into
                    // progress callbacks), so a reordered or dropped `P`
                    // frame can never skew the gather or double-tick the
                    // completed counter.
                    let _delivered = r.get_u64()?;
                    let _total = r.get_u64()?;
                    r.finish()?;
                    Ok(None)
                }
                frame::SPANS => {
                    // Span batch (wire version 5): the worker's trace
                    // spans for this chunk. Advisory like `P` — spans
                    // fold into the parent's collector for rendering,
                    // but results derive solely from `R` frames, so a
                    // lost batch costs observability only. Slot spans
                    // arrive with *chunk-local* flat indices; remap them
                    // through the sink's flat table so remainder
                    // re-dispatches stay correctly attributed.
                    let spans = crate::trace::decode_spans(&mut r)?;
                    r.finish()?;
                    let tr = crate::trace::tracer();
                    for mut span in spans {
                        if span.name == crate::trace::name::SLOT {
                            let local = span.flat as usize;
                            if let Some(&global) = sink.global_flat.get(local) {
                                span.flat = global as u64;
                            }
                        }
                        tr.record_span(span);
                    }
                    Ok(None)
                }
                frame::DONE => {
                    let claimed = r.get_u64()? as usize;
                    r.finish()?;
                    let have = sink.delivered.iter().filter(|d| **d).count();
                    if claimed != have {
                        return Err(WireError::new(format!(
                            "worker claims {claimed} result(s), received {have}"
                        )));
                    }
                    if have != sink.slots.len() {
                        return Err(WireError::new(format!(
                            "worker completed with {have} of {} slot(s) delivered",
                            sink.slots.len()
                        )));
                    }
                    Ok(Some(Drained::Complete))
                }
                tag => Err(WireError::new(format!("unknown frame tag {tag:#x}"))),
            }
        })();
        match step {
            Ok(None) => continue,
            Ok(Some(outcome)) => return outcome,
            Err(e) => return Drained::Broken(format!("protocol violation: {e}")),
        }
    }
}

/// The undelivered remainder of a partially-drained chunk: every slot
/// whose `delivered` bit is unset, re-packed into merged contiguous
/// segments plus the matching global-flat-index map. `None` when every
/// slot landed. This is the re-dispatch unit shared by the remote
/// backend's peer-death recovery and the supervised shard path — retried
/// slots are seeded pure functions, so a remainder re-run is
/// byte-identical by construction.
pub(crate) fn undelivered_remainder(
    manifest: &TaskManifest,
    global_flat: &[usize],
    delivered: &[bool],
) -> Option<(TaskManifest, Vec<usize>)> {
    let slots = manifest.slots();
    let mut segments: Vec<Segment> = Vec::new();
    let mut seeds = Vec::new();
    let mut flat = Vec::new();
    for (local, &(point, rep, seed)) in slots.iter().enumerate() {
        if delivered[local] {
            continue;
        }
        match segments.last_mut() {
            Some(seg) if seg.point == point && seg.base_rep + seg.count as u64 == rep => {
                seg.count += 1;
            }
            _ => segments.push(Segment {
                point,
                base_rep: rep,
                count: 1,
            }),
        }
        seeds.push(seed);
        flat.push(global_flat[local]);
    }
    if seeds.is_empty() {
        return None;
    }
    Some((
        TaskManifest {
            kind: manifest.kind.clone(),
            payload: manifest.payload.clone(),
            segments,
            seeds,
        },
        flat,
    ))
}

/// First undelivered slot's global flat index, if any — the attribution
/// point for a worker that died owing part of its chunk.
pub(crate) fn first_undelivered(global_flat: &[usize], delivered: &[bool]) -> Option<usize> {
    delivered
        .iter()
        .zip(global_flat)
        .filter(|(d, _)| !**d)
        .map(|(_, &g)| g)
        .min()
}

/// Keep whichever error has the lower attributed flat index — the
/// deterministic cross-chunk selection both multi-worker backends share
/// (matching `Runner::try_grid`).
pub(crate) fn keep_lowest_error(slot: &mut Option<ExecError>, e: ExecError) {
    match slot {
        Some(cur) if cur.flat_index() <= e.flat_index() => {}
        _ => *slot = Some(e),
    }
}

/// Collapse a completed gather table into flat-order result bytes. A
/// missing slot is impossible after every chunk drained clean; it is
/// reported as a worker error rather than a panic because the table was
/// filled by untrusted peers.
pub(crate) fn collect_results(results: Vec<OnceLock<Vec<u8>>>) -> Result<Vec<Vec<u8>>, ExecError> {
    results
        .into_iter()
        .enumerate()
        .map(|(flat, slot)| {
            slot.into_inner().ok_or(ExecError::Worker {
                flat_index: flat,
                message: "gather finished without delivering this slot".into(),
            })
        })
        .collect()
}
