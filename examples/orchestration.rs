//! The orchestration runtime, end to end: one flattened
//! `(sweep-point × replication)` grid for the paper's CPU model, a live
//! progress callback, and the adaptive stopping rule — the paper's "until
//! steady state probability values were obtained" as an explicit,
//! budget-aware criterion.
//!
//! ```sh
//! cargo run --release --example orchestration
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use wsn_petri::petri_core::replicate::run_replications_adaptive;
use wsn_petri::prelude::*;
use wsn_petri::sim_runtime::{Runner, StoppingRule};

fn main() {
    let threads = wsn_petri::sim_runtime::default_threads();
    let grid = [0.05, 0.1, 0.3, 0.5, 1.0];
    let reps_per_point = vec![6u64; grid.len()];

    // --- 1. A fixed flattened grid with a progress callback. ------------
    // 5 points × 6 replications = 30 tasks in one work-stealing stream;
    // per-point outputs come back in replication order, so the averages
    // below are bit-identical at any thread count.
    println!(
        "fixed grid: {} points x 6 replications on {threads} thread(s)",
        grid.len()
    );
    let done = Arc::new(AtomicUsize::new(0));
    let seen = done.clone();
    let runner = Runner::new(threads).on_progress(move |p| {
        seen.store(p.completed, Ordering::Relaxed);
    });
    let per_point = runner.grid(&reps_per_point, |point, rep| {
        let params = CpuModelParams::paper_defaults(grid[point], 0.3);
        let seed = wsn_petri::petri_core::rng::SimRng::child_seed(0xF00D, rep);
        simulate_cpu_model(&params, 1000.0, seed).probabilities[0]
    });
    println!("  {} tasks completed", done.load(Ordering::Relaxed));
    println!("{:>10} {:>16}", "PDT (s)", "mean P(standby)");
    for (pdt, outputs) in grid.iter().zip(&per_point) {
        let mean: f64 = outputs.iter().sum::<f64>() / outputs.len() as f64;
        println!("{pdt:>10} {mean:>16.5}");
    }

    // --- 2. The adaptive mode: spend replications where the noise is. ---
    println!("\nadaptive: 95% CI of P(standby) within 3%, budget 8..128");
    println!(
        "{:>10} {:>13} {:>13} {:>9}",
        "PDT (s)", "mean", "CI half", "reps"
    );
    let rule = StoppingRule::relative(0.03).with_budget(8, 128, 8);
    for &pdt in &grid {
        let model = build_cpu_model(&CpuModelParams::paper_defaults(pdt, 0.3));
        let mut sim = Simulator::new(&model.net, SimConfig::for_horizon(1000.0));
        let standby = sim.reward_place(model.places.stand_by);
        let a = run_replications_adaptive(&sim, 0xF00D, &rule, &[standby.index()], threads)
            .expect("CPU net runs");
        let ci = a.summary.ci(standby.index(), ConfidenceLevel::P95);
        println!(
            "{pdt:>10} {:>13.5} {:>13.5} {:>9}{}",
            ci.mean,
            ci.half_width,
            a.summary.replications,
            if a.converged { "" } else { "  (budget hit)" }
        );
    }
    println!("\n(re-run with any thread count — every number above is bit-identical)");
}
