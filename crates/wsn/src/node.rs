//! The sensor-node SCPNs of the paper's Figs. 12 (closed workload) and 13
//! (open workload), with Table XI/XII parameters.
//!
//! Reconstruction notes (see DESIGN.md §5):
//!
//! * The stage chain `Wait → Receiving(3 phases) → Computation →
//!   Transmitting(3 phases) → Wait` is modeled with one place per phase;
//!   the radio's power state is a *function of the stage* (sleeping in
//!   `Wait`, starting in `RxStart`/`TxStart`, active through listening /
//!   packet transfer / packet handling, idle during computation), measured
//!   with predicate rewards rather than a separate radio token — exactly
//!   the simplification TimeNET global guards exist for.
//! * The CPU is the Fig. 3 component with colored jobs: communication
//!   handlers carry the `Comm` DVS color (Table XI's `DVS_3` local guard),
//!   computation jobs carry their own color. `DVS_Delay` (0.05 s mode
//!   switch) is folded into each deterministic service transition — two
//!   deterministic delays in sequence with no escape are equivalent to
//!   their sum.
//! * Stage-advance transitions use Table XI's guard
//!   `(#Buffer == 0) && (#Idle > 0)` (the CPU finished the stage's job).
//! * `Power_Down_Threshold` is defined **last**, so at an exact
//!   firing-time tie a job-delivering transition wins — this is why the
//!   optimum sits *at* `PDT = 0.00177 s`, not just above it.

use des::{NodeSimParams, Workload};
use energy::{ComponentBreakdown, ComponentPower, NodeBreakdown, Power};
use petri_core::prelude::*;

/// Job color of communication-handling jobs (selects `DVS_3` by default).
pub const COMM_JOB: Color = Color(3);
/// Job color of computation jobs.
pub const COMP_JOB: Color = Color(4);

/// Place handles of the node SCPN.
#[derive(Debug, Clone, Copy)]
pub struct NodePlaces {
    /// System waiting for an event (radio asleep).
    pub wait: PlaceId,
    /// Radio starting up for reception.
    pub rx_start: PlaceId,
    /// Radio listening for a channel slot (RX).
    pub rx_listen: PlaceId,
    /// Packet being received.
    pub rx_data: PlaceId,
    /// CPU checking the received packet (radio still active).
    pub rx_handle: PlaceId,
    /// Computation stage (radio idle).
    pub comp_handle: PlaceId,
    /// Radio starting up for transmission.
    pub tx_start: PlaceId,
    /// Radio listening for a channel slot (TX).
    pub tx_listen: PlaceId,
    /// Packet being transmitted.
    pub tx_data: PlaceId,
    /// CPU handling transmit completion (radio still active).
    pub tx_handle: PlaceId,
    /// CPU job queue (colored).
    pub buffer: PlaceId,
    /// CPU asleep.
    pub cpu_sleep: PlaceId,
    /// CPU powering up.
    pub cpu_wake: PlaceId,
    /// CPU idle.
    pub cpu_idle: PlaceId,
    /// CPU active.
    pub cpu_active: PlaceId,
    /// Open model only: generator home place (`P2` in Fig. 13).
    pub p2: Option<PlaceId>,
    /// Open model only: queued events (`Event_Arrival`).
    pub event_arrival: Option<PlaceId>,
}

/// Transition handles needed by the reward/energy pipeline.
#[derive(Debug, Clone, Copy)]
pub struct NodeTransitions {
    /// Workload source: closed `T0` or open `T_start`.
    pub cycle_start: TransitionId,
    /// `Wait_Begin`-analog: cycle completion (TxHandle → Wait).
    pub cycle_done: TransitionId,
    /// CPU sleep→wake (`T1`-analog); firings = CPU wake-ups.
    pub cpu_wakeup: TransitionId,
    /// Computation→TX transition; its firings count the radio's second
    /// wake-up per cycle.
    pub comp_done: TransitionId,
}

/// A built node model.
#[derive(Debug)]
pub struct NodeModel {
    /// The SCPN.
    pub net: Net,
    /// Place handles.
    pub places: NodePlaces,
    /// Transition handles.
    pub transitions: NodeTransitions,
}

/// Build the Fig. 12 (closed) or Fig. 13 (open) SCPN for the given
/// parameters.
pub fn build_node_model(params: &NodeSimParams) -> NodeModel {
    assert!(
        (1..=3).contains(&params.comm_dvs_level) && (1..=3).contains(&params.comp_dvs_level),
        "DVS levels are 1..=3"
    );
    assert!(
        params.power_down_threshold >= 0.0,
        "threshold must be non-negative"
    );
    let name = match params.workload {
        Workload::Closed { .. } => "fig12-node-closed",
        Workload::Open { .. } => "fig13-node-open",
    };
    let mut b = NetBuilder::new(name);

    // --- places ---
    let wait = b.place("Wait").tokens(1).build();
    let rx_start = b.place("RxStart").build();
    let rx_listen = b.place("RxListen").build();
    let rx_data = b.place("RxData").build();
    let rx_handle = b.place("RxHandle").build();
    let comp_handle = b.place("CompHandle").build();
    let tx_start = b.place("TxStart").build();
    let tx_listen = b.place("TxListen").build();
    let tx_data = b.place("TxData").build();
    let tx_handle = b.place("TxHandle").build();
    let buffer = b.place("Buffer").build();
    let cpu_sleep = b.place("Cpu_Sleep").tokens(1).build();
    let cpu_wake = b.place("Cpu_Wake").build();
    let cpu_idle = b.place("Cpu_Idle").build();
    let cpu_active = b.place("Cpu_Active").build();

    let (p2, event_arrival) = match params.workload {
        Workload::Closed { .. } => (None, None),
        Workload::Open { .. } => (
            Some(b.place("P2").tokens(1).build()),
            Some(b.place("Event_Arrival").build()),
        ),
    };

    // The stage-advance guard of Table XI: the CPU finished the stage's job.
    let cpu_done = || {
        Expr::count(buffer)
            .eq_c(0)
            .and(Expr::count(cpu_idle).gt_c(0))
    };

    // --- workload generator ---
    let cycle_start = match params.workload {
        Workload::Closed { interval } => b
            .transition("T0", Timing::deterministic(interval))
            .input(wait, 1)
            .output(rx_start, 1)
            .build(),
        Workload::Open { rate } => {
            let p2 = p2.expect("open places");
            let ev = event_arrival.expect("open places");
            b.transition("T0_open", Timing::exponential(rate))
                .input(p2, 1)
                .output(p2, 1)
                .output(ev, 1)
                .build();
            b.transition("T_start", Timing::immediate_pri(1))
                .input(wait, 1)
                .input(ev, 1)
                .output(rx_start, 1)
                .build()
        }
    };

    // --- receiving stage ---
    b.transition(
        "RadioStartUpDelay_R",
        Timing::deterministic(params.radio_startup),
    )
    .input(rx_start, 1)
    .output(rx_listen, 1)
    .build();
    b.transition(
        "Channel_Listening_R",
        Timing::deterministic(params.channel_listen),
    )
    .input(rx_listen, 1)
    .output(rx_data, 1)
    .build();
    b.transition(
        "Transmitting_Receiving_R",
        Timing::deterministic(params.tx_rx_time),
    )
    .input(rx_data, 1)
    .output(rx_handle, 1)
    .output_colored(
        buffer,
        1,
        ColorExpr::Const(Color(params.comm_dvs_level as u32)),
    )
    .build();
    // T17: packet checked -> computation begins (deposits the computation
    // job).
    b.transition("T17", Timing::immediate_pri(1))
        .input(rx_handle, 1)
        .output(comp_handle, 1)
        .output_colored(buffer, 1, ColorExpr::Const(COMP_JOB))
        .guard(cpu_done())
        .build();

    // --- computation -> transmit stage ---
    let comp_done = b
        .transition("T19", Timing::immediate_pri(1))
        .input(comp_handle, 1)
        .output(tx_start, 1)
        .guard(cpu_done())
        .build();
    b.transition(
        "RadioStartUpDelay_T",
        Timing::deterministic(params.radio_startup),
    )
    .input(tx_start, 1)
    .output(tx_listen, 1)
    .build();
    b.transition(
        "Channel_Listening_T",
        Timing::deterministic(params.channel_listen),
    )
    .input(tx_listen, 1)
    .output(tx_data, 1)
    .build();
    b.transition(
        "Transmitting_Receiving_T",
        Timing::deterministic(params.tx_rx_time),
    )
    .input(tx_data, 1)
    .output(tx_handle, 1)
    .output_colored(
        buffer,
        1,
        ColorExpr::Const(Color(params.comm_dvs_level as u32)),
    )
    .build();
    let cycle_done = b
        .transition("Wait_Begin", Timing::immediate_pri(1))
        .input(tx_handle, 1)
        .output(wait, 1)
        .guard(cpu_done())
        .build();

    // --- CPU component (Fig. 3 embedded, colored service) ---
    let cpu_wakeup = b
        .transition("Cpu_T1", Timing::immediate_pri(4))
        .input(cpu_sleep, 1)
        .output(cpu_wake, 1)
        .guard(Expr::count(buffer).gt_c(0))
        .build();
    b.transition(
        "Power_Up_Delay",
        Timing::deterministic(params.cpu_power_up_delay),
    )
    .input(cpu_wake, 1)
    .output(cpu_idle, 1)
    .build();
    b.transition("Cpu_T5", Timing::immediate_pri(2))
        .input(cpu_idle, 1)
        .output(cpu_active, 1)
        .guard(Expr::count(buffer).gt_c(0))
        .build();
    b.transition("Cpu_T6", Timing::immediate_pri(3))
        .input(cpu_active, 1)
        .output(cpu_idle, 1)
        .guard(Expr::count(buffer).eq_c(0))
        .build();

    // DVS service transitions: local color guards select the level
    // (Table XI's DVS_1/DVS_2/DVS_3); DVS_Delay is folded in.
    for (level, name) in [(1u32, "DVS_1"), (2, "DVS_2"), (3, "DVS_3")] {
        let dur = params.dvs_overhead + params.dvs_levels[(level - 1) as usize];
        b.transition(name, Timing::deterministic(dur))
            .input(cpu_active, 1)
            .input_filtered(buffer, 1, ColorFilter::Eq(Color(level)))
            .output(cpu_active, 1)
            .build();
    }
    let comp_dur = params.dvs_overhead
        + params.dvs_levels[(params.comp_dvs_level - 1) as usize]
        + params.tasks_per_job as f64 * params.task_delay_per_job;
    b.transition("Task_Delay_Per_Job", Timing::deterministic(comp_dur))
        .input(cpu_active, 1)
        .input_filtered(buffer, 1, ColorFilter::Eq(COMP_JOB))
        .output(cpu_active, 1)
        .build();

    // Defined last: loses exact firing-time ties against every
    // job-delivering transition above.
    b.transition(
        "Power_Down_Threshold",
        Timing::deterministic(params.power_down_threshold),
    )
    .input(cpu_idle, 1)
    .output(cpu_sleep, 1)
    .memory(MemoryPolicy::RaceEnable)
    .build();

    let net = b.build().expect("node net is statically valid");
    NodeModel {
        net,
        places: NodePlaces {
            wait,
            rx_start,
            rx_listen,
            rx_data,
            rx_handle,
            comp_handle,
            tx_start,
            tx_listen,
            tx_data,
            tx_handle,
            buffer,
            cpu_sleep,
            cpu_wake,
            cpu_idle,
            cpu_active,
            p2,
            event_arrival,
        },
        transitions: NodeTransitions {
            cycle_start,
            cycle_done,
            cpu_wakeup,
            comp_done,
        },
    }
}

/// Steady-state estimates from simulating the node SCPN.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodePetriResult {
    /// CPU `[sleep, wakeup, idle, active]` time fractions.
    pub cpu_probabilities: [f64; 4],
    /// Radio `[sleep, wakeup, idle, active]` time fractions.
    pub radio_probabilities: [f64; 4],
    /// CPU sleep→wake transitions over the horizon.
    pub cpu_wakeups: f64,
    /// Radio sleep/idle→starting transitions over the horizon.
    pub radio_wakeups: f64,
    /// Completed event cycles.
    pub cycles_completed: f64,
    /// The simulated horizon (s).
    pub horizon: f64,
}

impl NodePetriResult {
    /// Energy breakdown (Fig. 14/15 series) under the given power tables.
    pub fn breakdown(
        &self,
        cpu_power: &ComponentPower,
        radio_power: &ComponentPower,
    ) -> NodeBreakdown {
        let comp = |probs: [f64; 4], table: &ComponentPower| {
            let [s, w, i, a] = probs;
            let t = self.horizon;
            ComponentBreakdown {
                sleep: table.sleep.over_seconds(s * t),
                wakeup: table.wakeup.over_seconds(w * t),
                idle: table.idle.over_seconds(i * t),
                active: table.active.over_seconds(a * t),
            }
        };
        NodeBreakdown {
            cpu: comp(self.cpu_probabilities, cpu_power),
            radio: comp(self.radio_probabilities, radio_power),
        }
    }

    /// Average node power under the given tables.
    pub fn average_power(&self, cpu_power: &ComponentPower, radio_power: &ComponentPower) -> Power {
        let [cs, cw, ci, ca] = self.cpu_probabilities;
        let [rs, rw, ri, ra] = self.radio_probabilities;
        cpu_power.average(cs, cw, ci, ca) + radio_power.average(rs, rw, ri, ra)
    }
}

/// Simulate the node SCPN and collect all Fig. 14/15 measures.
pub fn simulate_node_model(params: &NodeSimParams, seed: u64) -> NodePetriResult {
    let model = build_node_model(params);
    let p = &model.places;
    let mut sim = Simulator::new(&model.net, SimConfig::for_horizon(params.horizon));

    // CPU state fractions: one token-average per power-state place.
    let r_cpu_sleep = sim.reward_place(p.cpu_sleep);
    let r_cpu_wake = sim.reward_place(p.cpu_wake);
    let r_cpu_idle = sim.reward_place(p.cpu_idle);
    let r_cpu_active = sim.reward_place(p.cpu_active);

    // Radio state fractions: predicates over the stage places.
    let r_radio_sleep = sim
        .reward_predicate(Expr::count(p.wait).gt_c(0))
        .expect("valid predicate");
    let r_radio_wake = sim
        .reward_predicate(
            Expr::count(p.rx_start)
                .gt_c(0)
                .or(Expr::count(p.tx_start).gt_c(0)),
        )
        .expect("valid predicate");
    let active_expr = Expr::count(p.rx_listen)
        .add(Expr::count(p.rx_data))
        .add(Expr::count(p.rx_handle))
        .add(Expr::count(p.tx_listen))
        .add(Expr::count(p.tx_data))
        .add(Expr::count(p.tx_handle))
        .gt_c(0);
    let r_radio_active = sim.reward_predicate(active_expr).expect("valid predicate");
    let r_radio_idle = sim
        .reward_predicate(Expr::count(p.comp_handle).gt_c(0))
        .expect("valid predicate");

    let r_cpu_wakeups = sim.reward_firings(model.transitions.cpu_wakeup);
    let r_cycles_started = sim.reward_firings(model.transitions.cycle_start);
    let r_comp_done = sim.reward_firings(model.transitions.comp_done);
    let r_cycles_done = sim.reward_firings(model.transitions.cycle_done);

    let out = sim.run(seed).expect("node net cannot livelock or overflow");

    NodePetriResult {
        cpu_probabilities: [
            out.reward(r_cpu_sleep),
            out.reward(r_cpu_wake),
            out.reward(r_cpu_idle),
            out.reward(r_cpu_active),
        ],
        radio_probabilities: [
            out.reward(r_radio_sleep),
            out.reward(r_radio_wake),
            out.reward(r_radio_idle),
            out.reward(r_radio_active),
        ],
        cpu_wakeups: out.reward(r_cpu_wakeups),
        radio_wakeups: out.reward(r_cycles_started) + out.reward(r_comp_done),
        cycles_completed: out.reward(r_cycles_done),
        horizon: params.horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use energy::{CC2420_RADIO, PXA271_CPU};
    use petri_core::analysis::p_invariants;

    fn closed(pdt: f64) -> NodeSimParams {
        NodeSimParams::paper_defaults(Workload::Closed { interval: 1.0 }, pdt)
    }

    fn open(pdt: f64) -> NodeSimParams {
        NodeSimParams::paper_defaults(Workload::Open { rate: 1.0 }, pdt)
    }

    #[test]
    fn closed_net_shape() {
        let m = build_node_model(&closed(0.01));
        assert_eq!(m.net.num_places(), 15);
        assert!(m.net.transition_by_name("Power_Down_Threshold").is_some());
        assert!(m.net.transition_by_name("T0").is_some());
        assert!(m.net.transition_by_name("T_start").is_none());
    }

    #[test]
    fn open_net_shape() {
        let m = build_node_model(&open(0.01));
        assert_eq!(m.net.num_places(), 17);
        assert!(m.net.transition_by_name("T0_open").is_some());
        assert!(m.net.transition_by_name("T_start").is_some());
    }

    #[test]
    fn stage_and_cpu_invariants_hold() {
        let m = build_node_model(&closed(0.01));
        let invs = p_invariants(&m.net);
        // Stage chain conservation: exactly one stage token.
        let stage_places = [
            m.places.wait.index(),
            m.places.rx_start.index(),
            m.places.rx_listen.index(),
            m.places.rx_data.index(),
            m.places.rx_handle.index(),
            m.places.comp_handle.index(),
            m.places.tx_start.index(),
            m.places.tx_listen.index(),
            m.places.tx_data.index(),
            m.places.tx_handle.index(),
        ];
        assert!(
            invs.iter().any(|inv| {
                let sup = inv.support();
                stage_places.iter().all(|p| sup.contains(p))
                    && !sup.contains(&m.places.buffer.index())
            }),
            "stage-token invariant missing: {invs:?}"
        );
        // CPU power-state conservation.
        let cpu_places = [
            m.places.cpu_sleep.index(),
            m.places.cpu_wake.index(),
            m.places.cpu_idle.index(),
            m.places.cpu_active.index(),
        ];
        assert!(
            invs.iter().any(|inv| {
                let sup = inv.support();
                cpu_places.iter().all(|p| sup.contains(p))
            }),
            "CPU-state invariant missing"
        );
    }

    #[test]
    fn fractions_sum_to_one() {
        let r = simulate_node_model(&closed(0.01), 1);
        let cpu_total: f64 = r.cpu_probabilities.iter().sum();
        let radio_total: f64 = r.radio_probabilities.iter().sum();
        assert!((cpu_total - 1.0).abs() < 1e-9, "cpu={cpu_total}");
        assert!((radio_total - 1.0).abs() < 1e-9, "radio={radio_total}");
    }

    #[test]
    fn closed_model_matches_des_exactly_shaped() {
        // Both substrates implement the same deterministic closed model:
        // state fractions must agree tightly.
        for pdt in [1e-6, 0.00177, 0.01, 0.5, 100.0] {
            let petri = simulate_node_model(&closed(pdt), 1);
            let des_r = des::simulate_node(&closed(pdt), 1);
            let des_cpu = [
                des_r.cpu_times.fraction(energy::PowerState::Sleep),
                des_r.cpu_times.fraction(energy::PowerState::Wakeup),
                des_r.cpu_times.fraction(energy::PowerState::Idle),
                des_r.cpu_times.fraction(energy::PowerState::Active),
            ];
            for (i, (a, b)) in petri
                .cpu_probabilities
                .iter()
                .zip(des_cpu.iter())
                .enumerate()
            {
                assert!(
                    (a - b).abs() < 0.005,
                    "pdt={pdt} cpu state {i}: petri {a} vs des {b}"
                );
            }
            let des_radio = [
                des_r.radio_times.fraction(energy::PowerState::Sleep),
                des_r.radio_times.fraction(energy::PowerState::Wakeup),
                des_r.radio_times.fraction(energy::PowerState::Idle),
                des_r.radio_times.fraction(energy::PowerState::Active),
            ];
            for (i, (a, b)) in petri
                .radio_probabilities
                .iter()
                .zip(des_radio.iter())
                .enumerate()
            {
                assert!(
                    (a - b).abs() < 0.005,
                    "pdt={pdt} radio state {i}: petri {a} vs des {b}"
                );
            }
            assert!(
                (petri.cpu_wakeups - des_r.cpu_wakeups as f64).abs() <= 1.0,
                "pdt={pdt}: wakeups petri {} vs des {}",
                petri.cpu_wakeups,
                des_r.cpu_wakeups
            );
        }
    }

    #[test]
    fn tiny_pdt_two_wakeups_per_cycle() {
        let r = simulate_node_model(&closed(1e-6), 1);
        let per_cycle = r.cpu_wakeups / r.cycles_completed;
        assert!((per_cycle - 2.0).abs() < 0.05, "wakeups/cycle={per_cycle}");
    }

    #[test]
    fn boundary_pdt_one_wakeup_per_cycle() {
        // PDT exactly at the intra-cycle gap: deposit wins the tie.
        let r = simulate_node_model(&closed(0.00177), 1);
        let per_cycle = r.cpu_wakeups / r.cycles_completed;
        assert!((per_cycle - 1.0).abs() < 0.05, "wakeups/cycle={per_cycle}");
    }

    #[test]
    fn optimum_beats_extremes_closed() {
        let e = |pdt: f64| {
            simulate_node_model(&closed(pdt), 1)
                .breakdown(&PXA271_CPU, &CC2420_RADIO)
                .total()
                .joules()
        };
        let immediate = e(1e-9);
        let optimum = e(0.00177);
        let never = e(1e4);
        assert!(optimum < immediate, "{optimum} !< {immediate}");
        assert!(optimum < never, "{optimum} !< {never}");
    }

    #[test]
    fn optimum_beats_extremes_open() {
        let e = |pdt: f64| {
            simulate_node_model(&open(pdt), 5)
                .breakdown(&PXA271_CPU, &CC2420_RADIO)
                .total()
                .joules()
        };
        let immediate = e(1e-9);
        let optimum = e(0.01);
        let never = e(1e4);
        assert!(optimum < immediate, "{optimum} !< {immediate}");
        assert!(optimum < never, "{optimum} !< {never}");
    }

    #[test]
    fn open_model_close_to_des() {
        // Different RNG streams, so compare loosely over a long horizon.
        let mut params = open(0.01);
        params.horizon = 5000.0;
        let petri = simulate_node_model(&params, 21);
        let des_r = des::simulate_node(&params, 22);
        let des_cpu_sleep = des_r.cpu_times.fraction(energy::PowerState::Sleep);
        assert!(
            (petri.cpu_probabilities[0] - des_cpu_sleep).abs() < 0.03,
            "cpu sleep: petri {} vs des {}",
            petri.cpu_probabilities[0],
            des_cpu_sleep
        );
        let cycles_ratio = petri.cycles_completed / des_r.cycles_completed as f64;
        assert!(
            (cycles_ratio - 1.0).abs() < 0.05,
            "cycles ratio {cycles_ratio}"
        );
    }

    #[test]
    fn radio_wakes_twice_per_cycle() {
        let r = simulate_node_model(&closed(0.01), 1);
        let per_cycle = r.radio_wakeups / r.cycles_completed;
        assert!(
            (per_cycle - 2.0).abs() < 0.05,
            "radio wakeups/cycle={per_cycle}"
        );
    }

    #[test]
    fn breakdown_total_equals_average_power_times_horizon() {
        let r = simulate_node_model(&closed(0.05), 1);
        let b = r.breakdown(&PXA271_CPU, &CC2420_RADIO);
        let via_power = r
            .average_power(&PXA271_CPU, &CC2420_RADIO)
            .over_seconds(r.horizon);
        assert!((b.total().joules() - via_power.joules()).abs() < 1e-9);
    }
}
