//! Framed transports: one trait, every byte stream the executor speaks.
//!
//! The worker protocol (length-prefixed request/response frames, see
//! [`crate::wire`]) used to be read and written with code inlined at each
//! endpoint — the worker's stdin/stdout loop in [`crate::worker`] and the
//! shard drain loop in [`crate::exec`]. [`FrameTransport`] is the one seam
//! those endpoints now share, so the same serve loop and the same response
//! drain run over:
//!
//! * [`StdioTransport`] — this process's stdin/stdout (the classic
//!   `<exe> --worker` subprocess mode);
//! * [`PipeTransport`] — the parent's half of a worker subprocess's
//!   stdin/stdout pipes;
//! * [`TcpTransport`] — a connected socket (the remote backend and
//!   `--worker --listen` mode), crossing the machine boundary.
//!
//! Transports are `Send` (the worker streams result frames from its pool
//! threads under a mutex) but deliberately **not** `Sync`: callers decide
//! how to serialize access.

use crate::wire;
use std::io::{self, Write};
use std::net::TcpStream;

/// A bidirectional, length-prefixed frame channel.
///
/// `send` writes one frame; `recv` blocks for the next one, returning
/// `Ok(None)` on clean end-of-stream (peer closed before a length prefix).
/// Implementations must make a `send`ed frame visible to the peer after
/// `flush` at the latest.
pub trait FrameTransport: Send {
    /// Write one frame (length prefix + body).
    fn send(&mut self, body: &[u8]) -> io::Result<()>;

    /// Read the next frame; `Ok(None)` on clean EOF before a frame starts.
    /// EOF *inside* a frame is an error (the peer died mid-write).
    fn recv(&mut self) -> io::Result<Option<Vec<u8>>>;

    /// Flush buffered writes through to the peer.
    fn flush(&mut self) -> io::Result<()>;

    /// Human-readable peer description for diagnostics.
    fn peer(&self) -> String;
}

/// A mutable borrow of a transport is itself a transport, so pooled
/// (owned, long-lived) transports can be wrapped per-dispatch — e.g. by
/// a [`FaultInjector`](crate::fleet::chaos::FaultInjector) — without
/// giving up ownership.
impl<T: FrameTransport + ?Sized> FrameTransport for &mut T {
    fn send(&mut self, body: &[u8]) -> io::Result<()> {
        (**self).send(body)
    }

    fn recv(&mut self) -> io::Result<Option<Vec<u8>>> {
        (**self).recv()
    }

    fn flush(&mut self) -> io::Result<()> {
        (**self).flush()
    }

    fn peer(&self) -> String {
        (**self).peer()
    }
}

// --- stdio (worker side) -------------------------------------------------

/// The worker half of the subprocess protocol: frames over this process's
/// own stdin/stdout. Diagnostics belong on stderr — stdout carries nothing
/// but frames.
pub struct StdioTransport {
    stdin: io::Stdin,
    stdout: io::Stdout,
}

impl StdioTransport {
    /// A transport over this process's stdin/stdout.
    pub fn new() -> Self {
        StdioTransport {
            stdin: io::stdin(),
            stdout: io::stdout(),
        }
    }
}

impl Default for StdioTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameTransport for StdioTransport {
    fn send(&mut self, body: &[u8]) -> io::Result<()> {
        wire::write_frame(&mut self.stdout, body)
    }

    fn recv(&mut self) -> io::Result<Option<Vec<u8>>> {
        wire::read_frame(&mut self.stdin)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.stdout.flush()
    }

    fn peer(&self) -> String {
        "stdio".into()
    }
}

// --- pipes (parent side) -------------------------------------------------

/// The parent half of a worker subprocess's pipes: requests down the
/// child's stdin, responses up its stdout.
///
/// [`PipeTransport::close_write`] drops the write half early so a worker
/// blocked mid-read sees EOF instead of waiting forever — the parent has
/// nothing more to say once the manifest and the shutdown frame are out.
pub struct PipeTransport {
    writer: Option<std::process::ChildStdin>,
    reader: std::process::ChildStdout,
}

impl PipeTransport {
    /// A transport over a spawned child's piped stdin/stdout.
    pub fn new(writer: std::process::ChildStdin, reader: std::process::ChildStdout) -> Self {
        PipeTransport {
            writer: Some(writer),
            reader,
        }
    }

    /// Close the write half (the child's stdin). Further `send`s error.
    pub fn close_write(&mut self) {
        self.writer = None;
    }
}

impl FrameTransport for PipeTransport {
    fn send(&mut self, body: &[u8]) -> io::Result<()> {
        let w = self.writer.as_mut().ok_or_else(|| {
            io::Error::new(io::ErrorKind::BrokenPipe, "worker stdin already closed")
        })?;
        wire::write_frame(w, body)
    }

    fn recv(&mut self) -> io::Result<Option<Vec<u8>>> {
        wire::read_frame(&mut self.reader)
    }

    fn flush(&mut self) -> io::Result<()> {
        match self.writer.as_mut() {
            Some(w) => w.flush(),
            None => Ok(()),
        }
    }

    fn peer(&self) -> String {
        "worker subprocess".into()
    }
}

// --- TCP -----------------------------------------------------------------

/// Frames over a connected TCP socket — the transport that leaves the
/// machine. Used on both sides: the remote backend's connection to a
/// `--worker --listen` peer, and that worker's accepted connection back.
pub struct TcpTransport {
    stream: TcpStream,
    peer: String,
}

impl TcpTransport {
    /// Wrap a connected stream. Sets `TCP_NODELAY` (frames are small and
    /// latency-sensitive; Nagle would batch the per-slot result stream).
    pub fn new(stream: TcpStream) -> Self {
        let _ = stream.set_nodelay(true);
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown peer>".into());
        TcpTransport { stream, peer }
    }

    /// The underlying socket (for liveness probes — see
    /// [`crate::remote::probe_live`]).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Bound every blocking `recv` by `timeout`: a peer silent for longer
    /// fails the read instead of blocking forever. Executing workers
    /// stream heartbeat frames well inside any sane bound (see the worker
    /// protocol), so only a genuinely vanished peer trips it.
    pub fn set_read_timeout(&self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Bound every blocking `send` by `timeout`: a peer that stops
    /// reading (vanished between the liveness probe and the request
    /// write, with the request larger than the socket buffer) fails the
    /// write instead of blocking the dispatcher forever.
    pub fn set_write_timeout(&self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        self.stream.set_write_timeout(timeout)
    }
}

impl FrameTransport for TcpTransport {
    fn send(&mut self, body: &[u8]) -> io::Result<()> {
        wire::write_frame(&mut self.stream, body)
    }

    fn recv(&mut self) -> io::Result<Option<Vec<u8>>> {
        wire::read_frame(&mut self.stream)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

// --- in-memory (tests) ---------------------------------------------------

/// Test transport: frames decoded from a pre-filled input buffer, responses
/// appended to an output buffer.
#[cfg(test)]
pub(crate) struct MemTransport {
    pub input: io::Cursor<Vec<u8>>,
    pub output: Vec<u8>,
}

#[cfg(test)]
impl MemTransport {
    pub fn new(input: Vec<u8>) -> Self {
        MemTransport {
            input: io::Cursor::new(input),
            output: Vec::new(),
        }
    }
}

#[cfg(test)]
impl FrameTransport for MemTransport {
    fn send(&mut self, body: &[u8]) -> io::Result<()> {
        wire::write_frame(&mut self.output, body)
    }

    fn recv(&mut self) -> io::Result<Option<Vec<u8>>> {
        wire::read_frame(&mut self.input)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn peer(&self) -> String {
        "memory".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn mem_transport_round_trips_frames() {
        let mut staged = Vec::new();
        wire::write_frame(&mut staged, b"one").unwrap();
        wire::write_frame(&mut staged, b"").unwrap();
        let mut t = MemTransport::new(staged);
        assert_eq!(t.recv().unwrap().unwrap(), b"one");
        assert_eq!(t.recv().unwrap().unwrap(), b"");
        assert!(t.recv().unwrap().is_none());
        t.send(b"reply").unwrap();
        let mut r = &t.output[..];
        assert_eq!(wire::read_frame(&mut r).unwrap().unwrap(), b"reply");
    }

    #[test]
    fn tcp_transport_round_trips_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::new(stream);
            let got = t.recv().unwrap().unwrap();
            t.send(&got).unwrap();
            t.flush().unwrap();
            // Clean close → client sees Ok(None).
        });
        let mut t = TcpTransport::new(TcpStream::connect(addr).unwrap());
        t.send(b"ping").unwrap();
        t.flush().unwrap();
        assert_eq!(t.recv().unwrap().unwrap(), b"ping");
        assert!(t.recv().unwrap().is_none());
        server.join().unwrap();
    }
}
