//! Arcs: the wiring between places and transitions.
//!
//! Three arc kinds, matching TimeNET's EDSPN class:
//!
//! * [`InputArc`] — consumes `multiplicity` tokens matching a
//!   [`ColorFilter`] from a place when the transition fires; the transition
//!   is enabled only if enough matching tokens are present.
//! * [`OutputArc`] — deposits `multiplicity` tokens whose colors are given
//!   by a [`ColorExpr`].
//! * [`InhibitorArc`] — *disables* the transition while the place holds at
//!   least `threshold` matching tokens.

use crate::ids::PlaceId;
use crate::rng::SimRng;
use crate::token::{Color, ColorFilter};

/// Consuming arc from a place into a transition.
#[derive(Debug, Clone)]
pub struct InputArc {
    /// Source place.
    pub place: PlaceId,
    /// Number of tokens consumed per firing (>= 1).
    pub multiplicity: u32,
    /// Local guard: only tokens matching this filter count / are consumed.
    pub filter: ColorFilter,
}

/// How an output arc chooses the color of each deposited token.
#[derive(Debug, Clone)]
pub enum ColorExpr {
    /// Always deposit this color (the default is [`Color::NONE`]).
    Const(Color),
    /// Copy the color of the token consumed by input arc `arc_index` of the
    /// same transition (0-based, in the order input arcs were added).
    ///
    /// This is how a colored job token flows through a processing pipeline
    /// unchanged — e.g. the DVS job color travelling from `Buffer` through
    /// `Execute` in the paper's Fig. 12.
    Transfer {
        /// Index into the transition's input-arc list.
        arc_index: usize,
    },
    /// Sample the color from a weighted distribution (weights need not be
    /// normalized). This is how a workload generator emits a random mix of
    /// DVS job classes.
    Choice(Vec<(Color, f64)>),
}

impl ColorExpr {
    /// Evaluate the color for one deposited token. `consumed` holds the
    /// colors taken by the transition's input arcs this firing (one entry
    /// per multiplicity unit, grouped by arc; `consumed_offsets[i]` is the
    /// start of arc `i`'s tokens).
    #[inline]
    pub fn eval(&self, consumed: &[Color], consumed_offsets: &[usize], rng: &mut SimRng) -> Color {
        match self {
            ColorExpr::Const(c) => *c,
            ColorExpr::Transfer { arc_index } => {
                // First token consumed by that arc. The builder validates
                // `arc_index` and that the arc's multiplicity is >= 1.
                consumed[consumed_offsets[*arc_index]]
            }
            ColorExpr::Choice(pairs) => {
                debug_assert!(!pairs.is_empty());
                if pairs.len() == 1 {
                    return pairs[0].0;
                }
                // Weighted pick without allocating: inline prefix walk.
                let total: f64 = pairs.iter().map(|(_, w)| w).sum();
                let mut x = rng.unit() * total;
                for (c, w) in pairs {
                    x -= w;
                    if x < 0.0 {
                        return *c;
                    }
                }
                pairs[pairs.len() - 1].0
            }
        }
    }
}

impl Default for ColorExpr {
    fn default() -> Self {
        ColorExpr::Const(Color::NONE)
    }
}

/// Producing arc from a transition into a place.
#[derive(Debug, Clone)]
pub struct OutputArc {
    /// Destination place.
    pub place: PlaceId,
    /// Number of tokens deposited per firing (>= 1).
    pub multiplicity: u32,
    /// Color of each deposited token.
    pub color: ColorExpr,
}

/// Inhibitor arc: the transition is disabled while `place` holds at least
/// `threshold` tokens matching `filter`.
#[derive(Debug, Clone)]
pub struct InhibitorArc {
    /// Inhibiting place.
    pub place: PlaceId,
    /// Token count at or above which the transition is inhibited (>= 1).
    pub threshold: u32,
    /// Only tokens matching this filter count toward the threshold.
    pub filter: ColorFilter,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_color_expr() {
        let mut rng = SimRng::seed_from_u64(1);
        let e = ColorExpr::Const(Color(9));
        assert_eq!(e.eval(&[], &[], &mut rng), Color(9));
    }

    #[test]
    fn default_color_expr_is_plain() {
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(ColorExpr::default().eval(&[], &[], &mut rng), Color::NONE);
    }

    #[test]
    fn transfer_color_expr_picks_right_arc() {
        let mut rng = SimRng::seed_from_u64(1);
        // Arc 0 consumed 2 tokens [5, 6]; arc 1 consumed 1 token [7].
        let consumed = [Color(5), Color(6), Color(7)];
        let offsets = [0, 2];
        assert_eq!(
            ColorExpr::Transfer { arc_index: 0 }.eval(&consumed, &offsets, &mut rng),
            Color(5)
        );
        assert_eq!(
            ColorExpr::Transfer { arc_index: 1 }.eval(&consumed, &offsets, &mut rng),
            Color(7)
        );
    }

    #[test]
    fn choice_color_expr_single() {
        let mut rng = SimRng::seed_from_u64(1);
        let e = ColorExpr::Choice(vec![(Color(3), 1.0)]);
        for _ in 0..10 {
            assert_eq!(e.eval(&[], &[], &mut rng), Color(3));
        }
    }

    #[test]
    fn choice_color_expr_distribution() {
        let mut rng = SimRng::seed_from_u64(77);
        let e = ColorExpr::Choice(vec![(Color(1), 1.0), (Color(2), 3.0)]);
        let n = 40_000;
        let twos = (0..n)
            .filter(|_| e.eval(&[], &[], &mut rng) == Color(2))
            .count();
        let frac = twos as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac={frac}");
    }
}
