//! Shared helpers for the benchmark harness and the `repro` binary.

pub mod ab;
pub mod remote;
pub mod shard;

/// Directory where `repro` writes CSV artifacts (created on demand).
pub const RESULTS_DIR: &str = "results";

/// Write `content` to `results/<name>` (best effort; returns the path).
pub fn write_artifact(name: &str, content: &str) -> std::io::Result<String> {
    std::fs::create_dir_all(RESULTS_DIR)?;
    let path = format!("{RESULTS_DIR}/{name}");
    std::fs::write(&path, content)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_artifact_roundtrip() {
        let dir = std::env::temp_dir().join("bench-artifact-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        let path = write_artifact("x.csv", "a,b\n1,2\n").unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        std::env::set_current_dir(old).unwrap();
        assert_eq!(back, "a,b\n1,2\n");
    }
}
