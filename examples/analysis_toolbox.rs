//! Analysis toolbox tour: the structural/analytic side of the library on
//! the paper's own nets — reachability, P-invariants, structural lints,
//! the CTMC bridge, absorption (battery lifetime), and DOT export.
//!
//! ```sh
//! cargo run --release --example analysis_toolbox
//! ```

use wsn_petri::petri_core::analysis::{explore, extract_ctmc, lint, p_invariants, ExploreLimits};
use wsn_petri::prelude::*;

fn main() {
    // --- The Fig. 10 simple node: small enough to analyze exhaustively ---
    let simple = wsn_petri::wsn::build_simple_node(&SimpleNodeParams::default());
    let ex = explore(&simple.net, ExploreLimits::default());
    println!("Fig. 10 simple node:");
    println!("  reachable markings : {}", ex.states);
    println!("  deadlock-free      : {}", ex.deadlock_free());
    println!(
        "  bounded (k = {})    : {}",
        ex.max_place_tokens,
        ex.bounded()
    );
    let invs = p_invariants(&simple.net);
    println!("  P-invariants       : {} (token conservation)", invs.len());

    // --- The Fig. 3 CPU net: invariants + lints ---
    let cpu = build_cpu_model(&CpuModelParams::paper_defaults(0.3, 0.3));
    let invs = p_invariants(&cpu.net);
    println!("\nFig. 3 CPU net:");
    for inv in &invs {
        let names: Vec<&str> = inv
            .support()
            .iter()
            .map(|&i| {
                cpu.net
                    .place(wsn_petri::petri_core::ids::PlaceId::from_index(i))
                    .name
                    .as_str()
            })
            .collect();
        println!("  invariant over {{{}}}", names.join(", "));
    }
    let lints = lint(&cpu.net);
    println!(
        "  structural lints   : {}",
        if lints.is_empty() {
            "none".into()
        } else {
            format!("{lints:?}")
        }
    );

    // --- CTMC bridge: an exponential-only variant is solvable exactly ---
    // Replace the deterministic timers with exponentials of the same mean
    // and extract the chain (the k = 1 Markovization).
    let mut b = NetBuilder::new("cpu-exp");
    let queue = b.place("queue").build();
    let off = b.place("off").tokens(1).build();
    let on = b.place("on").build();
    b.transition("arrive", Timing::exponential(1.0))
        .output(queue, 1)
        .inhibitor(queue, 5) // truncate for a finite chain
        .build();
    b.transition("wake", Timing::exponential(1.0 / 0.3))
        .input(off, 1)
        .output(on, 1)
        .guard(Expr::count(queue).gt_c(0))
        .build();
    b.transition("serve", Timing::exponential(10.0))
        .input(on, 1)
        .input(queue, 1)
        .output(on, 1)
        .build();
    b.transition("sleep", Timing::exponential(1.0 / 0.3))
        .input(on, 1)
        .output(off, 1)
        .guard(Expr::count(queue).eq_c(0))
        .build();
    let net = b.build().unwrap();
    let extraction = extract_ctmc(&net, 1000).unwrap();
    let chain =
        Ctmc::from_rates(extraction.states.len(), extraction.rates.iter().copied()).unwrap();
    let pi = chain.steady_state().unwrap();
    let p_on: f64 = extraction
        .states
        .iter()
        .zip(&pi)
        .filter(|(m, _)| m.count(on) > 0)
        .map(|(_, p)| p)
        .sum();
    println!("\nExponential-only CPU variant (the k=1 Markovization):");
    println!("  CTMC states        : {}", extraction.states.len());
    println!("  P(on), analytic    : {p_on:.4}");

    // --- Absorption: time to battery death ---
    // 20 charge quanta; drain rate proportional to the node's average
    // power at the Fig. 14 optimum.
    let params = NodeSimParams::paper_defaults(Workload::Closed { interval: 1.0 }, 0.00177);
    let node = simulate_node_model(&params, 1);
    let avg = node.average_power(&PXA271_CPU, &CC2420_RADIO);
    let battery = Battery::TWO_AA;
    let quanta = 20usize;
    let quantum_j = battery.usable_energy_joules() / quanta as f64;
    let drain_rate = avg.watts() / quantum_j; // quanta per second
    let mut chain = Ctmc::new(quanta + 1);
    for lvl in 1..=quanta {
        chain.add_rate(lvl, lvl - 1, drain_rate).unwrap();
    }
    let absorption = markov::absorb(&chain, &[0]).unwrap();
    println!("\nBattery-death analysis at the optimal threshold:");
    println!("  average node power : {:.2} mW", avg.milliwatts());
    println!(
        "  mean time to death : {:.1} days (exp-quantum CTMC) vs {:.1} days (deterministic)",
        absorption.hitting_time[quanta] / 86_400.0,
        battery.lifetime_days(avg)
    );

    // --- DOT export ---
    let dot = wsn_petri::petri_core::dot::to_dot(&cpu.net);
    println!(
        "\nDOT export of the Fig. 3 net: {} bytes (pipe to `dot -Tpng`)",
        dot.len()
    );
}
