//! Erlang phase-type expansion of the power-managed CPU.
//!
//! The ABL-ERLANG ablation: the paper argues that deterministic timers
//! (Power-Down Threshold `T`, Power-Up Delay `D`) put the CPU outside the
//! Markov-chain class. The classical repair is to replace each
//! deterministic delay with an Erlang-k distribution (k exponential stages
//! of rate `k/delay`), which *is* Markovian:
//!
//! * `k = 1` — the naive memoryless chain (exponential timers): large error;
//! * `k → ∞` — converges in distribution to the deterministic timers, so
//!   the CTMC steady state converges to the true system's.
//!
//! Plotting error vs `k` quantifies "how non-Markovian" the CPU is, and
//! shows why the paper needed supplementary variables (and why Petri nets
//! are the pragmatic tool: no state-space surgery required).

use crate::ctmc::{Ctmc, CtmcError};
use crate::supplementary::{CpuMarkovParams, CpuPowerRates};

/// Configuration of the phase-type CPU chain.
#[derive(Debug, Clone, Copy)]
pub struct PhaseCpuConfig {
    /// The CPU parameters being approximated.
    pub params: CpuMarkovParams,
    /// Erlang stages for both deterministic timers (k >= 1).
    pub stages: u32,
    /// Queue truncation (states with more queued jobs are dropped).
    pub max_queue: u32,
}

/// Steady-state probabilities of the four CPU macro-states.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseCpuSolution {
    /// Probability of standby.
    pub p_standby: f64,
    /// Probability of powering up (any stage).
    pub p_powerup: f64,
    /// Probability of idle (any timer stage).
    pub p_idle: f64,
    /// Probability of active (any queue length >= 1).
    pub p_active: f64,
}

impl PhaseCpuSolution {
    /// Average power (mW) under the given rates.
    pub fn average_power_mw(&self, rates: &CpuPowerRates) -> f64 {
        self.p_standby * rates.standby
            + self.p_powerup * rates.powerup
            + self.p_idle * rates.idle
            + self.p_active * rates.active
    }

    /// Energy (J) over a fixed horizon.
    pub fn energy_for_duration(&self, rates: &CpuPowerRates, duration_s: f64) -> f64 {
        self.average_power_mw(rates) * 1e-3 * duration_s
    }
}

/// State-space layout:
/// `Standby` | `PowerUp(stage 1..=k, queue 1..=Q)` | `Busy(queue 1..=Q)` |
/// `IdleTimer(stage 1..=k)`.
struct Layout {
    k: usize,
    q: usize,
}

impl Layout {
    fn standby(&self) -> usize {
        0
    }
    fn powerup(&self, stage: usize, queue: usize) -> usize {
        debug_assert!((1..=self.k).contains(&stage) && (1..=self.q).contains(&queue));
        1 + (stage - 1) * self.q + (queue - 1)
    }
    fn busy(&self, queue: usize) -> usize {
        debug_assert!((1..=self.q).contains(&queue));
        1 + self.k * self.q + (queue - 1)
    }
    fn idle(&self, stage: usize) -> usize {
        debug_assert!((1..=self.k).contains(&stage));
        1 + self.k * self.q + self.q + (stage - 1)
    }
    fn total(&self) -> usize {
        1 + self.k * self.q + self.q + self.k
    }
}

/// Build the phase-type CTMC and solve for the macro-state probabilities.
pub fn solve_phase_cpu(cfg: &PhaseCpuConfig) -> Result<PhaseCpuSolution, CtmcError> {
    assert!(cfg.stages >= 1, "need at least one Erlang stage");
    assert!(cfg.max_queue >= 1, "need at least one queue slot");
    let p = &cfg.params;
    let lambda = p.lambda;
    let mu = p.mu;
    let k = cfg.stages as usize;
    let q = cfg.max_queue as usize;
    let lay = Layout { k, q };

    // Per-stage rates; a zero-length timer degenerates to an immediate hop,
    // approximated by a very fast stage.
    let stage_rate_up = if p.power_up_delay > 0.0 {
        k as f64 / p.power_up_delay
    } else {
        1e12
    };
    let stage_rate_down = if p.power_down_threshold > 0.0 {
        k as f64 / p.power_down_threshold
    } else {
        1e12
    };

    let mut chain = Ctmc::new(lay.total());

    // Standby --lambda--> PowerUp(1, 1).
    chain.add_rate(lay.standby(), lay.powerup(1, 1), lambda)?;

    for s in 1..=k {
        for queue in 1..=q {
            let here = lay.powerup(s, queue);
            // Arrivals during power-up queue.
            if queue < q {
                chain.add_rate(here, lay.powerup(s, queue + 1), lambda)?;
            }
            // Stage completion.
            let next = if s < k {
                lay.powerup(s + 1, queue)
            } else {
                lay.busy(queue)
            };
            chain.add_rate(here, next, stage_rate_up)?;
        }
    }

    for queue in 1..=q {
        let here = lay.busy(queue);
        if queue < q {
            chain.add_rate(here, lay.busy(queue + 1), lambda)?;
        }
        let next = if queue > 1 {
            lay.busy(queue - 1)
        } else {
            lay.idle(1)
        };
        chain.add_rate(here, next, mu)?;
    }

    for s in 1..=k {
        let here = lay.idle(s);
        // A job interrupts the countdown: straight back to busy.
        chain.add_rate(here, lay.busy(1), lambda)?;
        let next = if s < k {
            lay.idle(s + 1)
        } else {
            lay.standby()
        };
        chain.add_rate(here, next, stage_rate_down)?;
    }

    let pi = chain.steady_state()?;

    let mut sol = PhaseCpuSolution {
        p_standby: pi[lay.standby()],
        p_powerup: 0.0,
        p_idle: 0.0,
        p_active: 0.0,
    };
    for s in 1..=k {
        for queue in 1..=q {
            sol.p_powerup += pi[lay.powerup(s, queue)];
        }
        sol.p_idle += pi[lay.idle(s)];
    }
    for queue in 1..=q {
        sol.p_active += pi[lay.busy(queue)];
    }
    Ok(sol)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(t: f64, d: f64, k: u32) -> PhaseCpuConfig {
        PhaseCpuConfig {
            params: CpuMarkovParams {
                lambda: 1.0,
                mu: 10.0,
                power_down_threshold: t,
                power_up_delay: d,
            },
            stages: k,
            max_queue: 30,
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let s = solve_phase_cpu(&cfg(0.1, 0.3, 4)).unwrap();
        let total = s.p_standby + s.p_powerup + s.p_idle + s.p_active;
        assert!((total - 1.0).abs() < 1e-9, "total={total}");
    }

    #[test]
    fn active_fraction_near_utilization() {
        // Work conservation: long-run busy fraction ~ rho = 0.1 (slightly
        // above because truncation is mild and wake-up adds backlog).
        let s = solve_phase_cpu(&cfg(0.1, 0.001, 8)).unwrap();
        assert!((s.p_active - 0.1).abs() < 0.02, "p_active={}", s.p_active);
    }

    #[test]
    fn more_stages_approach_supplementary_solution_at_small_d() {
        // At D = 0.001 the supplementary-variable solution is essentially
        // exact, so Erlang-k must converge towards it as k grows.
        let exact = cfg(0.3, 0.001, 1).params.solve();
        let mut errs = Vec::new();
        for k in [1u32, 2, 8, 32] {
            let s = solve_phase_cpu(&cfg(0.3, 0.001, k)).unwrap();
            errs.push((s.p_idle - exact.p_idle).abs() + (s.p_standby - exact.p_standby).abs());
        }
        assert!(
            errs.last().unwrap() < &errs[0],
            "error should shrink with k: {errs:?}"
        );
        assert!(errs.last().unwrap() < &0.02, "final error: {errs:?}");
    }

    #[test]
    fn zero_threshold_means_no_idle_mass() {
        let s = solve_phase_cpu(&cfg(0.0, 0.3, 4)).unwrap();
        assert!(s.p_idle < 1e-6, "p_idle={}", s.p_idle);
    }

    #[test]
    fn energy_increases_with_idle_power_share() {
        let rates = CpuPowerRates::PXA271;
        let low_t = solve_phase_cpu(&cfg(0.001, 0.001, 8)).unwrap();
        let high_t = solve_phase_cpu(&cfg(1.0, 0.001, 8)).unwrap();
        let e_low = low_t.energy_for_duration(&rates, 1000.0);
        let e_high = high_t.energy_for_duration(&rates, 1000.0);
        assert!(
            e_high > e_low,
            "more idling must cost more at tiny D: {e_low} vs {e_high}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one Erlang stage")]
    fn zero_stages_rejected() {
        let mut c = cfg(0.1, 0.1, 1);
        c.stages = 0;
        let _ = solve_phase_cpu(&c);
    }
}
