//! Cross-thread-count determinism of the replication machinery: the same
//! `(net, seed, replication count)` must produce **byte-identical**
//! `ReplicationSummary` moments at 1, 2 and 8 worker threads — the
//! guarantee the `sim_runtime` grid's index-ordered fold provides. Checked
//! as properties over random parameters, for an uncolored and a colored
//! net, and for the adaptive stopping mode (replication budget included).

use petri_core::prelude::*;
use petri_core::replicate::{
    run_replications, run_replications_adaptive, run_replications_parallel,
};
use proptest::prelude::*;

/// Uncolored open M/M/c-ish net with a batching server.
fn uncolored_net(arrival: f64, service: f64) -> Net {
    let mut b = NetBuilder::new("mmq");
    let q = b.place("q").build();
    let busy = b.place("busy").build();
    b.transition("arrive", Timing::exponential(arrival))
        .output(q, 1)
        .build();
    b.transition("start", Timing::immediate())
        .input(q, 1)
        .output(busy, 1)
        .build();
    b.transition("serve", Timing::exponential(service))
        .input(busy, 1)
        .build();
    b.build().unwrap()
}

/// A colored net in the DVS style: weighted job classes, class-filtered
/// executors, a guard-gated deterministic sleep timer.
fn colored_net(rate: f64) -> Net {
    let fast = Color(1);
    let slow = Color(2);
    let mut b = NetBuilder::new("colored");
    let buffer = b.place("buffer").build();
    let idle = b.place("idle").tokens(1).build();
    let slept = b.place("slept").build();
    b.transition("gen", Timing::exponential(rate))
        .output_colored(buffer, 1, ColorExpr::Choice(vec![(fast, 0.6), (slow, 0.4)]))
        .build();
    b.transition("exec_fast", Timing::exponential(8.0))
        .input_filtered(buffer, 1, ColorFilter::Eq(fast))
        .build();
    b.transition("exec_slow", Timing::exponential(3.0))
        .input_filtered(buffer, 1, ColorFilter::Eq(slow))
        .build();
    b.transition("sleep", Timing::deterministic(0.9))
        .input(idle, 1)
        .output(slept, 1)
        .guard(Expr::count(buffer).eq_c(0))
        .build();
    b.transition("wake", Timing::exponential(1.5))
        .input(slept, 1)
        .output(idle, 1)
        .build();
    b.build().unwrap()
}

fn assert_summaries_bit_identical(sim: &Simulator<'_>, seed: u64, reps: u64) {
    let seq = run_replications(sim, seed, reps).unwrap();
    for threads in [1usize, 2, 8] {
        let par = run_replications_parallel(sim, seed, reps, threads).unwrap();
        assert_eq!(seq.replications, par.replications, "threads={threads}");
        // Welford derives PartialEq: exact f64 comparison of (n, mean, m2).
        assert_eq!(seq.rewards, par.rewards, "threads={threads}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Uncolored net: parallel summaries are the sequential bits.
    #[test]
    fn uncolored_summary_identical_across_thread_counts(
        seed in 0u64..1_000_000,
        reps in 3u64..12,
        arrival in 0.5f64..2.0,
    ) {
        let net = uncolored_net(arrival, 4.0);
        let mut sim = Simulator::new(&net, SimConfig::for_horizon(300.0));
        let q = net.place_by_name("q").unwrap();
        sim.reward_place(q);
        let busy = net.place_by_name("busy").unwrap();
        sim.reward_place(busy);
        assert_summaries_bit_identical(&sim, seed, reps);
    }

    /// Colored net (Choice arcs, filters, guarded deterministic timer):
    /// same guarantee.
    #[test]
    fn colored_summary_identical_across_thread_counts(
        seed in 0u64..1_000_000,
        reps in 3u64..10,
        rate in 0.4f64..1.5,
    ) {
        let net = colored_net(rate);
        let mut sim = Simulator::new(&net, SimConfig::for_horizon(200.0).with_warmup(10.0));
        let buffer = net.place_by_name("buffer").unwrap();
        sim.reward_place(buffer);
        let slept = net.place_by_name("slept").unwrap();
        sim.reward_place(slept);
        assert_summaries_bit_identical(&sim, seed, reps);
    }

    /// Adaptive mode: the number of replications the stopping rule spends
    /// AND the resulting moments match across thread counts.
    #[test]
    fn adaptive_identical_across_thread_counts(
        seed in 0u64..1_000_000,
        rel in 0.05f64..0.3,
    ) {
        let net = uncolored_net(1.0, 3.0);
        let mut sim = Simulator::new(&net, SimConfig::for_horizon(150.0));
        let q = net.place_by_name("q").unwrap();
        let r = sim.reward_place(q);
        let rule = StoppingRule::relative(rel).with_budget(4, 48, 4);
        let base = run_replications_adaptive(&sim, seed, &rule, &[r.index()], 1).unwrap();
        for threads in [2usize, 8] {
            let other =
                run_replications_adaptive(&sim, seed, &rule, &[r.index()], threads).unwrap();
            prop_assert_eq!(base.summary.replications, other.summary.replications);
            prop_assert_eq!(base.converged, other.converged);
            prop_assert_eq!(&base.summary.rewards, &other.summary.rewards);
        }
        // Replaying the spent budget as a fixed count reproduces the bits.
        let fixed = run_replications(&sim, seed, base.summary.replications).unwrap();
        prop_assert_eq!(&base.summary.rewards, &fixed.rewards);
    }
}
