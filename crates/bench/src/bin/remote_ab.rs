//! Paired A/B of the remote TCP backend against pipe IPC and in-process
//! execution on the `repro fig14 --quick` workload (24-point closed node
//! sweep, 200 s horizon, one deterministic replication per point), against
//! a real loopback `LocalCluster`.
//!
//! Four measurements:
//!
//! 1. **Byte identity** (asserted before any timing): the remote gather at
//!    1, 2 and 4 peers must reproduce the in-process slot bytes exactly.
//! 2. **Wall clock + per-task transport overhead** (paired adjacent
//!    blocks, median — robust on noisy shared hosts): the whole manifest
//!    through in-process, sharded(2) pipes and remote(2) TCP. On this
//!    1-CPU container the remote run adds only its transport cost
//!    (connect + frame round-trips over loopback, amortized over 24
//!    tasks); the binary asserts the per-task TCP overhead stays below
//!    [`OVERHEAD_BUDGET`] of the in-process wall clock, and reports TCP
//!    vs pipe IPC side by side.
//! 3. **Connect + dispatch round-trip** in isolation: a 1-slot trivial
//!    manifest against one peer (the TCP analogue of shard_ab's worker
//!    spawn round-trip — here the worker is already running, so this is
//!    pure connection/protocol latency).
//! 4. **Modeled multi-host makespan** (the shard_ab replay, reused):
//!    per-task costs measured serially, replayed through the contiguous
//!    chunk split + greedy claim order per host, plus the *measured*
//!    per-dispatch connect overhead — at hypothetical host counts.
//!
//! ```text
//! cargo run --release -p bench --bin remote_ab [--pairs K]
//! ```

use bench::remote::LocalCluster;
use des::Workload;
use sim_runtime::{Exec, PortableJob};
use std::time::Instant;
use wsn::experiments::jobs::NodeSweepJob;
use wsn::sweep::FIG14_15_PDT_GRID;

const HORIZON: f64 = 200.0; // fig14 --quick
const SEED: u64 = 0xF14;

/// Maximum tolerated per-task TCP overhead, as a fraction of the
/// in-process wall clock of the whole sweep. Looser than shard_ab's pipe
/// bound (4%): TCP adds per-dispatch connects and socket hops, but must
/// still be "a few percent" on loopback.
const OVERHEAD_BUDGET: f64 = 0.06;

fn job() -> NodeSweepJob {
    NodeSweepJob {
        workload: Workload::Closed { interval: 1.0 },
        horizon: HORIZON,
        grid: FIG14_15_PDT_GRID.to_vec(),
    }
}

fn seed_of(_p: usize, r: u64) -> u64 {
    petri_core::rng::SimRng::child_seed(SEED, r)
}

/// The sibling `repro` binary (shared harness helper).
fn repro_bin() -> String {
    bench::remote::sibling_repro_bin()
}

fn run(exec: &Exec) -> Vec<Vec<Vec<u8>>> {
    let reps = vec![1u64; FIG14_15_PDT_GRID.len()];
    exec.runner()
        .run_job(&job(), &reps, &seed_of)
        .expect("fig14 sweep runs")
}

fn median(v: &mut [f64]) -> f64 {
    v.sort_by(|x, y| x.total_cmp(y));
    v[v.len() / 2]
}

fn main() {
    let mut pairs = 9usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--pairs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => pairs = n,
                _ => {
                    eprintln!("--pairs needs a positive integer");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown arg: {other}");
                std::process::exit(2);
            }
        }
    }
    let tasks = FIG14_15_PDT_GRID.len();
    let bin = repro_bin();
    let cluster = LocalCluster::spawn(&bin, 4).expect("local cluster spawns");
    let in_process = Exec::in_process(1);
    let sharded = Exec::sharded(1, 2).with_worker_cmd(vec![bin.clone(), "--worker".into()]);

    // Correctness first: byte-identical gathers at every peer count.
    let baseline = run(&in_process);
    for hosts in [1usize, 2, 4] {
        assert_eq!(
            baseline,
            run(&cluster.exec(1, hosts)),
            "remote({hosts}) diverged from in-process bytes"
        );
    }
    eprintln!("byte-identity: in-process == remote(1|2|4 peers) on {tasks} slots");

    // Paired wall clock: in-process vs sharded(2) pipes vs remote(2) TCP,
    // rotating order so drift hits each arm equally.
    let timed = |exec: &Exec| {
        let t0 = Instant::now();
        std::hint::black_box(run(exec));
        t0.elapsed().as_secs_f64()
    };
    let remote2 = cluster.exec(1, 2);
    let mut in_ms = Vec::new();
    let mut sh_ms = Vec::new();
    let mut re_ms = Vec::new();
    for p in 0..pairs {
        match p % 3 {
            0 => {
                in_ms.push(timed(&in_process) * 1e3);
                sh_ms.push(timed(&sharded) * 1e3);
                re_ms.push(timed(&remote2) * 1e3);
            }
            1 => {
                sh_ms.push(timed(&sharded) * 1e3);
                re_ms.push(timed(&remote2) * 1e3);
                in_ms.push(timed(&in_process) * 1e3);
            }
            _ => {
                re_ms.push(timed(&remote2) * 1e3);
                in_ms.push(timed(&in_process) * 1e3);
                sh_ms.push(timed(&sharded) * 1e3);
            }
        }
    }
    let wall_in = median(&mut in_ms);
    let wall_sh = median(&mut sh_ms);
    let wall_re = median(&mut re_ms);
    let per_task_pipe_ms = (wall_sh - wall_in) / tasks as f64;
    let per_task_tcp_ms = (wall_re - wall_in) / tasks as f64;

    // Connect + dispatch round-trip in isolation: a 1-slot trivial
    // manifest against one (already running) peer.
    let mut rt_ms = Vec::new();
    for _ in 0..pairs.max(5) {
        let one = cluster.exec(1, 1);
        let t0 = Instant::now();
        let out = one
            .runner()
            .run_job(
                &bench::shard::FailJob {
                    fail_point: 99,
                    fail_rep: 0,
                },
                &[1],
                &|_, _| 0,
            )
            .expect("trivial manifest runs");
        std::hint::black_box(out);
        rt_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let connect_roundtrip_ms = median(&mut rt_ms);

    // Modeled multi-host makespan over serially measured per-task costs —
    // the shard_ab replay, with the measured connect round-trip as the
    // per-host fixed cost instead of a subprocess spawn.
    let j = job();
    let mut costs = Vec::with_capacity(tasks);
    for (p, _) in FIG14_15_PDT_GRID.iter().enumerate() {
        let t0 = Instant::now();
        std::hint::black_box(j.run_slot(p, 0, seed_of(p, 0)).expect("slot runs"));
        costs.push(t0.elapsed().as_secs_f64());
    }
    let makespan = |hosts: usize, workers: usize| -> f64 {
        let total = costs.len();
        let mut start = 0usize;
        let mut worst = 0.0f64;
        for h in 0..hosts.min(total) {
            let size = total / hosts + usize::from(h < total % hosts);
            let chunk = &costs[start..start + size];
            start += size;
            let mut free_at = vec![0.0f64; workers.max(1)];
            for &c in chunk {
                let w = free_at
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .expect("worker");
                free_at[w] += c;
            }
            let host_span =
                connect_roundtrip_ms / 1e3 + free_at.iter().fold(0.0f64, |m, &t| m.max(t));
            worst = worst.max(host_span);
        }
        worst
    };

    println!("{{");
    println!(
        "  \"workload\": \"fig14 --quick: {tasks}-point closed node sweep, {HORIZON} s horizon, 1 replication/point\","
    );
    println!("  \"byte_identity\": \"in-process == remote(1|2|4 loopback TCP peers), asserted on raw slot bytes before timing\",");
    println!("  \"wall_clock\": {{");
    println!("    \"pairs\": {pairs},");
    println!("    \"in_process_ms\": {wall_in:.2},");
    println!("    \"sharded_2_pipes_ms\": {wall_sh:.2},");
    println!("    \"remote_2_tcp_ms\": {wall_re:.2},");
    println!("    \"per_task_pipe_ipc_overhead_ms\": {per_task_pipe_ms:.4},");
    println!("    \"per_task_tcp_overhead_ms\": {per_task_tcp_ms:.4},");
    println!(
        "    \"per_task_tcp_overhead_vs_wall\": {:.4},",
        per_task_tcp_ms / wall_in
    );
    println!("    \"connect_dispatch_roundtrip_ms\": {connect_roundtrip_ms:.2}");
    println!("  }},");
    print!("  \"modeled_multi_host_makespan\": [");
    let single = makespan(1, 8);
    let mut first = true;
    for hosts in [1usize, 2, 4, 8] {
        let m = makespan(hosts, 8);
        if !first {
            print!(", ");
        }
        first = false;
        print!(
            "{{\"hosts\": {hosts}, \"workers_per_host\": 8, \"makespan_ms\": {:.2}, \"speedup_vs_1_host\": {:.3}}}",
            m * 1e3,
            single / m
        );
    }
    println!("],");
    println!(
        "  \"note\": \"modeled makespan replays serially measured per-task costs through the contiguous-chunk split + greedy claim order (the shard_ab replay), plus the measured per-dispatch connect round-trip; TCP overhead is measured against live loopback workers, so it excludes worker startup\""
    );
    println!("}}");

    // The acceptance bound: per-task TCP overhead under a few percent of
    // the whole sweep's in-process wall clock. (Loopback can come out
    // slightly *cheaper* than pipes run-to-run; only the upper bound is
    // asserted.)
    assert!(
        per_task_tcp_ms <= OVERHEAD_BUDGET * wall_in,
        "per-task TCP overhead {per_task_tcp_ms:.3} ms exceeds {OVERHEAD_BUDGET:.0}% of the {wall_in:.1} ms in-process sweep",
        OVERHEAD_BUDGET = OVERHEAD_BUDGET * 100.0
    );
    eprintln!(
        "per-task TCP overhead {per_task_tcp_ms:.3} ms <= {:.0}% of {wall_in:.1} ms: ok",
        OVERHEAD_BUDGET * 100.0
    );
    cluster.shutdown();
}
