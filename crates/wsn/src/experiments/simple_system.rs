//! Tables VIII–X: the simple sensor system and the (emulated) IMote2
//! validation.

use crate::imote2::{table_x_comparison, TableXComparison};
use crate::simple_node::{
    analytic_probabilities, simulate_simple_node, SimpleNodeParams, SimpleNodeProbabilities,
};
use serde::{Deserialize, Serialize};

/// One row of Table VIII: a transition with its distribution, delay, and
/// the steady-state probability of its input place.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableViiiRow {
    /// Transition name.
    pub transition: String,
    /// "Exponential" or "Deterministic".
    pub distribution: String,
    /// Delay parameter (s); mean for the exponential.
    pub delay: f64,
    /// Steady-state probability (%) of the state the transition drains.
    pub probability_pct: f64,
}

/// The Tables VIII/IX content: transition parameters plus simulated and
/// analytic steady-state probabilities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimpleSystemReport {
    /// Table VIII rows.
    pub rows: Vec<TableViiiRow>,
    /// Simulated probabilities (Petri net run).
    pub simulated: SimpleNodeProbabilities,
    /// Exact renewal probabilities.
    pub analytic: SimpleNodeProbabilities,
}

/// Produce the Tables VIII/IX report.
pub fn run_simple_system(horizon: f64, seed: u64) -> SimpleSystemReport {
    let params = SimpleNodeParams::default();
    let analytic = analytic_probabilities(&params);
    let simulated = simulate_simple_node(&params, horizon, seed);
    let rows = vec![
        TableViiiRow {
            transition: "Job_Arrival".into(),
            distribution: "Exponential".into(),
            delay: params.job_arrival_mean,
            probability_pct: 100.0 * analytic.wait,
        },
        TableViiiRow {
            transition: "Temp".into(),
            distribution: "Deterministic".into(),
            delay: params.temp_delay,
            probability_pct: 100.0 * analytic.temp_place,
        },
        TableViiiRow {
            transition: "Receive_Delay".into(),
            distribution: "Deterministic".into(),
            delay: params.receive_delay,
            probability_pct: 100.0 * analytic.receiving,
        },
        TableViiiRow {
            transition: "Computation_Delay".into(),
            distribution: "Deterministic".into(),
            delay: params.computation_delay,
            probability_pct: 100.0 * analytic.computation,
        },
        TableViiiRow {
            transition: "Transmit_Delay".into(),
            distribution: "Deterministic".into(),
            delay: params.transmit_delay,
            probability_pct: 100.0 * analytic.transmitting,
        },
    ];
    SimpleSystemReport {
        rows,
        simulated,
        analytic,
    }
}

/// Produce the Table X comparison (emulated measurement vs Petri
/// prediction).
pub fn run_table_x(seed: u64) -> TableXComparison {
    table_x_comparison(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_viii_delays_match_paper() {
        let r = run_simple_system(5000.0, 1);
        let by_name = |n: &str| r.rows.iter().find(|row| row.transition == n).unwrap();
        assert_eq!(by_name("Job_Arrival").delay, 3.0);
        assert_eq!(by_name("Temp").delay, 1.0);
        assert_eq!(by_name("Receive_Delay").delay, 0.00597);
        assert_eq!(by_name("Computation_Delay").delay, 1.0274);
        assert_eq!(by_name("Transmit_Delay").delay, 0.0059);
    }

    #[test]
    fn probabilities_consistent_between_sim_and_analytic() {
        let r = run_simple_system(20_000.0, 2);
        assert!((r.simulated.wait - r.analytic.wait).abs() < 0.02);
        assert!((r.simulated.computation - r.analytic.computation).abs() < 0.02);
    }

    #[test]
    fn row_probabilities_sum_to_100() {
        let r = run_simple_system(1000.0, 3);
        let total: f64 = r.rows.iter().map(|row| row.probability_pct).sum();
        assert!((total - 100.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn table_x_reports_small_gap() {
        let c = run_table_x(4);
        assert!(c.percent_difference < 6.0);
        assert!(c.petri_energy_j > 0.0);
        assert!(c.measured_energy_j > 0.0);
    }
}
