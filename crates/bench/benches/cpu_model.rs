//! FIG4–9 / TAB4–6 regeneration cost: the three-way CPU comparison at one
//! sweep point per method (DES vs Markov closed form vs Petri net).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use des::CpuSimParams;
use markov::supplementary::{CpuMarkovParams, CpuPowerRates};
use wsn::CpuModelParams;

fn bench_des_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu/des_point");
    for pud in [0.001, 0.3, 10.0] {
        let params = CpuSimParams::paper_defaults(0.3, pud);
        g.bench_with_input(BenchmarkId::from_parameter(pud), &params, |b, p| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                des::simulate_cpu(p, seed)
            })
        });
    }
    g.finish();
}

fn bench_markov_point(c: &mut Criterion) {
    let rates = CpuPowerRates::PXA271;
    let params = CpuMarkovParams {
        lambda: 1.0,
        mu: 10.0,
        power_down_threshold: 0.3,
        power_up_delay: 0.3,
    };
    c.bench_function("cpu/markov_closed_form", |b| {
        b.iter(|| params.energy_for_duration(&rates, 1000.0))
    });
}

fn bench_petri_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu/petri_point");
    for pud in [0.001, 0.3, 10.0] {
        let params = CpuModelParams::paper_defaults(0.3, pud);
        g.bench_with_input(BenchmarkId::from_parameter(pud), &params, |b, p| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                wsn::simulate_cpu_model(p, 1000.0, seed)
            })
        });
    }
    g.finish();
}

fn bench_net_build(c: &mut Criterion) {
    let params = CpuModelParams::paper_defaults(0.3, 0.3);
    c.bench_function("cpu/net_build", |b| {
        b.iter(|| wsn::build_cpu_model(&params))
    });
}

criterion_group! {
    name = benches;
    // Short windows: these benches document magnitudes, not micro-regressions.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(20);
    targets = bench_des_point,
    bench_markov_point,
    bench_petri_point,
    bench_net_build
}
criterion_main!(benches);
