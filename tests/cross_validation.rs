//! Cross-substrate oracle tests: the same system modeled three independent
//! ways (Petri net / discrete-event simulation / Markov theory) must agree.
//!
//! These are the load-bearing correctness tests of the whole reproduction:
//! each substrate was written separately, so agreement is evidence, not
//! tautology.

use wsn_petri::prelude::*;

/// Exponential-only Petri nets ARE CTMCs: the extracted chain's analytic
/// steady state must match long-run simulation.
#[test]
fn petri_simulation_matches_extracted_ctmc() {
    // A 3-place cyclic net with contention.
    let mut b = NetBuilder::new("ctmc-bridge");
    let p0 = b.place("a").tokens(2).build();
    let p1 = b.place("b").build();
    let p2 = b.place("c").build();
    b.transition("ab", Timing::exponential(2.0))
        .input(p0, 1)
        .output(p1, 1)
        .build();
    b.transition("bc", Timing::exponential(3.0))
        .input(p1, 1)
        .output(p2, 1)
        .build();
    b.transition("ca", Timing::exponential(1.5))
        .input(p2, 1)
        .output(p0, 1)
        .build();
    let net = b.build().unwrap();

    // Analytic: extract CTMC, solve with GTH, compute E[#tokens in a].
    let extraction = petri_core::analysis::extract_ctmc(&net, 1000).unwrap();
    let chain = markov::Ctmc::from_rates(extraction.states.len(), extraction.rates.iter().copied())
        .unwrap();
    let pi = chain.steady_state().unwrap();
    let expected_tokens_a: f64 = extraction
        .states
        .iter()
        .zip(pi.iter())
        .map(|(m, p)| m.count(p0) as f64 * p)
        .sum();

    // Simulation estimate.
    let mut sim = Simulator::new(&net, SimConfig::for_horizon(50_000.0).with_warmup(500.0));
    let r = sim.reward_place(p0);
    let out = sim.run(97).unwrap();

    assert!(
        (out.reward(r) - expected_tokens_a).abs() < 0.02,
        "simulated {} vs analytic {}",
        out.reward(r),
        expected_tokens_a
    );
}

/// M/M/1 through three routes: closed form, CTMC truncation, Petri
/// simulation.
#[test]
fn mm1_three_ways() {
    let lambda = 1.0;
    let mu = 4.0;
    let closed_form = Mm1::new(lambda, mu).mean_in_system();

    // Truncated birth-death CTMC.
    let k = 60;
    let mut chain = Ctmc::new(k + 1);
    for i in 0..k {
        chain.add_rate(i, i + 1, lambda).unwrap();
        chain.add_rate(i + 1, i, mu).unwrap();
    }
    let pi = chain.steady_state().unwrap();
    let ctmc_mean: f64 = pi.iter().enumerate().map(|(i, p)| i as f64 * p).sum();

    // Petri simulation.
    let mut b = NetBuilder::new("mm1");
    let q = b.place("q").build();
    b.transition("arrive", Timing::exponential(lambda))
        .output(q, 1)
        .build();
    b.transition("serve", Timing::exponential(mu))
        .input(q, 1)
        .build();
    let net = b.build().unwrap();
    let mut sim = Simulator::new(&net, SimConfig::for_horizon(100_000.0).with_warmup(1000.0));
    let r = sim.reward_place(q);
    let out = sim.run(3).unwrap();

    assert!((closed_form - ctmc_mean).abs() < 1e-6);
    assert!(
        (out.reward(r) - closed_form).abs() < 0.03,
        "petri {} vs closed form {}",
        out.reward(r),
        closed_form
    );
}

/// The power-managed CPU: Petri net vs DES vs supplementary-variable
/// Markov at small Power-Up Delay (where the closed form is nearly exact).
#[test]
fn cpu_three_ways_small_pud() {
    let (t, d) = (0.3, 0.001);
    let markov_sol = CpuMarkovParams {
        lambda: 1.0,
        mu: 10.0,
        power_down_threshold: t,
        power_up_delay: d,
    }
    .solve();
    let markov_probs = [
        markov_sol.p_standby,
        markov_sol.p_powerup,
        markov_sol.p_idle,
        markov_sol.p_active,
    ];

    let mut des_params = CpuSimParams::paper_defaults(t, d);
    des_params.horizon = 30_000.0;
    let des_probs = simulate_cpu(&des_params, 5).probabilities();

    let petri_probs =
        simulate_cpu_model(&CpuModelParams::paper_defaults(t, d), 30_000.0, 6).probabilities;

    for i in 0..4 {
        assert!(
            (markov_probs[i] - des_probs[i]).abs() < 0.02,
            "state {i}: markov {} vs des {}",
            markov_probs[i],
            des_probs[i]
        );
        assert!(
            (petri_probs[i] - des_probs[i]).abs() < 0.02,
            "state {i}: petri {} vs des {}",
            petri_probs[i],
            des_probs[i]
        );
    }
}

/// The paper's central claim, as a falsifiable test: at Power-Up Delay
/// 10 s the Markov model's active-state estimate degrades by an order of
/// magnitude more than the Petri net's.
#[test]
fn markov_fails_at_large_pud_petri_does_not() {
    let (t, d) = (0.5, 10.0);
    let markov_sol = CpuMarkovParams {
        lambda: 1.0,
        mu: 10.0,
        power_down_threshold: t,
        power_up_delay: d,
    }
    .solve();

    let mut des_params = CpuSimParams::paper_defaults(t, d);
    des_params.horizon = 30_000.0;
    let des_probs = simulate_cpu(&des_params, 7).probabilities();
    let petri_probs =
        simulate_cpu_model(&CpuModelParams::paper_defaults(t, d), 30_000.0, 8).probabilities;

    let markov_err = (markov_sol.p_active - des_probs[3]).abs();
    let petri_err = (petri_probs[3] - des_probs[3]).abs();
    assert!(
        markov_err > 10.0 * petri_err,
        "markov err {markov_err} should dwarf petri err {petri_err}"
    );
}

/// Node model: Petri and DES agree on total energy across the threshold
/// grid (closed workload — both deterministic, so the match is tight).
#[test]
fn node_energy_petri_vs_des_across_grid() {
    for pdt in [1e-9, 0.0017, 0.00177, 0.01, 0.5, 1.00177, 10.0] {
        let params = NodeSimParams::paper_defaults(Workload::Closed { interval: 1.0 }, pdt);
        let petri = simulate_node_model(&params, 1)
            .breakdown(&PXA271_CPU, &CC2420_RADIO)
            .total()
            .joules();
        let des = simulate_node(&params, 1)
            .total_energy(&PXA271_CPU, &CC2420_RADIO)
            .joules();
        let rel = (petri - des).abs() / des;
        assert!(
            rel < 0.005,
            "pdt={pdt}: petri {petri} J vs des {des} J (rel {rel})"
        );
    }
}

/// Erlang-k phase chains converge to the DES truth as k grows — the
/// quantitative version of "deterministic timers are not Markovian".
#[test]
fn erlang_expansion_converges_to_des() {
    let rows = wsn::experiments::ablations::erlang_ablation(0.3, 0.3, &[1, 32], 11);
    assert!(rows[1].max_abs_error < rows[0].max_abs_error * 0.5);
    assert!(rows[1].max_abs_error < 0.05);
}

/// The simple node's simulated probabilities match renewal theory, and the
/// energy matches the paper's published Petri-net figure.
#[test]
fn simple_node_matches_renewal_theory_and_paper() {
    let params = SimpleNodeParams::default();
    let sim = simulate_simple_node(&params, 30_000.0, 13);
    let exact = analytic_probabilities(&params);
    assert!((sim.wait - exact.wait).abs() < 0.01);
    assert!((sim.computation - exact.computation).abs() < 0.01);
    let e = exact.energy(&IMOTE2_MEASURED, 266.5).joules();
    assert!((e - 0.326519).abs() < 0.005, "energy {e}");
}
