//! Absorption analysis: mean time / probability to reach designated target
//! states of a CTMC.
//!
//! The WSN application is lifetime analysis (the paper's motivating
//! metric, Sec. I): make "battery empty" an absorbing state and ask for
//! the expected hitting time. Solved by the standard linear system over
//! the transient states: for each transient `i`,
//! `h(i) = 1/E(i) + Σ_j P(i→j)·h(j)` where `E(i)` is the exit rate.

use crate::ctmc::Ctmc;
use crate::linalg::Matrix;

/// Result of an absorption analysis.
#[derive(Debug, Clone)]
pub struct Absorption {
    /// Expected time to hit any target state, per starting state
    /// (`f64::INFINITY` where the targets are unreachable).
    pub hitting_time: Vec<f64>,
    /// Probability of ever hitting a target, per starting state.
    pub hitting_probability: Vec<f64>,
}

/// Errors from absorption analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbsorptionError {
    /// A target index is out of range.
    TargetOutOfRange(usize),
    /// No targets given.
    NoTargets,
    /// The linear system is singular (should not happen for well-formed
    /// chains; indicates degenerate rates).
    Singular,
}

impl std::fmt::Display for AbsorptionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbsorptionError::TargetOutOfRange(s) => write!(f, "target state {s} out of range"),
            AbsorptionError::NoTargets => write!(f, "need at least one target state"),
            AbsorptionError::Singular => write!(f, "absorption system is singular"),
        }
    }
}

impl std::error::Error for AbsorptionError {}

/// Compute hitting times and probabilities for the target set.
pub fn absorb(chain: &Ctmc, targets: &[usize]) -> Result<Absorption, AbsorptionError> {
    let n = chain.num_states();
    if targets.is_empty() {
        return Err(AbsorptionError::NoTargets);
    }
    for &t in targets {
        if t >= n {
            return Err(AbsorptionError::TargetOutOfRange(t));
        }
    }
    let mut is_target = vec![false; n];
    for &t in targets {
        is_target[t] = true;
    }

    // Gather rates.
    let mut exit = vec![0.0; n];
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    chain.for_each_rate(|f, t, r| {
        exit[f] += r;
        edges.push((f, t, r));
    });

    // Reachability of targets (reverse BFS over edges).
    let mut can_reach = is_target.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for &(f, t, _) in &edges {
            if can_reach[t] && !can_reach[f] {
                can_reach[f] = true;
                changed = true;
            }
        }
    }

    // Transient states: not targets, can reach a target, and have exits.
    let trans: Vec<usize> = (0..n)
        .filter(|&i| !is_target[i] && can_reach[i] && exit[i] > 0.0)
        .collect();
    let index_of: std::collections::HashMap<usize, usize> =
        trans.iter().enumerate().map(|(k, &s)| (s, k)).collect();
    let m = trans.len();

    // Hitting time system: (I - P_tt) h = 1/E  (dense; chains here are
    // small). Probability system: (I - P_tt) q = P_t,target·1.
    let mut a = Matrix::identity(m);
    let mut b_time = vec![0.0; m];
    let mut b_prob = vec![0.0; m];
    for (k, &s) in trans.iter().enumerate() {
        b_time[k] = 1.0 / exit[s];
    }
    for &(f, t, r) in &edges {
        let Some(&fk) = index_of.get(&f) else {
            continue;
        };
        let p = r / exit[f];
        if let Some(&tk) = index_of.get(&t) {
            a[(fk, tk)] -= p;
        } else if is_target[t] {
            b_prob[fk] += p;
        }
        // Edges into non-target states that cannot reach targets are lost
        // probability mass for hitting; they simply do not appear in either
        // right-hand side.
    }

    let h = a.solve(&b_time).ok_or(AbsorptionError::Singular)?;
    let q = a.solve(&b_prob).ok_or(AbsorptionError::Singular)?;

    let mut hitting_time = vec![f64::INFINITY; n];
    let mut hitting_probability = vec![0.0; n];
    for &t in targets {
        hitting_time[t] = 0.0;
        hitting_probability[t] = 1.0;
    }
    for (k, &s) in trans.iter().enumerate() {
        hitting_time[s] = h[k];
        hitting_probability[s] = q[k].clamp(0.0, 1.0);
    }
    Ok(Absorption {
        hitting_time,
        hitting_probability,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Single Exp(r) step: mean hitting time 1/r.
    #[test]
    fn single_step() {
        let c = Ctmc::from_rates(2, [(0, 1, 4.0)]).unwrap();
        let a = absorb(&c, &[1]).unwrap();
        assert!((a.hitting_time[0] - 0.25).abs() < 1e-12);
        assert_eq!(a.hitting_time[1], 0.0);
        assert!((a.hitting_probability[0] - 1.0).abs() < 1e-12);
    }

    /// Two-stage pipeline: hitting time adds stage means.
    #[test]
    fn pipeline_adds_means() {
        let c = Ctmc::from_rates(3, [(0, 1, 2.0), (1, 2, 5.0)]).unwrap();
        let a = absorb(&c, &[2]).unwrap();
        assert!((a.hitting_time[0] - 0.7).abs() < 1e-12); // 0.5 + 0.2
        assert!((a.hitting_time[1] - 0.2).abs() < 1e-12);
    }

    /// Branching: hitting probability splits by rates when one branch
    /// leads to a dead end.
    #[test]
    fn branch_probability() {
        // 0 -> target (rate 1), 0 -> dead end (rate 3).
        let c = Ctmc::from_rates(3, [(0, 1, 1.0), (0, 2, 3.0)]).unwrap();
        let a = absorb(&c, &[1]).unwrap();
        assert!((a.hitting_probability[0] - 0.25).abs() < 1e-12);
        // Dead end never reaches the target.
        assert_eq!(a.hitting_probability[2], 0.0);
        assert_eq!(a.hitting_time[2], f64::INFINITY);
    }

    /// A cycle with a leak: hitting time of the leak from inside the cycle
    /// matches the geometric-retry closed form.
    #[test]
    fn cycle_with_leak() {
        // 0 <-> 1 at rate 1 each way; 1 -> 2 (absorb) at rate 1.
        let c = Ctmc::from_rates(3, [(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0)]).unwrap();
        let a = absorb(&c, &[2]).unwrap();
        // h1 = 1/2 + (1/2) h0; h0 = 1 + h1  =>  h1 = 2, h0 = 3.
        assert!(
            (a.hitting_time[1] - 2.0).abs() < 1e-9,
            "{:?}",
            a.hitting_time
        );
        assert!((a.hitting_time[0] - 3.0).abs() < 1e-9);
        assert!((a.hitting_probability[0] - 1.0).abs() < 1e-9);
    }

    /// Validation errors.
    #[test]
    fn errors() {
        let c = Ctmc::from_rates(2, [(0, 1, 1.0)]).unwrap();
        assert_eq!(absorb(&c, &[]).unwrap_err(), AbsorptionError::NoTargets);
        assert_eq!(
            absorb(&c, &[5]).unwrap_err(),
            AbsorptionError::TargetOutOfRange(5)
        );
    }

    /// Birth-death battery model: states = remaining charge quanta,
    /// depletion rate per state; hitting time of empty = sum of means.
    #[test]
    fn battery_depletion_time() {
        let quanta = 10;
        let rate = 0.5; // quanta per hour
        let mut c = Ctmc::new(quanta + 1);
        for lvl in 1..=quanta {
            c.add_rate(lvl, lvl - 1, rate).unwrap();
        }
        let a = absorb(&c, &[0]).unwrap();
        assert!((a.hitting_time[quanta] - quanta as f64 / rate).abs() < 1e-9);
    }
}
