//! The executor backend seam: portable task manifests and the backends
//! that run them.
//!
//! Closure grids ([`crate::Runner::grid`]) are bound to one address space.
//! To spread the same flat task stream over worker **subprocesses** (and,
//! eventually, remote hosts), a grid must be *described as data*:
//!
//! * a [`PortableJob`] is the task family — a named, self-encoding recipe
//!   that turns `(point, replication, seed)` into an encoded result;
//! * a [`TaskManifest`] pins down one concrete grid: the job's identity and
//!   payload, the contiguous flat-index [`Segment`]s to run, and one seed
//!   per slot;
//! * an [`ExecBackend`] executes a manifest and hands back per-slot result
//!   bytes in flat-index order.
//!
//! Two backends ship today: [`InProcessBackend`] (the scoped thread pool —
//! the same scheduling core behind `Runner::grid`) and [`ShardedBackend`],
//! which partitions the manifest into contiguous shards, spawns one worker
//! subprocess per shard (`<exe> --worker`, speaking length-prefixed frames
//! over stdin/stdout — see [`crate::worker`]), and gathers per-slot
//! results. Because every fold downstream consumes slots in flat-index
//! order, **any shard count × thread count yields byte-identical
//! results**. `ExecBackend::run_segments` is deliberately the single seam
//! where an async or remote-host backend would plug in.

use crate::fleet::chaos::{ChaosConfig, FaultInjector};
use crate::fleet::pool::pool;
use crate::fleet::{fleet_stats, FaultPolicy, FleetStats};
use crate::grid::{run_segments_core, GridPlan, Progress, ProgressFn, Segment};
use crate::remote::protocol::{
    collect_results, drain_chunk, encode_manifest_request, encode_shutdown_request,
    first_undelivered, keep_lowest_error, undelivered_remainder, ChunkSink, Drained,
};
use crate::remote::transport::{FrameTransport as _, PipeTransport};
use crate::wire::{self, Reader, WireError};
use std::collections::BTreeMap;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Protocol version byte carried by every manifest request frame.
/// Version 2 introduced tagged requests (manifest vs graceful shutdown)
/// and multi-manifest serve loops for the remote TCP subsystem; version 3
/// added the batch-width field, so workers can run contiguous same-point
/// slots on the batched SoA engine; version 4 upgraded the liveness
/// heartbeat to a progress frame (`P`: delivered/total slot counts), so
/// parents can render live per-chunk progress without extra round trips;
/// version 5 added the trace context (`u64` trace ID) to the manifest
/// request and the advisory span-batch response frame (`T`), so worker
/// spans fold back into the parent's job trace.
/// (Bumping the version also rotates the service cache's key space —
/// cached result bytes are identical across versions, but entries written
/// by older binaries describe an older protocol.)
pub const WIRE_VERSION: u8 = 5;

// --- errors --------------------------------------------------------------

/// An executor failure: a task error, a worker-process failure, or a
/// protocol/spawn problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A task reported an error. `flat_index` is the task's global flat
    /// index in the manifest; when several tasks fail, the lowest flat
    /// index wins (matching `Runner::try_grid`).
    Task {
        /// Global flat index of the failing slot.
        flat_index: usize,
        /// Sweep-point index of the failing slot.
        point: usize,
        /// Replication index of the failing slot.
        replication: u64,
        /// The task's error message.
        message: String,
    },
    /// A worker subprocess died (crash, kill, bad exit) before delivering
    /// its shard. `flat_index` is the first slot of the undelivered range.
    Worker {
        /// First global flat index the dead worker still owed.
        flat_index: usize,
        /// What happened to the worker.
        message: String,
    },
    /// Manifest/frame decode failures, spawn failures, registry misses.
    Protocol(String),
    /// The execution fleet is permanently unavailable for this dispatch
    /// — every peer quarantined or the pool exhausted — and in-process
    /// fallback was not enabled. Queued service jobs surface this
    /// instead of aging out silently.
    BackendUnavailable(String),
}

impl ExecError {
    /// The global flat index this error is attributed to, for
    /// lowest-index-wins selection across shards.
    pub fn flat_index(&self) -> usize {
        match self {
            ExecError::Task { flat_index, .. } | ExecError::Worker { flat_index, .. } => {
                *flat_index
            }
            ExecError::Protocol(_) | ExecError::BackendUnavailable(_) => 0,
        }
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Task {
                flat_index,
                point,
                replication,
                message,
            } => write!(
                f,
                "task {flat_index} (point {point}, replication {replication}) failed: {message}"
            ),
            ExecError::Worker {
                flat_index,
                message,
            } => write!(f, "worker owning flat index {flat_index} failed: {message}"),
            ExecError::Protocol(m) => write!(f, "executor protocol error: {m}"),
            ExecError::BackendUnavailable(m) => write!(f, "backend unavailable: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<WireError> for ExecError {
    fn from(e: WireError) -> Self {
        ExecError::Protocol(e.to_string())
    }
}

// --- portable jobs -------------------------------------------------------

/// A task family that can be executed outside the caller's address space.
///
/// A portable job must be reconstructible from `(kind, payload)` alone: the
/// worker subprocess looks `kind` up in its [`JobRegistry`] and decodes the
/// payload, so the closure-free triple `(point, replication, seed)` fully
/// determines each slot. Results are returned as encoded bytes; since the
/// caller's fold decodes the same bytes whether the slot ran in-process or
/// in a worker, results are **byte-identical across backends** by
/// construction.
pub trait PortableJob: Sync {
    /// Registry key identifying this job family (stable across the
    /// parent/worker process boundary).
    fn kind(&self) -> &'static str;

    /// Encode the job's parameters; the worker's registry decoder must be
    /// able to rebuild an equivalent job from exactly these bytes.
    fn encode_payload(&self, buf: &mut Vec<u8>);

    /// Run one slot, returning the encoded result. `seed` is the slot's
    /// entry from the manifest's seed table.
    fn run_slot(&self, point: usize, replication: u64, seed: u64) -> Result<Vec<u8>, String>;

    /// Run a batch of contiguous same-point slots — replication
    /// `base_rep + i` with `seeds[i]` — returning one result per slot in
    /// replication order.
    ///
    /// The default loops over [`PortableJob::run_slot`], so every job is
    /// batchable by construction. Jobs backed by a simulator override this
    /// to advance all lanes through one compiled model (see
    /// `petri_core::sim::BatchSimulator`); because each lane consumes its
    /// own RNG stream exactly as the scalar path would, an override **must
    /// not change result bytes** — backends rely on that to keep any batch
    /// width byte-identical to width 1.
    fn run_batch(
        &self,
        point: usize,
        base_rep: u64,
        seeds: &[u64],
    ) -> Vec<Result<Vec<u8>, String>> {
        seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| self.run_slot(point, base_rep + i as u64, seed))
            .collect()
    }
}

/// Decoder for one job kind: payload bytes back to a runnable job.
pub type JobDecoder = fn(&[u8]) -> Result<Box<dyn PortableJob>, WireError>;

/// The worker-side table mapping job kinds to payload decoders.
///
/// A worker process builds one registry at startup (covering every job its
/// binary can run) and serves manifests against it; see
/// [`crate::worker::serve`].
#[derive(Default)]
pub struct JobRegistry {
    decoders: BTreeMap<&'static str, JobDecoder>,
}

impl std::fmt::Debug for JobRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobRegistry")
            .field("kinds", &self.kinds().collect::<Vec<_>>())
            .finish()
    }
}

impl JobRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a decoder for `kind`; panics on duplicate registration
    /// (two decoders for one kind is always a wiring bug).
    pub fn register(&mut self, kind: &'static str, decoder: JobDecoder) {
        let prev = self.decoders.insert(kind, decoder);
        assert!(prev.is_none(), "job kind {kind:?} registered twice");
    }

    /// Decode a job of the given kind from its payload.
    pub fn decode(&self, kind: &str, payload: &[u8]) -> Result<Box<dyn PortableJob>, WireError> {
        let decoder = self
            .decoders
            .get(kind)
            .ok_or_else(|| WireError::new(format!("unknown job kind {kind:?}")))?;
        decoder(payload)
    }

    /// The registered kinds, in sorted order.
    pub fn kinds(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.decoders.keys().copied()
    }
}

// --- manifest ------------------------------------------------------------

/// A fully serialized description of one grid run: which job, which
/// contiguous flat-index segments, and the seed of every slot.
///
/// The manifest is the unit the sharded backend partitions and ships to
/// workers; its compact encoding is hand-rolled (see [`crate::wire`])
/// because the offline build's `serde` is a no-op shim.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskManifest {
    /// Job-family key for the worker's [`JobRegistry`].
    pub kind: String,
    /// Job parameters, encoded by [`PortableJob::encode_payload`].
    pub payload: Vec<u8>,
    /// Contiguous replication runs, in flat-index order. Point indices are
    /// global: a shard's sub-manifest keeps the parent's numbering.
    pub segments: Vec<Segment>,
    /// One RNG seed per flat slot, in flat-index order
    /// (`seeds.len() == total_slots()`).
    pub seeds: Vec<u64>,
}

impl TaskManifest {
    /// Build the manifest for `job` over explicit segments, seeding slot
    /// `(point, rep)` with `seed_of(point, rep)`.
    pub fn for_job(
        job: &dyn PortableJob,
        segments: Vec<Segment>,
        seed_of: &dyn Fn(usize, u64) -> u64,
    ) -> Self {
        let mut payload = Vec::new();
        job.encode_payload(&mut payload);
        let seeds = segments
            .iter()
            .flat_map(|seg| (0..seg.count as u64).map(|i| seed_of(seg.point, seg.base_rep + i)))
            .collect();
        TaskManifest {
            kind: job.kind().to_string(),
            payload,
            segments,
            seeds,
        }
    }

    /// Total number of slots across all segments.
    pub fn total_slots(&self) -> usize {
        self.segments.iter().map(|s| s.count).sum()
    }

    /// `(point, replication, seed)` of every slot, in flat-index order.
    pub fn slots(&self) -> Vec<(usize, u64, u64)> {
        self.segments
            .iter()
            .flat_map(|seg| (0..seg.count as u64).map(|i| (seg.point, seg.base_rep + i)))
            .zip(self.seeds.iter())
            .map(|((point, rep), &seed)| (point, rep, seed))
            .collect()
    }

    /// Fail unless the seed table covers every slot exactly.
    pub fn validate(&self) -> Result<(), WireError> {
        let total = self.total_slots();
        if self.seeds.len() != total {
            return Err(WireError::new(format!(
                "manifest has {total} slot(s) but {} seed(s)",
                self.seeds.len()
            )));
        }
        Ok(())
    }

    /// Partition into at most `shards` contiguous flat-index chunks of
    /// near-equal size, splitting segments at chunk boundaries. Returns
    /// `(first global flat index, sub-manifest)` per non-empty chunk;
    /// concatenating the chunks' slots in order reproduces `self` exactly.
    pub fn split(&self, shards: usize) -> Vec<(usize, TaskManifest)> {
        let total = self.total_slots();
        if total == 0 {
            return Vec::new();
        }
        let shards = shards.clamp(1, total);
        let plan = GridPlan::new(&self.segments);
        let mut out = Vec::with_capacity(shards);
        let mut start = 0usize;
        for i in 0..shards {
            let size = total / shards + usize::from(i < total % shards);
            let end = start + size;
            // Collect the segments overlapping [start, end).
            let mut segments = Vec::new();
            let (mut seg_idx, mut offset) = plan.locate(start);
            let mut remaining = size;
            while remaining > 0 {
                let seg = self.segments[seg_idx];
                let take = (seg.count - offset).min(remaining);
                segments.push(Segment {
                    point: seg.point,
                    base_rep: seg.base_rep + offset as u64,
                    count: take,
                });
                remaining -= take;
                seg_idx += 1;
                // Skip zero-count segments between chunks.
                while seg_idx < self.segments.len() && self.segments[seg_idx].count == 0 {
                    seg_idx += 1;
                }
                offset = 0;
            }
            out.push((
                start,
                TaskManifest {
                    kind: self.kind.clone(),
                    payload: self.payload.clone(),
                    segments,
                    seeds: self.seeds[start..end].to_vec(),
                },
            ));
            start = end;
        }
        out
    }

    /// Append the compact encoding of this manifest.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        wire::put_str(buf, &self.kind);
        wire::put_bytes(buf, &self.payload);
        wire::put_u32(buf, self.segments.len() as u32);
        for seg in &self.segments {
            wire::put_u64(buf, seg.point as u64);
            wire::put_u64(buf, seg.base_rep);
            wire::put_u64(buf, seg.count as u64);
        }
        wire::put_u32(buf, self.seeds.len() as u32);
        for &s in &self.seeds {
            wire::put_u64(buf, s);
        }
    }

    /// Decode a manifest from a [`Reader`] positioned at its first byte.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let kind = r.get_str()?.to_string();
        let payload = r.get_bytes()?.to_vec();
        let nsegs = r.get_u32()? as usize;
        let mut segments = Vec::with_capacity(nsegs.min(1 << 20));
        for _ in 0..nsegs {
            let point = r.get_u64()? as usize;
            let base_rep = r.get_u64()?;
            let count = r.get_u64()? as usize;
            segments.push(Segment {
                point,
                base_rep,
                count,
            });
        }
        let nseeds = r.get_u32()? as usize;
        let mut seeds = Vec::with_capacity(nseeds.min(1 << 20));
        for _ in 0..nseeds {
            seeds.push(r.get_u64()?);
        }
        let m = TaskManifest {
            kind,
            payload,
            segments,
            seeds,
        };
        m.validate()?;
        Ok(m)
    }
}

// --- the seam ------------------------------------------------------------

/// An executor backend: turns a [`TaskManifest`] into per-slot result
/// bytes, in flat-index order.
///
/// This is the single seam future backends (async pools, remote hosts, GPU
/// queues) implement; everything above it — `Runner`, the adaptive
/// stopping rounds, every experiment driver — is backend-agnostic.
pub trait ExecBackend {
    /// Execute every slot of `manifest`, returning one encoded result per
    /// slot in flat-index order. `job` is the already-decoded job for
    /// backends that execute locally; process-crossing backends re-decode
    /// it from the manifest on the far side. On failure, the error with the
    /// lowest flat index is returned.
    fn run_segments(
        &self,
        job: &dyn PortableJob,
        manifest: &TaskManifest,
        progress: Option<&ProgressFn>,
    ) -> Result<Vec<Vec<u8>>, ExecError>;

    /// Human-readable backend description (for logs and benches).
    fn label(&self) -> String;
}

/// The scoped-thread-pool backend: the exact scheduling core behind
/// `Runner::grid`, applied to a portable job.
#[derive(Debug, Clone, Copy)]
pub struct InProcessBackend {
    /// Worker threads to schedule onto.
    pub threads: usize,
    /// Contiguous same-point slots handed to [`PortableJob::run_batch`]
    /// per claim; 1 = the classic slot-at-a-time path.
    pub batch: usize,
}

impl InProcessBackend {
    /// A backend with the given worker-thread count (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        InProcessBackend {
            threads: threads.max(1),
            batch: 1,
        }
    }

    /// Set the batch width (clamped to ≥ 1). Result bytes are identical at
    /// any width; batching only changes how many lanes each claim advances
    /// together.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }
}

impl ExecBackend for InProcessBackend {
    fn run_segments(
        &self,
        job: &dyn PortableJob,
        manifest: &TaskManifest,
        progress: Option<&ProgressFn>,
    ) -> Result<Vec<Vec<u8>>, ExecError> {
        manifest.validate()?;
        let task_err = |flat: usize, message: String| {
            let plan = GridPlan::new(&manifest.segments);
            let (seg_idx, offset) = plan.locate(flat);
            let seg = manifest.segments[seg_idx];
            ExecError::Task {
                flat_index: flat,
                point: seg.point,
                replication: seg.base_rep + offset as u64,
                message,
            }
        };
        let per_segment = if self.batch > 1 {
            crate::grid::run_segments_core_batched(
                self.threads,
                self.batch,
                progress,
                &manifest.segments,
                &|flat_base, point, base_rep, count| {
                    job.run_batch(
                        point,
                        base_rep,
                        &manifest.seeds[flat_base..flat_base + count],
                    )
                },
            )
            .map_err(|(flat, message)| task_err(flat, message))?
        } else {
            run_segments_core(
                self.threads,
                progress,
                &manifest.segments,
                &|flat, point, rep| job.run_slot(point, rep, manifest.seeds[flat]),
            )
            .map_err(|(flat, message)| task_err(flat, message))?
        };
        // Concatenating per-segment results in segment order IS flat order.
        Ok(per_segment
            .into_iter()
            .flat_map(|(_seg, results)| results)
            .collect())
    }

    fn label(&self) -> String {
        if self.batch > 1 {
            format!("in-process(threads={}, batch={})", self.threads, self.batch)
        } else {
            format!("in-process(threads={})", self.threads)
        }
    }
}

// --- sharded backend -----------------------------------------------------

/// Frame tags of the worker protocol.
pub(crate) mod frame {
    // Requests (parent → worker).
    /// Run a manifest: version `u8`, worker-thread count `u32`, manifest.
    pub const MANIFEST: u8 = b'M';
    /// Graceful shutdown: end the serve loop (and, for a listening
    /// worker, the process) instead of relying on EOF or a kill.
    pub const SHUTDOWN: u8 = b'Q';

    // Responses (worker → parent).
    /// One slot's result: `u64` chunk-local slot index + result bytes.
    pub const RESULT: u8 = b'R';
    /// The chunk failed: `u64` chunk-local slot index + error string.
    pub const ERROR: u8 = b'E';
    /// Chunk complete: `u64` result-frame count (sanity check).
    pub const DONE: u8 = b'D';
    /// Liveness heartbeat (no payload), streamed while a manifest
    /// executes so a remote parent's read timeout can distinguish "slots
    /// are slow" from "the peer's machine silently vanished" (a dead TCP
    /// peer that never sent FIN/RST is otherwise indistinguishable from a
    /// long computation).
    pub const HEARTBEAT: u8 = b'H';
    /// In-flight progress (wire version 4): `u64` slots delivered so far +
    /// `u64` total slots in the chunk. Rides the heartbeat cadence — it is
    /// a liveness tick that also carries completion counts, so parents can
    /// surface per-slot progress. Purely cosmetic: result accounting still
    /// derives from `R` frames alone, and a dropped `P` frame never
    /// affects gathered bytes.
    pub const PROGRESS: u8 = b'P';
    /// Span batch (wire version 5): the worker's recorded trace spans
    /// for the chunk, sent once before the terminal `D`/`E` frame.
    /// Advisory like `P` — the parent folds the spans into its own
    /// collector, and a dropped or garbled batch costs observability
    /// only, never results.
    pub const SPANS: u8 = b'T';
}

/// The multi-process backend: contiguous manifest shards fanned out to
/// worker subprocesses.
///
/// Each worker is spawned as `worker_cmd` (default: the current executable
/// with a single `--worker` argument), receives one length-prefixed request
/// frame on stdin — protocol version, thread count, and its sub-manifest —
/// and answers on stdout with one `R` frame per slot, terminated by `D`
/// (or `E` carrying its lowest-flat-index task error). stderr passes
/// through for diagnostics. Gather re-assembles shard results in flat-index
/// order, so the downstream fold is byte-identical to [`InProcessBackend`]
/// at any shard count; on failure the lowest-global-flat-index error wins,
/// whether it arrived in-band (`E`) or as a dead worker.
#[derive(Debug, Clone)]
pub struct ShardedBackend {
    /// Worker subprocesses to partition the manifest across.
    pub shards: usize,
    /// Worker threads *per subprocess* (total parallelism is
    /// `shards × worker_threads`).
    pub worker_threads: usize,
    /// Batch width shipped in each manifest request: workers hand
    /// contiguous same-point slot runs of this size to
    /// [`PortableJob::run_batch`]. 1 = slot-at-a-time.
    pub batch: usize,
    /// Override of the worker command line; `None` spawns
    /// `current_exe --worker`.
    pub worker_cmd: Option<Vec<String>>,
    /// Unified fault policy: retry budget, backoff, and the opt-in
    /// shrink-to-zero in-process fallback.
    pub fault: FaultPolicy,
    /// Keep workers warm in the process-global
    /// [`WorkerPool`](crate::fleet::pool::WorkerPool) across dispatches
    /// (checkout/return instead of spawn-per-dispatch). On by default;
    /// `false` restores the legacy cold spawn-per-shard path.
    pub pool: bool,
    /// Deterministic frame-fault injection on the worker pipes (chaos
    /// testing); `None` is a passthrough.
    pub chaos: Option<ChaosConfig>,
}

impl ShardedBackend {
    /// A sharded backend re-entering the current executable with
    /// `--worker`.
    pub fn new(shards: usize, worker_threads: usize) -> Self {
        ShardedBackend {
            shards: shards.max(1),
            worker_threads: worker_threads.max(1),
            batch: 1,
            worker_cmd: None,
            fault: FaultPolicy::default(),
            pool: true,
            chaos: None,
        }
    }

    /// Set the batch width workers run contiguous same-point slots at
    /// (clamped to ≥ 1); result bytes are identical at any width.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Use an explicit worker command line (argv; must speak the worker
    /// protocol on stdin/stdout).
    pub fn with_worker_cmd(mut self, cmd: Vec<String>) -> Self {
        assert!(!cmd.is_empty(), "worker command must have an argv[0]");
        self.worker_cmd = Some(cmd);
        self
    }

    /// Replace the fault policy.
    pub fn with_fault(mut self, fault: FaultPolicy) -> Self {
        self.fault = fault;
        self
    }

    /// Enable or disable the warm worker pool.
    pub fn with_pool(mut self, pool: bool) -> Self {
        self.pool = pool;
        self
    }

    /// Arm (or disarm) deterministic chaos injection.
    pub fn with_chaos(mut self, chaos: Option<ChaosConfig>) -> Self {
        self.chaos = chaos;
        self
    }

    fn resolve_cmd(&self) -> Result<Vec<String>, ExecError> {
        if let Some(cmd) = &self.worker_cmd {
            return Ok(cmd.clone());
        }
        let exe = std::env::current_exe()
            .map_err(|e| ExecError::Protocol(format!("cannot resolve current_exe: {e}")))?;
        Ok(vec![exe.to_string_lossy().into_owned(), "--worker".into()])
    }

    /// Drive one worker subprocess through one shard, draining its
    /// responses into the manifest-wide `results` table.
    #[allow(clippy::too_many_arguments)]
    fn run_shard(
        &self,
        cmd: &[String],
        start: usize,
        chunk: &TaskManifest,
        results: &[OnceLock<Vec<u8>>],
        completed: &AtomicUsize,
        grand_total: usize,
        progress: Option<&ProgressFn>,
    ) -> Result<(), ExecError> {
        let spawn_err = |e: std::io::Error| ExecError::Worker {
            flat_index: start,
            message: format!("failed to spawn worker {:?}: {e}", cmd[0]),
        };
        let mut child: Child = Command::new(&cmd[0])
            .args(&cmd[1..])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(spawn_err)?;

        let died = |child: &mut Child, context: String| {
            // Kill before waiting: a worker that is still alive (e.g. one
            // that wrote garbage frames and is now blocked writing into
            // the pipe we stopped draining) must not hang the gather.
            let _ = child.kill();
            let status = child
                .wait()
                .map(|s| s.to_string())
                .unwrap_or_else(|e| format!("unwaitable: {e}"));
            ExecError::Worker {
                flat_index: start,
                message: format!("{context} (worker {status})"),
            }
        };

        // Ship the manifest request plus the graceful-shutdown frame, then
        // close stdin: the worker executes the manifest, answers, reads the
        // shutdown frame and exits 0 on its own — no EOF guessing, no kill
        // on the happy path. Closing the write half also means a worker
        // stuck mid-read sees EOF instead of deadlocking us.
        let mut transport = PipeTransport::new(
            child.stdin.take().expect("stdin piped"),
            child.stdout.take().expect("stdout piped"),
        );
        let request = encode_manifest_request(
            self.worker_threads,
            self.batch,
            chunk,
            crate::trace::current(),
        );
        let shipped = transport
            .send(&request)
            .and_then(|_| transport.send(&encode_shutdown_request()))
            .and_then(|_| transport.flush());
        if let Err(e) = shipped {
            return Err(died(&mut child, format!("request write failed: {e}")));
        }
        transport.close_write();

        let slots = chunk.slots();
        let global_flat: Vec<usize> = (start..start + slots.len()).collect();
        let mut delivered = vec![false; slots.len()];
        let outcome = drain_chunk(
            &mut transport,
            ChunkSink {
                slots: &slots,
                global_flat: &global_flat,
                results,
                delivered: &mut delivered,
                completed,
                grand_total,
                progress,
            },
        );
        match outcome {
            Drained::Complete => {
                let status = child.wait().map_err(|e| ExecError::Worker {
                    flat_index: start,
                    message: format!("worker unwaitable: {e}"),
                })?;
                if !status.success() {
                    return Err(ExecError::Worker {
                        flat_index: start,
                        message: format!("worker exited after DONE without success ({status})"),
                    });
                }
                Ok(())
            }
            Drained::TaskError(e) => {
                // In-band failure: the worker is healthy and exits on the
                // shutdown frame already in its pipe.
                let _ = child.wait();
                Err(e)
            }
            Drained::Broken(context) => {
                let flat = first_undelivered(&global_flat, &delivered).unwrap_or(start);
                let mut err = died(&mut child, context);
                if let ExecError::Worker { flat_index, .. } = &mut err {
                    *flat_index = flat;
                }
                Err(err)
            }
        }
    }

    /// The supervised (pooled) shard path: check a warm worker out of
    /// the process-global pool, dispatch the chunk, and return the
    /// worker for the next dispatch. A worker that breaks mid-chunk is
    /// discarded and the undelivered remainder re-dispatched onto a
    /// fresh checkout, with the policy's capped backoff between
    /// attempts; once the retry budget is spent the remainder either
    /// degrades to in-process execution (`fault.fallback`) or surfaces
    /// as [`ExecError::Worker`]. Retries cannot change result bytes —
    /// slots are seeded pure functions and delivered slots are never
    /// re-run.
    #[allow(clippy::too_many_arguments)]
    fn run_shard_supervised(
        &self,
        job: &dyn PortableJob,
        cmd: &[String],
        start: usize,
        chunk: &TaskManifest,
        results: &[OnceLock<Vec<u8>>],
        completed: &AtomicUsize,
        grand_total: usize,
        progress: Option<&ProgressFn>,
    ) -> Result<(), ExecError> {
        let mut pending_manifest = chunk.clone();
        let mut pending_flat: Vec<usize> = (start..start + chunk.total_slots()).collect();
        let mut last_failure = String::from("no dispatch attempted");
        let attempts = self.fault.retry_budget + 1;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(self.fault.backoff_delay(attempt - 1, start as u64));
            }
            let tr = crate::trace::tracer();
            let checkout_started = tr.start();
            let mut worker = match pool().checkout_worker(cmd) {
                Ok(w) => w,
                Err(e) => {
                    last_failure = format!("failed to spawn worker {:?}: {e}", cmd[0]);
                    continue;
                }
            };
            tr.record(
                crate::trace::current(),
                crate::trace::name::POOL_CHECKOUT,
                crate::trace::cat::FLEET,
                start as u64,
                checkout_started,
            );
            let slots = pending_manifest.slots();
            let mut delivered = vec![false; slots.len()];
            let outcome = {
                let mut transport = FaultInjector::new(worker.transport(), self.chaos);
                let request = encode_manifest_request(
                    self.worker_threads,
                    self.batch,
                    &pending_manifest,
                    crate::trace::current(),
                );
                match transport.send(&request).and_then(|_| transport.flush()) {
                    Err(e) => Drained::Broken(format!("request write failed: {e}")),
                    Ok(()) => drain_chunk(
                        &mut transport,
                        ChunkSink {
                            slots: &slots,
                            global_flat: &pending_flat,
                            results,
                            delivered: &mut delivered,
                            completed,
                            grand_total,
                            progress,
                        },
                    ),
                }
            };
            match outcome {
                Drained::Complete => {
                    pool().return_worker(cmd, worker);
                    return Ok(());
                }
                Drained::TaskError(e) => {
                    // Deterministic in-band failure: the worker is
                    // healthy and a retry would fail identically.
                    pool().return_worker(cmd, worker);
                    return Err(e);
                }
                Drained::Broken(context) => {
                    worker.discard();
                    match undelivered_remainder(&pending_manifest, &pending_flat, &delivered) {
                        // Every slot landed before the break (e.g. the
                        // worker died after its last R but before D).
                        None => return Ok(()),
                        Some((m, flat)) => {
                            last_failure = context;
                            if attempt + 1 < attempts {
                                FleetStats::bump(&fleet_stats().restarts);
                                eprintln!(
                                    "[fleet] shard worker died mid-chunk ({last_failure}); \
                                     restarting and re-dispatching {} slot(s) \
                                     (attempt {} of {attempts})",
                                    flat.len(),
                                    attempt + 2,
                                );
                            }
                            pending_manifest = m;
                            pending_flat = flat;
                        }
                    }
                }
            }
        }
        if self.fault.fallback {
            eprintln!(
                "[fleet] shard fleet exhausted after {attempts} attempt(s) ({last_failure}); \
                 degrading: running {} slot(s) in-process",
                pending_flat.len(),
            );
            FleetStats::bump(&fleet_stats().fallbacks);
            return run_slots_in_process(
                job,
                &pending_manifest,
                &pending_flat,
                results,
                completed,
                grand_total,
                progress,
            );
        }
        Err(ExecError::Worker {
            flat_index: pending_flat.first().copied().unwrap_or(start),
            message: format!(
                "{last_failure} ({} slot(s) undelivered after {attempts} dispatch attempt(s))",
                pending_flat.len(),
            ),
        })
    }
}

/// Run a (sub-)manifest's slots sequentially in this process, landing
/// results in the global gather table — the shrink-to-zero degradation
/// path shared by the sharded and remote backends. Sequential execution
/// in flat order means the first task failure is the remainder's
/// lowest-index failure, preserving the deterministic error-selection
/// contract.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_slots_in_process(
    job: &dyn PortableJob,
    manifest: &TaskManifest,
    global_flat: &[usize],
    results: &[OnceLock<Vec<u8>>],
    completed: &AtomicUsize,
    grand_total: usize,
    progress: Option<&ProgressFn>,
) -> Result<(), ExecError> {
    for (local, &(point, rep, seed)) in manifest.slots().iter().enumerate() {
        let flat = global_flat[local];
        match job.run_slot(point, rep, seed) {
            Ok(bytes) => {
                if results[flat].set(bytes).is_err() {
                    return Err(ExecError::Protocol(format!(
                        "fallback slot {flat} delivered twice"
                    )));
                }
                let done_now = completed.fetch_add(1, Ordering::Relaxed) + 1;
                if let Some(cb) = progress {
                    cb(Progress {
                        point,
                        replication: rep,
                        completed: done_now,
                        total: grand_total,
                    });
                }
            }
            Err(message) => {
                return Err(ExecError::Task {
                    flat_index: flat,
                    point,
                    replication: rep,
                    message,
                })
            }
        }
    }
    Ok(())
}

impl ExecBackend for ShardedBackend {
    fn run_segments(
        &self,
        job: &dyn PortableJob,
        manifest: &TaskManifest,
        progress: Option<&ProgressFn>,
    ) -> Result<Vec<Vec<u8>>, ExecError> {
        manifest.validate()?;
        let total = manifest.total_slots();
        if total == 0 {
            return Ok(Vec::new());
        }
        let cmd = self.resolve_cmd()?;
        let chunks = manifest.split(self.shards);
        let results: Vec<OnceLock<Vec<u8>>> = (0..total).map(|_| OnceLock::new()).collect();
        let completed = AtomicUsize::new(0);

        // One drain thread per shard: workers stream concurrently, so a
        // full pipe on shard k can never stall the gather of shard j.
        //
        // Deliberately NO cross-shard cancellation on first error: there is
        // no global claim order across processes, so killing sibling
        // workers could discard a *lower*-flat-index failure that had not
        // been reported yet, making the surfaced error timing-dependent.
        // Letting every shard drain keeps the lowest-index-wins selection
        // below deterministic — the same contract as `Runner::try_grid` —
        // at the cost of finishing in-flight shards on the error path.
        let outcomes: Vec<Result<(), ExecError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|(start, chunk)| {
                    let cmd = &cmd;
                    let completed = &completed;
                    let results = &results;
                    scope.spawn(move || {
                        if self.pool {
                            self.run_shard_supervised(
                                job, cmd, *start, chunk, results, completed, total, progress,
                            )
                        } else {
                            self.run_shard(cmd, *start, chunk, results, completed, total, progress)
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard drain thread never panics"))
                .collect()
        });

        let mut first_error: Option<ExecError> = None;
        for outcome in outcomes {
            if let Err(e) = outcome {
                keep_lowest_error(&mut first_error, e);
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        // Every shard drained clean, so every slot landed; concatenating
        // the table in flat order IS the in-process slot order.
        collect_results(results)
    }

    fn label(&self) -> String {
        if self.batch > 1 {
            format!(
                "sharded(shards={}, threads/worker={}, batch={})",
                self.shards, self.worker_threads, self.batch
            )
        } else {
            format!(
                "sharded(shards={}, threads/worker={})",
                self.shards, self.worker_threads
            )
        }
    }
}

// --- execution configuration --------------------------------------------

/// Which backend a [`Runner`](crate::Runner) dispatches portable jobs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum BackendSel {
    /// Scoped thread pool in this process.
    InProcess,
    /// Worker subprocesses; `worker_cmd: None` re-enters
    /// `current_exe --worker`.
    Sharded {
        shards: usize,
        worker_cmd: Option<Vec<String>>,
        fault: FaultPolicy,
        pool: bool,
        chaos: Option<ChaosConfig>,
    },
    /// Remote TCP peers (`<exe> --worker --listen <addr>`).
    Remote {
        hosts: Vec<String>,
        fault: FaultPolicy,
        pool: bool,
        chaos: Option<ChaosConfig>,
    },
    /// An experiment service daemon (`<exe> serve --listen <addr>`):
    /// dispatches become submit + fetch against its job queue and
    /// content-addressed result cache.
    Service { addr: String },
}

/// Resolved execution parameters, threaded through every experiment
/// driver: worker threads, shard count, remote hosts, and (for sharded
/// runs) the worker command.
///
/// `shards == 0` and empty `hosts` means "in-process"; `shards >= 1` fans
/// out to that many worker subprocesses, each running `threads` worker
/// threads; a non-empty `hosts` list (which takes precedence over shards)
/// dispatches to remote TCP workers instead; a `service` address (highest
/// precedence) routes dispatches through an experiment service daemon —
/// its job queue, single-flight dedup and content-addressed result cache.
/// Results are identical in every case — the setting only chooses *where*
/// (and, on a cache hit, whether) slots execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exec {
    /// Worker threads (per process — local, per subprocess, or per remote
    /// peer).
    pub threads: usize,
    /// Worker subprocesses; 0 = run in-process.
    pub shards: usize,
    /// Worker argv override for sharded runs (`None`:
    /// `current_exe --worker`).
    pub worker_cmd: Option<Vec<String>>,
    /// Remote worker addresses (`host:port`); non-empty selects the
    /// remote TCP backend.
    pub hosts: Vec<String>,
    /// Experiment service daemon address (`host:port`); `Some` selects
    /// the service backend (precedence over `hosts` and `shards`).
    pub service: Option<String>,
    /// Unified fault policy (retry budget, IO timeout, backoff,
    /// shrink-to-zero fallback) applied to the sharded and remote
    /// tiers.
    pub fault: FaultPolicy,
    /// Keep workers/peers warm in the process-global pool across
    /// dispatches (default `true`; `false` restores the legacy cold
    /// per-dispatch spawn/connect path).
    pub pool: bool,
    /// Deterministic chaos injection on worker links (testing only).
    pub chaos: Option<ChaosConfig>,
    /// Batch width: contiguous same-point slots each claim advances
    /// together on the batched SoA engine (`PortableJob::run_batch`).
    /// 1 = the classic slot-at-a-time path; result bytes are identical
    /// at any width, so this is purely a throughput knob.
    pub batch: usize,
}

impl Default for Exec {
    fn default() -> Self {
        Exec::in_process(crate::grid::default_threads())
    }
}

impl Exec {
    /// Execute on the in-process scoped thread pool.
    pub fn in_process(threads: usize) -> Self {
        Exec {
            threads: threads.max(1),
            shards: 0,
            worker_cmd: None,
            hosts: Vec::new(),
            service: None,
            fault: FaultPolicy::default(),
            pool: true,
            chaos: None,
            batch: 1,
        }
    }

    /// Fan portable jobs out to `shards` worker subprocesses of `threads`
    /// threads each.
    pub fn sharded(threads: usize, shards: usize) -> Self {
        Exec {
            threads: threads.max(1),
            shards: shards.max(1),
            worker_cmd: None,
            hosts: Vec::new(),
            service: None,
            fault: FaultPolicy::default(),
            pool: true,
            chaos: None,
            batch: 1,
        }
    }

    /// Dispatch portable jobs to remote TCP workers
    /// (`<exe> --worker --listen <addr>`), `threads` worker threads per
    /// peer.
    pub fn remote(threads: usize, hosts: Vec<String>) -> Self {
        assert!(
            !hosts.is_empty(),
            "remote execution needs at least one host"
        );
        Exec {
            threads: threads.max(1),
            shards: 0,
            worker_cmd: None,
            hosts,
            service: None,
            fault: FaultPolicy::default(),
            pool: true,
            chaos: None,
            batch: 1,
        }
    }

    /// Route portable jobs through an experiment service daemon
    /// (`<exe> serve --listen <addr>`): dispatches become submit + fetch
    /// against its bounded queue, single-flight dedup and two-tier result
    /// cache. `threads` is carried as an advisory hint; the daemon's own
    /// backend configuration governs execution resources.
    pub fn service(threads: usize, addr: String) -> Self {
        assert!(!addr.is_empty(), "service execution needs a daemon address");
        Exec {
            threads: threads.max(1),
            shards: 0,
            worker_cmd: None,
            hosts: Vec::new(),
            service: Some(addr),
            fault: FaultPolicy::default(),
            pool: true,
            chaos: None,
            batch: 1,
        }
    }

    /// Override the worker command line for sharded runs.
    pub fn with_worker_cmd(mut self, cmd: Vec<String>) -> Self {
        assert!(!cmd.is_empty(), "worker command must have an argv[0]");
        self.worker_cmd = Some(cmd);
        self
    }

    /// Replace the fault policy (retry budget, IO timeout, backoff,
    /// shrink-to-zero fallback).
    pub fn with_fault(mut self, fault: FaultPolicy) -> Self {
        self.fault = fault;
        self
    }

    /// Enable or disable the warm worker/peer pool.
    pub fn with_pool(mut self, pool: bool) -> Self {
        self.pool = pool;
        self
    }

    /// Arm (or disarm) deterministic chaos injection on worker links.
    pub fn with_chaos(mut self, chaos: Option<ChaosConfig>) -> Self {
        self.chaos = chaos;
        self
    }

    /// Set the batch width (clamped to ≥ 1): how many contiguous
    /// same-point replications each claim advances together on the batched
    /// SoA engine. Results are byte-identical at any width.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Whether portable jobs run in worker subprocesses.
    pub fn is_sharded(&self) -> bool {
        self.shards >= 1
    }

    /// Whether portable jobs run on remote TCP workers.
    pub fn is_remote(&self) -> bool {
        !self.hosts.is_empty()
    }

    /// Whether portable jobs are routed through a service daemon.
    pub fn is_service(&self) -> bool {
        self.service.is_some()
    }

    /// A [`Runner`](crate::Runner) on this configuration.
    pub fn runner(&self) -> crate::Runner {
        let mut r = crate::Runner::new(self.threads);
        r.batch = self.batch.max(1);
        if let Some(addr) = &self.service {
            r.backend = BackendSel::Service { addr: addr.clone() };
        } else if !self.hosts.is_empty() {
            r.backend = BackendSel::Remote {
                hosts: self.hosts.clone(),
                fault: self.fault,
                pool: self.pool,
                chaos: self.chaos,
            };
        } else if self.shards >= 1 {
            r.backend = BackendSel::Sharded {
                shards: self.shards,
                worker_cmd: self.worker_cmd.clone(),
                fault: self.fault,
                pool: self.pool,
                chaos: self.chaos,
            };
        }
        r
    }

    /// Short description for logs.
    pub fn label(&self) -> String {
        let batch = if self.batch > 1 {
            format!(", batch={}", self.batch)
        } else {
            String::new()
        };
        if let Some(addr) = &self.service {
            format!("service(addr={addr}, threads={}{batch})", self.threads)
        } else if !self.hosts.is_empty() {
            format!(
                "remote(hosts={}, threads={}{batch})",
                self.hosts.len(),
                self.threads
            )
        } else if self.shards >= 1 {
            format!(
                "sharded(shards={}, threads={}{batch})",
                self.shards, self.threads
            )
        } else {
            format!("in-process(threads={}{batch})", self.threads)
        }
    }
}

impl crate::Runner {
    /// The backend this runner dispatches portable jobs to.
    pub(crate) fn backend_impl(&self) -> Box<dyn ExecBackend> {
        match &self.backend {
            BackendSel::InProcess => {
                Box::new(InProcessBackend::new(self.threads).with_batch(self.batch))
            }
            BackendSel::Sharded {
                shards,
                worker_cmd,
                fault,
                pool,
                chaos,
            } => {
                let mut b = ShardedBackend::new(*shards, self.threads)
                    .with_batch(self.batch)
                    .with_fault(*fault)
                    .with_pool(*pool)
                    .with_chaos(*chaos);
                if let Some(cmd) = worker_cmd {
                    b = b.with_worker_cmd(cmd.clone());
                }
                Box::new(b)
            }
            BackendSel::Remote {
                hosts,
                fault,
                pool,
                chaos,
            } => Box::new(
                crate::remote::RemoteBackend::new(hosts.clone(), self.threads)
                    .with_batch(self.batch)
                    .with_fault(*fault)
                    .with_pool(*pool)
                    .with_chaos(*chaos),
            ),
            BackendSel::Service { addr } => Box::new(crate::service::client::ServiceBackend::new(
                addr.clone(),
                self.threads,
            )),
        }
    }

    /// Execute a manifest on this runner's backend (single dispatch site
    /// for fixed grids and adaptive rounds).
    pub(crate) fn dispatch(
        &self,
        job: &dyn PortableJob,
        manifest: &TaskManifest,
    ) -> Result<Vec<Vec<u8>>, ExecError> {
        // Establish the job's ambient trace context so slot/engine spans
        // recorded deep in the grid (and shipped into worker requests)
        // attribute to this manifest's deterministic trace ID.
        let tr = crate::trace::tracer();
        let trace = if tr.is_enabled() {
            crate::trace::trace_id_of(manifest)
        } else {
            0
        };
        let _ctx = crate::trace::enter(trace);
        let dispatch_started = tr.start();
        let out = self
            .backend_impl()
            .run_segments(job, manifest, self.progress.as_deref());
        tr.record(
            trace,
            crate::trace::name::DISPATCH,
            crate::trace::cat::SERVICE,
            0,
            dispatch_started,
        );
        if let Err(e) = &out {
            if let Some(path) = crate::trace::flight_record(trace, "dispatch", &e.to_string()) {
                eprintln!("[trace] job failed; flight recording at {}", path.display());
            }
        }
        out
    }

    /// Run a portable `(point × replication)` grid on the configured
    /// backend: `reps[p]` slots for point `p`, slot `(p, r)` seeded with
    /// `seed_of(p, r)`. Returns each point's encoded slot results in
    /// replication order — the portable analogue of
    /// [`Runner::grid`](crate::Runner::grid), byte-identical across
    /// backends and shard/thread counts.
    pub fn run_job(
        &self,
        job: &dyn PortableJob,
        reps: &[u64],
        seed_of: &dyn Fn(usize, u64) -> u64,
    ) -> Result<Vec<Vec<Vec<u8>>>, ExecError> {
        let segments: Vec<Segment> = reps
            .iter()
            .enumerate()
            .map(|(point, &n)| Segment {
                point,
                base_rep: 0,
                count: n as usize,
            })
            .collect();
        let manifest = TaskManifest::for_job(job, segments, seed_of);
        let flat = self.dispatch(job, &manifest)?;
        let mut flat = flat.into_iter();
        Ok(reps
            .iter()
            .map(|&n| flat.by_ref().take(n as usize).collect())
            .collect())
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::Runner;

    /// Trivial arithmetic job used by the unit tests (registered by the
    /// in-crate worker tests too).
    pub(crate) struct MulJob {
        pub factor: u64,
    }

    impl PortableJob for MulJob {
        fn kind(&self) -> &'static str {
            "test-mul"
        }
        fn encode_payload(&self, buf: &mut Vec<u8>) {
            wire::put_u64(buf, self.factor);
        }
        fn run_slot(&self, point: usize, rep: u64, seed: u64) -> Result<Vec<u8>, String> {
            let mut out = Vec::new();
            wire::put_u64(
                &mut out,
                self.factor * (point as u64 + 1) * 1000 + rep + seed,
            );
            Ok(out)
        }
    }

    pub(crate) fn decode_mul(payload: &[u8]) -> Result<Box<dyn PortableJob>, WireError> {
        let mut r = Reader::new(payload);
        let factor = r.get_u64()?;
        r.finish()?;
        Ok(Box::new(MulJob { factor }))
    }

    fn manifest_for(reps: &[u64]) -> TaskManifest {
        let job = MulJob { factor: 3 };
        let segments = reps
            .iter()
            .enumerate()
            .map(|(point, &n)| Segment {
                point,
                base_rep: 0,
                count: n as usize,
            })
            .collect();
        TaskManifest::for_job(&job, segments, &|p, r| (p as u64) << 32 | r)
    }

    #[test]
    fn manifest_round_trips_through_wire() {
        let m = manifest_for(&[2, 0, 5, 1]);
        let mut buf = Vec::new();
        m.encode_into(&mut buf);
        let mut r = Reader::new(&buf);
        let back = TaskManifest::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn manifest_split_covers_all_slots_contiguously() {
        let m = manifest_for(&[3, 0, 7, 1, 4]);
        let total = m.total_slots();
        assert_eq!(total, 15);
        for shards in [1, 2, 3, 4, 15, 99] {
            let chunks = m.split(shards);
            assert_eq!(chunks.len(), shards.min(total));
            let mut expect_start = 0usize;
            let mut all_slots = Vec::new();
            for (start, chunk) in &chunks {
                assert_eq!(*start, expect_start);
                chunk.validate().unwrap();
                assert!(chunk.total_slots() > 0, "empty chunk at {start}");
                expect_start += chunk.total_slots();
                all_slots.extend(chunk.slots());
            }
            assert_eq!(expect_start, total);
            assert_eq!(all_slots, m.slots(), "shards={shards}");
            // Near-equal sizes: max - min <= 1.
            let sizes: Vec<usize> = chunks.iter().map(|(_, c)| c.total_slots()).collect();
            let (mn, mx) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(mx - mn <= 1, "uneven split {sizes:?}");
        }
    }

    #[test]
    fn manifest_seed_table_is_per_slot() {
        let m = manifest_for(&[2, 1]);
        let slots = m.slots();
        assert_eq!(
            slots,
            vec![(0, 0, 0), (0, 1, 1), (1, 0, 1 << 32)]
                .into_iter()
                .map(|(p, r, s): (usize, u64, u64)| (p, r, s))
                .collect::<Vec<_>>()
        );
        let mut bad = m.clone();
        bad.seeds.pop();
        assert!(bad.validate().is_err());
    }

    #[test]
    fn in_process_backend_matches_direct_execution() {
        let job = MulJob { factor: 3 };
        let m = manifest_for(&[3, 2, 4]);
        for threads in [1, 2, 8] {
            let flat = InProcessBackend::new(threads)
                .run_segments(&job, &m, None)
                .unwrap();
            let expect: Vec<Vec<u8>> = m
                .slots()
                .iter()
                .map(|&(p, r, s)| job.run_slot(p, r, s).unwrap())
                .collect();
            assert_eq!(flat, expect, "threads={threads}");
        }
    }

    #[test]
    fn run_job_groups_per_point() {
        let job = MulJob { factor: 2 };
        let reps = [2u64, 0, 3];
        let out = Runner::new(4)
            .run_job(&job, &reps, &|p, r| (p as u64) * 10 + r)
            .unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].len(), 2);
        assert!(out[1].is_empty());
        assert_eq!(out[2].len(), 3);
        let mut r = Reader::new(&out[2][1]);
        // point 2, rep 1, seed 21: 2*3*1000 + 1 + 21.
        assert_eq!(r.get_u64().unwrap(), 6022);
    }

    struct FailAt {
        fail_flat: std::collections::BTreeSet<(usize, u64)>,
    }
    impl PortableJob for FailAt {
        fn kind(&self) -> &'static str {
            "test-fail"
        }
        fn encode_payload(&self, _buf: &mut Vec<u8>) {}
        fn run_slot(&self, point: usize, rep: u64, _seed: u64) -> Result<Vec<u8>, String> {
            if self.fail_flat.contains(&(point, rep)) {
                Err(format!("slot ({point},{rep}) refused"))
            } else {
                Ok(vec![1])
            }
        }
    }

    #[test]
    fn in_process_backend_reports_task_error_with_indices() {
        let job = FailAt {
            fail_flat: [(1usize, 2u64)].into_iter().collect(),
        };
        let m = TaskManifest::for_job(
            &job,
            vec![
                Segment {
                    point: 0,
                    base_rep: 0,
                    count: 2,
                },
                Segment {
                    point: 1,
                    base_rep: 0,
                    count: 4,
                },
            ],
            &|_, _| 0,
        );
        let err = InProcessBackend::new(1)
            .run_segments(&job, &m, None)
            .unwrap_err();
        match err {
            ExecError::Task {
                flat_index,
                point,
                replication,
                ..
            } => {
                assert_eq!((flat_index, point, replication), (4, 1, 2));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn registry_round_trip_and_unknown_kind() {
        let mut reg = JobRegistry::new();
        reg.register("test-mul", decode_mul);
        let job = MulJob { factor: 7 };
        let mut payload = Vec::new();
        job.encode_payload(&mut payload);
        let back = reg.decode("test-mul", &payload).unwrap();
        assert_eq!(back.kind(), "test-mul");
        assert_eq!(
            back.run_slot(0, 0, 0).unwrap(),
            job.run_slot(0, 0, 0).unwrap()
        );
        assert!(reg.decode("nope", &[]).is_err());
    }

    #[test]
    fn exec_config_builds_matching_runner() {
        let e = Exec::in_process(3);
        assert!(!e.is_sharded());
        assert_eq!(e.runner().threads(), 3);
        let s = Exec::sharded(2, 4);
        assert!(s.is_sharded());
        assert!(s.label().contains("shards=4"));
        // Runner built from a sharded Exec dispatches to ShardedBackend.
        assert!(s.runner().backend_impl().label().contains("sharded"));
    }

    #[test]
    fn sharded_backend_reports_dead_worker() {
        // `false` exits immediately without speaking the protocol: every
        // shard fails, and the lowest flat index (0) is reported.
        let job = MulJob { factor: 1 };
        let m = manifest_for(&[4, 4]);
        let backend = ShardedBackend::new(2, 1).with_worker_cmd(vec!["/bin/false".into()]);
        let err = backend.run_segments(&job, &m, None).unwrap_err();
        match err {
            ExecError::Worker { flat_index, .. } => assert_eq!(flat_index, 0),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn garbage_spewing_worker_is_killed_not_awaited() {
        // A "worker" that writes a bogus oversized frame length and then
        // stalls forever: the gather must kill it and report promptly
        // instead of blocking in wait() behind a process that never exits.
        let job = MulJob { factor: 1 };
        let m = manifest_for(&[2]);
        let backend = ShardedBackend::new(1, 1).with_worker_cmd(vec![
            "/bin/sh".into(),
            "-c".into(),
            r"printf '\377\377\377\377'; exec sleep 600".into(),
        ]);
        let t0 = std::time::Instant::now();
        let err = backend.run_segments(&job, &m, None).unwrap_err();
        assert!(matches!(err, ExecError::Worker { .. }), "{err:?}");
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(30),
            "gather hung on a stalled worker"
        );
    }

    #[test]
    fn sharded_backend_reports_unspawnable_worker() {
        let job = MulJob { factor: 1 };
        let m = manifest_for(&[2]);
        let backend =
            ShardedBackend::new(1, 1).with_worker_cmd(vec!["/nonexistent/worker-binary".into()]);
        let err = backend.run_segments(&job, &m, None).unwrap_err();
        assert!(matches!(err, ExecError::Worker { .. }), "{err:?}");
    }
}
