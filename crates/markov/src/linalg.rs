//! Minimal dense linear algebra: row-major matrices and LU decomposition
//! with partial pivoting. Self-contained (no external math crates) and
//! sized for the state spaces this workspace produces (≲ a few thousand).

use std::fmt;

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from nested slices (rows of equal length).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix-vector product `A·x`.
    #[allow(clippy::needless_range_loop)]
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            y[i] = row.iter().zip(x.iter()).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// Vector-matrix product `xᵀ·A` (row vector result).
    #[allow(clippy::needless_range_loop)]
    pub fn vec_mul(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows);
        let mut y = vec![0.0; self.cols];
        for i in 0..self.rows {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (yj, &aij) in y.iter_mut().zip(row.iter()) {
                *yj += xi * aij;
            }
        }
        y
    }

    /// Matrix product `A·B`.
    pub fn mul(&self, b: &Matrix) -> Matrix {
        assert_eq!(self.cols, b.rows);
        let mut c = Matrix::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..b.cols {
                    c[(i, j)] += aik * b[(k, j)];
                }
            }
        }
        c
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Solve `A·x = b` via LU decomposition with partial pivoting.
    /// Returns `None` if the matrix is (numerically) singular.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows);
        let n = self.rows;
        let mut lu = self.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();

        for k in 0..n {
            // Pivot: largest |value| in column k at/below row k.
            let mut pivot_row = k;
            let mut pivot_val = lu[perm[k] * n + k].abs();
            for r in (k + 1)..n {
                let v = lu[perm[r] * n + k].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-300 {
                return None;
            }
            perm.swap(k, pivot_row);
            let pk = perm[k];
            let pivot = lu[pk * n + k];
            for r in (k + 1)..n {
                let pr = perm[r];
                let factor = lu[pr * n + k] / pivot;
                lu[pr * n + k] = factor;
                for c in (k + 1)..n {
                    lu[pr * n + c] -= factor * lu[pk * n + c];
                }
            }
        }

        // Forward substitution (L has implicit unit diagonal).
        let mut y = vec![0.0; n];
        for i in 0..n {
            let pi = perm[i];
            let mut sum = b[pi];
            for j in 0..i {
                sum -= lu[pi * n + j] * y[j];
            }
            y[i] = sum;
        }
        // Back substitution.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let pi = perm[i];
            let mut sum = y[i];
            for j in (i + 1)..n {
                sum -= lu[pi * n + j] * x[j];
            }
            x[i] = sum / lu[pi * n + i];
        }
        Some(x)
    }

    /// Max-norm of `A·x - b` (solution residual check).
    pub fn residual(&self, x: &[f64], b: &[f64]) -> f64 {
        self.mul_vec(x)
            .iter()
            .zip(b.iter())
            .map(|(ax, bb)| (ax - bb).abs())
            .fold(0.0, f64::max)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.6}", self[(i, j)])?;
                if j + 1 < self.cols {
                    write!(f, " ")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve() {
        let a = Matrix::identity(3);
        let x = a.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn known_system() {
        // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!(a.residual(&x, &[5.0, 10.0]) < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(a.solve(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn mul_vec_and_vec_mul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
        assert_eq!(a.vec_mul(&[1.0, 1.0]), vec![4.0, 6.0]);
    }

    #[test]
    fn mul_and_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::identity(2);
        assert_eq!(a.mul(&b), a);
        let t = a.transpose();
        assert_eq!(t[(0, 1)], 3.0);
        assert_eq!(t[(1, 0)], 2.0);
    }

    #[test]
    fn larger_random_system_roundtrip() {
        // Deterministic pseudo-random SPD-ish system.
        let n = 30;
        let mut a = Matrix::zeros(n, n);
        let mut state = 12345u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            a[(i, i)] += 10.0; // diagonally dominant => nonsingular
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 * 0.1 - 1.0).collect();
        let b = a.mul_vec(&x_true);
        let x = a.solve(&b).unwrap();
        for (xs, xt) in x.iter().zip(x_true.iter()) {
            assert!((xs - xt).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn ragged_rows_rejected() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[1.0][..]]);
    }
}
