//! The three-way CPU comparison: discrete-event simulation vs the
//! supplementary-variable Markov model vs the Petri net.
//!
//! Regenerates Figs. 4–6 (state-time percentages vs Power-Down Threshold),
//! Figs. 7–9 (energy vs threshold) and Tables IV–VI (Δ-energy statistics)
//! for the three published Power-Up Delays (0.001 s, 0.3 s, 10 s).

use super::jobs::{decode_obs, CpuComparisonJob, RepOutput, CPU_COMPARISON_WATCH};
use crate::metrics::DeltaEnergyTable;
use markov::supplementary::{CpuMarkovParams, CpuPowerRates};
use serde::{Deserialize, Serialize};
use sim_runtime::{Exec, StoppingRule};

/// One sweep point of the comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuComparisonPoint {
    /// Power-Down Threshold (s).
    pub pdt: f64,
    /// DES `[standby, powerup, idle, active]` fractions.
    pub sim_probs: [f64; 4],
    /// Markov (Eqs. 1–4) fractions.
    pub markov_probs: [f64; 4],
    /// Petri-net fractions.
    pub petri_probs: [f64; 4],
    /// DES energy over the horizon (J).
    pub sim_energy_j: f64,
    /// Markov energy over the horizon (J).
    pub markov_energy_j: f64,
    /// Petri-net energy over the horizon (J).
    pub petri_energy_j: f64,
    /// Replications averaged into the two stochastic columns (fixed mode:
    /// the configured count; adaptive mode: whatever the rule spent).
    pub replications: u64,
    /// Whether the watched energy CIs settled (always `true` in fixed
    /// mode; in adaptive mode, `false` means the budget ran out first).
    pub converged: bool,
}

/// A full sweep at one Power-Up Delay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuComparison {
    /// The fixed Power-Up Delay (s).
    pub power_up_delay: f64,
    /// Simulated horizon (s).
    pub horizon: f64,
    /// Sweep points in threshold order.
    pub points: Vec<CpuComparisonPoint>,
}

/// Configuration of a comparison sweep.
#[derive(Debug, Clone)]
pub struct CpuComparisonConfig {
    /// Arrival rate λ (default 1/s).
    pub lambda: f64,
    /// Service rate μ (default 10/s — mean service 0.1 s, see DESIGN.md).
    pub mu: f64,
    /// Horizon (default 1000 s, Table II).
    pub horizon: f64,
    /// Independent replications averaged per point for the two stochastic
    /// methods (DES and Petri) when `rule` is `None`. The Markov column is
    /// a closed form and needs none. Default 8: enough to resolve the
    /// Markov model's systematic bias above Monte-Carlo noise at the
    /// paper's horizon.
    pub replications: u32,
    /// Base RNG seed.
    pub seed: u64,
    /// Execution backend (threads / shards / hosts) for the sweep.
    pub exec: Exec,
    /// Adaptive replication budget: when set, each threshold point runs
    /// replications until the 95 % CI of **both** stochastic energy
    /// curves settles — i.e. the stopping decision tracks whichever of
    /// the DES and Petri curves has the wider CI at that point (the
    /// Markov curve is exact and needs no watching). `None` runs the
    /// historical fixed `replications` per point, bit-exactly — the
    /// `repro --fixed-reps` escape hatch.
    pub rule: Option<StoppingRule>,
}

impl Default for CpuComparisonConfig {
    fn default() -> Self {
        CpuComparisonConfig {
            lambda: 1.0,
            mu: 10.0,
            horizon: 1000.0,
            replications: 8,
            seed: 0x5EED,
            exec: Exec::default(),
            rule: None,
        }
    }
}

/// Run the comparison for one Power-Up Delay over the given threshold grid.
///
/// The whole `(threshold × replication)` grid is described as a portable
/// [`CpuComparisonJob`] and scheduled on the configured executor backend —
/// a 21-point sweep with 8 replications is 168 flat slots, spread over the
/// in-process pool, `--shards` worker subprocesses or `--hosts` remote
/// peers — and per-point outputs fold in replication order, so results are
/// **byte-identical** at any thread, shard and host count. The Markov
/// column is a closed form and computed once per point.
///
/// With `cfg.rule` set, the replication budget is adaptive: each point
/// runs rounds until both stochastic energy curves' CIs settle (the
/// effective watch is whichever curve is wider — see
/// [`CPU_COMPARISON_WATCH`]). With `rule: None` the historical fixed
/// count (and its sum-then-divide fold) is reproduced exactly.
pub fn run_cpu_comparison(
    power_up_delay: f64,
    grid: &[f64],
    cfg: &CpuComparisonConfig,
) -> CpuComparison {
    let rates = CpuPowerRates::PXA271;
    let job = CpuComparisonJob {
        lambda: cfg.lambda,
        mu: cfg.mu,
        horizon: cfg.horizon,
        power_up_delay,
        seed: cfg.seed,
        grid: grid.to_vec(),
    };
    let seed_of = |_point: usize, r: u64| petri_core::rng::SimRng::child_seed(cfg.seed, r);
    // Markov closed form (exact, no replications).
    let markov = |pdt: f64| CpuMarkovParams {
        lambda: cfg.lambda,
        mu: cfg.mu,
        power_down_threshold: pdt,
        power_up_delay,
    };
    let point = |pdt: f64,
                 sim_probs: [f64; 4],
                 sim_energy_j: f64,
                 petri_probs: [f64; 4],
                 petri_energy_j: f64,
                 replications: u64,
                 converged: bool| {
        let mk = markov(pdt);
        let sol = mk.solve();
        CpuComparisonPoint {
            pdt,
            sim_probs,
            markov_probs: [sol.p_standby, sol.p_powerup, sol.p_idle, sol.p_active],
            petri_probs,
            sim_energy_j,
            markov_energy_j: mk.energy_for_duration(&rates, cfg.horizon),
            petri_energy_j,
            replications,
            converged,
        }
    };

    let points = match &cfg.rule {
        Some(rule) => {
            let adaptive = cfg
                .exec
                .runner()
                .run_adaptive_job(&job, grid.len(), rule, &CPU_COMPARISON_WATCH, &seed_of)
                .unwrap_or_else(|e| panic!("adaptive CPU comparison failed: {e}"));
            grid.iter()
                .zip(adaptive)
                .map(|(&pdt, p)| {
                    // Welford means of the per-replication observations,
                    // folded in index order by the adaptive runner.
                    point(
                        pdt,
                        std::array::from_fn(|i| p.stats[i].mean()),
                        p.stats[4].mean(),
                        std::array::from_fn(|i| p.stats[5 + i].mean()),
                        p.stats[9].mean(),
                        p.replications,
                        p.converged,
                    )
                })
                .collect()
        }
        None => {
            let reps = cfg.replications.max(1);
            let reps_per_point = vec![reps as u64; grid.len()];
            let per_point = cfg
                .exec
                .runner()
                .run_job(&job, &reps_per_point, &seed_of)
                .unwrap_or_else(|e| panic!("CPU comparison grid failed: {e}"));
            let n = reps as f64;
            grid.iter()
                .zip(per_point)
                .map(|(&pdt, slots)| {
                    // Replication-index-ordered sum-then-divide fold: the
                    // historical aggregation, reproduced bit for bit.
                    let mut sim_probs = [0.0f64; 4];
                    let mut sim_energy_j = 0.0;
                    let mut petri_probs = [0.0f64; 4];
                    let mut petri_energy_j = 0.0;
                    for bytes in &slots {
                        let obs = decode_obs(bytes, "cpu-comparison slot")
                            .unwrap_or_else(|e| panic!("{e}"));
                        let o = RepOutput::from_obs(&obs).unwrap_or_else(|e| panic!("{e}"));
                        for (acc, p) in sim_probs.iter_mut().zip(o.sim_probs) {
                            *acc += p;
                        }
                        sim_energy_j += o.sim_energy_j;
                        for (acc, p) in petri_probs.iter_mut().zip(o.petri_probs) {
                            *acc += p;
                        }
                        petri_energy_j += o.petri_energy_j;
                    }
                    sim_probs.iter_mut().for_each(|p| *p /= n);
                    petri_probs.iter_mut().for_each(|p| *p /= n);
                    point(
                        pdt,
                        sim_probs,
                        sim_energy_j / n,
                        petri_probs,
                        petri_energy_j / n,
                        reps as u64,
                        true,
                    )
                })
                .collect()
        }
    };
    CpuComparison {
        power_up_delay,
        horizon: cfg.horizon,
        points,
    }
}

impl CpuComparison {
    /// The Δ-energy statistics table (Tables IV–VI).
    pub fn delta_table(&self) -> DeltaEnergyTable {
        let sim: Vec<f64> = self.points.iter().map(|p| p.sim_energy_j).collect();
        let markov: Vec<f64> = self.points.iter().map(|p| p.markov_energy_j).collect();
        let petri: Vec<f64> = self.points.iter().map(|p| p.petri_energy_j).collect();
        DeltaEnergyTable::from_curves(&sim, &markov, &petri)
    }

    /// Energy curves `(pdt, sim, markov, petri)` for Figs. 7–9.
    pub fn energy_rows(&self) -> Vec<(f64, f64, f64, f64)> {
        self.points
            .iter()
            .map(|p| (p.pdt, p.sim_energy_j, p.markov_energy_j, p.petri_energy_j))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::fig4_9_pdt_grid;

    fn quick_cfg() -> CpuComparisonConfig {
        CpuComparisonConfig {
            horizon: 2000.0,
            exec: Exec::in_process(2),
            ..Default::default()
        }
    }

    #[test]
    fn small_pud_all_three_agree() {
        // Fig. 4/7 regime: at D = 0.001 s the Markov closed form is nearly
        // exact, so all three methods coincide.
        let grid = [0.001, 0.25, 0.5, 1.0];
        let c = run_cpu_comparison(0.001, &grid, &quick_cfg());
        for p in &c.points {
            for i in 0..4 {
                assert!(
                    (p.sim_probs[i] - p.markov_probs[i]).abs() < 0.03,
                    "pdt={} state {i}: sim {} vs markov {}",
                    p.pdt,
                    p.sim_probs[i],
                    p.markov_probs[i]
                );
                assert!(
                    (p.sim_probs[i] - p.petri_probs[i]).abs() < 0.03,
                    "pdt={} state {i}: sim {} vs petri {}",
                    p.pdt,
                    p.sim_probs[i],
                    p.petri_probs[i]
                );
            }
        }
    }

    #[test]
    fn large_pud_markov_fails_petri_tracks() {
        // Fig. 6/9 regime (D = 10 s): the Markov model "completely fails";
        // the Petri net stays "in lock step with the simulator".
        let grid = [0.001, 0.5, 1.0];
        let c = run_cpu_comparison(10.0, &grid, &quick_cfg());
        let t = c.delta_table();
        assert!(
            t.sim_petri.avg < t.sim_markov.avg / 3.0,
            "petri avg Δ {} must be far below markov avg Δ {}",
            t.sim_petri.avg,
            t.sim_markov.avg
        );
    }

    #[test]
    fn energy_rises_with_threshold_at_small_pud() {
        // Fig. 7's shape: more idle time = more energy when waking is cheap.
        let grid = [0.001, 0.5, 1.0];
        let c = run_cpu_comparison(0.001, &grid, &quick_cfg());
        let rows = c.energy_rows();
        assert!(rows[2].1 > rows[0].1, "sim energy must rise: {rows:?}");
        assert!(rows[2].2 > rows[0].2, "markov energy must rise");
        assert!(rows[2].3 > rows[0].3, "petri energy must rise");
    }

    #[test]
    fn energy_falls_with_threshold_at_huge_pud() {
        // Fig. 9's inversion: at D = 10 s, larger thresholds avoid ruinous
        // wake-ups, so energy *decreases* with the threshold.
        let grid = [0.001, 0.5, 1.0];
        let c = run_cpu_comparison(10.0, &grid, &quick_cfg());
        let rows = c.energy_rows();
        assert!(
            rows[2].1 < rows[0].1,
            "sim energy must fall at D=10: {rows:?}"
        );
    }

    #[test]
    fn adaptive_rule_spends_replications_per_point_deterministically() {
        let grid = [0.001, 0.25, 1.0];
        let cfg = CpuComparisonConfig {
            horizon: 400.0,
            rule: Some(StoppingRule::relative(0.05).with_budget(3, 24, 3)),
            ..quick_cfg()
        };
        let c = run_cpu_comparison(0.3, &grid, &cfg);
        for p in &c.points {
            assert!(
                (3..=24).contains(&p.replications),
                "budget out of range: {p:?}"
            );
            assert!(p.sim_energy_j > 0.0 && p.petri_energy_j > 0.0);
        }
        // Bit-identical at any thread count, budget decisions included.
        let mut cfg1 = cfg.clone();
        cfg1.exec = Exec::in_process(1);
        assert_eq!(c, run_cpu_comparison(0.3, &grid, &cfg1));
    }

    #[test]
    fn fixed_mode_is_unchanged_by_the_rule_field_default() {
        // `rule: None` must reproduce the historical fixed fold exactly —
        // the `--fixed-reps` contract.
        let grid = [0.001, 0.5];
        let cfg = CpuComparisonConfig {
            horizon: 300.0,
            ..quick_cfg()
        };
        let a = run_cpu_comparison(0.3, &grid, &cfg);
        let b = run_cpu_comparison(0.3, &grid, &cfg);
        assert_eq!(a, b);
        for p in &a.points {
            assert_eq!(p.replications, cfg.replications as u64);
            assert!(p.converged);
        }
    }

    #[test]
    fn full_grid_has_21_points() {
        let grid = fig4_9_pdt_grid();
        let cfg = CpuComparisonConfig {
            horizon: 200.0,
            ..quick_cfg()
        };
        let c = run_cpu_comparison(0.3, &grid, &cfg);
        assert_eq!(c.points.len(), 21);
        // Thresholds preserved in order.
        for (p, g) in c.points.iter().zip(grid.iter()) {
            assert_eq!(p.pdt, *g);
        }
    }
}
