//! Coverage for the adaptive-budget exhaustion path: when a
//! `StoppingRule` hits `max_replications` without its watched CIs
//! settling, the `converged = false` flag must propagate out of the
//! runtime and into every driver's row type — `CpuComparisonPoint`,
//! `ValidationRow`, `NodeSweepPoint` — and into the rendered budget
//! summary, so an under-resolved sweep is loud instead of silently
//! passing as converged.
//!
//! The rule used here is deliberately unsatisfiable (a 1e-12 relative CI
//! target on stochastic energy estimates) with a tiny cap, so every
//! stochastic point must exhaust its budget deterministically.

use des::Workload;
use sim_runtime::{Exec, StoppingRule};
use wsn::experiments::cpu_comparison::{run_cpu_comparison, CpuComparisonConfig};
use wsn::experiments::node_energy::{run_node_sweep, NodeSweepConfig};
use wsn::experiments::validation::run_validation;
use wsn::report::render_budget_summary;

/// A rule no stochastic estimate can satisfy, capped at 4 replications.
fn impossible_rule() -> StoppingRule {
    StoppingRule::relative(1e-12).with_budget(2, 4, 2)
}

#[test]
fn cpu_comparison_points_report_budget_exhaustion() {
    let grid = [0.001, 0.3, 1.0];
    let c = run_cpu_comparison(
        0.3,
        &grid,
        &CpuComparisonConfig {
            horizon: 120.0,
            exec: Exec::in_process(2),
            rule: Some(impossible_rule()),
            ..Default::default()
        },
    );
    assert_eq!(c.points.len(), grid.len());
    for p in &c.points {
        assert!(!p.converged, "unsatisfiable rule must not converge: {p:?}");
        assert_eq!(
            p.replications, 4,
            "cap must be spent exactly before giving up: {p:?}"
        );
        // The estimates themselves are still real (means over the cap).
        assert!(p.sim_energy_j > 0.0 && p.petri_energy_j > 0.0);
    }
}

#[test]
fn validation_rows_report_budget_exhaustion() {
    let rule = impossible_rule();
    let rows = run_validation(
        Workload::Open { rate: 1.0 },
        &[0.01, 1.0],
        100.0,
        7,
        &Exec::in_process(1),
        Some(&rule),
    );
    for r in &rows {
        assert!(!r.converged, "{r:?}");
        assert_eq!(r.replications, 4, "{r:?}");
    }
    // The closed sweep is exact single-run rows: always converged, so the
    // flag genuinely distinguishes the two regimes.
    let closed = run_validation(
        Workload::Closed { interval: 1.0 },
        &[0.01, 1.0],
        100.0,
        7,
        &Exec::in_process(1),
        None,
    );
    assert!(closed.iter().all(|r| r.converged));
}

#[test]
fn node_sweep_points_report_budget_exhaustion() {
    let sweep = run_node_sweep(
        Workload::Open { rate: 1.0 },
        &[1e-9, 0.1],
        &NodeSweepConfig {
            horizon: 80.0,
            exec: Exec::in_process(1),
            open_rule: Some(impossible_rule()),
            ..Default::default()
        },
    );
    for p in &sweep.points {
        assert!(!p.converged, "pdt={}: must hit the cap", p.pdt);
        assert_eq!(p.replications, 4);
    }
}

#[test]
fn budget_summary_renders_cap_hits_and_fixed_mode() {
    let rule = impossible_rule();
    let c = run_cpu_comparison(
        0.3,
        &[0.001, 1.0],
        &CpuComparisonConfig {
            horizon: 100.0,
            exec: Exec::in_process(1),
            rule: Some(rule),
            ..Default::default()
        },
    );
    let line = render_budget_summary(
        c.points.iter().map(|p| (p.replications, p.converged)),
        Some(&rule),
        "the widest energy curve",
    );
    assert!(
        line.contains("2 point(s) hit the cap"),
        "every point exhausted the budget, and the report must say so: {line}"
    );
    assert!(line.contains("8 replications over 2 points"), "{line}");
    assert!(
        line.contains("2..4"),
        "the budget bounds belong in the line: {line}"
    );

    // A satisfiable rule reports zero cap hits.
    let easy = StoppingRule::relative(0.9).with_budget(2, 8, 2);
    let c = run_cpu_comparison(
        0.3,
        &[0.001],
        &CpuComparisonConfig {
            horizon: 100.0,
            exec: Exec::in_process(1),
            rule: Some(easy),
            ..Default::default()
        },
    );
    assert!(c.points.iter().all(|p| p.converged));
    let line = render_budget_summary(
        c.points.iter().map(|p| (p.replications, p.converged)),
        Some(&easy),
        "the widest energy curve",
    );
    assert!(line.contains("0 point(s) hit the cap"), "{line}");

    // Fixed mode renders the escape-hatch line.
    let line = render_budget_summary([(8u64, true), (8, true)].into_iter(), None, "anything");
    assert!(
        line.contains("fixed budget: 16 replications over 2 points"),
        "{line}"
    );
    assert!(line.contains("--fixed-reps"), "{line}");
}
