//! Engine micro-benchmarks: event throughput of the petri-core simulator.
//!
//! Not a paper artifact, but the quantity that bounds every experiment's
//! wall-clock (the paper laments TimeNET taking "an hour to stabilize";
//! these benches document how far from that we are).
//!
//! Every net is benchmarked on both engines — `engine/*` runs the
//! incremental core, `engine_reference/*` the seed's non-incremental core
//! (`Simulator::run_reference`) — from one binary, so before/after numbers
//! share codegen flags and machine conditions. The differential test suite
//! proves the trajectories are bit-identical, so any delta is pure engine
//! overhead. NOTE: on drifting shared-CPU hosts prefer the paired
//! `bench --bin engine_ab` driver for the headline ratios.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use petri_core::prelude::*;

/// M/M/1: the minimal open stochastic net.
fn mm1_net() -> Net {
    let mut b = NetBuilder::new("mm1");
    let q = b.place("q").build();
    b.transition("arrive", Timing::exponential(1.0))
        .output(q, 1)
        .build();
    b.transition("serve", Timing::exponential(2.0))
        .input(q, 1)
        .build();
    b.build().unwrap()
}

/// A tandem of `n` exponential stages (tests the incremental enabling
/// index as net size grows).
fn tandem_net(n: usize) -> Net {
    let mut b = NetBuilder::new("tandem");
    let places: Vec<_> = (0..n).map(|i| b.place(format!("p{i}")).build()).collect();
    b.transition("source", Timing::exponential(1.0))
        .output(places[0], 1)
        .build();
    for i in 0..n - 1 {
        b.transition(format!("t{i}"), Timing::exponential(2.0))
            .input(places[i], 1)
            .output(places[i + 1], 1)
            .build();
    }
    b.transition("sink", Timing::exponential(2.0))
        .input(places[n - 1], 1)
        .build();
    b.build().unwrap()
}

/// Group prefix for an engine selector.
fn prefix(reference: bool) -> &'static str {
    if reference {
        "engine_reference"
    } else {
        "engine"
    }
}

/// One run of whichever engine the benchmark targets.
fn run_once(sim: &Simulator<'_>, seed: u64, reference: bool) -> petri_core::sim::SimOutput {
    if reference {
        sim.run_reference(seed).unwrap()
    } else {
        sim.run(seed).unwrap()
    }
}

fn bench_mm1(c: &mut Criterion, reference: bool) {
    let net = mm1_net();
    let sim = Simulator::new(&net, SimConfig::for_horizon(10_000.0));
    // ~30k firings per run at these rates.
    let mut g = c.benchmark_group(format!("{}/mm1", prefix(reference)));
    g.throughput(Throughput::Elements(30_000));
    g.bench_function("10k_seconds", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run_once(&sim, seed, reference)
        })
    });
    g.finish();
}

fn bench_tandem(c: &mut Criterion, reference: bool) {
    let mut g = c.benchmark_group(format!("{}/tandem", prefix(reference)));
    for n in [4usize, 16, 64] {
        let net = tandem_net(n);
        let sim = Simulator::new(&net, SimConfig::for_horizon(1000.0));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_once(&sim, seed, reference)
            })
        });
    }
    g.finish();
}

fn bench_cpu_net_events(c: &mut Criterion, reference: bool) {
    let model = wsn::build_cpu_model(&wsn::CpuModelParams::paper_defaults(0.1, 0.3));
    let sim = Simulator::new(&model.net, SimConfig::for_horizon(1000.0));
    c.bench_function(&format!("{}/fig3_cpu_1000s", prefix(reference)), |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run_once(&sim, seed, reference)
        })
    });
}

fn all_incremental(c: &mut Criterion) {
    bench_mm1(c, false);
    bench_tandem(c, false);
    bench_cpu_net_events(c, false);
}

fn all_reference(c: &mut Criterion) {
    bench_mm1(c, true);
    bench_tandem(c, true);
    bench_cpu_net_events(c, true);
}

criterion_group! {
    name = benches;
    // Short windows: these benches document magnitudes, not micro-regressions.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(20);
    targets = all_incremental, all_reference
}
criterion_main!(benches);
