//! Direct-threaded execution of lowered stepping programs.
//!
//! [`LoweredEngine`] is the default executor behind both `Simulator::run`
//! (one lane) and `BatchSimulator::run` (many lanes): every lane advances
//! to completion in [`Lane::run`], a single fused loop that executes the
//! net's [`LoweredNet`] micro-op program. The scalar and batched hot paths
//! are therefore *the same code* — there is no separate scalar firing
//! logic to keep in sync (the interpreter survives as the differential
//! oracle and A/B baseline, not as a second production path).
//!
//! Two levers distinguish this from the interpreter's batch engine:
//!
//! * **Per-lane local slices.** Lane state is carved out of the SoA arenas
//!   once per lane into a [`Lane`] of `&mut [..]` slices of length
//!   `nt`/`nc`, so the hot loop indexes `fire_at[ti]` instead of
//!   `self.fire_at[l * nt + ti]` — no per-access base+offset arithmetic,
//!   and the slice lengths give the optimizer bounds it can hoist.
//! * **Monomorphized ops.** The per-event work is a walk over flat op
//!   words with parameters inline; distribution sampling, memory-policy
//!   handling, scan-vs-heap scheduling and colored-vs-dense firing are all
//!   resolved per net, not per event ([`Lane::run`] is instantiated per
//!   `(SCAN, GEN)` const-generic pair, selected once in
//!   [`LoweredEngine::run_all`]).
//!
//! # Determinism
//!
//! The op program replays the interpreter's exact operation sequence: same
//! RNG draw order, same comparison order, same error precedence, same
//! event order (the scan scheduler's min-`(fire_at, tid)` is provably the
//! heap's valid-pop order). Outputs are **bit-identical** to
//! `Simulator::run_interp` and `run_reference` at every batch width —
//! `tests/lowered_differential.rs` and the CI repro byte-comparison prove
//! it, and debug builds additionally shadow the first lowered run per
//! simulator with the interpreter plus cross-check the incremental
//! enabling state against full rescans on every visited transition.

use super::engine::{
    effective_token_limit, heap_less, CompiledSim, HeapEntry, SimConfig, SimOutput, Simulator,
    TimingKind, NOT_QUEUED, ST_ENABLED, ST_RESAMPLE, ST_SCHEDULED,
};
use super::lower::{
    dec_f64, IntegOp, LoweredNet, LoweredReward, CNT_INV, HDR_GENERIC, MOV_ADD, OP_C_FGE, OP_C_FLT,
    OP_C_GUARD, OP_HOOK, OP_RA_DET, OP_RA_ERL, OP_RA_EXP, OP_RA_UNI, OP_RE_DET, OP_RE_ERL,
    OP_RE_EXP, OP_RE_UNI, OP_RS_DET, OP_RS_ERL, OP_RS_EXP, OP_RS_UNI, RECHECK_STRIDE,
    TID_IMMEDIATE,
};
use super::trace::TraceBuffer;
use crate::error::SimError;
use crate::expr::CompiledExpr;
use crate::ids::{PlaceId, TransitionId};
use crate::marking::Marking;
use crate::net::Net;
use crate::rng::SimRng;
use crate::timing::MemoryPolicy;
use crate::token::Color;

/// Run one replication on the lowered engine (the scalar entry point).
pub(super) fn run_single(sim: &Simulator<'_>, seed: u64) -> Result<SimOutput, SimError> {
    LoweredEngine::new(sim, &[seed], &[sim.cfg.end_time])
        .run_all()
        .pop()
        .expect("one lane in, one result out")
}

/// Assert two engine results are bit-identical (debug oracle).
#[cfg(debug_assertions)]
pub(super) fn debug_assert_outputs_eq(
    lowered: &Result<SimOutput, SimError>,
    interp: &Result<SimOutput, SimError>,
) {
    match (lowered, interp) {
        (Ok(a), Ok(b)) => {
            debug_assert_eq!(a.rewards, b.rewards, "lowered rewards diverged");
            debug_assert_eq!(a.firing_counts, b.firing_counts, "firing counts diverged");
            debug_assert_eq!(a.final_marking, b.final_marking, "final marking diverged");
            debug_assert_eq!(a.trace, b.trace, "trace diverged");
            debug_assert_eq!(a.trace_dropped, b.trace_dropped);
            debug_assert_eq!(a.observed_time, b.observed_time);
        }
        (Err(a), Err(b)) => debug_assert_eq!(a, b, "lowered error diverged"),
        (a, b) => panic!("lowered engine diverged from the interpreter: {a:?} vs {b:?}"),
    }
}

// ---------------------------------------------------------------------------
// 4-ary lazy-deletion heap (free functions over one lane's heap)
// ---------------------------------------------------------------------------

#[inline]
fn heap_push(heap: &mut Vec<HeapEntry>, e: HeapEntry) {
    let mut i = heap.len();
    heap.push(e);
    while i > 0 {
        let parent = (i - 1) / 4;
        if heap_less(&e, &heap[parent]) {
            heap[i] = heap[parent];
            i = parent;
        } else {
            break;
        }
    }
    heap[i] = e;
}

fn heap_pop(heap: &mut Vec<HeapEntry>) -> Option<HeapEntry> {
    let top = *heap.first()?;
    let last = heap.pop().expect("non-empty");
    let n = heap.len();
    if n == 0 {
        return Some(top);
    }
    let mut i = 0;
    loop {
        let c0 = 4 * i + 1;
        if c0 >= n {
            break;
        }
        let mut smallest = c0;
        let cend = (c0 + 4).min(n);
        for c in c0 + 1..cend {
            if heap_less(&heap[c], &heap[smallest]) {
                smallest = c;
            }
        }
        if heap_less(&heap[smallest], &last) {
            heap[i] = heap[smallest];
            i = smallest;
        } else {
            break;
        }
    }
    heap[i] = last;
    Some(top)
}

// ---------------------------------------------------------------------------
// Shared (immutable) context + one lane's mutable state
// ---------------------------------------------------------------------------

/// Immutable per-run context shared by all lanes, flattened so the hot
/// loop reads program slices and config scalars without chasing
/// `LoweredNet`/`SimConfig` pointers per event.
struct Shared<'x> {
    /// The op arena (fire sections + recheck sections).
    ops: &'x [u32],
    /// Section offset table (`2 * nt + 1` entries).
    sec: &'x [u32],
    /// Startup recheck program.
    init_ops: &'x [u32],
    /// Reward integration program.
    integ: &'x [IntegOp],
    /// The dominant "one time-averaged place count" reward shape,
    /// pre-matched so per-event integration is a single multiply-add.
    integ1: Option<(u32, u32)>,
    cs: &'x CompiledSim,
    net: &'x Net,
    cfg: &'x SimConfig,
    pred_progs: &'x [Option<CompiledExpr>],
    max_tokens: usize,
    warmup: f64,
    max_zero: u64,
    trace_on: bool,
    /// `REPRO_PROFILE` armed: wrap every fire section in a clock read.
    profile_on: bool,
}

impl<'x> Shared<'x> {
    /// Bounds of transition `ti`'s fire and recheck sections in
    /// [`Shared::ops`] — `(fire_start, fire_end, recheck_end)`, fetched
    /// with one bounds-checked access per fired event.
    #[inline(always)]
    fn sections(&self, ti: usize) -> (usize, usize, usize) {
        let s = &self.sec[2 * ti..2 * ti + 3];
        (s[0] as usize, s[1] as usize, s[2] as usize)
    }
}

/// One lane's state, carved out of the engine's SoA arenas as local
/// slices: the whole hot loop runs against these (plus the clock, RNG and
/// zero-time counter held by value) and scalars are written back when the
/// lane retires.
struct Lane<'x> {
    rng: SimRng,
    now: f64,
    zero: u64,
    imm_len: u32,
    marking: &'x mut Marking,
    heap: &'x mut Vec<HeapEntry>,
    fire_at: &'x mut [f64],
    gen: &'x mut [u64],
    remaining: &'x mut [f64],
    sched_state: &'x mut [u8],
    cond_true: &'x mut [bool],
    unsat: &'x mut [u32],
    enabled_imm: &'x mut [u32],
    imm_pos: &'x mut [u32],
    firing_counts: &'x mut [u64],
    acc_f: &'x mut [f64],
    acc_c: &'x mut [u64],
    profile_ns: &'x mut [u64],
    trace: &'x mut TraceBuffer,
    guard_scratch: &'x mut Vec<i64>,
    consumed: &'x mut Vec<Color>,
    consumed_offsets: &'x mut Vec<usize>,
    candidates: &'x mut Vec<u32>,
    weights: &'x mut Vec<f64>,
}

impl<'x> Lane<'x> {
    // ---- debug oracles: the interpreter's rescan cross-checks ----

    #[cfg(debug_assertions)]
    fn oracle_sched(&self, sh: &Shared<'_>, t2: usize) {
        let t = sh.net.transition(TransitionId(t2 as u32));
        debug_assert_eq!(
            self.unsat[t2] == 0,
            is_enabled_slow(self.marking, t),
            "lowered enabled bit diverged from rescan for {:?}",
            t.name
        );
        let s = self.sched_state[t2];
        debug_assert_eq!(s & ST_ENABLED != 0, self.unsat[t2] == 0);
        debug_assert!(s & ST_SCHEDULED != 0 || self.fire_at[t2] == f64::INFINITY);
    }

    #[cfg(not(debug_assertions))]
    #[inline(always)]
    fn oracle_sched(&self, _sh: &Shared<'_>, _t2: usize) {}

    #[cfg(debug_assertions)]
    fn oracle_imm_index(&self, sh: &Shared<'_>) {
        for &tid in &sh.cs.immediates {
            let in_index = self.imm_pos[tid.index()] != NOT_QUEUED;
            let enabled = is_enabled_slow(self.marking, sh.net.transition(tid));
            debug_assert_eq!(
                in_index,
                enabled,
                "lowered enabled-immediates index diverged for {:?}",
                sh.net.transition(tid).name
            );
        }
    }

    #[cfg(not(debug_assertions))]
    #[inline(always)]
    fn oracle_imm_index(&self, _sh: &Shared<'_>) {}

    // ---- enabled-immediates index ----

    #[inline(always)]
    fn imm_insert(&mut self, tid: u32) {
        debug_assert_eq!(self.imm_pos[tid as usize], NOT_QUEUED);
        let len = self.imm_len;
        self.imm_pos[tid as usize] = len;
        self.enabled_imm[len as usize] = tid;
        self.imm_len = len + 1;
    }

    #[inline(always)]
    fn imm_remove(&mut self, tid: u32) {
        let i = self.imm_pos[tid as usize];
        debug_assert_ne!(i, NOT_QUEUED);
        self.imm_pos[tid as usize] = NOT_QUEUED;
        let last = self.imm_len - 1;
        self.imm_len = last;
        let moved = self.enabled_imm[last as usize];
        if i < last {
            self.enabled_imm[i as usize] = moved;
            self.imm_pos[moved as usize] = i;
        }
    }

    /// Apply a condition truth flip to the watched transition's unsat
    /// counter, enabled bit, and (for immediates) the enabled index.
    #[inline(always)]
    fn apply_flip(&mut self, tidflags: u32, now_true: bool) {
        let ti = (tidflags & !TID_IMMEDIATE) as usize;
        let is_imm = tidflags & TID_IMMEDIATE != 0;
        if now_true {
            self.unsat[ti] -= 1;
            if self.unsat[ti] == 0 {
                self.sched_state[ti] |= ST_ENABLED;
                if is_imm {
                    self.imm_insert(ti as u32);
                }
            }
        } else {
            if self.unsat[ti] == 0 {
                self.sched_state[ti] &= !ST_ENABLED;
                if is_imm {
                    self.imm_remove(ti as u32);
                }
            }
            self.unsat[ti] += 1;
        }
    }

    // ---- scheduling ----

    #[inline(always)]
    fn schedule<const SCAN: bool>(&mut self, ti: usize, at: f64) {
        self.fire_at[ti] = at;
        self.sched_state[ti] |= ST_SCHEDULED;
        if !SCAN {
            self.gen[ti] += 1;
            let e = HeapEntry {
                time: at,
                tid: ti as u32,
                gen: self.gen[ti],
            };
            heap_push(self.heap, e);
        }
    }

    #[inline(always)]
    fn cancel<const SCAN: bool>(&mut self, ti: usize) -> f64 {
        debug_assert_ne!(self.sched_state[ti] & ST_SCHEDULED, 0);
        if !SCAN {
            self.gen[ti] += 1;
        }
        self.sched_state[ti] &= !ST_SCHEDULED;
        let at = self.fire_at[ti];
        self.fire_at[ti] = f64::INFINITY;
        at
    }

    /// Next event: scan the stripe (small nets) or surface the next valid
    /// heap entry (stale entries die here). Neither consumes the event.
    #[inline(always)]
    fn next_event<const SCAN: bool>(&mut self) -> Option<(f64, u32)> {
        if SCAN {
            // Unscheduled clocks hold +inf, so the scan needs no sentinel
            // test — one plain `<` per slot. Strict `<` keeps the lowest
            // tid on ties, matching the heap's `(time, tid)` order (no
            // reachable schedule time is NaN or -0.0, so `<` agrees with
            // `total_cmp` here). An all-idle lane surfaces `(inf, 0)`,
            // which the caller's `time < end` guard retires.
            let mut best_t = f64::INFINITY;
            let mut best_ti = 0u32;
            for (ti, &at) in self.fire_at.iter().enumerate() {
                if at < best_t {
                    best_t = at;
                    best_ti = ti as u32;
                }
            }
            Some((best_t, best_ti))
        } else {
            loop {
                match self.heap.first() {
                    None => break None,
                    Some(e) => {
                        if e.gen == self.gen[e.tid as usize] {
                            break Some((e.time, e.tid));
                        }
                        heap_pop(self.heap);
                    }
                }
            }
        }
    }

    // ---- fire section execution ----

    /// One token move: plain subtract, or plain add with the overflow
    /// check (the only error a dense fire can raise).
    #[inline(always)]
    fn exec_mov(&mut self, sh: &Shared<'_>, pw: u32, m: u32) -> Result<(), SimError> {
        if pw & MOV_ADD == 0 {
            self.marking.sub_plain(pw, m);
        } else {
            let p = pw & !MOV_ADD;
            let c = self.marking.add_plain(p, m);
            if c as usize > sh.max_tokens {
                return Err(SimError::TokenOverflow {
                    place: p as usize,
                    time: self.now,
                    limit: sh.cfg.max_tokens_per_place,
                });
            }
        }
        Ok(())
    }

    /// One count-condition record: re-evaluate the threshold and apply
    /// the flip if the truth value changed.
    #[inline(always)]
    fn exec_cnt(&mut self, pw: u32, need: u32, ci: usize, tf: u32) {
        let now_true = (self.marking.count_raw(pw & !CNT_INV) >= need) == (pw & CNT_INV == 0);
        if now_true != self.cond_true[ci] {
            self.cond_true[ci] = now_true;
            self.apply_flip(tf, now_true);
        }
    }

    /// Execute transition `ti`'s fire section, attributing its wall time
    /// when the profiler is armed. The disarmed path is a single
    /// well-predicted branch in front of [`Lane::exec_fire_inner`]; the
    /// armed path reads the monotonic clock twice and folds the delta
    /// into the lane's per-transition nanosecond stripe (flushed to
    /// [`super::profile`] when the lane retires).
    #[inline(always)]
    fn exec_fire<const GEN: bool>(
        &mut self,
        sh: &Shared<'_>,
        ti: usize,
        ops: &[u32],
    ) -> Result<(), SimError> {
        if !sh.profile_on {
            return self.exec_fire_inner::<GEN>(sh, ti, ops);
        }
        let t0 = std::time::Instant::now();
        let res = self.exec_fire_inner::<GEN>(sh, ti, ops);
        self.profile_ns[ti] += t0.elapsed().as_nanos() as u64;
        res
    }

    /// Execute transition `ti`'s fire section: the counted token-move and
    /// count-condition segments run with no opcode dispatch; the
    /// dispatched tail carries counter hooks and (in `GEN = true`
    /// instantiations only) the colored/filtered/guard-program slow paths.
    #[inline(always)]
    fn exec_fire_inner<const GEN: bool>(
        &mut self,
        sh: &Shared<'_>,
        ti: usize,
        ops: &[u32],
    ) -> Result<(), SimError> {
        let hdr = ops[0];
        // The dominant tiny shape — one move, one count condition, no
        // tail — runs fully unrolled, skipping the segment iterators.
        if !GEN && hdr == 0x0001_0001 && ops.len() == 7 {
            self.exec_mov(sh, ops[1], ops[2])?;
            self.exec_cnt(ops[3], ops[4], ops[5] as usize, ops[6]);
            self.firing_counts[ti] += 1;
            if sh.trace_on {
                self.trace.record(self.now, TransitionId(ti as u32));
            }
            return Ok(());
        }
        let n_mov = (hdr & 0xffff) as usize;
        let n_cnt = ((hdr >> 16) & 0x7fff) as usize;
        let mut pos = 1;
        if GEN && hdr & HDR_GENERIC != 0 {
            self.fire_generic(sh, ops[pos] as usize)?;
            pos += 1;
        }
        debug_assert!(GEN || hdr & HDR_GENERIC == 0);
        for mov in ops[pos..pos + 2 * n_mov].chunks_exact(2) {
            self.exec_mov(sh, mov[0], mov[1])?;
        }
        pos += 2 * n_mov;
        for rec in ops[pos..pos + 4 * n_cnt].chunks_exact(4) {
            self.exec_cnt(rec[0], rec[1], rec[2] as usize, rec[3]);
        }
        pos += 4 * n_cnt;
        let mut pc = pos;
        while pc < ops.len() {
            let w = ops[pc];
            match w & 0xff {
                OP_HOOK => {
                    if self.now >= sh.warmup {
                        self.acc_c[(w >> 8) as usize] += 1;
                    }
                    pc += 1;
                }
                OP_C_FGE if GEN => {
                    let filter = &sh.cs.filters[ops[pc + 1] as usize];
                    let n = self.marking.count_matching(PlaceId(ops[pc + 2]), filter);
                    let now_true = n >= ops[pc + 3] as usize;
                    let (ci, tf) = ((w >> 8) as usize, ops[pc + 4]);
                    pc += 5;
                    if now_true != self.cond_true[ci] {
                        self.cond_true[ci] = now_true;
                        self.apply_flip(tf, now_true);
                    }
                }
                OP_C_FLT if GEN => {
                    let filter = &sh.cs.filters[ops[pc + 1] as usize];
                    let n = self.marking.count_matching(PlaceId(ops[pc + 2]), filter);
                    let now_true = n < ops[pc + 3] as usize;
                    let (ci, tf) = ((w >> 8) as usize, ops[pc + 4]);
                    pc += 5;
                    if now_true != self.cond_true[ci] {
                        self.cond_true[ci] = now_true;
                        self.apply_flip(tf, now_true);
                    }
                }
                OP_C_GUARD if GEN => {
                    let prog = &sh.cs.guards[ops[pc + 1] as usize];
                    let now_true = prog.eval_bool(self.marking, self.guard_scratch);
                    let (ci, tf) = ((w >> 8) as usize, ops[pc + 2]);
                    pc += 3;
                    if now_true != self.cond_true[ci] {
                        self.cond_true[ci] = now_true;
                        self.apply_flip(tf, now_true);
                    }
                }
                _ => unreachable!("invalid op in fire tail"),
            }
        }
        self.firing_counts[ti] += 1;
        if sh.trace_on {
            self.trace.record(self.now, TransitionId(ti as u32));
        }
        Ok(())
    }

    /// The generic colored firing path (withdraw per input arc, evaluate
    /// color expressions, deposit per output arc) — byte-for-byte the
    /// interpreter's, including error precedence.
    fn fire_generic(&mut self, sh: &Shared<'_>, ti: usize) -> Result<(), SimError> {
        let t = &sh.net.transitions()[ti];
        self.consumed.clear();
        self.consumed_offsets.clear();
        for arc in &t.inputs {
            self.consumed_offsets.push(self.consumed.len());
            for _ in 0..arc.multiplicity {
                let c = self
                    .marking
                    .withdraw(arc.place, &arc.filter)
                    .expect("transition fired while not enabled");
                self.consumed.push(c);
            }
        }
        for arc in &t.outputs {
            for _ in 0..arc.multiplicity {
                let c = arc.color.eval(
                    &self.consumed[..],
                    &self.consumed_offsets[..],
                    &mut self.rng,
                );
                self.marking.deposit(arc.place, c);
            }
            if self.marking.count(arc.place) > sh.max_tokens {
                return Err(SimError::TokenOverflow {
                    place: arc.place.index(),
                    time: self.now,
                    limit: sh.cfg.max_tokens_per_place,
                });
            }
        }
        Ok(())
    }

    // ---- recheck section execution ----

    /// Handle one RaceEnable re-check (caller already skipped settled
    /// states): sample on enable, cancel on disable.
    #[inline(always)]
    fn re_op<const SCAN: bool>(
        &mut self,
        t2: usize,
        s: u8,
        sample: impl FnOnce(&mut SimRng) -> f64,
    ) {
        if s & ST_ENABLED != 0 {
            let d = sample(&mut self.rng);
            self.schedule::<SCAN>(t2, self.now + d);
        } else {
            self.cancel::<SCAN>(t2);
        }
    }

    /// Handle one RaceAge re-check: like RaceEnable, but a disabled clock
    /// freezes its remaining delay and a re-enable restores it.
    #[inline(always)]
    fn ra_op<const SCAN: bool>(
        &mut self,
        t2: usize,
        s: u8,
        sample: impl FnOnce(&mut SimRng) -> f64,
    ) {
        if s & ST_ENABLED != 0 {
            let d = if !self.remaining[t2].is_nan() {
                let r = self.remaining[t2];
                self.remaining[t2] = f64::NAN;
                r
            } else {
                sample(&mut self.rng)
            };
            self.schedule::<SCAN>(t2, self.now + d);
        } else {
            let at = self.cancel::<SCAN>(t2);
            self.remaining[t2] = (at - self.now).max(0.0);
        }
    }

    /// Handle one Resample re-check (caller only skipped fully-idle
    /// states): redraw while enabled-and-scheduled, else schedule/cancel.
    #[inline(always)]
    fn rs_op<const SCAN: bool>(
        &mut self,
        t2: usize,
        s: u8,
        sample: impl FnOnce(&mut SimRng) -> f64,
    ) {
        let enabled = s & ST_ENABLED != 0;
        let scheduled = s & ST_SCHEDULED != 0;
        if enabled && scheduled {
            if SCAN {
                // Redraw the clock in place (heap-free bookkeeping).
                let d = sample(&mut self.rng);
                self.fire_at[t2] = self.now + d;
            } else {
                self.cancel::<false>(t2);
                let d = sample(&mut self.rng);
                self.schedule::<false>(t2, self.now + d);
            }
        } else if enabled {
            let d = sample(&mut self.rng);
            self.schedule::<SCAN>(t2, self.now + d);
        } else {
            self.cancel::<SCAN>(t2);
        }
    }

    /// Execute a recheck program (a transition's recheck section, or the
    /// startup program): one fixed-stride monomorphized record per timed
    /// transition whose clock may need attention. The common path — the
    /// clock is already settled and nothing changes — walks the section
    /// with **no opcode dispatch at all**; parameters are only decoded
    /// when a clock actually has to be sampled or cancelled.
    #[inline(always)]
    fn exec_recheck<const SCAN: bool>(&mut self, sh: &Shared<'_>, ops: &[u32]) {
        const SETTLED: u8 = ST_ENABLED | ST_SCHEDULED;
        for rec in ops.chunks_exact(RECHECK_STRIDE) {
            let w = rec[0];
            let t2 = (w >> 8) as usize;
            let s = self.sched_state[t2];
            self.oracle_sched(sh, t2);
            let op = w & 0xff;
            // A fully idle clock is always left alone; an
            // enabled-and-scheduled one only matters to Resample (whose
            // ST_RESAMPLE bit also keeps `s` from equalling SETTLED).
            let active = s & SETTLED != 0 && (s != SETTLED || op >= OP_RS_EXP);
            if !active {
                continue;
            }
            match op {
                OP_RE_EXP => {
                    let rate = dec_f64(rec, 1);
                    self.re_op::<SCAN>(t2, s, move |r| r.exp(rate));
                }
                OP_RE_DET => {
                    let delay = dec_f64(rec, 1);
                    self.re_op::<SCAN>(t2, s, move |_| delay);
                }
                OP_RE_UNI => {
                    let (low, high) = (dec_f64(rec, 1), dec_f64(rec, 3));
                    self.re_op::<SCAN>(t2, s, move |r| r.uniform(low, high));
                }
                OP_RE_ERL => {
                    let (rate, k) = (dec_f64(rec, 1), rec[3]);
                    self.re_op::<SCAN>(t2, s, move |r| erlang(r, rate, k));
                }
                OP_RA_EXP => {
                    let rate = dec_f64(rec, 1);
                    self.ra_op::<SCAN>(t2, s, move |r| r.exp(rate));
                }
                OP_RA_DET => {
                    let delay = dec_f64(rec, 1);
                    self.ra_op::<SCAN>(t2, s, move |_| delay);
                }
                OP_RA_UNI => {
                    let (low, high) = (dec_f64(rec, 1), dec_f64(rec, 3));
                    self.ra_op::<SCAN>(t2, s, move |r| r.uniform(low, high));
                }
                OP_RA_ERL => {
                    let (rate, k) = (dec_f64(rec, 1), rec[3]);
                    self.ra_op::<SCAN>(t2, s, move |r| erlang(r, rate, k));
                }
                OP_RS_EXP => {
                    let rate = dec_f64(rec, 1);
                    self.rs_op::<SCAN>(t2, s, move |r| r.exp(rate));
                }
                OP_RS_DET => {
                    let delay = dec_f64(rec, 1);
                    self.rs_op::<SCAN>(t2, s, move |_| delay);
                }
                OP_RS_UNI => {
                    let (low, high) = (dec_f64(rec, 1), dec_f64(rec, 3));
                    self.rs_op::<SCAN>(t2, s, move |r| r.uniform(low, high));
                }
                OP_RS_ERL => {
                    let (rate, k) = (dec_f64(rec, 1), rec[3]);
                    self.rs_op::<SCAN>(t2, s, move |r| erlang(r, rate, k));
                }
                _ => unreachable!("invalid op in recheck section"),
            }
        }
    }

    // ---- rewards / livelock ----

    /// Integrate time-based rewards over `[now, until)`, clipped to the
    /// warm-up boundary (the interpreter's `integrate_rewards`).
    #[inline(always)]
    fn integrate(&mut self, sh: &Shared<'_>, until: f64) {
        if sh.integ.is_empty() {
            return;
        }
        let from = self.now.max(sh.warmup);
        let dt = until - from;
        if dt <= 0.0 {
            return;
        }
        if let Some((place, acc)) = sh.integ1 {
            self.acc_f[acc as usize] += self.marking.count_raw(place) as f64 * dt;
            return;
        }
        for op in sh.integ {
            match *op {
                IntegOp::Place { place, acc } => {
                    self.acc_f[acc as usize] += self.marking.count_raw(place) as f64 * dt;
                }
                IntegOp::PredCnt {
                    place,
                    need,
                    lt,
                    acc,
                } => {
                    if (self.marking.count_raw(place) >= need) != lt {
                        self.acc_f[acc as usize] += dt;
                    }
                }
                IntegOp::Pred { prog, acc } => {
                    let prog = sh.pred_progs[prog as usize]
                        .as_ref()
                        .expect("predicate reward has a compiled program");
                    if prog.eval_bool(self.marking, self.guard_scratch) {
                        self.acc_f[acc as usize] += dt;
                    }
                }
            }
        }
    }

    #[inline(always)]
    fn bump_zero(&mut self, sh: &Shared<'_>) -> Result<(), SimError> {
        self.zero += 1;
        if self.zero > sh.max_zero {
            return Err(SimError::ImmediateLivelock {
                time: self.now,
                limit: sh.max_zero,
            });
        }
        Ok(())
    }

    // ---- immediate cascade ----

    /// Fire enabled immediates until none remain (highest priority first,
    /// weighted conflicts, definition order on ties — the interpreter's
    /// `fire_immediates`, with fire → recheck → zero-bump order).
    #[inline(always)]
    fn immediates<const SCAN: bool, const GEN: bool>(
        &mut self,
        sh: &Shared<'_>,
    ) -> Result<(), SimError> {
        loop {
            self.oracle_imm_index(sh);
            let len = self.imm_len as usize;
            if len == 0 {
                return Ok(());
            }
            self.candidates.clear();
            let mut best_pri = 0u8;
            for i in 0..len {
                let tid = self.enabled_imm[i];
                let pri = sh.cs.hot[tid as usize].priority;
                if self.candidates.is_empty() || pri > best_pri {
                    best_pri = pri;
                    self.candidates.clear();
                    self.candidates.push(tid);
                } else if pri == best_pri {
                    self.candidates.push(tid);
                }
            }
            self.candidates.sort_unstable();
            let chosen = if self.candidates.len() == 1 {
                self.candidates[0]
            } else {
                self.weights.clear();
                for i in 0..self.candidates.len() {
                    self.weights
                        .push(sh.cs.hot[self.candidates[i] as usize].weight);
                }
                self.candidates[self.rng.weighted_choice(&self.weights[..])]
            };
            let ti = chosen as usize;
            let (f0, f1, r1) = sh.sections(ti);
            self.exec_fire::<GEN>(sh, ti, &sh.ops[f0..f1])?;
            self.exec_recheck::<SCAN>(sh, &sh.ops[f1..r1]);
            self.bump_zero(sh)?;
        }
    }

    // ---- lane lifecycle ----

    /// The interpreter's pre-loop work: run the startup recheck program
    /// (initial scheduling pass), then the time-zero immediate cascade.
    fn start<const SCAN: bool, const GEN: bool>(
        &mut self,
        sh: &Shared<'_>,
    ) -> Result<(), SimError> {
        self.exec_recheck::<SCAN>(sh, sh.init_ops);
        self.immediates::<SCAN, GEN>(sh)
    }

    /// Drive this lane from post-`start` state to its horizon: the whole
    /// main loop, fused, one instantiation per (scan, colored) pair.
    fn run<const SCAN: bool, const GEN: bool>(
        &mut self,
        sh: &Shared<'_>,
        end: f64,
    ) -> Result<(), SimError> {
        loop {
            let next = self.next_event::<SCAN>();
            match next {
                // `time < end` (not `>=`) mirrors the interpreter's
                // `e.time < cfg.end_time` guard, including a NaN horizon.
                Some((time, tid)) if time < end => {
                    let ti = tid as usize;
                    if !SCAN {
                        heap_pop(self.heap);
                        self.gen[ti] += 1;
                    }
                    self.integrate(sh, time);
                    if time > self.now {
                        self.zero = 0;
                    }
                    self.now = time;
                    // Consume the schedule entry, then the interpreter's
                    // fire → zero-bump → recheck → immediates order.
                    self.fire_at[ti] = f64::INFINITY;
                    self.sched_state[ti] &= !ST_SCHEDULED;
                    let (f0, f1, r1) = sh.sections(ti);
                    self.exec_fire::<GEN>(sh, ti, &sh.ops[f0..f1])?;
                    self.bump_zero(sh)?;
                    self.exec_recheck::<SCAN>(sh, &sh.ops[f1..r1]);
                    self.immediates::<SCAN, GEN>(sh)?;
                }
                _ => {
                    // No more events before the horizon: integrate the
                    // tail and retire.
                    self.integrate(sh, end);
                    self.now = end;
                    return Ok(());
                }
            }
        }
    }
}

/// Full-rescan enabling check (debug oracle).
#[cfg(debug_assertions)]
fn is_enabled_slow(marking: &Marking, t: &crate::transition::Transition) -> bool {
    t.inputs
        .iter()
        .all(|a| marking.count_matching(a.place, &a.filter) >= a.multiplicity as usize)
        && t.inhibitors
            .iter()
            .all(|a| marking.count_matching(a.place, &a.filter) < a.threshold as usize)
        && t.guard.as_ref().is_none_or(|g| g.eval_bool(marking))
}

/// Erlang-k delay: sum of k exponential draws (the interpreter's order).
#[inline(always)]
fn erlang(rng: &mut SimRng, rate: f64, k: u32) -> f64 {
    let mut total = 0.0;
    for _ in 0..k {
        total += rng.exp(rate);
    }
    total
}

// ---------------------------------------------------------------------------
// The batched lowered engine
// ---------------------------------------------------------------------------

/// All per-batch state for the lowered engine. Stride-`nt` arenas are
/// indexed `l * nt + ti`, stride-`nc` arenas `l * nc + ci`; each lane's
/// stripes are sliced into a [`Lane`] while it runs.
pub(super) struct LoweredEngine<'e> {
    lw: &'e LoweredNet,
    cs: &'e CompiledSim,
    net: &'e Net,
    cfg: &'e SimConfig,
    pred_progs: &'e [Option<CompiledExpr>],
    max_tokens: usize,
    lanes: usize,
    nt: usize,
    nc: usize,
    ni: usize,
    end_time: Vec<f64>,
    rng: Vec<SimRng>,
    now: Vec<f64>,
    zero: Vec<u64>,
    markings: Vec<Marking>,
    heaps: Vec<Vec<HeapEntry>>,
    fire_at: Vec<f64>,
    gen: Vec<u64>,
    remaining: Vec<f64>,
    sched_state: Vec<u8>,
    cond_true: Vec<bool>,
    unsat: Vec<u32>,
    enabled_imm: Vec<u32>,
    imm_len: Vec<u32>,
    imm_pos: Vec<u32>,
    firing_counts: Vec<u64>,
    acc_f: Vec<f64>,
    acc_c: Vec<u64>,
    profile_ns: Vec<u64>,
    traces: Vec<TraceBuffer>,
    guard_scratch: Vec<i64>,
    consumed: Vec<Color>,
    consumed_offsets: Vec<usize>,
    candidates: Vec<u32>,
    weights: Vec<f64>,
}

impl<'e> LoweredEngine<'e> {
    pub(super) fn new(sim: &'e Simulator<'_>, seeds: &[u64], end_times: &[f64]) -> Self {
        assert_eq!(seeds.len(), end_times.len(), "one horizon per seed");
        let net = sim.net;
        let cs = &sim.compiled;
        let lw = sim.lowered_net();
        let lanes = seeds.len();
        let nt = net.num_transitions();
        let nc = cs.conds.len();
        let ni = cs.immediates.len();
        let pred_stack = sim
            .pred_progs
            .iter()
            .flatten()
            .map(|p| p.stack_needed())
            .max()
            .unwrap_or(0);
        let mut st_template = vec![0u8; nt];
        for (ti, h) in cs.hot.iter().enumerate() {
            if h.kind != TimingKind::Immediate && h.memory == MemoryPolicy::Resample {
                st_template[ti] = ST_RESAMPLE;
            }
        }
        let mut eng = LoweredEngine {
            lw,
            cs,
            net,
            cfg: &sim.cfg,
            pred_progs: &sim.pred_progs,
            max_tokens: effective_token_limit(&sim.cfg),
            lanes,
            nt,
            nc,
            ni,
            end_time: end_times.to_vec(),
            rng: seeds.iter().map(|&s| SimRng::seed_from_u64(s)).collect(),
            now: vec![0.0; lanes],
            zero: vec![0; lanes],
            markings: (0..lanes).map(|_| net.initial_marking()).collect(),
            heaps: (0..lanes)
                .map(|_| Vec::with_capacity(if lw.scan { 0 } else { nt * 2 }))
                .collect(),
            fire_at: vec![f64::INFINITY; lanes * nt],
            gen: vec![0; lanes * nt],
            remaining: vec![f64::NAN; lanes * nt],
            sched_state: st_template.repeat(lanes),
            cond_true: vec![false; lanes * nc],
            unsat: vec![0; lanes * nt],
            enabled_imm: vec![0; lanes * ni],
            imm_len: vec![0; lanes],
            imm_pos: vec![NOT_QUEUED; lanes * nt],
            firing_counts: vec![0; lanes * nt],
            acc_f: vec![0.0; lanes * lw.n_integ],
            acc_c: vec![0; lanes * lw.n_count],
            profile_ns: vec![0; lanes * nt],
            traces: (0..lanes)
                .map(|_| TraceBuffer::new(sim.cfg.trace_capacity))
                .collect(),
            guard_scratch: Vec::with_capacity(cs.guard_stack.max(pred_stack)),
            consumed: Vec::with_capacity(8),
            consumed_offsets: Vec::with_capacity(8),
            candidates: Vec::with_capacity(4),
            weights: Vec::with_capacity(4),
        };
        for l in 0..lanes {
            eng.init_conditions(l);
        }
        eng
    }

    /// Evaluate every condition from scratch and build the enabled sets
    /// (start of run only; identical to the interpreter's).
    fn init_conditions(&mut self, l: usize) {
        let cs = self.cs;
        let tb = l * self.nt;
        let cb = l * self.nc;
        let ib = l * self.ni;
        self.unsat[tb..tb + self.nt].copy_from_slice(&cs.base_unsat);
        for (ci, cond) in cs.conds.iter().enumerate() {
            let t = cs.eval_cond(&self.markings[l], &mut self.guard_scratch, cond);
            self.cond_true[cb + ci] = t;
            if !t {
                self.unsat[tb + cond.tid as usize] += 1;
            }
        }
        for ti in 0..self.nt {
            if self.unsat[tb + ti] == 0 {
                self.sched_state[tb + ti] |= ST_ENABLED;
            }
        }
        for &tid in &cs.immediates {
            if self.unsat[tb + tid.index()] == 0 {
                let len = self.imm_len[l];
                self.imm_pos[tb + tid.index()] = len;
                self.enabled_imm[ib + len as usize] = tid.0;
                self.imm_len[l] = len + 1;
            }
        }
    }

    /// Run every lane to completion on the variant selected by the
    /// program's feature flags, and collect per-lane results.
    pub(super) fn run_all(mut self) -> Vec<Result<SimOutput, SimError>> {
        let mut out: Vec<Option<Result<SimOutput, SimError>>> =
            (0..self.lanes).map(|_| None).collect();
        match (self.lw.scan, self.lw.colored) {
            (true, false) => self.drive::<true, false>(&mut out),
            (true, true) => self.drive::<true, true>(&mut out),
            (false, false) => self.drive::<false, false>(&mut out),
            (false, true) => self.drive::<false, true>(&mut out),
        }
        out.into_iter()
            .map(|o| o.expect("every lane terminates"))
            .collect()
    }

    fn drive<const SCAN: bool, const GEN: bool>(
        &mut self,
        out: &mut [Option<Result<SimOutput, SimError>>],
    ) {
        // Copy the shared references out of `self` so the context does not
        // conflict with the per-lane `&mut self` below.
        let sh = Shared {
            ops: &self.lw.ops,
            sec: &self.lw.sec,
            init_ops: &self.lw.init_ops,
            integ: &self.lw.integ,
            integ1: match self.lw.integ.as_slice() {
                [IntegOp::Place { place, acc }] => Some((*place, *acc)),
                _ => None,
            },
            cs: self.cs,
            net: self.net,
            cfg: self.cfg,
            pred_progs: self.pred_progs,
            max_tokens: self.max_tokens,
            warmup: self.cfg.warmup,
            max_zero: self.cfg.max_zero_time_firings,
            trace_on: self.cfg.trace_capacity > 0,
            profile_on: super::profile::armed(),
        };
        // `run_lane` borrows all of `self` mutably, so iterating `out`
        // with `iter_mut` can't work here.
        #[allow(clippy::needless_range_loop)]
        for l in 0..self.lanes {
            let res = self.run_lane::<SCAN, GEN>(&sh, l);
            out[l] = Some(match res {
                Ok(()) => Ok(self.finalize(l)),
                Err(e) => Err(e),
            });
        }
    }

    /// Slice lane `l`'s stripes out of the arenas and drive it to
    /// completion (start + main loop), writing the scalars back.
    fn run_lane<const SCAN: bool, const GEN: bool>(
        &mut self,
        sh: &Shared<'_>,
        l: usize,
    ) -> Result<(), SimError> {
        let (nt, nc, ni) = (self.nt, self.nc, self.ni);
        let (tb, cb, ib) = (l * nt, l * nc, l * ni);
        let (nf, nk) = (self.lw.n_integ, self.lw.n_count);
        let end = self.end_time[l];
        let mut lane = Lane {
            rng: self.rng[l].clone(),
            now: self.now[l],
            zero: self.zero[l],
            imm_len: self.imm_len[l],
            marking: &mut self.markings[l],
            heap: &mut self.heaps[l],
            fire_at: &mut self.fire_at[tb..tb + nt],
            gen: &mut self.gen[tb..tb + nt],
            remaining: &mut self.remaining[tb..tb + nt],
            sched_state: &mut self.sched_state[tb..tb + nt],
            cond_true: &mut self.cond_true[cb..cb + nc],
            unsat: &mut self.unsat[tb..tb + nt],
            enabled_imm: &mut self.enabled_imm[ib..ib + ni],
            imm_pos: &mut self.imm_pos[tb..tb + nt],
            firing_counts: &mut self.firing_counts[tb..tb + nt],
            acc_f: &mut self.acc_f[l * nf..(l + 1) * nf],
            acc_c: &mut self.acc_c[l * nk..(l + 1) * nk],
            profile_ns: &mut self.profile_ns[tb..tb + nt],
            trace: &mut self.traces[l],
            guard_scratch: &mut self.guard_scratch,
            consumed: &mut self.consumed,
            consumed_offsets: &mut self.consumed_offsets,
            candidates: &mut self.candidates,
            weights: &mut self.weights,
        };
        let res = match lane.start::<SCAN, GEN>(sh) {
            Ok(()) => lane.run::<SCAN, GEN>(sh, end),
            Err(e) => Err(e),
        };
        self.rng[l] = lane.rng;
        self.now[l] = lane.now;
        self.zero[l] = lane.zero;
        self.imm_len[l] = lane.imm_len;
        res
    }

    fn finalize(&mut self, l: usize) -> SimOutput {
        let tb = l * self.nt;
        if super::profile::armed() {
            // Flush this lane's profile stripe into the process-global
            // table before the counts are moved into the output.
            for (ti, t) in self.net.transitions().iter().enumerate() {
                super::profile::record(
                    &t.name,
                    self.firing_counts[tb + ti],
                    self.profile_ns[tb + ti],
                );
            }
        }
        let end = self.end_time[l];
        let observed = (end - self.cfg.warmup).max(0.0);
        let fb = l * self.lw.n_integ;
        let kb = l * self.lw.n_count;
        let rewards = self
            .lw
            .reward_map
            .iter()
            .map(|rm| match *rm {
                LoweredReward::Integral(i) => {
                    if observed > 0.0 {
                        self.acc_f[fb + i as usize] / observed
                    } else {
                        0.0
                    }
                }
                LoweredReward::Rate(i) => {
                    if observed > 0.0 {
                        self.acc_c[kb + i as usize] as f64 / observed
                    } else {
                        0.0
                    }
                }
                LoweredReward::Count(i) => self.acc_c[kb + i as usize] as f64,
            })
            .collect();
        let trace = std::mem::take(&mut self.traces[l]);
        SimOutput {
            end_time: end,
            observed_time: observed,
            rewards,
            firing_counts: self.firing_counts[tb..tb + self.nt].to_vec(),
            final_marking: self.markings[l].clone(),
            trace_dropped: trace.dropped,
            trace: trace.into_events(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetBuilder;
    use crate::sim::SimConfig;
    use crate::timing::Timing;

    fn mm1(rho: f64) -> Net {
        let mut b = NetBuilder::new("mm1");
        let q = b.place("q").build();
        b.transition("arrive", Timing::exponential(rho))
            .output(q, 1)
            .build();
        b.transition("serve", Timing::exponential(1.0))
            .input(q, 1)
            .build();
        b.build().unwrap()
    }

    #[test]
    fn lowered_matches_interpreter_on_mm1() {
        let net = mm1(0.8);
        let mut sim = Simulator::new(&net, SimConfig::for_horizon(300.0).with_trace(16));
        sim.reward_place(crate::ids::PlaceId::from_index(0));
        for seed in 0..20u64 {
            let a = sim.run_lowered(seed).unwrap();
            let b = sim.run_interp(seed).unwrap();
            assert_eq!(a.rewards, b.rewards);
            assert_eq!(a.firing_counts, b.firing_counts);
            assert_eq!(a.final_marking, b.final_marking);
            assert_eq!(a.trace, b.trace);
        }
    }

    #[test]
    fn lowered_batch_matches_lowered_scalar() {
        let net = mm1(0.9);
        let mut sim = Simulator::new(&net, SimConfig::for_horizon(150.0));
        sim.reward_place(crate::ids::PlaceId::from_index(0));
        let seeds: Vec<u64> = (0..9).collect();
        let ends = vec![sim.config().end_time; seeds.len()];
        let batched = LoweredEngine::new(&sim, &seeds, &ends).run_all();
        for (i, &seed) in seeds.iter().enumerate() {
            let scalar = sim.run_lowered(seed).unwrap();
            let b = batched[i].as_ref().unwrap();
            assert_eq!(b.rewards, scalar.rewards);
            assert_eq!(b.firing_counts, scalar.firing_counts);
            assert_eq!(b.final_marking, scalar.final_marking);
        }
    }

    #[test]
    fn lowered_errors_match_the_interpreter() {
        // An open generator against a tiny token bound: both engines must
        // report the same overflow at the same time.
        let net = mm1(5.0);
        let mut cfg = SimConfig::for_horizon(10_000.0);
        cfg.max_tokens_per_place = 40;
        let sim = Simulator::new(&net, cfg);
        for seed in 0..10u64 {
            match (sim.run_lowered(seed), sim.run_interp(seed)) {
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("expected overflow from both engines: {a:?} vs {b:?}"),
            }
        }
    }
}
