//! State-time accounting: accumulate time per power state and integrate
//! energy.
//!
//! The DES simulators use this directly (they know the exact state at every
//! instant); the Petri-net pipeline arrives at the same numbers through
//! steady-state probabilities × horizon (Eqs. 7/8), and the test-suite
//! checks the two routes agree.

use crate::power::{ComponentPower, PowerState};
use crate::units::{Energy, Power};
use serde::{Deserialize, Serialize};

/// Time spent in each of the four power states.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StateTimes {
    /// Seconds in sleep.
    pub sleep: f64,
    /// Seconds waking up.
    pub wakeup: f64,
    /// Seconds idle.
    pub idle: f64,
    /// Seconds active.
    pub active: f64,
}

impl StateTimes {
    /// Add `dt` seconds in state `s`.
    pub fn add(&mut self, s: PowerState, dt: f64) {
        debug_assert!(dt >= 0.0, "negative dwell time");
        match s {
            PowerState::Sleep => self.sleep += dt,
            PowerState::Wakeup => self.wakeup += dt,
            PowerState::Idle => self.idle += dt,
            PowerState::Active => self.active += dt,
        }
    }

    /// Seconds in state `s`.
    pub fn in_state(&self, s: PowerState) -> f64 {
        match s {
            PowerState::Sleep => self.sleep,
            PowerState::Wakeup => self.wakeup,
            PowerState::Idle => self.idle,
            PowerState::Active => self.active,
        }
    }

    /// Total accounted time.
    pub fn total(&self) -> f64 {
        self.sleep + self.wakeup + self.idle + self.active
    }

    /// Fraction of total time in state `s` (0 if nothing accounted).
    pub fn fraction(&self, s: PowerState) -> f64 {
        let t = self.total();
        if t > 0.0 {
            self.in_state(s) / t
        } else {
            0.0
        }
    }

    /// Energy under a component power table: `Σ_state P(state)·t(state)`.
    pub fn energy(&self, power: &ComponentPower) -> Energy {
        PowerState::ALL
            .iter()
            .map(|&s| power.in_state(s).over_seconds(self.in_state(s)))
            .sum()
    }

    /// Average power over the accounted window.
    pub fn average_power(&self, power: &ComponentPower) -> Power {
        let t = self.total();
        if t > 0.0 {
            self.energy(power).average_power(t)
        } else {
            Power::ZERO
        }
    }
}

/// Running tracker: the component's current state plus accumulated times.
///
/// Call [`StateTracker::transition_to`] at every state change with the
/// current simulation clock; the tracker attributes the elapsed interval to
/// the outgoing state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StateTracker {
    state: PowerState,
    since: f64,
    times: StateTimes,
    wakeup_count: u64,
}

impl StateTracker {
    /// Start tracking in `initial` at time `t0`.
    pub fn new(initial: PowerState, t0: f64) -> Self {
        StateTracker {
            state: initial,
            since: t0,
            times: StateTimes::default(),
            wakeup_count: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> PowerState {
        self.state
    }

    /// Move to `next` at time `now` (attributes `[since, now)` to the old
    /// state). Entering [`PowerState::Wakeup`] bumps the wake-up counter —
    /// the quantity behind the paper's "CPU Wake Up Transitional Energy"
    /// series.
    pub fn transition_to(&mut self, next: PowerState, now: f64) {
        debug_assert!(now >= self.since, "time went backwards");
        self.times.add(self.state, now - self.since);
        if next == PowerState::Wakeup && self.state != PowerState::Wakeup {
            self.wakeup_count += 1;
        }
        self.state = next;
        self.since = now;
    }

    /// Close the interval at `end` and return the final accounting.
    pub fn finish(mut self, end: f64) -> (StateTimes, u64) {
        debug_assert!(end >= self.since, "time went backwards");
        self.times.add(self.state, end - self.since);
        (self.times, self.wakeup_count)
    }

    /// Times accumulated so far (not including the open interval).
    pub fn times(&self) -> &StateTimes {
        &self.times
    }

    /// Wake-ups counted so far.
    pub fn wakeups(&self) -> u64 {
        self.wakeup_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::PXA271_CPU;

    #[test]
    fn accumulate_and_fractions() {
        let mut t = StateTimes::default();
        t.add(PowerState::Sleep, 6.0);
        t.add(PowerState::Active, 2.0);
        t.add(PowerState::Idle, 2.0);
        assert_eq!(t.total(), 10.0);
        assert!((t.fraction(PowerState::Sleep) - 0.6).abs() < 1e-15);
        assert!((t.fraction(PowerState::Active) - 0.2).abs() < 1e-15);
        assert_eq!(t.fraction(PowerState::Wakeup), 0.0);
    }

    #[test]
    fn empty_fractions_are_zero() {
        let t = StateTimes::default();
        assert_eq!(t.fraction(PowerState::Sleep), 0.0);
        assert_eq!(t.average_power(&PXA271_CPU), Power::ZERO);
    }

    #[test]
    fn energy_matches_hand_calculation() {
        let mut t = StateTimes::default();
        t.add(PowerState::Sleep, 100.0);
        t.add(PowerState::Active, 10.0);
        // 17 mW * 100 s + 193 mW * 10 s = 1.7 + 1.93 = 3.63 J.
        let e = t.energy(&PXA271_CPU);
        assert!((e.joules() - 3.63).abs() < 1e-12);
    }

    #[test]
    fn tracker_attributes_intervals() {
        let mut tr = StateTracker::new(PowerState::Sleep, 0.0);
        tr.transition_to(PowerState::Wakeup, 5.0); // slept [0,5)
        tr.transition_to(PowerState::Idle, 5.3); // woke [5,5.3)
        tr.transition_to(PowerState::Active, 6.0); // idled [5.3,6)
        let (times, wakeups) = tr.finish(8.0); // active [6,8)
        assert!((times.sleep - 5.0).abs() < 1e-12);
        assert!((times.wakeup - 0.3).abs() < 1e-12);
        assert!((times.idle - 0.7).abs() < 1e-12);
        assert!((times.active - 2.0).abs() < 1e-12);
        assert_eq!(wakeups, 1);
        assert!((times.total() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn tracker_counts_wakeups_once_per_entry() {
        let mut tr = StateTracker::new(PowerState::Sleep, 0.0);
        tr.transition_to(PowerState::Wakeup, 1.0);
        tr.transition_to(PowerState::Active, 1.3);
        tr.transition_to(PowerState::Sleep, 2.0);
        tr.transition_to(PowerState::Wakeup, 3.0);
        tr.transition_to(PowerState::Idle, 3.3);
        let (_, wakeups) = tr.finish(4.0);
        assert_eq!(wakeups, 2);
    }

    #[test]
    fn zero_length_intervals_are_fine() {
        let mut tr = StateTracker::new(PowerState::Idle, 1.0);
        tr.transition_to(PowerState::Active, 1.0);
        let (times, _) = tr.finish(1.0);
        assert_eq!(times.total(), 0.0);
    }

    #[test]
    fn average_power_is_energy_over_time() {
        let mut t = StateTimes::default();
        t.add(PowerState::Idle, 50.0);
        t.add(PowerState::Sleep, 50.0);
        let avg = t.average_power(&PXA271_CPU);
        // (88 + 17)/2 = 52.5 mW.
        assert!((avg.milliwatts() - 52.5).abs() < 1e-9);
    }
}
