//! Process harnesses for the distributed suites: real `repro` daemon and
//! worker processes on loopback ephemeral ports.
//!
//! Three consumers share the spawn/announce/teardown machinery here:
//! [`LocalCluster`] (a set of `repro --worker --listen` TCP workers — the
//! remote determinism suite and `remote_ab`), [`LocalService`] (one
//! `repro serve --listen` experiment-service daemon — the service suite
//! and `service_ab`), and ad-hoc experiments. The shared core is
//! [`AnnouncedProc`]: spawn a child with piped stdout, wait for its
//! one-line `<prefix> <addr>` announcement (how a process bound to port 0
//! publishes its ephemeral port — no fixed-port races, no sleep
//! guessing), and kill + reap it on drop so a failing test never leaks
//! daemons.

use sim_runtime::remote::TcpTransport;
use sim_runtime::{Exec, ServiceClient};
use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Resolve the sibling `repro` binary next to the current executable —
/// how the `*_ab` bench binaries find their worker/daemon. Panics with a
/// build hint when it is missing.
pub fn sibling_repro_bin() -> String {
    let exe = std::env::current_exe().expect("current_exe");
    let repro = exe.parent().expect("target dir").join("repro");
    assert!(
        repro.exists(),
        "worker/daemon binary {repro:?} missing — build with `cargo build --release -p bench`"
    );
    repro.to_string_lossy().into_owned()
}

/// A spawned child process that announced its bound address on stdout.
///
/// Dropping kills and reaps the child (the un-graceful fallback); harness
/// types layer their protocol-level shutdown on top.
pub struct AnnouncedProc {
    child: Child,
    /// Announced addresses, one per expected prefix, in announcement
    /// order. [`AnnouncedProc::addr`] is the last one — the primary
    /// protocol address for every existing single-announcement consumer.
    addrs: Vec<String>,
}

impl AnnouncedProc {
    /// Spawn `bin args...` with the given extra environment, piped stdout
    /// and inherited stderr, then block until it prints a line of the form
    /// `<announce_prefix> <addr>`; anything else is an error (and the
    /// child is reaped).
    pub fn spawn(
        bin: &str,
        args: &[&str],
        env: &[(String, String)],
        announce_prefix: &str,
    ) -> std::io::Result<Self> {
        Self::spawn_seq(bin, args, env, &[announce_prefix])
    }

    /// [`AnnouncedProc::spawn`] for processes that announce several
    /// addresses on consecutive stdout lines in a fixed order — e.g.
    /// `repro serve --http` prints `http <addr>` before `serving <addr>`.
    /// Each line must carry the matching prefix from `prefixes`.
    pub fn spawn_seq(
        bin: &str,
        args: &[&str],
        env: &[(String, String)],
        prefixes: &[&str],
    ) -> std::io::Result<Self> {
        assert!(!prefixes.is_empty(), "need at least one announce prefix");
        let mut cmd = Command::new(bin);
        cmd.args(args)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        for (k, v) in env {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn()?;
        let stdout = child.stdout.take().expect("stdout piped");
        let mut reader = BufReader::new(stdout);
        let mut addrs = Vec::with_capacity(prefixes.len());
        for announce_prefix in prefixes {
            let mut line = String::new();
            reader.read_line(&mut line)?;
            // Require the full "<prefix> " word boundary: a line that
            // merely starts with the prefix (e.g. "listening-error: ...")
            // is a malformed announcement, not an address.
            let expected = format!("{announce_prefix} ");
            match line.trim().strip_prefix(&expected) {
                Some(a) if !a.trim().is_empty() => addrs.push(a.trim().to_string()),
                _ => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(std::io::Error::other(format!(
                        "process announced {line:?} instead of {announce_prefix:?} + address"
                    )));
                }
            }
        }
        Ok(AnnouncedProc { child, addrs })
    }

    /// The announced `host:port` (the last announcement when the process
    /// made several — the primary protocol address).
    pub fn addr(&self) -> &str {
        self.addrs.last().expect("at least one announcement")
    }

    /// The `i`-th announced address, in [`AnnouncedProc::spawn_seq`]
    /// prefix order.
    pub fn announced(&self, i: usize) -> &str {
        &self.addrs[i]
    }

    /// Hard-kill the child (idempotent).
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Reap the child after a graceful protocol-level shutdown.
    pub fn wait(&mut self) {
        let _ = self.child.wait();
    }
}

impl Drop for AnnouncedProc {
    fn drop(&mut self) {
        self.kill();
    }
}

// --- worker cluster ------------------------------------------------------

/// A set of loopback TCP workers backing [`Exec::remote`] runs — the
/// smallest honest stand-in for a multi-host deployment: every worker is
/// a separate OS process speaking the real protocol end to end, so
/// everything except the physical network hop is exercised.
///
/// Dropping the cluster kills any worker still running; prefer
/// [`LocalCluster::shutdown`] for a graceful end (shutdown frame, then
/// wait) when the workers are healthy.
pub struct LocalCluster {
    workers: Vec<AnnouncedProc>,
}

impl LocalCluster {
    /// Spawn `n` workers of `worker_bin` (`<bin> --worker --listen
    /// 127.0.0.1:0`), waiting for each to announce its address.
    pub fn spawn(worker_bin: &str, n: usize) -> std::io::Result<Self> {
        Self::spawn_with_env(worker_bin, n, |_| Vec::new())
    }

    /// [`LocalCluster::spawn`] with extra environment variables per worker
    /// index — how the failure suite arms exactly one worker with an
    /// [`EnvCrashJob`](crate::shard::EnvCrashJob) trigger.
    pub fn spawn_with_env(
        worker_bin: &str,
        n: usize,
        env_of: impl Fn(usize) -> Vec<(String, String)>,
    ) -> std::io::Result<Self> {
        assert!(n >= 1, "a cluster needs at least one worker");
        let mut workers = Vec::with_capacity(n);
        for i in 0..n {
            workers.push(AnnouncedProc::spawn(
                worker_bin,
                &["--worker", "--listen", "127.0.0.1:0"],
                &env_of(i),
                "listening",
            )?);
        }
        Ok(LocalCluster { workers })
    }

    /// The workers' `host:port` addresses, in spawn order.
    pub fn hosts(&self) -> Vec<String> {
        self.workers.iter().map(|w| w.addr().to_string()).collect()
    }

    /// An [`Exec`] dispatching to the first `hosts` workers with `threads`
    /// worker threads per peer.
    pub fn exec(&self, threads: usize, hosts: usize) -> Exec {
        Exec::remote(
            threads,
            self.hosts().into_iter().take(hosts.max(1)).collect(),
        )
    }

    /// Hard-kill worker `i` (the external peer-death probe). Idempotent.
    pub fn kill(&mut self, i: usize) {
        self.workers[i].kill();
    }

    /// Gracefully stop every worker: send each a shutdown frame, then wait
    /// for it to exit on its own. Workers that no longer accept (e.g.
    /// already crashed) are reaped by the `Drop` kill instead.
    pub fn shutdown(mut self) {
        for w in &mut self.workers {
            if let Ok(addr) = w.addr().parse::<std::net::SocketAddr>() {
                if let Ok(stream) = TcpStream::connect_timeout(&addr, Duration::from_millis(1000)) {
                    let mut t = TcpTransport::new(stream);
                    if sim_runtime::remote::send_shutdown(&mut t).is_ok() {
                        w.wait();
                    }
                }
            }
        }
        // Drop reaps whatever did not exit gracefully.
    }
}

// --- service daemon ------------------------------------------------------

/// One real `repro serve --listen 127.0.0.1:0` experiment-service daemon
/// on an ephemeral loopback port — the harness behind the service
/// determinism/caching suite and the `service_ab` bench.
///
/// Dropping kills the daemon; prefer [`LocalService::shutdown`] (the
/// protocol stop verb, then wait) when it is healthy.
pub struct LocalService {
    proc: AnnouncedProc,
    /// The HTTP gateway address, when spawned with
    /// [`LocalService::spawn_with_http`].
    http: Option<String>,
}

impl LocalService {
    /// Spawn a daemon with extra `repro serve` flags (backend selection,
    /// queue capacity, cache directory, ...) and wait for its
    /// `serving <addr>` announcement.
    ///
    /// Tests should always pass an explicit `--cache-dir` under a unique
    /// temp directory (or `--no-disk-cache`): the daemon's default cache
    /// location is relative to its working directory, and concurrent
    /// tests must not share entries.
    pub fn spawn(repro_bin: &str, extra_args: &[&str]) -> std::io::Result<Self> {
        Self::spawn_with_env(repro_bin, extra_args, &[])
    }

    /// [`LocalService::spawn`] with extra environment variables — how the
    /// chaos suite arms a daemon's transports (`REPRO_CHAOS_*`) without
    /// leaking the variables into the spawning test process.
    pub fn spawn_with_env(
        repro_bin: &str,
        extra_args: &[&str],
        env: &[(String, String)],
    ) -> std::io::Result<Self> {
        let mut args = vec!["serve", "--listen", "127.0.0.1:0"];
        args.extend_from_slice(extra_args);
        Ok(LocalService {
            proc: AnnouncedProc::spawn(repro_bin, &args, env, "serving")?,
            http: None,
        })
    }

    /// [`LocalService::spawn_with_env`] with the HTTP gateway enabled on
    /// its own ephemeral port (`--http 127.0.0.1:0`); the gateway address
    /// is available from [`LocalService::http_addr`]. The daemon announces
    /// `http <addr>` before `serving <addr>`, in that order.
    pub fn spawn_with_http(
        repro_bin: &str,
        extra_args: &[&str],
        env: &[(String, String)],
    ) -> std::io::Result<Self> {
        let mut args = vec!["serve", "--listen", "127.0.0.1:0", "--http", "127.0.0.1:0"];
        args.extend_from_slice(extra_args);
        let proc = AnnouncedProc::spawn_seq(repro_bin, &args, env, &["http", "serving"])?;
        let http = Some(proc.announced(0).to_string());
        Ok(LocalService { proc, http })
    }

    /// The daemon's `host:port`.
    pub fn addr(&self) -> &str {
        self.proc.addr()
    }

    /// The HTTP gateway's `host:port`, when spawned with
    /// [`LocalService::spawn_with_http`].
    pub fn http_addr(&self) -> Option<&str> {
        self.http.as_deref()
    }

    /// An [`Exec`] routing every dispatch through this daemon.
    pub fn exec(&self, threads: usize) -> Exec {
        Exec::service(threads, self.addr().to_string())
    }

    /// A fresh client connection to the daemon.
    pub fn client(&self) -> ServiceClient {
        ServiceClient::connect(self.addr(), Duration::from_secs(10))
            .expect("service daemon accepts connections")
    }

    /// Gracefully stop the daemon (protocol stop verb, then reap). A
    /// daemon that no longer accepts connections (e.g. it already
    /// crashed — the interesting failure a test wants surfaced) is left
    /// for the `Drop` kill instead of panicking here and masking it.
    pub fn shutdown(mut self) {
        if let Ok(mut client) = ServiceClient::connect(self.addr(), Duration::from_secs(10)) {
            if client.shutdown().is_ok() {
                self.proc.wait();
            }
        }
        // Drop reaps a daemon that refused (or never saw) the verb.
    }
}

// Spawning real workers/daemons needs the repro binary
// (`CARGO_BIN_EXE_repro`), which cargo only provides to integration
// tests — the harnesses are exercised end to end by
// `tests/remote_determinism.rs` and `tests/service.rs`.
