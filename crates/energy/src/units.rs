//! Typed power/energy units.
//!
//! The paper mixes milliwatts (Tables III, VII) and Joules (all energy
//! results); these newtypes keep the conversions honest. Arithmetic is
//! provided for the combinations that are dimensionally meaningful:
//! `Power × time = Energy`, `Energy / time = Power`, plus additive and
//! scalar operations within each unit.

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A power value, stored in milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Power(f64);

impl Power {
    /// Zero power.
    pub const ZERO: Power = Power(0.0);

    /// From milliwatts (the unit of the paper's tables).
    pub const fn from_milliwatts(mw: f64) -> Power {
        Power(mw)
    }

    /// From watts.
    pub fn from_watts(w: f64) -> Power {
        Power(w * 1e3)
    }

    /// From microwatts.
    pub fn from_microwatts(uw: f64) -> Power {
        Power(uw * 1e-3)
    }

    /// Value in milliwatts.
    pub fn milliwatts(self) -> f64 {
        self.0
    }

    /// Value in watts.
    pub fn watts(self) -> f64 {
        self.0 * 1e-3
    }

    /// Energy dissipated over `seconds`.
    pub fn over_seconds(self, seconds: f64) -> Energy {
        Energy::from_joules(self.watts() * seconds)
    }

    /// Is this value finite and non-negative (sanity gate for tables)?
    pub fn is_physical(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

/// An energy value, stored in Joules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// From Joules.
    pub const fn from_joules(j: f64) -> Energy {
        Energy(j)
    }

    /// From millijoules.
    pub fn from_millijoules(mj: f64) -> Energy {
        Energy(mj * 1e-3)
    }

    /// Value in Joules.
    pub fn joules(self) -> f64 {
        self.0
    }

    /// Value in millijoules.
    pub fn millijoules(self) -> f64 {
        self.0 * 1e3
    }

    /// Average power if spread uniformly over `seconds`.
    pub fn average_power(self, seconds: f64) -> Power {
        assert!(seconds > 0.0, "duration must be positive");
        Power::from_watts(self.0 / seconds)
    }
}

// --- arithmetic ---

impl Add for Power {
    type Output = Power;
    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}
impl AddAssign for Power {
    fn add_assign(&mut self, rhs: Power) {
        self.0 += rhs.0;
    }
}
impl Sub for Power {
    type Output = Power;
    fn sub(self, rhs: Power) -> Power {
        Power(self.0 - rhs.0)
    }
}
impl Mul<f64> for Power {
    type Output = Power;
    fn mul(self, rhs: f64) -> Power {
        Power(self.0 * rhs)
    }
}
impl Div<f64> for Power {
    type Output = Power;
    fn div(self, rhs: f64) -> Power {
        Power(self.0 / rhs)
    }
}
impl Neg for Power {
    type Output = Power;
    fn neg(self) -> Power {
        Power(-self.0)
    }
}
impl Sum for Power {
    fn sum<I: Iterator<Item = Power>>(iter: I) -> Power {
        iter.fold(Power::ZERO, Add::add)
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}
impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}
impl Sub for Energy {
    type Output = Energy;
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}
impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}
impl Div<f64> for Energy {
    type Output = Energy;
    fn div(self, rhs: f64) -> Energy {
        Energy(self.0 / rhs)
    }
}
impl Div<Energy> for Energy {
    type Output = f64;
    fn div(self, rhs: Energy) -> f64 {
        self.0 / rhs.0
    }
}
impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let p = Power::from_milliwatts(193.0);
        assert!((p.watts() - 0.193).abs() < 1e-15);
        assert!((Power::from_watts(0.193).milliwatts() - 193.0).abs() < 1e-12);
        assert!((Power::from_microwatts(712.0).milliwatts() - 0.712).abs() < 1e-12);

        let e = Energy::from_joules(2.5);
        assert!((e.millijoules() - 2500.0).abs() < 1e-12);
        assert!((Energy::from_millijoules(2500.0).joules() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn power_times_time_is_energy() {
        // 88 mW for 1000 s = 88 J (the paper's idle CPU over the sim window).
        let e = Power::from_milliwatts(88.0).over_seconds(1000.0);
        assert!((e.joules() - 88.0).abs() < 1e-12);
    }

    #[test]
    fn energy_over_time_is_power() {
        let p = Energy::from_joules(10.0).average_power(100.0);
        assert!((p.watts() - 0.1).abs() < 1e-15);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Power::from_milliwatts(10.0);
        let b = Power::from_milliwatts(5.0);
        assert!(((a + b).milliwatts() - 15.0).abs() < 1e-15);
        assert!(((a - b).milliwatts() - 5.0).abs() < 1e-15);
        assert!(((a * 2.0).milliwatts() - 20.0).abs() < 1e-15);
        assert!(((a / 2.0).milliwatts() - 5.0).abs() < 1e-15);
        assert!(((-a).milliwatts() + 10.0).abs() < 1e-15);

        let e = Energy::from_joules(4.0);
        let f = Energy::from_joules(1.0);
        assert!(((e + f).joules() - 5.0).abs() < 1e-15);
        assert!(((e - f).joules() - 3.0).abs() < 1e-15);
        assert!((e / f - 4.0).abs() < 1e-15);
        let total: Energy = [e, f].into_iter().sum();
        assert!((total.joules() - 5.0).abs() < 1e-15);
        let ptotal: Power = [a, b].into_iter().sum();
        assert!((ptotal.milliwatts() - 15.0).abs() < 1e-15);
    }

    #[test]
    fn physicality_check() {
        assert!(Power::from_milliwatts(0.0).is_physical());
        assert!(Power::from_milliwatts(1.0).is_physical());
        assert!(!Power::from_milliwatts(-1.0).is_physical());
        assert!(!Power::from_milliwatts(f64::NAN).is_physical());
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_average_power_rejected() {
        let _ = Energy::from_joules(1.0).average_power(0.0);
    }
}
