//! Differential tests: the incremental engine (`Simulator::run`) must
//! reproduce the reference engine (`Simulator::run_reference`) **bit for
//! bit** — identical firing counts, identical reward values, identical
//! final markings — for the same seed, across every feature the engine
//! supports: uncolored and colored nets, guards, inhibitors, priorities and
//! weights, and all three memory policies.
//!
//! Both engines share one RNG implementation and are written to consume
//! draws in the same order, so any divergence is a real semantic bug in the
//! incremental machinery, not floating-point noise — hence `assert_eq` on
//! `f64` values, not tolerances.

use petri_core::arc::ColorExpr;
use petri_core::prelude::*;
use petri_core::sim::RewardSpec;

const SEEDS: std::ops::Range<u64> = 0..25;

/// Run every engine on every seed and require identical outputs:
/// `run` (the lowered default), the incremental interpreter, and the
/// reference engine.
fn assert_identical(sim: &Simulator<'_>, label: &str) {
    for seed in SEEDS {
        let fast = sim
            .run(seed)
            .unwrap_or_else(|e| panic!("{label}/run seed {seed}: {e}"));
        let interp = sim
            .run_interp(seed)
            .unwrap_or_else(|e| panic!("{label}/interp seed {seed}: {e}"));
        assert_eq!(
            fast.firing_counts, interp.firing_counts,
            "{label} seed {seed}: lowered vs interp firing counts diverged"
        );
        assert_eq!(
            fast.rewards, interp.rewards,
            "{label} seed {seed}: lowered vs interp rewards diverged"
        );
        assert_eq!(
            fast.final_marking, interp.final_marking,
            "{label} seed {seed}: lowered vs interp final markings diverged"
        );
        assert_eq!(
            fast.trace, interp.trace,
            "{label} seed {seed}: lowered vs interp traces diverged"
        );
        let reference = sim
            .run_reference(seed)
            .unwrap_or_else(|e| panic!("{label}/reference seed {seed}: {e}"));
        assert_eq!(
            fast.firing_counts, reference.firing_counts,
            "{label} seed {seed}: firing counts diverged"
        );
        assert_eq!(
            fast.rewards, reference.rewards,
            "{label} seed {seed}: rewards diverged"
        );
        assert_eq!(
            fast.final_marking, reference.final_marking,
            "{label} seed {seed}: final markings diverged"
        );
        assert_eq!(
            fast.trace, reference.trace,
            "{label} seed {seed}: traces diverged"
        );
    }
}

/// Uncolored open M/M/1 — the dense count-vector fast path.
#[test]
fn differential_mm1() {
    let mut b = NetBuilder::new("mm1");
    let q = b.place("q").build();
    let arrive = b
        .transition("arrive", Timing::exponential(1.0))
        .output(q, 1)
        .build();
    b.transition("serve", Timing::exponential(2.0))
        .input(q, 1)
        .build();
    let net = b.build().unwrap();
    let mut sim = Simulator::new(&net, SimConfig::for_horizon(2_000.0).with_trace(64));
    sim.reward_place(q);
    sim.reward(RewardSpec::Throughput(arrive)).unwrap();
    assert_identical(&sim, "mm1");
}

/// A DVS-style colored net: a generator emits jobs of three service classes
/// (weighted Choice), a buffer holds them, class-filtered executors drain
/// them at different speeds, and a guard-gated idle timer watches the
/// buffer — colors, filters, Transfer arcs, guards, and immediates at once.
#[test]
fn differential_colored_dvs() {
    let dvs1 = Color(1);
    let dvs2 = Color(2);
    let dvs3 = Color(3);
    let mut b = NetBuilder::new("dvs");
    let buffer = b.place("Buffer").build();
    let stage = b.place("Stage").build();
    let idle = b.place("Idle").tokens(1).build();
    let slept = b.place("Slept").build();
    let done = b.place("Done").build();
    b.transition("gen", Timing::exponential(0.8))
        .output_colored(
            buffer,
            1,
            ColorExpr::Choice(vec![(dvs1, 0.5), (dvs2, 0.3), (dvs3, 0.2)]),
        )
        .build();
    // Stage the job, color preserved, waking the CPU.
    b.transition("dispatch", Timing::immediate())
        .input(buffer, 1)
        .output_colored(stage, 1, ColorExpr::Transfer { arc_index: 0 })
        .build();
    // Per-class service speeds.
    b.transition("exec1", Timing::exponential(10.0))
        .input_filtered(stage, 1, ColorFilter::Eq(dvs1))
        .output(done, 1)
        .build();
    b.transition("exec2", Timing::exponential(5.0))
        .input_filtered(stage, 1, ColorFilter::Eq(dvs2))
        .output(done, 1)
        .build();
    b.transition("exec3", Timing::exponential(2.5))
        .input_filtered(stage, 1, ColorFilter::Eq(dvs3))
        .output(done, 1)
        .build();
    // Idle timer: requires an empty buffer and stage; inhibited by staged
    // work; RaceEnable restart semantics.
    b.transition("sleep", Timing::deterministic(0.7))
        .input(idle, 1)
        .output(slept, 1)
        .inhibitor(stage, 1)
        .guard(Expr::count(buffer).eq_c(0))
        .build();
    b.transition("wake", Timing::exponential(1.0))
        .input(slept, 1)
        .output(idle, 1)
        .build();
    // Drain finished jobs, colored-count guard exercises #place[color].
    b.transition("collect", Timing::deterministic(2.0))
        .input(done, 1)
        .guard(Expr::count(done).gt_c(0))
        .build();
    let net = b.build().unwrap();
    let mut sim = Simulator::new(&net, SimConfig::for_horizon(500.0).with_warmup(20.0));
    sim.reward_place(buffer);
    sim.reward_predicate(Expr::count_color(stage, dvs1).gt_c(0))
        .unwrap();
    assert_identical(&sim, "colored-dvs");
}

/// One net per memory policy: an interrupted deterministic timer under
/// RaceEnable (clock restarts), RaceAge (clock freezes and resumes), and
/// Resample (clock redrawn at every marking change).
fn memory_policy_net(policy: MemoryPolicy) -> Net {
    let mut b = NetBuilder::new("memory");
    let idle = b.place("idle").tokens(1).build();
    let buf = b.place("buf").build();
    let slept = b.place("slept").build();
    b.transition("arrive", Timing::exponential(1.4))
        .output(buf, 1)
        .build();
    b.transition("serve", Timing::exponential(6.0))
        .input(buf, 1)
        .build();
    // Uniform timer so Resample actually re-draws different delays.
    b.transition("sleep", Timing::uniform(0.3, 1.1))
        .input(idle, 1)
        .output(slept, 1)
        .guard(Expr::count(buf).eq_c(0))
        .memory(policy)
        .build();
    b.transition("wake", Timing::erlang(3, 9.0))
        .input(slept, 1)
        .output(idle, 1)
        .build();
    b.build().unwrap()
}

#[test]
fn differential_race_enable() {
    let net = memory_policy_net(MemoryPolicy::RaceEnable);
    let mut sim = Simulator::new(&net, SimConfig::for_horizon(800.0));
    let slept = net.place_by_name("slept").unwrap();
    sim.reward_place(slept);
    assert_identical(&sim, "race-enable");
}

#[test]
fn differential_race_age() {
    let net = memory_policy_net(MemoryPolicy::RaceAge);
    let mut sim = Simulator::new(&net, SimConfig::for_horizon(800.0));
    let slept = net.place_by_name("slept").unwrap();
    sim.reward_place(slept);
    assert_identical(&sim, "race-age");
}

#[test]
fn differential_resample() {
    let net = memory_policy_net(MemoryPolicy::Resample);
    let mut sim = Simulator::new(&net, SimConfig::for_horizon(800.0));
    let slept = net.place_by_name("slept").unwrap();
    sim.reward_place(slept);
    assert_identical(&sim, "resample");
}

/// Immediate priority ladders and weighted conflicts, with inhibitors
/// feeding back — stresses the enabled-immediates index.
#[test]
fn differential_immediate_conflicts() {
    let mut b = NetBuilder::new("conflicts");
    let src = b.place("src").build();
    let a = b.place("a").build();
    let z = b.place("z").build();
    let gate = b.place("gate").tokens(1).build();
    b.transition("gen", Timing::exponential(3.0))
        .output(src, 1)
        .build();
    b.transition(
        "hi",
        Timing::Immediate {
            priority: 2,
            weight: 1.0,
        },
    )
    .input(src, 1)
    .output(a, 1)
    .inhibitor(a, 4)
    .build();
    b.transition(
        "lo1",
        Timing::Immediate {
            priority: 1,
            weight: 1.0,
        },
    )
    .input(src, 1)
    .output(z, 1)
    .build();
    b.transition(
        "lo2",
        Timing::Immediate {
            priority: 1,
            weight: 2.5,
        },
    )
    .input(src, 1)
    .output(z, 2)
    .build();
    b.transition("drain_a", Timing::deterministic(0.9))
        .input(a, 1)
        .guard(Expr::count(gate).gt_c(0))
        .build();
    b.transition("drain_z", Timing::exponential(4.0))
        .input(z, 1)
        .build();
    // The gate flaps, forcing guard-driven enable/disable churn.
    b.transition("flap", Timing::uniform(0.2, 0.6))
        .input(gate, 1)
        .output(gate, 1)
        .build();
    let net = b.build().unwrap();
    let mut sim = Simulator::new(&net, SimConfig::for_horizon(400.0));
    sim.reward_place(a);
    sim.reward_place(z);
    assert_identical(&sim, "immediate-conflicts");
}

/// Multi-token arcs and multi-place invariant chains (tandem), uncolored.
#[test]
fn differential_tandem_batching() {
    let mut b = NetBuilder::new("tandem");
    let p0 = b.place("p0").build();
    let p1 = b.place("p1").build();
    let p2 = b.place("p2").build();
    b.transition("source", Timing::exponential(2.0))
        .output(p0, 1)
        .build();
    // Batch mover: needs 3 tokens, emits 3.
    b.transition("batch", Timing::deterministic(0.4))
        .input(p0, 3)
        .output(p1, 3)
        .build();
    b.transition("step", Timing::exponential(3.0))
        .input(p1, 1)
        .output(p2, 1)
        .build();
    b.transition("sink", Timing::exponential(2.5))
        .input(p2, 1)
        .build();
    let net = b.build().unwrap();
    let mut sim = Simulator::new(&net, SimConfig::for_horizon(600.0));
    sim.reward_place(p0);
    sim.reward_place(p1);
    assert_identical(&sim, "tandem-batching");
}
