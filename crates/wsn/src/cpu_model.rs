//! The CPU EDSPN of the paper's Fig. 3 / Table I.
//!
//! Reconstruction (DESIGN.md §5): an open workload generator (`AR` + `T2`)
//! feeds `CPU_Buffer`; the CPU cycles through `Stand_By → P1 (powering up) →
//! Idle ⇄ Active` under the control of four immediate transitions with the
//! priorities of Table I, the deterministic `Power_Up_Delay` and
//! `Power_Down_Threshold` transitions, and the exponential `Service_Rate`.
//!
//! The Power-Down Threshold transition uses race-enable memory: its clock
//! restarts whenever the CPU re-enters `Idle`, which is precisely the
//! threshold semantics of the paper.

use petri_core::prelude::*;

/// Parameters of the CPU Petri-net model (mirrors
/// [`des::CpuSimParams`] so the two substrates are interchangeable).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModelParams {
    /// Job arrival rate λ (jobs/s).
    pub lambda: f64,
    /// Service rate μ (jobs/s).
    pub mu: f64,
    /// Power-Down Threshold `T` (s).
    pub power_down_threshold: f64,
    /// Power-Up Delay `D` (s).
    pub power_up_delay: f64,
}

impl CpuModelParams {
    /// Table II parameters (λ = 1/s, mean service 0.1 s).
    pub fn paper_defaults(power_down_threshold: f64, power_up_delay: f64) -> Self {
        CpuModelParams {
            lambda: 1.0,
            mu: 10.0,
            power_down_threshold,
            power_up_delay,
        }
    }
}

/// Place handles of the built CPU net.
#[derive(Debug, Clone, Copy)]
pub struct CpuPlaces {
    /// Generator home place (`P0` in Fig. 3).
    pub p0: PlaceId,
    /// Generator intermediate place (`P6`).
    pub p6: PlaceId,
    /// Job queue (`CPU_Buffer`).
    pub buffer: PlaceId,
    /// CPU in standby (`Stand_By`).
    pub stand_by: PlaceId,
    /// CPU powering up (`P1`).
    pub powering_up: PlaceId,
    /// CPU idle (`Idle`).
    pub idle: PlaceId,
    /// CPU busy (`Active`).
    pub active: PlaceId,
}

/// Transition handles of the built CPU net.
#[derive(Debug, Clone, Copy)]
pub struct CpuTransitions {
    /// `Arrival_Rate`: exponential(λ) job generator.
    pub arrival: TransitionId,
    /// `T2`: returns the generator token and deposits the job (imm pri 1).
    pub t2: TransitionId,
    /// `T1`: standby → powering-up when a job waits (imm pri 4).
    pub t1: TransitionId,
    /// `Power_Up_Delay`: deterministic D.
    pub power_up: TransitionId,
    /// `T5`: idle → active when a job waits (imm pri 2).
    pub t5: TransitionId,
    /// `T6`: active → idle when the buffer empties (imm pri 3).
    pub t6: TransitionId,
    /// `Service_Rate`: exponential(μ) service.
    pub service: TransitionId,
    /// `Power_Down_Threshold`: deterministic T, race-enable memory.
    pub power_down: TransitionId,
}

/// A built CPU model: the net plus its handles.
#[derive(Debug)]
pub struct CpuModel {
    /// The EDSPN.
    pub net: Net,
    /// Place handles.
    pub places: CpuPlaces,
    /// Transition handles.
    pub transitions: CpuTransitions,
}

/// Build the Fig. 3 net with race-enable threshold memory (the paper's
/// semantics).
pub fn build_cpu_model(params: &CpuModelParams) -> CpuModel {
    build_cpu_model_with_memory(params, MemoryPolicy::RaceEnable)
}

/// Build the Fig. 3 net with an explicit memory policy on the
/// `Power_Down_Threshold` transition — the ABL-MEMORY ablation showing that
/// the published optimum depends on enabling-memory semantics.
pub fn build_cpu_model_with_memory(params: &CpuModelParams, pdt_memory: MemoryPolicy) -> CpuModel {
    build_cpu_model_full(params, pdt_memory, Timing::exponential(params.lambda))
}

/// Build the Fig. 3 net with an explicit arrival-transition timing — the
/// trigger-driven (Poisson) vs schedule-driven (periodic) comparison of
/// Jung et al. \[12\], the paper's power-table source.
pub fn build_cpu_model_with_arrival(params: &CpuModelParams, arrival: Timing) -> CpuModel {
    build_cpu_model_full(params, MemoryPolicy::RaceEnable, arrival)
}

fn build_cpu_model_full(
    params: &CpuModelParams,
    pdt_memory: MemoryPolicy,
    arrival_timing: Timing,
) -> CpuModel {
    assert!(
        params.lambda > 0.0 && params.mu > 0.0,
        "rates must be positive"
    );
    assert!(
        params.power_down_threshold >= 0.0 && params.power_up_delay >= 0.0,
        "delays must be non-negative"
    );

    let mut b = NetBuilder::new("fig3-cpu");
    let p0 = b.place("P0").tokens(1).build();
    let p6 = b.place("P6").build();
    let buffer = b.place("CPU_Buffer").build();
    let stand_by = b.place("Stand_By").tokens(1).build();
    let powering_up = b.place("P1").build();
    let idle = b.place("Idle").build();
    let active = b.place("Active").build();

    // Open workload generator: AR moves the token P0 -> P6; T2 returns it
    // and deposits the job ("when Arrival_Rate fires to deposit a task in
    // the CPU_Buffer, a token is moved back to place P0", Sec. III-B).
    let arrival = b
        .transition("Arrival_Rate", arrival_timing)
        .input(p0, 1)
        .output(p6, 1)
        .build();
    let t2 = b
        .transition("T2", Timing::immediate_pri(1))
        .input(p6, 1)
        .output(p0, 1)
        .output(buffer, 1)
        .build();

    // CPU power-state component.
    let t1 = b
        .transition("T1", Timing::immediate_pri(4))
        .input(stand_by, 1)
        .output(powering_up, 1)
        .guard(Expr::count(buffer).gt_c(0))
        .build();
    let power_up = b
        .transition(
            "Power_Up_Delay",
            Timing::deterministic(params.power_up_delay),
        )
        .input(powering_up, 1)
        .output(idle, 1)
        .build();
    let t5 = b
        .transition("T5", Timing::immediate_pri(2))
        .input(idle, 1)
        .output(active, 1)
        .guard(Expr::count(buffer).gt_c(0))
        .build();
    let t6 = b
        .transition("T6", Timing::immediate_pri(3))
        .input(active, 1)
        .output(idle, 1)
        .guard(Expr::count(buffer).eq_c(0))
        .build();
    let service = b
        .transition("Service_Rate", Timing::exponential(params.mu))
        .input(active, 1)
        .input(buffer, 1)
        .output(active, 1)
        .build();
    // Defined last: at an exact firing-time tie the job-delivering
    // transitions win (see petri-core's definition-order tie-break).
    let power_down = b
        .transition(
            "Power_Down_Threshold",
            Timing::deterministic(params.power_down_threshold),
        )
        .input(idle, 1)
        .output(stand_by, 1)
        .memory(pdt_memory)
        .build();

    let net = b.build().expect("CPU net is statically valid");
    CpuModel {
        net,
        places: CpuPlaces {
            p0,
            p6,
            buffer,
            stand_by,
            powering_up,
            idle,
            active,
        },
        transitions: CpuTransitions {
            arrival,
            t2,
            t1,
            power_up,
            t5,
            t6,
            service,
            power_down,
        },
    }
}

/// Steady-state estimates from simulating the CPU net.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuPetriResult {
    /// `[standby, powerup, idle, active]` fractions of time.
    pub probabilities: [f64; 4],
    /// Sleep→wake transitions (firings of `T1`).
    pub wakeups: f64,
    /// Jobs served (firings of `Service_Rate`).
    pub jobs_served: f64,
    /// Mean queue length (time-average tokens in `CPU_Buffer`).
    pub mean_queue: f64,
}

impl CpuPetriResult {
    /// Energy over `horizon` seconds under the given power table (Eq. 7).
    pub fn energy(&self, power: &energy::ComponentPower, horizon: f64) -> energy::Energy {
        let [s, w, i, a] = self.probabilities;
        power.average(s, w, i, a).over_seconds(horizon)
    }
}

/// Simulate the CPU net for `horizon` seconds with the given seed.
pub fn simulate_cpu_model(params: &CpuModelParams, horizon: f64, seed: u64) -> CpuPetriResult {
    let model = build_cpu_model(params);
    let mut sim = Simulator::new(&model.net, SimConfig::for_horizon(horizon));
    let r_standby = sim.reward_place(model.places.stand_by);
    let r_powerup = sim.reward_place(model.places.powering_up);
    let r_idle = sim.reward_place(model.places.idle);
    let r_active = sim.reward_place(model.places.active);
    let r_queue = sim.reward_place(model.places.buffer);
    let r_wakeups = sim.reward_firings(model.transitions.t1);
    let r_served = sim.reward_firings(model.transitions.service);
    let out = sim.run(seed).expect("CPU net cannot livelock or overflow");
    CpuPetriResult {
        probabilities: [
            out.reward(r_standby),
            out.reward(r_powerup),
            out.reward(r_idle),
            out.reward(r_active),
        ],
        wakeups: out.reward(r_wakeups),
        jobs_served: out.reward(r_served),
        mean_queue: out.reward(r_queue),
    }
}

/// Simulate the CPU net once per seed in `seeds`, advancing all
/// replications together through [`BatchSimulator`].
///
/// Bit-identical to calling [`simulate_cpu_model`] once per seed — the
/// batched engine interleaves lanes without letting them interact — but
/// builds the net and compiles the reward set once, and overlaps the
/// lanes' serial sampling/heap dependency chains.
pub fn simulate_cpu_model_batch(
    params: &CpuModelParams,
    horizon: f64,
    seeds: &[u64],
) -> Vec<CpuPetriResult> {
    let model = build_cpu_model(params);
    let mut sim = Simulator::new(&model.net, SimConfig::for_horizon(horizon));
    let r_standby = sim.reward_place(model.places.stand_by);
    let r_powerup = sim.reward_place(model.places.powering_up);
    let r_idle = sim.reward_place(model.places.idle);
    let r_active = sim.reward_place(model.places.active);
    let r_queue = sim.reward_place(model.places.buffer);
    let r_wakeups = sim.reward_firings(model.transitions.t1);
    let r_served = sim.reward_firings(model.transitions.service);
    BatchSimulator::new(&sim)
        .run(seeds)
        .into_iter()
        .map(|out| {
            let out = out.expect("CPU net cannot livelock or overflow");
            CpuPetriResult {
                probabilities: [
                    out.reward(r_standby),
                    out.reward(r_powerup),
                    out.reward(r_idle),
                    out.reward(r_active),
                ],
                wakeups: out.reward(r_wakeups),
                jobs_served: out.reward(r_served),
                mean_queue: out.reward(r_queue),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use petri_core::analysis::{explore, lint, p_invariants, ExploreLimits};

    fn params(t: f64, d: f64) -> CpuModelParams {
        CpuModelParams::paper_defaults(t, d)
    }

    #[test]
    fn batch_matches_scalar_per_seed() {
        let p = params(0.1, 0.3);
        let seeds: Vec<u64> = (0..9).collect();
        let batched = simulate_cpu_model_batch(&p, 500.0, &seeds);
        assert_eq!(batched.len(), seeds.len());
        for (lane, (&seed, b)) in seeds.iter().zip(&batched).enumerate() {
            let s = simulate_cpu_model(&p, 500.0, seed);
            assert_eq!(b.probabilities, s.probabilities, "lane {lane}");
            assert_eq!(b.wakeups, s.wakeups, "lane {lane}");
            assert_eq!(b.jobs_served, s.jobs_served, "lane {lane}");
            assert_eq!(b.mean_queue, s.mean_queue, "lane {lane}");
        }
    }

    #[test]
    fn net_shape_matches_fig3() {
        let m = build_cpu_model(&params(0.1, 0.3));
        // 7 places, 8 transitions as reconstructed.
        assert_eq!(m.net.num_places(), 7);
        assert_eq!(m.net.num_transitions(), 8);
        assert!(m.net.place_by_name("CPU_Buffer").is_some());
        assert!(m.net.transition_by_name("Power_Down_Threshold").is_some());
    }

    #[test]
    fn cpu_state_invariant_holds() {
        // Stand_By + P1 + Idle + Active = 1 is a P-invariant: the CPU is in
        // exactly one power state.
        let m = build_cpu_model(&params(0.1, 0.3));
        let invs = p_invariants(&m.net);
        let cpu_inv = invs.iter().find(|inv| {
            let sup = inv.support();
            sup.contains(&m.places.stand_by.index())
                && sup.contains(&m.places.powering_up.index())
                && sup.contains(&m.places.idle.index())
                && sup.contains(&m.places.active.index())
        });
        let inv = cpu_inv.expect("CPU power-state conservation invariant");
        assert_eq!(inv.value(&m.net.initial_marking().count_vector()), 1);
    }

    #[test]
    fn generator_invariant_holds() {
        // P0 + P6 = 1: the generator token is conserved.
        let m = build_cpu_model(&params(0.1, 0.3));
        let invs = p_invariants(&m.net);
        assert!(invs
            .iter()
            .any(|inv| { inv.support() == vec![m.places.p0.index(), m.places.p6.index()] }));
    }

    #[test]
    fn no_structural_lints() {
        let m = build_cpu_model(&params(0.1, 0.3));
        let lints = lint(&m.net);
        assert!(lints.is_empty(), "unexpected lints: {lints:?}");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let r = simulate_cpu_model(&params(0.1, 0.3), 2000.0, 1);
        let total: f64 = r.probabilities.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total={total}");
    }

    #[test]
    fn active_fraction_near_utilization() {
        let r = simulate_cpu_model(&params(0.5, 0.001), 5000.0, 2);
        assert!(
            (r.probabilities[3] - 0.1).abs() < 0.02,
            "active={}",
            r.probabilities[3]
        );
    }

    #[test]
    fn tiny_threshold_mostly_standby() {
        let r = simulate_cpu_model(&params(0.001, 0.001), 5000.0, 3);
        assert!(r.probabilities[0] > 0.8, "standby={}", r.probabilities[0]);
    }

    #[test]
    fn huge_threshold_never_standby_after_first_wake() {
        let r = simulate_cpu_model(&params(1e6, 0.001), 5000.0, 4);
        assert!(r.wakeups <= 1.0);
        assert!(r.probabilities[2] > 0.8, "idle={}", r.probabilities[2]);
    }

    #[test]
    fn agrees_with_des_simulator() {
        // The Petri net and the DES implement the same semantics; their
        // state probabilities must agree within Monte-Carlo noise.
        for (t, d) in [(0.05, 0.001), (0.3, 0.3), (0.5, 1.0)] {
            let petri = simulate_cpu_model(&params(t, d), 20_000.0, 11);
            let mut dp = des::CpuSimParams::paper_defaults(t, d);
            dp.horizon = 20_000.0;
            let des_r = des::simulate_cpu(&dp, 12);
            for (i, (a, b)) in petri
                .probabilities
                .iter()
                .zip(des_r.probabilities().iter())
                .enumerate()
            {
                assert!(
                    (a - b).abs() < 0.02,
                    "T={t} D={d} state {i}: petri {a} vs des {b}"
                );
            }
        }
    }

    #[test]
    fn reachability_is_bounded_in_power_states() {
        // Queue can grow, but power-state places stay 1-bounded. Explore
        // with a small token cap to keep the graph finite.
        let m = build_cpu_model(&params(0.1, 0.3));
        let ex = explore(
            &m.net,
            ExploreLimits {
                max_states: 20_000,
                max_tokens_per_place: 12,
            },
        );
        // The exploration hits the queue bound (open generator), which is
        // expected; what matters is no deadlock in what was seen.
        assert!(ex.deadlocks.is_empty());
    }

    #[test]
    fn wakeups_decrease_with_threshold() {
        let many = simulate_cpu_model(&params(0.001, 0.001), 5000.0, 7).wakeups;
        let few = simulate_cpu_model(&params(2.0, 0.001), 5000.0, 7).wakeups;
        assert!(few < many, "wakeups {many} -> {few}");
    }

    #[test]
    fn energy_matches_probability_average() {
        let r = simulate_cpu_model(&params(0.1, 0.3), 1000.0, 8);
        let e = r.energy(&energy::PXA271_CPU, 1000.0).joules();
        let [s, w, i, a] = r.probabilities;
        let manual = (s * 17.0 + w * 192.976 + i * 88.0 + a * 193.0) * 1e-3 * 1000.0;
        assert!((e - manual).abs() < 1e-9);
    }
}
