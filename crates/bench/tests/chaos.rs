//! Chaos acceptance suite for the supervised execution fleet: under
//! deterministic fault injection — dropped/garbled frames, per-connection
//! kill budgets, crash-armed workers, externally killed peers, and a
//! fleet shrunk to zero — every tier (sharded subprocesses, remote TCP
//! peers, the experiment-service daemon) must still gather **exactly**
//! the bytes of an undisturbed in-process run. Faults may cost retries,
//! restarts, reconnections, quarantines, or a loud in-process fallback;
//! they may never cost a bit of output.
//!
//! The injection is seeded (`ChaosConfig`/`REPRO_CHAOS_*`), so a failing
//! schedule is re-runnable; workers and daemons are the real `repro`
//! binary (`CARGO_BIN_EXE_repro`), so recovery is exercised over the real
//! wire protocol end to end.

use bench::remote::{LocalCluster, LocalService};
use bench::shard::Mm1ReplicationJob;
use sim_runtime::{fleet_stats, ChaosConfig, Exec, FaultPolicy};
use std::time::Duration;

fn repro_bin() -> &'static str {
    env!("CARGO_BIN_EXE_repro")
}

fn worker_cmd() -> Vec<String> {
    vec![repro_bin().to_string(), "--worker".to_string()]
}

/// A unique scratch directory for one test's disk cache.
fn unique_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "repro-chaos-test-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// The fault policy chaos runs use: deep retry budget, fast backoff (the
/// suite injects faults by the dozen and must not sleep through real
/// backoff), a real IO timeout for wedged peers, and the loud in-process
/// fallback as the last line — so every test terminates with correct
/// bytes no matter how hostile the schedule.
fn chaos_fault() -> FaultPolicy {
    FaultPolicy::default()
        .with_retry_budget(12)
        .with_io_timeout(Some(Duration::from_secs(10)))
        .with_fallback(true)
        .with_backoff(Duration::from_millis(1), Duration::from_millis(8))
}

fn mm1_job() -> Mm1ReplicationJob {
    Mm1ReplicationJob {
        horizon: 150.0,
        warmup: 15.0,
        mu_grid: vec![2.0, 5.0, 10.0],
    }
}

/// Run the M/M/1 replication grid on `exec` and return the gathered
/// result bytes.
fn run_mm1(exec: Exec, base_seed: u64, reps: &[u64; 3]) -> Vec<Vec<Vec<u8>>> {
    let job = mm1_job();
    let seed_of = move |p: usize, r: u64| base_seed ^ ((p as u64) << 32) ^ r;
    exec.runner()
        .run_job(&job, reps, &seed_of)
        .expect("chaos run completes (retries/fallback absorb the faults)")
}

/// Per-mille frame-fault rates: clean, light (1%), heavy (10%).
const DROP_GRID: [u32; 3] = [0, 10, 100];

/// Sharded tier: dropped and garbled pipe frames at every rate must cost
/// at most worker restarts, never bytes.
#[test]
fn sharded_tier_bit_identical_under_frame_chaos() {
    let reps = [3u64, 1, 4];
    let baseline = run_mm1(Exec::in_process(1), 0xC4A05, &reps);
    for drop in DROP_GRID {
        let chaos = ChaosConfig::seeded(0xC4A0 + drop as u64)
            .with_drop(drop)
            .with_garble(drop / 2);
        for shards in [1usize, 2] {
            let out = run_mm1(
                Exec::sharded(2, shards)
                    .with_worker_cmd(worker_cmd())
                    .with_fault(chaos_fault())
                    .with_chaos(Some(chaos)),
                0xC4A05,
                &reps,
            );
            assert_eq!(baseline, out, "drop={drop}‰ shards={shards} diverged");
        }
    }
}

/// Remote tier: dropped and garbled TCP frames at every rate must cost at
/// most re-dispatches to surviving peers (or the fallback), never bytes.
#[test]
fn remote_tier_bit_identical_under_frame_chaos() {
    let cluster = LocalCluster::spawn(repro_bin(), 3).expect("cluster spawns");
    let reps = [3u64, 2, 4];
    let baseline = run_mm1(Exec::in_process(1), 0xB0A7, &reps);
    for drop in DROP_GRID {
        let chaos = ChaosConfig::seeded(0xB0A7 ^ u64::from(drop))
            .with_drop(drop)
            .with_garble(drop / 2);
        let out = run_mm1(
            cluster
                .exec(2, 3)
                .with_fault(chaos_fault())
                .with_chaos(Some(chaos)),
            0xB0A7,
            &reps,
        );
        assert_eq!(baseline, out, "drop={drop}‰ diverged");
    }
    cluster.shutdown();
}

/// A per-connection frame budget (`kill_after`) kills every worker pipe
/// mid-chunk: the supervisor must restart workers, re-dispatch only the
/// undelivered remainder, and still gather identical bytes — with the
/// restarts visible in the fleet counters.
#[test]
fn connection_kill_budget_forces_restarts_and_identical_bytes() {
    let reps = [5u64, 4, 5]; // 14 slots: every chunk outlives a 6-frame budget
    let baseline = run_mm1(Exec::in_process(1), 0xD1E, &reps);
    let before = fleet_stats().snapshot();
    let out = run_mm1(
        Exec::sharded(1, 2)
            .with_worker_cmd(worker_cmd())
            .with_fault(chaos_fault())
            .with_chaos(Some(ChaosConfig::seeded(0xD1E).with_kill_after(6))),
        0xD1E,
        &reps,
    );
    assert_eq!(baseline, out);
    let after = fleet_stats().snapshot();
    assert!(
        after.restarts > before.restarts,
        "a 6-frame budget over 7-slot chunks must have restarted workers \
         (before {}, after {})",
        before.restarts,
        after.restarts
    );
}

/// Kill one worker process before every job — the external peer-death
/// flood. Each job must re-dispatch the dead peer's chunks to survivors
/// and stay byte-identical, down to a single live worker.
#[test]
fn kill_one_worker_before_every_job_keeps_results_identical() {
    let mut cluster = LocalCluster::spawn(repro_bin(), 4).expect("cluster spawns");
    let hosts = cluster.hosts();
    let reps = [3u64, 3, 3];
    for round in 0..4usize {
        if round > 0 {
            cluster.kill(round - 1);
        }
        let seed = 0xF100D + round as u64;
        let baseline = run_mm1(Exec::in_process(1), seed, &reps);
        let out = run_mm1(
            Exec::remote(2, hosts.clone()).with_fault(chaos_fault()),
            seed,
            &reps,
        );
        assert_eq!(
            baseline, out,
            "round {round} ({round} dead peer(s)) diverged"
        );
    }
    cluster.shutdown();
}

/// Crash-armed workers (`REPRO_CHAOS_WORKER_CRASH` in the worker
/// environment, exercising the env-armed crash point in the slot loop)
/// die mid-job at seeded slots; re-dispatch and, once the whole fleet is
/// gone, the in-process fallback must keep every job byte-identical.
#[test]
fn crash_armed_workers_degrade_to_identical_results() {
    let env_of = |_i: usize| {
        vec![
            ("REPRO_CHAOS_SEED".to_string(), "11".to_string()),
            ("REPRO_CHAOS_WORKER_CRASH".to_string(), "120".to_string()),
        ]
    };
    let cluster = LocalCluster::spawn_with_env(repro_bin(), 3, env_of).expect("cluster spawns");
    let hosts = cluster.hosts();
    let reps = [4u64, 3, 4];
    for round in 0..2u64 {
        let seed = 0xCAFE ^ (round << 8);
        let baseline = run_mm1(Exec::in_process(1), seed, &reps);
        let out = run_mm1(
            Exec::remote(2, hosts.clone()).with_fault(chaos_fault()),
            seed,
            &reps,
        );
        assert_eq!(baseline, out, "round {round} diverged");
    }
    // Crashed workers cannot take the shutdown frame; Drop reaps them.
}

/// The fleet shrunk to zero: no reachable peer, and a worker command that
/// dies instantly. With the fallback armed both backends must degrade to
/// in-process execution — bit-identical, and counted in the fleet stats.
#[test]
fn fleet_shrunk_to_zero_falls_back_in_process_bit_identically() {
    let reps = [2u64, 3, 2];
    let baseline = run_mm1(Exec::in_process(1), 0x2E80, &reps);
    let fast = FaultPolicy::default()
        .with_retry_budget(0)
        .with_fallback(true)
        .with_backoff(Duration::from_millis(1), Duration::from_millis(2));
    let before = fleet_stats().snapshot();
    let remote = run_mm1(
        Exec::remote(2, vec!["127.0.0.1:1".into()]).with_fault(fast),
        0x2E80,
        &reps,
    );
    assert_eq!(baseline, remote, "remote fallback diverged");
    let sharded = run_mm1(
        Exec::sharded(2, 2)
            .with_worker_cmd(vec!["/bin/false".into()])
            .with_fault(fast),
        0x2E80,
        &reps,
    );
    assert_eq!(baseline, sharded, "sharded fallback diverged");
    let after = fleet_stats().snapshot();
    assert!(
        after.fallbacks >= before.fallbacks + 2,
        "both degraded runs must be counted (before {}, after {})",
        before.fallbacks,
        after.fallbacks
    );
}

/// Service tier: a daemon whose transports are armed purely from the
/// environment (`REPRO_CHAOS_*`, as a deployment would set them) serves
/// results byte-identical to direct execution, and its `stats` verb
/// carries the fleet counters over the versioned wire.
#[test]
fn service_tier_bit_identical_with_env_armed_chaos() {
    let dir = unique_dir("svc");
    let env = vec![
        ("REPRO_CHAOS_SEED".to_string(), "7".to_string()),
        ("REPRO_CHAOS_DROP".to_string(), "40".to_string()),
        ("REPRO_CHAOS_GARBLE".to_string(), "10".to_string()),
    ];
    let svc = LocalService::spawn_with_env(
        repro_bin(),
        &[
            "--threads",
            "2",
            "--shards",
            "2",
            "--retry",
            "12",
            "--io-timeout",
            "10",
            "--cache-dir",
            dir.to_str().unwrap(),
        ],
        &env,
    )
    .expect("daemon spawns");
    let reps = [3u64, 2, 3];
    let baseline = run_mm1(Exec::in_process(1), 0x5E2C, &reps);
    let out = run_mm1(svc.exec(2), 0x5E2C, &reps);
    assert_eq!(baseline, out, "service under chaos diverged");
    let stats = svc.client().stats().expect("stats verb");
    assert_eq!(stats.submitted, 1);
    assert_eq!(stats.executed, 1);
    svc.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
