//! Continuous-time Markov chains: construction and steady-state solution.
//!
//! Two solvers:
//!
//! * **GTH** (Grassmann–Taksar–Heyman) — direct state reduction using only
//!   non-negative quantities; the numerically preferred method for
//!   steady-state chains. `O(n³)`, used up to [`Ctmc::DENSE_LIMIT`] states.
//! * **Uniformized power iteration** — `π ← πP` with `P = I + Q/Λ`; sparse,
//!   memory-light, used for larger chains (e.g. the Erlang phase-type
//!   expansions of [`crate::phase`]).

use std::collections::HashMap;

/// A CTMC specified by its off-diagonal transition rates.
#[derive(Debug, Clone)]
pub struct Ctmc {
    n: usize,
    /// Off-diagonal rates, aggregated: `(from, to) -> rate`.
    rates: HashMap<(usize, usize), f64>,
}

/// Errors from CTMC construction and solving.
#[derive(Debug, Clone, PartialEq)]
pub enum CtmcError {
    /// A rate was negative, NaN, or infinite.
    BadRate {
        /// Source state.
        from: usize,
        /// Destination state.
        to: usize,
    },
    /// A state index was out of range.
    StateOutOfRange(usize),
    /// A self-loop rate was supplied (meaningless in a CTMC generator).
    SelfLoop(usize),
    /// The iterative solver did not converge within the iteration budget.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Final residual.
        residual: f64,
    },
    /// The chain has no states.
    Empty,
}

impl std::fmt::Display for CtmcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtmcError::BadRate { from, to } => write!(f, "bad rate on edge {from}->{to}"),
            CtmcError::StateOutOfRange(s) => write!(f, "state {s} out of range"),
            CtmcError::SelfLoop(s) => write!(f, "self-loop rate on state {s}"),
            CtmcError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "power iteration did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            CtmcError::Empty => write!(f, "chain has no states"),
        }
    }
}

impl std::error::Error for CtmcError {}

impl Ctmc {
    /// Chains at or below this size use the dense GTH solver.
    pub const DENSE_LIMIT: usize = 512;

    /// New chain with `n` states and no transitions.
    pub fn new(n: usize) -> Self {
        Ctmc {
            n,
            rates: HashMap::new(),
        }
    }

    /// Build from an edge list; parallel edges are summed.
    pub fn from_rates(
        n: usize,
        edges: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Result<Self, CtmcError> {
        let mut c = Ctmc::new(n);
        for (from, to, rate) in edges {
            c.add_rate(from, to, rate)?;
        }
        Ok(c)
    }

    /// Add (accumulate) a transition rate.
    pub fn add_rate(&mut self, from: usize, to: usize, rate: f64) -> Result<(), CtmcError> {
        if from >= self.n {
            return Err(CtmcError::StateOutOfRange(from));
        }
        if to >= self.n {
            return Err(CtmcError::StateOutOfRange(to));
        }
        if from == to {
            return Err(CtmcError::SelfLoop(from));
        }
        if !rate.is_finite() || rate < 0.0 {
            return Err(CtmcError::BadRate { from, to });
        }
        if rate > 0.0 {
            *self.rates.entry((from, to)).or_insert(0.0) += rate;
        }
        Ok(())
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.n
    }

    /// Visit every aggregated off-diagonal rate as `(from, to, rate)`.
    pub fn for_each_rate(&self, mut f: impl FnMut(usize, usize, f64)) {
        for (&(from, to), &r) in &self.rates {
            f(from, to, r);
        }
    }

    /// Total exit rate of a state.
    pub fn exit_rate(&self, s: usize) -> f64 {
        self.rates
            .iter()
            .filter(|((f, _), _)| *f == s)
            .map(|(_, &r)| r)
            .sum()
    }

    /// Steady-state distribution. Picks GTH for small chains, uniformized
    /// power iteration for large ones; falls back to power iteration when
    /// GTH detects reducibility.
    pub fn steady_state(&self) -> Result<Vec<f64>, CtmcError> {
        if self.n == 0 {
            return Err(CtmcError::Empty);
        }
        if self.n <= Self::DENSE_LIMIT {
            if let Some(pi) = self.try_steady_state_gth() {
                return Ok(pi);
            }
        }
        self.steady_state_power(2_000_000, 1e-12)
    }

    /// GTH state reduction (exact up to floating point; uses only additions,
    /// multiplications and divisions of non-negative quantities, which is
    /// why it is the numerically preferred direct method).
    ///
    /// Requires an **irreducible** chain; panics otherwise. Use
    /// [`Ctmc::steady_state`] for automatic fallback.
    pub fn steady_state_gth(&self) -> Vec<f64> {
        self.try_steady_state_gth()
            .expect("GTH requires an irreducible chain")
    }

    /// GTH that reports reducibility as `None` instead of panicking.
    pub fn try_steady_state_gth(&self) -> Option<Vec<f64>> {
        let n = self.n;
        if n == 0 {
            return None;
        }
        if n == 1 {
            return Some(vec![1.0]);
        }
        // Dense rate matrix (off-diagonal only).
        let mut q = vec![0.0; n * n];
        for (&(f, t), &r) in &self.rates {
            q[f * n + t] += r;
        }

        // GTH elimination of states n-1 down to 1. `s[k]` is state k's
        // total rate into {0..k-1} before normalization.
        let mut s = vec![0.0; n];
        for k in (1..n).rev() {
            let total: f64 = (0..k).map(|j| q[k * n + j]).sum();
            if total <= 0.0 {
                // State k cannot reach lower-indexed states: the chain is
                // reducible and the plain GTH recursion does not apply.
                return None;
            }
            s[k] = total;
            for j in 0..k {
                q[k * n + j] /= total;
            }
            for i in 0..k {
                let qik = q[i * n + k];
                if qik > 0.0 {
                    for j in 0..k {
                        if j != i {
                            q[i * n + j] += qik * q[k * n + j];
                        }
                    }
                }
            }
        }

        // Back-substitution: pi[k] = (Σ_{j<k} pi[j] q[j][k]) / s[k].
        let mut pi = vec![0.0; n];
        pi[0] = 1.0;
        for k in 1..n {
            let inflow: f64 = (0..k).map(|j| pi[j] * q[j * n + k]).sum();
            pi[k] = inflow / s[k];
        }
        let total: f64 = pi.iter().sum();
        for p in pi.iter_mut() {
            *p /= total;
        }
        Some(pi)
    }

    /// Uniformized power iteration: builds `P = I + Q/Λ` (sparse) and
    /// iterates `π ← πP` until the max-norm change is below `tol`.
    pub fn steady_state_power(&self, max_iters: usize, tol: f64) -> Result<Vec<f64>, CtmcError> {
        let n = self.n;
        if n == 0 {
            return Err(CtmcError::Empty);
        }
        // Exit rates and uniformization constant.
        let mut exit = vec![0.0; n];
        for (&(f, _), &r) in &self.rates {
            exit[f] += r;
        }
        let lambda = exit.iter().cloned().fold(0.0, f64::max) * 1.02 + 1e-9;

        // Sparse CSR-ish: per-source edge list.
        let mut edges: Vec<(usize, usize, f64)> = self
            .rates
            .iter()
            .map(|(&(f, t), &r)| (f, t, r / lambda))
            .collect();
        edges.sort_unstable_by_key(|e| (e.0, e.1));

        let mut pi = vec![1.0 / n as f64; n];
        let mut next = vec![0.0; n];
        for it in 0..max_iters {
            // next = pi * P, with P = I + (Q_offdiag - diag(exit))/lambda.
            for (i, x) in next.iter_mut().enumerate() {
                *x = pi[i] * (1.0 - exit[i] / lambda);
            }
            for &(f, t, p) in &edges {
                next[t] += pi[f] * p;
            }
            let mut diff: f64 = 0.0;
            for i in 0..n {
                diff = diff.max((next[i] - pi[i]).abs());
            }
            std::mem::swap(&mut pi, &mut next);
            if diff < tol {
                // Normalize (guards drift).
                let total: f64 = pi.iter().sum();
                for p in pi.iter_mut() {
                    *p /= total;
                }
                let _ = it;
                return Ok(pi);
            }
        }
        let residual = pi
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        Err(CtmcError::NoConvergence {
            iterations: max_iters,
            residual,
        })
    }

    /// Verify `π·Q ≈ 0` (max-norm of the balance residual).
    pub fn balance_residual(&self, pi: &[f64]) -> f64 {
        let mut flow = vec![0.0; self.n];
        for (&(f, t), &r) in &self.rates {
            flow[f] -= pi[f] * r;
            flow[t] += pi[f] * r;
        }
        flow.iter().cloned().map(f64::abs).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-state chain: up -(a)-> down, down -(b)-> up.
    /// Steady state: pi_up = b/(a+b), pi_down = a/(a+b).
    #[test]
    fn two_state_analytic() {
        let c = Ctmc::from_rates(2, [(0, 1, 2.0), (1, 0, 3.0)]).unwrap();
        let pi = c.steady_state().unwrap();
        assert!((pi[0] - 0.6).abs() < 1e-12);
        assert!((pi[1] - 0.4).abs() < 1e-12);
        assert!(c.balance_residual(&pi) < 1e-12);
    }

    #[test]
    fn power_matches_gth() {
        let edges = [
            (0usize, 1usize, 1.0),
            (1, 2, 2.0),
            (2, 0, 3.0),
            (2, 1, 0.5),
            (1, 0, 0.25),
        ];
        let c = Ctmc::from_rates(3, edges).unwrap();
        let gth = c.steady_state_gth();
        let pow = c.steady_state_power(1_000_000, 1e-13).unwrap();
        for (a, b) in gth.iter().zip(pow.iter()) {
            assert!((a - b).abs() < 1e-8, "gth={a} pow={b}");
        }
    }

    #[test]
    fn mm1k_queue_distribution() {
        // M/M/1/K birth-death: lambda=1, mu=2, K=5.
        // pi_k ∝ rho^k.
        let k = 5;
        let mut c = Ctmc::new(k + 1);
        for i in 0..k {
            c.add_rate(i, i + 1, 1.0).unwrap();
            c.add_rate(i + 1, i, 2.0).unwrap();
        }
        let pi = c.steady_state().unwrap();
        let rho: f64 = 0.5;
        let norm: f64 = (0..=k).map(|i| rho.powi(i as i32)).sum();
        for (i, p) in pi.iter().enumerate() {
            let expect = rho.powi(i as i32) / norm;
            assert!((p - expect).abs() < 1e-12, "state {i}: {p} vs {expect}");
        }
    }

    #[test]
    fn parallel_edges_summed() {
        let c = Ctmc::from_rates(2, [(0, 1, 1.0), (0, 1, 1.0), (1, 0, 2.0)]).unwrap();
        let pi = c.steady_state().unwrap();
        // Effective 2.0 both ways -> uniform.
        assert!((pi[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn error_cases() {
        let mut c = Ctmc::new(2);
        assert!(matches!(c.add_rate(0, 0, 1.0), Err(CtmcError::SelfLoop(0))));
        assert!(matches!(
            c.add_rate(0, 5, 1.0),
            Err(CtmcError::StateOutOfRange(5))
        ));
        assert!(matches!(
            c.add_rate(0, 1, -1.0),
            Err(CtmcError::BadRate { .. })
        ));
        assert!(matches!(
            c.add_rate(0, 1, f64::NAN),
            Err(CtmcError::BadRate { .. })
        ));
        assert!(matches!(Ctmc::new(0).steady_state(), Err(CtmcError::Empty)));
    }

    #[test]
    fn exit_rate_sums_outgoing() {
        let c = Ctmc::from_rates(3, [(0, 1, 1.5), (0, 2, 2.5), (1, 0, 1.0)]).unwrap();
        assert!((c.exit_rate(0) - 4.0).abs() < 1e-12);
        assert!((c.exit_rate(1) - 1.0).abs() < 1e-12);
        assert_eq!(c.exit_rate(2), 0.0);
    }

    #[test]
    fn absorbing_state_gets_all_mass() {
        // 0 -> 1, no way back: state 1 absorbs. GTH declines (reducible),
        // the auto solver falls back to power iteration.
        let c = Ctmc::from_rates(2, [(0, 1, 1.0)]).unwrap();
        assert!(c.try_steady_state_gth().is_none());
        let pi = c.steady_state().unwrap();
        assert!(pi[1] > 0.999, "pi = {pi:?}");
    }

    #[test]
    fn larger_chain_power_solver() {
        // Ring of 600 states (beyond DENSE_LIMIT) with uniform rates:
        // steady state must be uniform.
        let n = 600;
        let mut c = Ctmc::new(n);
        for i in 0..n {
            c.add_rate(i, (i + 1) % n, 1.0).unwrap();
        }
        let pi = c.steady_state().unwrap();
        for &p in &pi {
            assert!((p - 1.0 / n as f64).abs() < 1e-6);
        }
    }
}
