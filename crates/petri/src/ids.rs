//! Strongly-typed index newtypes for places and transitions.
//!
//! Nets store places and transitions in dense vectors; these newtypes make it
//! impossible to confuse a place index with a transition index at compile
//! time while remaining `Copy` and zero-cost.

use core::fmt;

/// Identifier of a place within a [`crate::net::Net`].
///
/// Obtained from [`crate::builder::NetBuilder::place`]; only valid for the
/// net that created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlaceId(pub(crate) u32);

/// Identifier of a transition within a [`crate::net::Net`].
///
/// Obtained from [`crate::builder::NetBuilder::transition`]; only valid for
/// the net that created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransitionId(pub(crate) u32);

impl PlaceId {
    /// Dense index of this place.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a raw index. Intended for iteration utilities; the
    /// index must come from the same net.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        PlaceId(i as u32)
    }
}

impl TransitionId {
    /// Dense index of this transition.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a raw index. Intended for iteration utilities; the
    /// index must come from the same net.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        TransitionId(i as u32)
    }
}

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for TransitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn place_id_roundtrip() {
        let p = PlaceId::from_index(42);
        assert_eq!(p.index(), 42);
        assert_eq!(p, PlaceId(42));
    }

    #[test]
    fn transition_id_roundtrip() {
        let t = TransitionId::from_index(7);
        assert_eq!(t.index(), 7);
        assert_eq!(t, TransitionId(7));
    }

    #[test]
    fn display_forms() {
        assert_eq!(PlaceId(3).to_string(), "P3");
        assert_eq!(TransitionId(9).to_string(), "T9");
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(PlaceId(1) < PlaceId(2));
        assert!(TransitionId(0) < TransitionId(10));
    }
}
