//! # petri-core — EDSPN / SCPN modeling and simulation
//!
//! A from-scratch Rust implementation of the Petri-net class used by
//! Shareef & Zhu, *"Energy Modeling of Wireless Sensor Nodes Based on Petri
//! Nets"* (2010): **E**xtended **D**eterministic and **S**tochastic **P**etri
//! **N**ets with colored tokens (SCPN), the class supported by the TimeNET
//! 4.0 tool the paper used.
//!
//! Features:
//!
//! * immediate (priority + weight), deterministic, exponential, uniform and
//!   Erlang transitions;
//! * colored tokens with local guards (color filters on input arcs) and
//!   color expressions on output arcs;
//! * TimeNET-style **global guards**: boolean marking expressions such as
//!   `(#Buffer == 0) && (#Idle > 0)`, exactly as in Table XI of the paper;
//! * inhibitor arcs and arc multiplicities;
//! * per-transition memory policies (race-enable / race-age / resample);
//! * reward measures (time-average tokens, predicate probabilities,
//!   throughputs, firing counts) integrated exactly between events;
//! * parallel independent replications on the shared `sim_runtime`
//!   executor — bit-identical results at any thread count, plus an
//!   adaptive Student-t stopping mode ("run until the estimate settles");
//! * analysis: bounded reachability, P-invariants, structural lints, and
//!   CTMC extraction for exponential-only nets (the bridge to the `markov`
//!   crate used for cross-validation).
//!
//! ## Quick example
//!
//! ```
//! use petri_core::prelude::*;
//!
//! // CPU with a power-down threshold: Idle --(PDT, 0.5 s det)--> Sleep,
//! // cancelled whenever a job is waiting.
//! let mut b = NetBuilder::new("tiny-cpu");
//! let idle = b.place("Idle").tokens(1).build();
//! let sleep = b.place("Sleep").build();
//! let buffer = b.place("Buffer").build();
//! b.transition("arrive", Timing::exponential(0.2))
//!     .output(buffer, 1)
//!     .build();
//! b.transition("serve", Timing::exponential(10.0))
//!     .input(buffer, 1)
//!     .build();
//! b.transition("power_down", Timing::deterministic(0.5))
//!     .input(idle, 1)
//!     .output(sleep, 1)
//!     .guard(Expr::count(buffer).eq_c(0))
//!     .build();
//! let net = b.build().unwrap();
//!
//! let mut sim = Simulator::new(&net, SimConfig::for_horizon(100.0));
//! let p_sleep = sim.reward_place(sleep);
//! let out = sim.run(42).unwrap();
//! assert!(out.reward(p_sleep) > 0.0); // the CPU eventually sleeps
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod analysis;
pub mod arc;
pub mod builder;
pub mod dot;
pub mod error;
pub mod expr;
pub mod ids;
pub mod marking;
pub mod net;
pub mod replicate;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod timing;
pub mod token;
pub mod transition;

/// The common imports for building and simulating nets.
pub mod prelude {
    pub use crate::arc::ColorExpr;
    pub use crate::builder::NetBuilder;
    pub use crate::error::{BuildError, SimError};
    pub use crate::expr::Expr;
    pub use crate::ids::{PlaceId, TransitionId};
    pub use crate::net::Net;
    pub use crate::replicate::{
        run_replications, run_replications_adaptive, run_replications_batched,
        run_replications_parallel, AdaptiveSummary, ReplicationSummary,
    };
    pub use crate::sim::{
        BatchSimulator, EngineKind, RewardId, RewardSpec, SimConfig, SimOutput, Simulator,
    };
    pub use crate::stats::{ConfidenceLevel, Welford};
    pub use crate::timing::{MemoryPolicy, Timing};
    pub use crate::token::{Color, ColorFilter};
    pub use sim_runtime::StoppingRule;
}
