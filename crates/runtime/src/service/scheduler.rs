//! The scheduler half of the service: dispatcher threads that claim
//! queued jobs and execute them on the configured
//! [`ExecBackend`](crate::exec::ExecBackend).
//!
//! Dispatchers are plain threads (no async runtime in the offline vendor
//! tree): each one blocks on the service's work condvar, claims the oldest
//! queued job, executes it **outside** the service lock — a dispatch may
//! run for minutes across shards or remote peers — and publishes the
//! terminal state. Parallelism *within* a job comes from the backend
//! (threads, worker subprocesses, TCP peers); parallelism *across* jobs
//! comes from running several dispatchers.
//!
//! Each execution writes its backend progress callbacks into the job's
//! shared [`ProgressCell`](super::queue::ProgressCell), which is what the
//! fetch keep-alive path and the HTTP gateway render — observation only,
//! never control flow.

use super::cache::encode_blob;
use super::queue::ClaimedJob;
use super::Service;
use std::sync::Arc;

/// The dispatcher thread body: claim → execute → publish, until the
/// service stops.
pub(super) fn dispatcher_loop(service: &Service) {
    while let Some(claimed) = service.next_claim() {
        execute(service, claimed);
    }
}

/// Execute one claimed job on the service's backend and publish the
/// outcome (result blob into both cache tiers, or the executor error).
pub(super) fn execute(service: &Service, claimed: ClaimedJob) {
    let ClaimedJob {
        job,
        manifest,
        key,
        progress,
        queue_wait,
    } = claimed;
    let tele = crate::telemetry::telemetry();
    tele.histogram("service_queue_wait_ns")
        .record_duration(queue_wait);
    let tr = crate::trace::tracer();
    let trace = if tr.is_enabled() { key.trace_id() } else { 0 };
    // Ambient context for the whole dispatch: backend pool checkouts and
    // slot executions below attribute their spans to this job, and worker
    // subprocesses receive the id on the wire.
    let _ctx = crate::trace::enter(trace);
    tr.record_past(
        trace,
        crate::trace::name::QUEUE_WAIT,
        crate::trace::cat::SERVICE,
        job.0,
        u64::try_from(queue_wait.as_nanos()).unwrap_or(u64::MAX),
    );
    progress.set_total(manifest.total_slots() as u64);
    let cell = progress.clone();
    let on_progress = move |p: crate::grid::Progress| {
        cell.record(p.completed as u64, p.point as u64, p.replication);
    };
    let dispatch_started = tr.start();
    let outcome = service
        .registry()
        .decode(&manifest.kind, &manifest.payload)
        .map_err(crate::exec::ExecError::from)
        .and_then(|decoded| {
            service
                .backend()
                .run_segments(decoded.as_ref(), &manifest, Some(&on_progress))
        });
    tr.record(
        trace,
        crate::trace::name::DISPATCH,
        crate::trace::cat::SERVICE,
        job.0,
        dispatch_started,
    );
    match outcome {
        Ok(slots) => {
            let blob = Arc::new(encode_blob(&slots));
            service.publish_done(job, key, blob);
        }
        Err(e) => {
            // Post-mortem for the failing job: dump its recent spans
            // before publishing. Observation only — the error reaches the
            // waiter byte-for-byte unchanged.
            if let Some(path) = crate::trace::flight_record(trace, &job.to_string(), &e.to_string())
            {
                eprintln!(
                    "[service] {job} failed; flight record at {}",
                    path.display()
                );
            }
            service.publish_failed(job, e);
        }
    }
}
