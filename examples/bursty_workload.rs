//! Bursty workloads: does the paper's optimal Power-Down Threshold survive
//! burstiness?
//!
//! The paper's workloads are Poisson or periodic. Real sensor fields are
//! *bursty* (quiet nights, event storms). This example composes a Markov-
//! modulated Poisson process (MMPP) **inside the Petri net itself** — a
//! two-state modulator (Quiet/Burst places) gating two arrival transitions
//! with different rates — and re-asks Section VII's question. No engine
//! changes needed: this is exactly the modeling flexibility the paper
//! advertises for Petri nets.
//!
//! ```sh
//! cargo run --release --example bursty_workload
//! ```

use wsn_petri::prelude::*;

/// Build the Fig. 3 CPU with an MMPP workload: Quiet state arrivals at
/// `rate_quiet`, Burst state at `rate_burst`, switching at `switch_rate`.
/// The average rate is kept at 1 job/s for comparability with the paper.
fn build_mmpp_cpu(pdt: f64, pud: f64, rate_quiet: f64, rate_burst: f64, switch_rate: f64) -> Net {
    let mut b = NetBuilder::new("mmpp-cpu");
    // Modulator.
    let quiet = b.place("Quiet").tokens(1).build();
    let burst = b.place("Burst").build();
    b.transition("go_burst", Timing::exponential(switch_rate))
        .input(quiet, 1)
        .output(burst, 1)
        .build();
    b.transition("go_quiet", Timing::exponential(switch_rate))
        .input(burst, 1)
        .output(quiet, 1)
        .build();
    // Modulated arrivals (guards instead of arcs keep the modulator clean).
    let buffer = b.place("Buffer").build();
    b.transition("arrive_quiet", Timing::exponential(rate_quiet))
        .output(buffer, 1)
        .guard(Expr::count(quiet).gt_c(0))
        .build();
    b.transition("arrive_burst", Timing::exponential(rate_burst))
        .output(buffer, 1)
        .guard(Expr::count(burst).gt_c(0))
        .build();
    // The Fig. 3 CPU component.
    let sleeping = b.place("Sleeping").tokens(1).build();
    let waking = b.place("Waking").build();
    let idle = b.place("Idle").build();
    let active = b.place("Active").build();
    b.transition("wake", Timing::immediate_pri(4))
        .input(sleeping, 1)
        .output(waking, 1)
        .guard(Expr::count(buffer).gt_c(0))
        .build();
    b.transition("wake_done", Timing::deterministic(pud))
        .input(waking, 1)
        .output(idle, 1)
        .build();
    b.transition("start", Timing::immediate_pri(2))
        .input(idle, 1)
        .output(active, 1)
        .guard(Expr::count(buffer).gt_c(0))
        .build();
    b.transition("stop", Timing::immediate_pri(3))
        .input(active, 1)
        .output(idle, 1)
        .guard(Expr::count(buffer).eq_c(0))
        .build();
    b.transition("serve", Timing::exponential(10.0))
        .input(active, 1)
        .input(buffer, 1)
        .output(active, 1)
        .build();
    b.transition("power_down", Timing::deterministic(pdt))
        .input(idle, 1)
        .output(sleeping, 1)
        .build();
    b.build().expect("valid MMPP net")
}

fn energy_at(pdt: f64, rate_quiet: f64, rate_burst: f64, seeds: u64) -> f64 {
    let horizon = 5000.0;
    let net = build_mmpp_cpu(pdt, 0.3, rate_quiet, rate_burst, 0.05);
    let mut sim = Simulator::new(&net, SimConfig::for_horizon(horizon));
    let rs = [
        sim.reward_place(net.place_by_name("Sleeping").unwrap()),
        sim.reward_place(net.place_by_name("Waking").unwrap()),
        sim.reward_place(net.place_by_name("Idle").unwrap()),
        sim.reward_place(net.place_by_name("Active").unwrap()),
    ];
    let mut total = 0.0;
    for s in 0..seeds {
        let out = sim.run(1000 + s).expect("runs");
        let p: Vec<f64> = rs.iter().map(|&r| out.reward(r)).collect();
        total += PXA271_CPU
            .average(p[0], p[1], p[2], p[3])
            .over_seconds(horizon)
            .joules();
    }
    total / seeds as f64
}

fn main() {
    let grid = [0.001, 0.01, 0.05, 0.1, 0.3, 0.5, 1.0, 2.0, 5.0];

    println!("CPU energy (J / 5000 s, PUD = 0.3 s) vs Power-Down Threshold\n");
    println!(
        "{:>8} {:>16} {:>16} {:>16}",
        "PDT (s)", "Poisson (1/s)", "mild burst", "heavy burst"
    );
    // Mixtures averaging ~1 job/s: (quiet, burst) rates.
    let scenarios = [(1.0, 1.0), (0.4, 1.6), (0.1, 1.9)];
    let mut best = [(f64::MAX, 0.0); 3];
    for &pdt in &grid {
        let mut row = format!("{pdt:>8}");
        for (i, &(q, bst)) in scenarios.iter().enumerate() {
            let e = energy_at(pdt, q, bst, 6);
            if e < best[i].0 {
                best[i] = (e, pdt);
            }
            row.push_str(&format!(" {e:>16.2}"));
        }
        println!("{row}");
    }
    println!(
        "\noptimal PDT: Poisson {} s, mild burst {} s, heavy burst {} s",
        best[0].1, best[1].1, best[2].1
    );
    println!(
        "\nBurstiness concentrates arrivals: during storms the CPU rides from job to\n\
         job without sleeping, and during lulls it sleeps regardless — so the optimum\n\
         threshold (and the price of getting it wrong) shifts with the duty cycle.\n\
         The paper's machinery answers this with ~40 lines of net construction."
    );
}
