//! CTMC extraction from exponential-only nets.
//!
//! A stochastic Petri net whose transitions are all exponential is exactly a
//! continuous-time Markov chain over its reachability graph. This module
//! builds that chain so the `markov` crate can solve it analytically — the
//! cross-validation oracle used throughout the test suite.
//!
//! If any transition is deterministic/uniform/Erlang/immediate, the marking
//! process is *not* Markovian (the paper's central point); extraction is
//! refused with [`ExtractError::NotExponential`].

use crate::ids::TransitionId;
use crate::marking::Marking;
use crate::net::Net;
use crate::timing::Timing;
use std::collections::HashMap;

/// Why CTMC extraction failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtractError {
    /// The net contains a non-exponential transition (name reported).
    NotExponential(String),
    /// The state space exceeded the cap.
    TooManyStates(usize),
    /// The net contains a `Choice` colored output arc, whose branch
    /// probabilities would need splitting rates; not supported.
    ChoiceArc(String),
}

impl std::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtractError::NotExponential(t) => {
                write!(
                    f,
                    "transition {t:?} is not exponential; marking process is not a CTMC"
                )
            }
            ExtractError::TooManyStates(n) => write!(f, "state space exceeds cap ({n} states)"),
            ExtractError::ChoiceArc(t) => {
                write!(f, "transition {t:?} has a Choice output arc; not supported")
            }
        }
    }
}

impl std::error::Error for ExtractError {}

/// An extracted CTMC: states are reachable markings, edges carry rates.
#[derive(Debug, Clone)]
pub struct CtmcExtraction {
    /// Distinct reachable markings, index = CTMC state id.
    pub states: Vec<Marking>,
    /// `(from, to, rate)` triples; multiple transitions between the same
    /// marking pair are kept as separate entries (solvers sum them).
    pub rates: Vec<(usize, usize, f64)>,
    /// Index of the initial marking in `states`.
    pub initial: usize,
}

impl CtmcExtraction {
    /// Find the state index of a marking, if reachable.
    pub fn state_of(&self, m: &Marking) -> Option<usize> {
        let key = m.canonical_key();
        self.states.iter().position(|s| s.canonical_key() == key)
    }
}

/// Extract the CTMC of an exponential-only net (up to `max_states`).
pub fn extract_ctmc(net: &Net, max_states: usize) -> Result<CtmcExtraction, ExtractError> {
    // Class check first: every transition exponential, no Choice arcs.
    for tid in net.transition_ids() {
        let t = net.transition(tid);
        match t.timing {
            Timing::Exponential { .. } => {}
            _ => return Err(ExtractError::NotExponential(t.name.clone())),
        }
        if t.outputs
            .iter()
            .any(|a| matches!(a.color, crate::arc::ColorExpr::Choice(_)))
        {
            return Err(ExtractError::ChoiceArc(t.name.clone()));
        }
    }

    let initial = net.initial_marking();
    let mut index: HashMap<Vec<u32>, usize> = HashMap::new();
    let mut states: Vec<Marking> = Vec::new();
    let mut rates: Vec<(usize, usize, f64)> = Vec::new();
    let mut queue: Vec<usize> = Vec::new();

    index.insert(initial.canonical_key(), 0);
    states.push(initial);
    queue.push(0);

    while let Some(si) = queue.pop() {
        let m = states[si].clone();
        for ti in 0..net.num_transitions() {
            let t = net.transition(TransitionId::from_index(ti));
            // Enabling.
            let enabled = t
                .inputs
                .iter()
                .all(|a| m.count_matching(a.place, &a.filter) >= a.multiplicity as usize)
                && t.inhibitors
                    .iter()
                    .all(|a| m.count_matching(a.place, &a.filter) < a.threshold as usize)
                && t.guard.as_ref().is_none_or(|g| g.eval_bool(&m));
            if !enabled {
                continue;
            }
            // Successor marking (Const / Transfer colors are deterministic).
            let mut s = m.clone();
            let mut consumed = Vec::new();
            let mut offsets = Vec::new();
            for arc in &t.inputs {
                offsets.push(consumed.len());
                for _ in 0..arc.multiplicity {
                    consumed.push(s.withdraw(arc.place, &arc.filter).expect("enabled"));
                }
            }
            let mut rng = crate::rng::SimRng::seed_from_u64(0); // unused by Const/Transfer
            for arc in &t.outputs {
                for _ in 0..arc.multiplicity {
                    let c = arc.color.eval(&consumed, &offsets, &mut rng);
                    s.deposit(arc.place, c);
                }
            }
            let rate = match t.timing {
                Timing::Exponential { rate } => rate,
                _ => unreachable!("class-checked above"),
            };
            let key = s.canonical_key();
            let ti_state = match index.get(&key) {
                Some(&i) => i,
                None => {
                    if states.len() >= max_states {
                        return Err(ExtractError::TooManyStates(max_states));
                    }
                    let i = states.len();
                    index.insert(key, i);
                    states.push(s);
                    queue.push(i);
                    i
                }
            };
            if ti_state != si {
                rates.push((si, ti_state, rate));
            }
            // Self-loops contribute nothing to a CTMC generator; skip.
        }
    }

    Ok(CtmcExtraction {
        states,
        rates,
        initial: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetBuilder;

    #[test]
    fn two_state_chain_extracted() {
        let mut b = NetBuilder::new("onoff");
        let on = b.place("on").tokens(1).build();
        let off = b.place("off").build();
        b.transition("down", Timing::exponential(2.0))
            .input(on, 1)
            .output(off, 1)
            .build();
        b.transition("up", Timing::exponential(3.0))
            .input(off, 1)
            .output(on, 1)
            .build();
        let net = b.build().unwrap();
        let ctmc = extract_ctmc(&net, 100).unwrap();
        assert_eq!(ctmc.states.len(), 2);
        assert_eq!(ctmc.rates.len(), 2);
        assert_eq!(ctmc.initial, 0);
        // Rates present in both directions.
        let mut rs: Vec<f64> = ctmc.rates.iter().map(|r| r.2).collect();
        rs.sort_by(f64::total_cmp);
        assert_eq!(rs, vec![2.0, 3.0]);
    }

    #[test]
    fn deterministic_transition_refused() {
        let mut b = NetBuilder::new("det");
        let p = b.place("p").tokens(1).build();
        b.transition("t", Timing::deterministic(1.0))
            .input(p, 1)
            .output(p, 1)
            .build();
        let net = b.build().unwrap();
        assert!(matches!(
            extract_ctmc(&net, 100),
            Err(ExtractError::NotExponential(_))
        ));
    }

    #[test]
    fn immediate_transition_refused() {
        let mut b = NetBuilder::new("imm");
        let p = b.place("p").tokens(1).build();
        let q = b.place("q").build();
        b.transition("t", Timing::immediate())
            .input(p, 1)
            .output(q, 1)
            .build();
        b.transition("u", Timing::exponential(1.0))
            .input(q, 1)
            .output(p, 1)
            .build();
        let net = b.build().unwrap();
        assert!(matches!(
            extract_ctmc(&net, 100),
            Err(ExtractError::NotExponential(_))
        ));
    }

    #[test]
    fn state_cap_enforced() {
        let mut b = NetBuilder::new("open");
        let q = b.place("q").build();
        b.transition("gen", Timing::exponential(1.0))
            .output(q, 1)
            .build();
        let net = b.build().unwrap();
        assert!(matches!(
            extract_ctmc(&net, 10),
            Err(ExtractError::TooManyStates(10))
        ));
    }

    #[test]
    fn mm1k_chain_has_k_plus_one_states() {
        // M/M/1/4: arrivals blocked at 4 via inhibitor arc.
        let mut b = NetBuilder::new("mm1k");
        let q = b.place("q").build();
        b.transition("arrive", Timing::exponential(1.0))
            .output(q, 1)
            .inhibitor(q, 4)
            .build();
        b.transition("serve", Timing::exponential(2.0))
            .input(q, 1)
            .build();
        let net = b.build().unwrap();
        let ctmc = extract_ctmc(&net, 100).unwrap();
        assert_eq!(ctmc.states.len(), 5); // 0..=4 customers
                                          // Birth-death structure: 4 up + 4 down edges.
        assert_eq!(ctmc.rates.len(), 8);
    }

    #[test]
    fn state_of_finds_markings() {
        let mut b = NetBuilder::new("onoff2");
        let on = b.place("on").tokens(1).build();
        let off = b.place("off").build();
        b.transition("down", Timing::exponential(1.0))
            .input(on, 1)
            .output(off, 1)
            .build();
        b.transition("up", Timing::exponential(1.0))
            .input(off, 1)
            .output(on, 1)
            .build();
        let net = b.build().unwrap();
        let ctmc = extract_ctmc(&net, 10).unwrap();
        assert_eq!(ctmc.state_of(&net.initial_marking()), Some(0));
        let mut other = Marking::empty(2);
        other.deposit(off, crate::token::Color::NONE);
        assert_eq!(ctmc.state_of(&other), Some(1));
    }
}
