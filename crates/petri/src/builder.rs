//! Fluent construction and validation of nets.
//!
//! ```
//! use petri_core::prelude::*;
//!
//! // A trivial open M/M/1-style net: jobs arrive, jobs get served.
//! let mut b = NetBuilder::new("mm1");
//! let queue = b.place("queue").build();
//! b.transition("arrive", Timing::exponential(1.0))
//!     .output(queue, 1)
//!     .build();
//! b.transition("serve", Timing::exponential(2.0))
//!     .input(queue, 1)
//!     .build();
//! let net = b.build().unwrap();
//! assert_eq!(net.num_transitions(), 2);
//! ```

use crate::arc::{ColorExpr, InhibitorArc, InputArc, OutputArc};
use crate::error::BuildError;
use crate::expr::{Expr, ExprKind};
use crate::ids::{PlaceId, TransitionId};
use crate::net::{Net, Place};
use crate::timing::{MemoryPolicy, Timing};
use crate::token::{Color, ColorFilter};
use crate::transition::Transition;

/// Builder for a [`Net`]. Add places, then transitions, then call
/// [`NetBuilder::build`] to validate.
#[derive(Debug, Default)]
pub struct NetBuilder {
    name: String,
    places: Vec<Place>,
    transitions: Vec<Transition>,
}

impl NetBuilder {
    /// Start building a net with the given diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        NetBuilder {
            name: name.into(),
            places: Vec::new(),
            transitions: Vec::new(),
        }
    }

    /// Begin defining a place. Finish with [`PlaceBuilder::build`], which
    /// returns the [`PlaceId`].
    pub fn place(&mut self, name: impl Into<String>) -> PlaceBuilder<'_> {
        PlaceBuilder {
            net: self,
            name: name.into(),
            initial: Vec::new(),
        }
    }

    /// Shorthand: add a place with `n` uncolored initial tokens.
    pub fn place_with(&mut self, name: impl Into<String>, n: usize) -> PlaceId {
        let mut pb = self.place(name);
        pb.initial = vec![Color::NONE; n];
        pb.build()
    }

    /// Begin defining a transition. Finish with [`TransitionBuilder::build`],
    /// which returns the [`TransitionId`].
    pub fn transition(&mut self, name: impl Into<String>, timing: Timing) -> TransitionBuilder<'_> {
        TransitionBuilder {
            net: self,
            t: Transition {
                name: name.into(),
                timing,
                memory: MemoryPolicy::default(),
                inputs: Vec::new(),
                outputs: Vec::new(),
                inhibitors: Vec::new(),
                guard: None,
            },
        }
    }

    /// Validate everything and produce the immutable [`Net`].
    pub fn build(self) -> Result<Net, BuildError> {
        // Unique names.
        for (i, p) in self.places.iter().enumerate() {
            if self.places[..i].iter().any(|q| q.name == p.name) {
                return Err(BuildError::DuplicatePlaceName(p.name.clone()));
            }
            if p.initial.iter().any(|c| c.0 == u32::MAX) {
                return Err(BuildError::ReservedColor {
                    context: format!("initial marking of place {:?}", p.name),
                });
            }
        }
        for (i, t) in self.transitions.iter().enumerate() {
            if self.transitions[..i].iter().any(|u| u.name == t.name) {
                return Err(BuildError::DuplicateTransitionName(t.name.clone()));
            }
        }
        if self.transitions.is_empty() {
            return Err(BuildError::NoTransitions);
        }

        let num_places = self.places.len();
        for t in &self.transitions {
            // Enabling tests count tokens per place, so a transition may
            // consume from (or inhibit on) each place through at most one arc.
            for (i, a) in t.inputs.iter().enumerate() {
                if t.inputs[..i].iter().any(|b| b.place == a.place) {
                    return Err(BuildError::DuplicateArcPlace {
                        transition: t.name.clone(),
                    });
                }
            }
            for (i, a) in t.inhibitors.iter().enumerate() {
                if t.inhibitors[..i].iter().any(|b| b.place == a.place) {
                    return Err(BuildError::DuplicateArcPlace {
                        transition: t.name.clone(),
                    });
                }
            }
            t.timing
                .validate()
                .map_err(|message| BuildError::InvalidTiming {
                    transition: t.name.clone(),
                    message,
                })?;
            for a in &t.inputs {
                if a.multiplicity == 0 {
                    return Err(BuildError::ZeroMultiplicity {
                        transition: t.name.clone(),
                    });
                }
            }
            for a in &t.outputs {
                if a.multiplicity == 0 {
                    return Err(BuildError::ZeroMultiplicity {
                        transition: t.name.clone(),
                    });
                }
                match &a.color {
                    ColorExpr::Const(c) => {
                        if c.0 == u32::MAX {
                            return Err(BuildError::ReservedColor {
                                context: format!("output arc of transition {:?}", t.name),
                            });
                        }
                    }
                    ColorExpr::Transfer { arc_index } => {
                        if *arc_index >= t.inputs.len() {
                            return Err(BuildError::BadTransferIndex {
                                transition: t.name.clone(),
                                index: *arc_index,
                                num_inputs: t.inputs.len(),
                            });
                        }
                    }
                    ColorExpr::Choice(pairs) => {
                        let total: f64 = pairs.iter().map(|(_, w)| *w).sum();
                        // `!(total > 0.0)` deliberately catches NaN too.
                        #[allow(clippy::neg_cmp_op_on_partial_ord)]
                        if pairs.is_empty() || !(total > 0.0) {
                            return Err(BuildError::BadChoice {
                                transition: t.name.clone(),
                            });
                        }
                        if pairs.iter().any(|(c, _)| c.0 == u32::MAX) {
                            return Err(BuildError::ReservedColor {
                                context: format!("Choice colors of transition {:?}", t.name),
                            });
                        }
                    }
                }
            }
            for a in &t.inhibitors {
                if a.threshold == 0 {
                    return Err(BuildError::ZeroMultiplicity {
                        transition: t.name.clone(),
                    });
                }
            }
            if let Some(g) = &t.guard {
                if g.kind() != Some(ExprKind::Bool) {
                    return Err(BuildError::IllTypedGuard {
                        transition: t.name.clone(),
                    });
                }
                if let Some(max) = g.max_place_index() {
                    if max >= num_places {
                        return Err(BuildError::GuardPlaceOutOfRange {
                            transition: t.name.clone(),
                        });
                    }
                }
            }
        }

        // Dependency index: which transitions must be re-checked when a
        // place's contents change. Inputs, inhibitors, and guard references
        // determine enabling; output places are included too so self-loops
        // and reward hooks stay conservative.
        let mut affected_by: Vec<Vec<TransitionId>> = vec![Vec::new(); num_places];
        let mut scratch: Vec<PlaceId> = Vec::new();
        for (ti, t) in self.transitions.iter().enumerate() {
            let tid = TransitionId::from_index(ti);
            scratch.clear();
            scratch.extend(t.inputs.iter().map(|a| a.place));
            scratch.extend(t.inhibitors.iter().map(|a| a.place));
            scratch.extend(t.outputs.iter().map(|a| a.place));
            if let Some(g) = &t.guard {
                g.collect_places(&mut scratch);
            }
            scratch.sort_unstable();
            scratch.dedup();
            for p in &scratch {
                affected_by[p.index()].push(tid);
            }
        }

        // Color-flow fixpoint: which places can ever hold a non-NONE token?
        // Sources: colored initial tokens, Const/Choice output arcs naming a
        // non-NONE color, and Transfer arcs copying from a (transitively)
        // colored place. Count-only places get the dense O(1) marking layout.
        let mut colored: Vec<bool> = self
            .places
            .iter()
            .map(|p| p.initial.iter().any(|c| *c != Color::NONE))
            .collect();
        loop {
            let mut changed = false;
            for t in &self.transitions {
                for a in &t.outputs {
                    let produces_color = match &a.color {
                        ColorExpr::Const(c) => *c != Color::NONE,
                        ColorExpr::Choice(pairs) => pairs.iter().any(|(c, _)| *c != Color::NONE),
                        // Validated above: arc_index is in range.
                        ColorExpr::Transfer { arc_index } => {
                            colored[t.inputs[*arc_index].place.index()]
                        }
                    };
                    if produces_color && !colored[a.place.index()] {
                        colored[a.place.index()] = true;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        Ok(Net {
            name: self.name,
            places: self.places,
            transitions: self.transitions,
            affected_by,
            colored: colored.into(),
        })
    }
}

/// In-progress place definition.
pub struct PlaceBuilder<'a> {
    net: &'a mut NetBuilder,
    name: String,
    initial: Vec<Color>,
}

impl PlaceBuilder<'_> {
    /// Give the place `n` uncolored initial tokens.
    pub fn tokens(mut self, n: usize) -> Self {
        self.initial.extend((0..n).map(|_| Color::NONE));
        self
    }

    /// Give the place one initial token of color `c`.
    pub fn token_colored(mut self, c: Color) -> Self {
        self.initial.push(c);
        self
    }

    /// Finish; returns the place id.
    pub fn build(self) -> PlaceId {
        let id = PlaceId::from_index(self.net.places.len());
        self.net.places.push(Place {
            name: self.name,
            initial: self.initial,
        });
        id
    }
}

/// In-progress transition definition.
pub struct TransitionBuilder<'a> {
    net: &'a mut NetBuilder,
    t: Transition,
}

impl TransitionBuilder<'_> {
    /// Add an input arc consuming `multiplicity` tokens of any color.
    pub fn input(mut self, place: PlaceId, multiplicity: u32) -> Self {
        self.t.inputs.push(InputArc {
            place,
            multiplicity,
            filter: ColorFilter::Any,
        });
        self
    }

    /// Add an input arc with a color filter (local guard).
    pub fn input_filtered(
        mut self,
        place: PlaceId,
        multiplicity: u32,
        filter: ColorFilter,
    ) -> Self {
        self.t.inputs.push(InputArc {
            place,
            multiplicity,
            filter,
        });
        self
    }

    /// Add an output arc depositing `multiplicity` uncolored tokens.
    pub fn output(mut self, place: PlaceId, multiplicity: u32) -> Self {
        self.t.outputs.push(OutputArc {
            place,
            multiplicity,
            color: ColorExpr::default(),
        });
        self
    }

    /// Add an output arc with an explicit color expression.
    pub fn output_colored(mut self, place: PlaceId, multiplicity: u32, color: ColorExpr) -> Self {
        self.t.outputs.push(OutputArc {
            place,
            multiplicity,
            color,
        });
        self
    }

    /// Add an inhibitor arc: disabled while `place` holds >= `threshold`
    /// tokens.
    pub fn inhibitor(mut self, place: PlaceId, threshold: u32) -> Self {
        self.t.inhibitors.push(InhibitorArc {
            place,
            threshold,
            filter: ColorFilter::Any,
        });
        self
    }

    /// Add an inhibitor arc counting only tokens matching `filter`.
    pub fn inhibitor_filtered(
        mut self,
        place: PlaceId,
        threshold: u32,
        filter: ColorFilter,
    ) -> Self {
        self.t.inhibitors.push(InhibitorArc {
            place,
            threshold,
            filter,
        });
        self
    }

    /// Set the global guard (boolean marking predicate).
    pub fn guard(mut self, g: Expr) -> Self {
        self.t.guard = Some(g);
        self
    }

    /// Set the memory policy (timed transitions only; ignored otherwise).
    pub fn memory(mut self, m: MemoryPolicy) -> Self {
        self.t.memory = m;
        self
    }

    /// Finish; returns the transition id.
    pub fn build(self) -> TransitionId {
        let id = TransitionId::from_index(self.net.transitions.len());
        self.net.transitions.push(self.t);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_net_builds() {
        let mut b = NetBuilder::new("min");
        let p = b.place("p").tokens(1).build();
        b.transition("t", Timing::immediate()).input(p, 1).build();
        assert!(b.build().is_ok());
    }

    #[test]
    fn duplicate_place_name_rejected() {
        let mut b = NetBuilder::new("dup");
        b.place("x").build();
        b.place("x").build();
        b.transition("t", Timing::immediate()).build();
        assert_eq!(
            b.build().unwrap_err(),
            BuildError::DuplicatePlaceName("x".into())
        );
    }

    #[test]
    fn duplicate_transition_name_rejected() {
        let mut b = NetBuilder::new("dup");
        let p = b.place("p").build();
        b.transition("t", Timing::immediate()).input(p, 1).build();
        b.transition("t", Timing::immediate()).input(p, 1).build();
        assert_eq!(
            b.build().unwrap_err(),
            BuildError::DuplicateTransitionName("t".into())
        );
    }

    #[test]
    fn empty_net_rejected() {
        let b = NetBuilder::new("empty");
        assert_eq!(b.build().unwrap_err(), BuildError::NoTransitions);
    }

    #[test]
    fn bad_timing_rejected() {
        let mut b = NetBuilder::new("badtiming");
        let p = b.place("p").build();
        b.transition("t", Timing::exponential(-1.0))
            .input(p, 1)
            .build();
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::InvalidTiming { .. }
        ));
    }

    #[test]
    fn zero_multiplicity_rejected() {
        let mut b = NetBuilder::new("zero");
        let p = b.place("p").build();
        b.transition("t", Timing::immediate()).input(p, 0).build();
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::ZeroMultiplicity { .. }
        ));
    }

    #[test]
    fn zero_inhibitor_threshold_rejected() {
        let mut b = NetBuilder::new("zeroinh");
        let p = b.place("p").build();
        b.transition("t", Timing::immediate())
            .inhibitor(p, 0)
            .build();
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::ZeroMultiplicity { .. }
        ));
    }

    #[test]
    fn bad_transfer_index_rejected() {
        let mut b = NetBuilder::new("badtransfer");
        let p = b.place("p").build();
        let q = b.place("q").build();
        b.transition("t", Timing::immediate())
            .input(p, 1)
            .output_colored(q, 1, ColorExpr::Transfer { arc_index: 5 })
            .build();
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::BadTransferIndex { index: 5, .. }
        ));
    }

    #[test]
    fn empty_choice_rejected() {
        let mut b = NetBuilder::new("badchoice");
        let q = b.place("q").build();
        b.transition("t", Timing::exponential(1.0))
            .output_colored(q, 1, ColorExpr::Choice(vec![]))
            .build();
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::BadChoice { .. }
        ));
    }

    #[test]
    fn ill_typed_guard_rejected() {
        let mut b = NetBuilder::new("badguard");
        let p = b.place("p").build();
        b.transition("t", Timing::immediate())
            .input(p, 1)
            .guard(Expr::constant(1)) // int, not bool
            .build();
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::IllTypedGuard { .. }
        ));
    }

    #[test]
    fn guard_place_out_of_range_rejected() {
        let mut b = NetBuilder::new("oorguard");
        let p = b.place("p").build();
        b.transition("t", Timing::immediate())
            .input(p, 1)
            .guard(Expr::count(PlaceId::from_index(99)).gt_c(0))
            .build();
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::GuardPlaceOutOfRange { .. }
        ));
    }

    #[test]
    fn reserved_color_rejected() {
        let mut b = NetBuilder::new("reserved");
        b.place("p").token_colored(Color(u32::MAX)).build();
        b.transition("t", Timing::immediate()).build();
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::ReservedColor { .. }
        ));
    }

    #[test]
    fn colored_initial_tokens() {
        let mut b = NetBuilder::new("colors");
        let p = b
            .place("p")
            .token_colored(Color(1))
            .token_colored(Color(2))
            .build();
        b.transition("t", Timing::immediate()).input(p, 1).build();
        let net = b.build().unwrap();
        let m = net.initial_marking();
        assert_eq!(m.count(p), 2);
        assert_eq!(m.count_color(p, Color(1)), 1);
        assert_eq!(m.count_color(p, Color(2)), 1);
    }

    #[test]
    fn duplicate_input_arc_place_rejected() {
        let mut b = NetBuilder::new("duparc");
        let p = b.place("p").tokens(2).build();
        b.transition("t", Timing::immediate())
            .input(p, 1)
            .input(p, 1)
            .build();
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::DuplicateArcPlace { .. }
        ));
    }

    #[test]
    fn duplicate_inhibitor_arc_place_rejected() {
        let mut b = NetBuilder::new("dupinh");
        let p = b.place("p").build();
        b.transition("t", Timing::immediate())
            .inhibitor(p, 1)
            .inhibitor(p, 2)
            .build();
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::DuplicateArcPlace { .. }
        ));
    }

    #[test]
    fn color_flow_marks_reachable_places() {
        // src holds a colored token; `stage` receives it via Transfer;
        // `plain` only ever sees NONE tokens; `chosen` gets Choice colors.
        let mut b = NetBuilder::new("flow");
        let src = b.place("src").token_colored(Color(2)).build();
        let stage = b.place("stage").build();
        let plain = b.place("plain").tokens(1).build();
        let chosen = b.place("chosen").build();
        b.transition("move", Timing::immediate())
            .input(src, 1)
            .output_colored(stage, 1, ColorExpr::Transfer { arc_index: 0 })
            .build();
        b.transition("cycle", Timing::exponential(1.0))
            .input(plain, 1)
            .output(plain, 1)
            .build();
        b.transition("pick", Timing::exponential(1.0))
            .output_colored(chosen, 1, ColorExpr::Choice(vec![(Color(1), 1.0)]))
            .build();
        let net = b.build().unwrap();
        assert!(net.place_may_hold_colors(src));
        assert!(
            net.place_may_hold_colors(stage),
            "Transfer propagates color"
        );
        assert!(net.place_may_hold_colors(chosen), "Choice produces color");
        assert!(!net.place_may_hold_colors(plain), "plain stays count-only");
    }

    #[test]
    fn place_with_shorthand() {
        let mut b = NetBuilder::new("shorthand");
        let p = b.place_with("p", 3);
        b.transition("t", Timing::immediate()).input(p, 1).build();
        let net = b.build().unwrap();
        assert_eq!(net.initial_marking().count(p), 3);
    }
}
