//! End-to-end sensor-node energy budget: the Fig. 12 closed-workload node
//! at its optimal threshold, broken down into the paper's eight energy
//! series, plus the battery-lifetime consequence (the paper's motivating
//! metric).
//!
//! ```sh
//! cargo run --release --example sensor_node_energy
//! ```

use wsn_petri::prelude::*;

fn main() {
    let mut params = NodeSimParams::paper_defaults(Workload::Closed { interval: 1.0 }, 0.00177);
    params.horizon = 900.0;

    // Petri-net model and DES oracle, side by side.
    let petri = simulate_node_model(&params, 1);
    let des = simulate_node(&params, 1);

    let b_petri = petri.breakdown(&PXA271_CPU, &CC2420_RADIO);
    let b_des = des.breakdown(&PXA271_CPU, &CC2420_RADIO);

    println!("15-minute energy breakdown at PDT = 0.00177 s (closed workload)");
    println!("{:<36} {:>12} {:>12}", "series", "Petri (J)", "DES (J)");
    for ((name, e_petri), (_, e_des)) in b_petri.series().iter().zip(b_des.series().iter()) {
        println!(
            "{:<36} {:>12.4} {:>12.4}",
            name,
            e_petri.joules(),
            e_des.joules()
        );
    }
    println!(
        "{:<36} {:>12.4} {:>12.4}",
        "TOTAL",
        b_petri.total().joules(),
        b_des.total().joules()
    );

    println!(
        "\ncycles completed: petri {:.0}, des {}",
        petri.cycles_completed, des.cycles_completed
    );
    println!(
        "CPU wake-ups:     petri {:.0}, des {}",
        petri.cpu_wakeups, des.cpu_wakeups
    );

    let avg = petri.average_power(&PXA271_CPU, &CC2420_RADIO);
    println!("\naverage node power: {:.3} mW", avg.milliwatts());
    for (name, battery) in [("2xAA", Battery::TWO_AA), ("CR2032", Battery::CR2032)] {
        println!(
            "lifetime on {name:<7}: {:>8.1} days",
            battery.lifetime_days(avg)
        );
    }
}
