//! The remote TCP execution subsystem: multi-host backends on the
//! [`ExecBackend`](crate::exec::ExecBackend) seam.
//!
//! The frame protocol and per-slot seed manifests of [`crate::exec`]
//! already carry everything a worker needs; this module adds the
//! transports that carry them **off the machine**:
//!
//! * [`transport::FrameTransport`] — the one framed-channel trait behind
//!   the worker serve loop and both parent-side drains (stdio pipes and
//!   TCP), deduplicating the frame read/write code the endpoints used to
//!   inline;
//! * [`serve_listener`] — the TCP worker mode (`<exe> --worker --listen
//!   <addr>`): accept connections, serve manifest requests per connection,
//!   exit on an explicit shutdown frame;
//! * [`RemoteBackend`] — `ExecBackend` over N TCP peers: contiguous
//!   manifest chunks, one drain thread per peer, byte-identical
//!   flat-index gather, and re-dispatch of a dead peer's undelivered
//!   slots to the survivors (slots are seeded and pure, so retry cannot
//!   change an output byte);
//! * [`AsyncBackend`] / [`probe_live`] — std-only I/O overlap (no tokio in
//!   the offline vendor tree) and nonblocking-`peek` liveness probes,
//!   used for the remote backend's concurrent connects and its
//!   pre-dispatch peer heartbeat.

pub mod async_backend;
pub(crate) mod protocol;
pub mod transport;

mod backend;

pub use async_backend::{probe_live, AsyncBackend};
pub use backend::RemoteBackend;
pub use transport::{FrameTransport, PipeTransport, StdioTransport, TcpTransport};

use crate::exec::JobRegistry;
use crate::wire::WireError;
use crate::worker::{serve, ServeOutcome};
use std::net::TcpListener;

/// Send the graceful-shutdown frame on `transport`: the receiving worker
/// finishes its serve loop (and, in listen mode, exits the process)
/// instead of being killed or left to infer EOF. Harnesses like
/// `bench::remote::LocalCluster` use this for clean teardown.
pub fn send_shutdown(transport: &mut dyn FrameTransport) -> std::io::Result<()> {
    transport.send(&protocol::encode_shutdown_request())?;
    transport.flush()
}

/// Serve the TCP worker mode: bind `addr`, announce the bound address on
/// stdout (`listening <addr>` — the only stdout line; with port 0 this is
/// how a harness learns the ephemeral port), then accept connections and
/// serve each **on its own thread** until the peer hangs up. Returns after
/// any connection sends an explicit shutdown frame.
///
/// A protocol failure on one connection is logged to stderr and does not
/// take the worker down, and a connection whose parent silently vanished
/// (power loss, partition — no FIN/RST, so its read blocks forever)
/// wedges only its own detached thread: the accept loop keeps serving
/// fresh dispatches, so one dead parent can never make the host unusable,
/// and wedged threads die with the process rather than delaying shutdown.
/// Workers therefore survive any number of backend dispatches, adaptive
/// rounds, and sibling crashes; only the shutdown frame (or a signal)
/// ends the process.
pub fn serve_listener(registry: std::sync::Arc<JobRegistry>, addr: &str) -> Result<(), WireError> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    let listener =
        TcpListener::bind(addr).map_err(|e| WireError::new(format!("bind {addr}: {e}")))?;
    let local = listener
        .local_addr()
        .map_err(|e| WireError::new(format!("local_addr: {e}")))?;
    println!("listening {local}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let shutdown = Arc::new(AtomicBool::new(false));
    loop {
        let (stream, peer) = match listener.accept() {
            Ok(conn) => conn,
            Err(e) => {
                // Persistent accept errors (e.g. fd exhaustion) must not
                // become a 100%-CPU hot loop; back off.
                eprintln!("[worker {local}] accept failed: {e}");
                std::thread::sleep(std::time::Duration::from_millis(100));
                continue;
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let registry = registry.clone();
        let shutdown = shutdown.clone();
        std::thread::spawn(move || {
            let mut transport = TcpTransport::new(stream);
            match serve(&registry, &mut transport) {
                Ok(ServeOutcome::Shutdown) => {
                    shutdown.store(true, Ordering::SeqCst);
                    // Self-connect to unblock the accept loop so it
                    // observes the flag and returns.
                    let _ = std::net::TcpStream::connect(local);
                }
                Ok(ServeOutcome::Eof) => {}
                Err(e) => eprintln!("[worker {local}] connection {peer}: {e}"),
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::tests::{decode_mul, MulJob};
    use crate::exec::{ExecBackend, ExecError, InProcessBackend, PortableJob, TaskManifest};
    use crate::grid::Segment;
    use crate::wire;
    use std::net::TcpStream;
    use std::time::Duration;

    fn registry() -> JobRegistry {
        let mut reg = JobRegistry::new();
        reg.register("test-mul", decode_mul);
        reg
    }

    /// Spawn an in-process TCP worker on an ephemeral loopback port;
    /// returns its address. Mirrors `serve_listener`: each connection is
    /// served on its own thread (the backend's warm pool keeps
    /// connections open across dispatches, so a sequential accept loop
    /// would never see the shutdown connection), and the accept loop
    /// returns once any connection delivers the shutdown frame.
    fn spawn_worker() -> (String, std::thread::JoinHandle<()>) {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let local = listener.local_addr().unwrap();
        let addr = local.to_string();
        let handle = std::thread::spawn(move || {
            let shutdown = Arc::new(AtomicBool::new(false));
            loop {
                let (stream, _) = listener.accept().unwrap();
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let shutdown = shutdown.clone();
                std::thread::spawn(move || {
                    let mut t = TcpTransport::new(stream);
                    if let Ok(ServeOutcome::Shutdown) = serve(&registry(), &mut t) {
                        shutdown.store(true, Ordering::SeqCst);
                        // Unblock the accept loop so it observes the flag.
                        let _ = TcpStream::connect(local);
                    }
                });
            }
        });
        (addr, handle)
    }

    fn shutdown_peer(addr: &str) {
        let mut t = TcpTransport::new(TcpStream::connect(addr).unwrap());
        t.send(&protocol::encode_shutdown_request()).unwrap();
        t.flush().unwrap();
    }

    fn mul_manifest(reps: &[u64]) -> TaskManifest {
        let job = MulJob { factor: 3 };
        let segments = reps
            .iter()
            .enumerate()
            .map(|(point, &n)| Segment {
                point,
                base_rep: 0,
                count: n as usize,
            })
            .collect();
        TaskManifest::for_job(&job, segments, &|p, r| (p as u64) << 32 | r)
    }

    #[test]
    fn remote_backend_matches_in_process_bytes_at_any_host_count() {
        let job = MulJob { factor: 3 };
        let m = mul_manifest(&[3, 1, 5, 2]);
        let baseline = InProcessBackend::new(1)
            .run_segments(&job, &m, None)
            .unwrap();
        for peers in [1usize, 2, 4] {
            let workers: Vec<_> = (0..peers).map(|_| spawn_worker()).collect();
            let hosts: Vec<String> = workers.iter().map(|(a, _)| a.clone()).collect();
            let backend = RemoteBackend::new(hosts.clone(), 2);
            let out = backend.run_segments(&job, &m, None).unwrap();
            assert_eq!(baseline, out, "peers={peers}");
            assert!(backend.label().contains("remote"));
            for (addr, handle) in workers {
                shutdown_peer(&addr);
                handle.join().unwrap();
            }
        }
    }

    #[test]
    fn remote_backend_serves_multiple_dispatches_per_worker() {
        // Adaptive rounds dispatch several manifests; the worker must
        // survive reconnects.
        let (addr, handle) = spawn_worker();
        // Factor must match `mul_manifest`'s payload: the remote side
        // re-decodes the job from the manifest, the local side uses ours.
        let job = MulJob { factor: 3 };
        let backend = RemoteBackend::new(vec![addr.clone()], 1);
        for reps in [[2u64, 1], [1, 3]] {
            let m = mul_manifest(&reps);
            let expect = InProcessBackend::new(1)
                .run_segments(&job, &m, None)
                .unwrap();
            assert_eq!(backend.run_segments(&job, &m, None).unwrap(), expect);
        }
        shutdown_peer(&addr);
        handle.join().unwrap();
    }

    #[test]
    fn dead_peer_chunk_redispatches_to_survivor_bit_identically() {
        // Peer 0 is a saboteur: it reads the request, streams the first
        // R frame, then drops the connection. Peer 1 is a real worker.
        // The gather must re-dispatch the undelivered remainder and still
        // produce the exact in-process bytes.
        let saboteur = TcpListener::bind("127.0.0.1:0").unwrap();
        let sab_addr = saboteur.local_addr().unwrap().to_string();
        let sab = std::thread::spawn(move || {
            let (stream, _) = saboteur.accept().unwrap();
            let mut t = TcpTransport::new(stream);
            let req = t.recv().unwrap().unwrap();
            // Decode the manifest to answer slot 0 honestly first.
            let mut r = wire::Reader::new(&req);
            assert_eq!(r.get_u8().unwrap(), crate::exec::frame::MANIFEST);
            let _version = r.get_u8().unwrap();
            let _threads = r.get_u32().unwrap();
            let _batch = r.get_u32().unwrap();
            let _trace = r.get_u64().unwrap();
            let m = TaskManifest::decode(&mut r).unwrap();
            let job = MulJob { factor: 3 };
            let (p, rep, seed) = m.slots()[0];
            let mut body = Vec::new();
            wire::put_u8(&mut body, crate::exec::frame::RESULT);
            wire::put_u64(&mut body, 0);
            wire::put_bytes(&mut body, &job.run_slot(p, rep, seed).unwrap());
            t.send(&body).unwrap();
            t.flush().unwrap();
            // ... then die mid-chunk.
        });
        let (good_addr, good_handle) = spawn_worker();

        let job = MulJob { factor: 3 };
        let m = mul_manifest(&[4, 4]);
        let baseline = InProcessBackend::new(1)
            .run_segments(&job, &m, None)
            .unwrap();
        let backend = RemoteBackend::new(vec![sab_addr, good_addr.clone()], 1);
        let out = backend.run_segments(&job, &m, None).unwrap();
        assert_eq!(baseline, out);
        sab.join().unwrap();
        shutdown_peer(&good_addr);
        good_handle.join().unwrap();
    }

    #[test]
    fn silently_stalled_peer_times_out_and_redispatches() {
        // Unlike a dropped connection, a *stalled* peer (machine vanished
        // without FIN/RST, network partition) keeps the socket open and
        // just goes quiet. The saboteur answers one slot, then holds the
        // connection silently; the parent's read timeout must classify it
        // dead — real workers heartbeat every 500 ms, so silence is never
        // "slow slots" — and re-dispatch the remainder to the healthy
        // peer, bit-identically.
        let saboteur = TcpListener::bind("127.0.0.1:0").unwrap();
        let sab_addr = saboteur.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let (stream, _) = saboteur.accept().unwrap();
            let mut t = TcpTransport::new(stream);
            let req = t.recv().unwrap().unwrap();
            let mut r = wire::Reader::new(&req);
            assert_eq!(r.get_u8().unwrap(), crate::exec::frame::MANIFEST);
            let _version = r.get_u8().unwrap();
            let _threads = r.get_u32().unwrap();
            let _batch = r.get_u32().unwrap();
            let _trace = r.get_u64().unwrap();
            let m = TaskManifest::decode(&mut r).unwrap();
            let job = MulJob { factor: 3 };
            let (p, rep, seed) = m.slots()[0];
            let mut body = Vec::new();
            wire::put_u8(&mut body, crate::exec::frame::RESULT);
            wire::put_u64(&mut body, 0);
            wire::put_bytes(&mut body, &job.run_slot(p, rep, seed).unwrap());
            t.send(&body).unwrap();
            t.flush().unwrap();
            // ... then go silent with the connection held open. The test
            // process exits long before this sleep ends.
            std::thread::sleep(Duration::from_secs(60));
        });
        let (good_addr, good_handle) = spawn_worker();

        let job = MulJob { factor: 3 };
        let m = mul_manifest(&[4, 4]);
        let baseline = InProcessBackend::new(1)
            .run_segments(&job, &m, None)
            .unwrap();
        let backend = RemoteBackend::new(vec![sab_addr, good_addr.clone()], 1)
            .with_io_timeout(Some(Duration::from_millis(1500)));
        let t0 = std::time::Instant::now();
        let out = backend.run_segments(&job, &m, None).unwrap();
        assert_eq!(baseline, out);
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "stall detection took {:?}",
            t0.elapsed()
        );
        shutdown_peer(&good_addr);
        good_handle.join().unwrap();
    }

    #[test]
    fn retry_budget_exhaustion_surfaces_worker_error() {
        // A peer that accepts, swallows the request, and hangs up without
        // answering: the dispatch breaks mid-chunk, and with no surviving
        // peer to re-dispatch to, the gather must surface a Worker error
        // attributed to the first undelivered slot.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::new(stream);
            let _request = t.recv().unwrap();
            // Drop without replying: EOF mid-chunk on the parent side.
        });
        let job = MulJob { factor: 1 };
        let m = mul_manifest(&[3]);
        let backend = RemoteBackend::new(vec![addr], 1).with_retry_budget(1);
        let err = backend.run_segments(&job, &m, None).unwrap_err();
        match err {
            ExecError::Worker { flat_index, .. } => assert_eq!(flat_index, 0),
            other => panic!("unexpected error {other:?}"),
        }
        handle.join().unwrap();
    }

    #[test]
    fn unreachable_host_is_a_protocol_error() {
        let job = MulJob { factor: 1 };
        let m = mul_manifest(&[2]);
        // Loopback port 1: nothing listens there, connect is refused.
        let mut backend = RemoteBackend::new(vec!["127.0.0.1:1".into()], 1)
            .with_retry_budget(0)
            .with_io_timeout(None);
        backend.connect_timeout = Duration::from_millis(500);
        let err = backend.run_segments(&job, &m, None).unwrap_err();
        assert!(matches!(err, ExecError::Protocol(_)), "{err:?}");
    }

    #[test]
    fn task_error_from_remote_peer_keeps_lowest_flat_index() {
        struct FailFrom(usize);
        impl PortableJob for FailFrom {
            fn kind(&self) -> &'static str {
                "test-fail-from"
            }
            fn encode_payload(&self, buf: &mut Vec<u8>) {
                wire::put_u64(buf, self.0 as u64);
            }
            fn run_slot(&self, point: usize, rep: u64, _seed: u64) -> Result<Vec<u8>, String> {
                if point >= self.0 {
                    Err(format!("refused ({point},{rep})"))
                } else {
                    Ok(vec![1])
                }
            }
        }
        // Worker-side registry including the failing job. Per-connection
        // serve threads, as in `spawn_worker`: the warm pool keeps the
        // dispatch connection open, so the shutdown frame arrives on a
        // second connection.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let local = listener.local_addr().unwrap();
        let addr = local.to_string();
        let handle = std::thread::spawn(move || {
            use std::sync::atomic::{AtomicBool, Ordering};
            use std::sync::Arc;
            fn reg() -> JobRegistry {
                let mut reg = JobRegistry::new();
                reg.register("test-fail-from", |p| {
                    let mut r = wire::Reader::new(p);
                    let from = r.get_u64()? as usize;
                    r.finish()?;
                    Ok(Box::new(FailFrom(from)))
                });
                reg
            }
            let shutdown = Arc::new(AtomicBool::new(false));
            loop {
                let (stream, _) = listener.accept().unwrap();
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let shutdown = shutdown.clone();
                std::thread::spawn(move || {
                    let mut t = TcpTransport::new(stream);
                    if let Ok(ServeOutcome::Shutdown) = serve(&reg(), &mut t) {
                        shutdown.store(true, Ordering::SeqCst);
                        let _ = TcpStream::connect(local);
                    }
                });
            }
        });
        let job = FailFrom(1);
        let m = TaskManifest::for_job(
            &job,
            vec![
                Segment {
                    point: 0,
                    base_rep: 0,
                    count: 3,
                },
                Segment {
                    point: 1,
                    base_rep: 0,
                    count: 3,
                },
                Segment {
                    point: 2,
                    base_rep: 0,
                    count: 3,
                },
            ],
            &|_, _| 0,
        );
        let backend = RemoteBackend::new(vec![addr.clone()], 2);
        let err = backend.run_segments(&job, &m, None).unwrap_err();
        match err {
            ExecError::Task {
                flat_index,
                point,
                replication,
                ..
            } => assert_eq!((flat_index, point, replication), (3, 1, 0)),
            other => panic!("unexpected error {other:?}"),
        }
        shutdown_peer(&addr);
        handle.join().unwrap();
    }
}
