//! Ablations beyond the paper (DESIGN.md §6).
//!
//! * **ABL-ERLANG** — how many exponential stages a true Markov chain needs
//!   before it stops "completely failing" on the deterministic timers.
//! * **ABL-MEMORY** — the Power-Down-Threshold under the three
//!   enabling-memory policies: the published optimum is a property of
//!   race-enable semantics.
//! * **ABL-SEED** — replication count vs confidence-interval width for the
//!   Petri CPU model.
//! * **ABL-TRIGGER** — trigger-driven (Poisson) vs schedule-driven
//!   (periodic) arrivals, the operating-mode comparison of Jung et al.
//!   \[12\] whose power table the paper adopts.

use super::jobs::{decode_obs, SeedAblationJob};
use crate::cpu_model::{build_cpu_model_with_arrival, build_cpu_model_with_memory, CpuModelParams};
use des::{simulate_cpu, CpuSimParams};
use markov::phase::{solve_phase_cpu, PhaseCpuConfig};
use markov::supplementary::CpuMarkovParams;
use petri_core::prelude::*;
use serde::{Deserialize, Serialize};
use sim_runtime::Exec;

/// One row of the Erlang ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErlangRow {
    /// Erlang stages used for both deterministic timers.
    pub stages: u32,
    /// Phase-type CTMC `[standby, powerup, idle, active]`.
    pub probs: [f64; 4],
    /// Max absolute probability error vs the DES ground truth.
    pub max_abs_error: f64,
}

/// ABL-ERLANG: sweep the stage count at fixed `(T, D)`.
pub fn erlang_ablation(
    power_down_threshold: f64,
    power_up_delay: f64,
    stages: &[u32],
    seed: u64,
) -> Vec<ErlangRow> {
    // Ground truth from a long DES run.
    let mut des_params = CpuSimParams::paper_defaults(power_down_threshold, power_up_delay);
    des_params.horizon = 50_000.0;
    let truth = simulate_cpu(&des_params, seed).probabilities();

    stages
        .iter()
        .map(|&k| {
            let sol = solve_phase_cpu(&PhaseCpuConfig {
                params: CpuMarkovParams {
                    lambda: des_params.lambda,
                    mu: des_params.mu,
                    power_down_threshold,
                    power_up_delay,
                },
                stages: k,
                max_queue: 40,
            })
            .expect("phase chain solvable");
            let probs = [sol.p_standby, sol.p_powerup, sol.p_idle, sol.p_active];
            let max_abs_error = probs
                .iter()
                .zip(truth.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            ErlangRow {
                stages: k,
                probs,
                max_abs_error,
            }
        })
        .collect()
}

/// One row of the memory-policy ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryRow {
    /// The policy applied to the Power-Down-Threshold transition.
    pub policy: MemoryPolicy,
    /// `[standby, powerup, idle, active]` fractions.
    pub probs: [f64; 4],
    /// Wake-ups over the horizon.
    pub wakeups: f64,
}

/// ABL-MEMORY: simulate the CPU net under each memory policy.
pub fn memory_ablation(params: &CpuModelParams, horizon: f64, seed: u64) -> Vec<MemoryRow> {
    [
        MemoryPolicy::RaceEnable,
        MemoryPolicy::RaceAge,
        MemoryPolicy::Resample,
    ]
    .into_iter()
    .map(|policy| {
        let model = build_cpu_model_with_memory(params, policy);
        let mut sim = Simulator::new(&model.net, SimConfig::for_horizon(horizon));
        let r_standby = sim.reward_place(model.places.stand_by);
        let r_powerup = sim.reward_place(model.places.powering_up);
        let r_idle = sim.reward_place(model.places.idle);
        let r_active = sim.reward_place(model.places.active);
        let r_wake = sim.reward_firings(model.transitions.t1);
        let out = sim.run(seed).expect("CPU net runs");
        MemoryRow {
            policy,
            probs: [
                out.reward(r_standby),
                out.reward(r_powerup),
                out.reward(r_idle),
                out.reward(r_active),
            ],
            wakeups: out.reward(r_wake),
        }
    })
    .collect()
}

/// One row of the seed-sensitivity ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeedRow {
    /// Replications used.
    pub replications: u64,
    /// Mean standby probability across replications.
    pub mean_standby: f64,
    /// 95 % CI half-width of the standby probability.
    pub ci_half_width: f64,
}

/// ABL-SEED: confidence-interval width vs replication count for the CPU
/// net's standby probability.
///
/// Row `n` uses replications seeded `child_seed(base_seed, 0..n)`, so every
/// row is a prefix of the longest one: simulate `max(counts)` replications
/// once on the executor seam (in-process or sharded — same bytes) and fold
/// each row over its prefix — the same bits as running each row
/// independently, at a fraction of the work.
pub fn seed_ablation(
    params: &CpuModelParams,
    horizon: f64,
    replication_counts: &[u64],
    base_seed: u64,
    exec: &Exec,
) -> Vec<SeedRow> {
    let max_reps = replication_counts.iter().copied().max().unwrap_or(0);
    let job = SeedAblationJob {
        params: *params,
        horizon,
    };
    let mut per_point = exec
        .runner()
        .run_job(&job, &[max_reps], &|_point, i| {
            petri_core::rng::SimRng::child_seed(base_seed, i)
        })
        .unwrap_or_else(|e| panic!("seed ablation grid failed: {e}"));
    let observations: Vec<f64> = per_point
        .pop()
        .expect("one point scheduled")
        .iter()
        .map(|bytes| {
            let obs = decode_obs(bytes, "seed-ablation slot").unwrap_or_else(|e| panic!("{e}"));
            obs[0]
        })
        .collect();
    replication_counts
        .iter()
        .map(|&n| {
            let mut w = Welford::new();
            for &x in &observations[..n as usize] {
                w.push(x);
            }
            let ci = w.confidence_interval(ConfidenceLevel::P95);
            SeedRow {
                replications: n,
                mean_standby: ci.mean,
                ci_half_width: ci.half_width,
            }
        })
        .collect()
}

/// One row of the trigger-vs-schedule ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TriggerRow {
    /// True for Poisson ("trigger-driven"), false for periodic
    /// ("schedule-driven") arrivals.
    pub trigger_driven: bool,
    /// `[standby, powerup, idle, active]` fractions.
    pub probs: [f64; 4],
    /// Wake-ups over the horizon.
    pub wakeups: f64,
    /// Energy over the horizon (J) under the PXA271 table.
    pub energy_j: f64,
}

/// ABL-TRIGGER: same mean arrival rate, Poisson vs periodic, same CPU.
///
/// Schedule-driven arrivals are perfectly regular, so for thresholds below
/// the period the CPU sleeps exactly once per job; Poisson arrivals bunch,
/// letting the CPU ride through bursts — the lifetime difference Jung et
/// al. modeled, here answered with the paper's own Petri machinery.
pub fn trigger_ablation(params: &CpuModelParams, horizon: f64, seed: u64) -> Vec<TriggerRow> {
    [true, false]
        .into_iter()
        .map(|trigger_driven| {
            let arrival = if trigger_driven {
                Timing::exponential(params.lambda)
            } else {
                Timing::deterministic(1.0 / params.lambda)
            };
            let model = build_cpu_model_with_arrival(params, arrival);
            let mut sim = Simulator::new(&model.net, SimConfig::for_horizon(horizon));
            let r_standby = sim.reward_place(model.places.stand_by);
            let r_powerup = sim.reward_place(model.places.powering_up);
            let r_idle = sim.reward_place(model.places.idle);
            let r_active = sim.reward_place(model.places.active);
            let r_wake = sim.reward_firings(model.transitions.t1);
            let out = sim.run(seed).expect("CPU net runs");
            let probs = [
                out.reward(r_standby),
                out.reward(r_powerup),
                out.reward(r_idle),
                out.reward(r_active),
            ];
            let energy_j = energy::PXA271_CPU
                .average(probs[0], probs[1], probs[2], probs[3])
                .over_seconds(horizon)
                .joules();
            TriggerRow {
                trigger_driven,
                probs,
                wakeups: out.reward(r_wake),
                energy_j,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erlang_error_shrinks_with_stages() {
        let rows = erlang_ablation(0.3, 0.3, &[1, 4, 16], 1);
        assert_eq!(rows.len(), 3);
        assert!(
            rows[2].max_abs_error < rows[0].max_abs_error,
            "k=16 err {} !< k=1 err {}",
            rows[2].max_abs_error,
            rows[0].max_abs_error
        );
    }

    #[test]
    fn memory_policies_differ() {
        // Race-age lets the threshold accumulate across interruptions, so
        // the CPU sleeps more than under race-enable.
        let params = CpuModelParams::paper_defaults(0.5, 0.001);
        let rows = memory_ablation(&params, 5000.0, 2);
        let by = |p: MemoryPolicy| rows.iter().find(|r| r.policy == p).unwrap();
        let enable = by(MemoryPolicy::RaceEnable);
        let age = by(MemoryPolicy::RaceAge);
        assert!(
            age.probs[0] > enable.probs[0],
            "race-age standby {} should exceed race-enable {}",
            age.probs[0],
            enable.probs[0]
        );
        // Resample postpones deterministic firings at every marking change:
        // the CPU should essentially never manage to sleep.
        let resample = by(MemoryPolicy::Resample);
        assert!(
            resample.probs[0] <= enable.probs[0] + 0.02,
            "resample standby {} should not exceed race-enable {}",
            resample.probs[0],
            enable.probs[0]
        );
    }

    #[test]
    fn trigger_vs_schedule_differ() {
        // With PDT below the period, periodic arrivals force a sleep/wake
        // per job; Poisson bunching lets some jobs share an awake window,
        // so the trigger-driven CPU wakes fewer times per job.
        let params = CpuModelParams::paper_defaults(0.3, 0.3);
        let rows = trigger_ablation(&params, 10_000.0, 3);
        assert_eq!(rows.len(), 2);
        let trigger = rows.iter().find(|r| r.trigger_driven).unwrap();
        let schedule = rows.iter().find(|r| !r.trigger_driven).unwrap();
        assert!(
            trigger.wakeups < schedule.wakeups,
            "trigger {} vs schedule {}",
            trigger.wakeups,
            schedule.wakeups
        );
        // Both see the same utilization.
        assert!((trigger.probs[3] - schedule.probs[3]).abs() < 0.02);
    }

    #[test]
    fn seed_ci_narrows_with_replications() {
        let params = CpuModelParams::paper_defaults(0.3, 0.3);
        let rows = seed_ablation(&params, 500.0, &[4, 16], 7, &Exec::in_process(2));
        assert_eq!(rows.len(), 2);
        assert!(
            rows[1].ci_half_width < rows[0].ci_half_width,
            "CI must narrow: {rows:?}"
        );
    }
}
