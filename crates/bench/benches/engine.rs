//! Engine micro-benchmarks: event throughput of the petri-core simulator.
//!
//! Not a paper artifact, but the quantity that bounds every experiment's
//! wall-clock (the paper laments TimeNET taking "an hour to stabilize";
//! these benches document how far from that we are).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use petri_core::prelude::*;

/// M/M/1: the minimal open stochastic net.
fn mm1_net() -> Net {
    let mut b = NetBuilder::new("mm1");
    let q = b.place("q").build();
    b.transition("arrive", Timing::exponential(1.0))
        .output(q, 1)
        .build();
    b.transition("serve", Timing::exponential(2.0))
        .input(q, 1)
        .build();
    b.build().unwrap()
}

/// A tandem of `n` exponential stages (tests the incremental enabling
/// index as net size grows).
fn tandem_net(n: usize) -> Net {
    let mut b = NetBuilder::new("tandem");
    let places: Vec<_> = (0..n).map(|i| b.place(format!("p{i}")).build()).collect();
    b.transition("source", Timing::exponential(1.0))
        .output(places[0], 1)
        .build();
    for i in 0..n - 1 {
        b.transition(format!("t{i}"), Timing::exponential(2.0))
            .input(places[i], 1)
            .output(places[i + 1], 1)
            .build();
    }
    b.transition("sink", Timing::exponential(2.0))
        .input(places[n - 1], 1)
        .build();
    b.build().unwrap()
}

fn bench_mm1(c: &mut Criterion) {
    let net = mm1_net();
    let sim = Simulator::new(&net, SimConfig::for_horizon(10_000.0));
    // ~30k firings per run at these rates.
    let mut g = c.benchmark_group("engine/mm1");
    g.throughput(Throughput::Elements(30_000));
    g.bench_function("10k_seconds", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            sim.run(seed).unwrap()
        })
    });
    g.finish();
}

fn bench_tandem(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/tandem");
    for n in [4usize, 16, 64] {
        let net = tandem_net(n);
        let sim = Simulator::new(&net, SimConfig::for_horizon(1000.0));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                sim.run(seed).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_cpu_net_events(c: &mut Criterion) {
    let model = wsn::build_cpu_model(&wsn::CpuModelParams::paper_defaults(0.1, 0.3));
    let sim = Simulator::new(&model.net, SimConfig::for_horizon(1000.0));
    c.bench_function("engine/fig3_cpu_1000s", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            sim.run(seed).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    // Short windows: these benches document magnitudes, not micro-regressions.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(20);
    targets = bench_mm1, bench_tandem, bench_cpu_net_events
}
criterion_main!(benches);
