//! Parallel independent replications.
//!
//! Simulation of one trajectory is inherently sequential, so the honest
//! parallelism for this workload is *across* independent replications (and,
//! one level up, across parameter-sweep points — see `wsn::sweep`). Both
//! levels are scheduled by the shared [`sim_runtime`] executor, which
//! flattens the `(point × replication)` grid into one work-stealing task
//! stream; this module is the replication-level entry point over a single
//! simulator.
//!
//! These entry points take closures over a **borrowed** `&Simulator`, so
//! they always run on the executor's in-process backend (a closure cannot
//! cross the process boundary). Experiment drivers that describe their
//! tasks as data instead — `sim_runtime::PortableJob` — run the identical
//! schedule on the sharded multi-process backend with byte-identical
//! results; see `wsn::experiments::jobs`.

use crate::error::SimError;
use crate::sim::Simulator;
use crate::stats::{ConfidenceInterval, ConfidenceLevel, Welford};
use sim_runtime::{Runner, StoppingRule};

/// Aggregated results of `n` independent replications.
#[derive(Debug, Clone)]
pub struct ReplicationSummary {
    /// Per-reward statistics across replications (same order as the
    /// simulator's rewards).
    pub rewards: Vec<Welford>,
    /// Number of successful replications.
    pub replications: u64,
}

impl ReplicationSummary {
    /// Mean of reward `i` across replications.
    pub fn mean(&self, i: usize) -> f64 {
        self.rewards[i].mean()
    }

    /// Confidence interval of reward `i`.
    pub fn ci(&self, i: usize, level: ConfidenceLevel) -> ConfidenceInterval {
        self.rewards[i].confidence_interval(level)
    }
}

/// Run `replications` independent simulations sequentially.
///
/// Replication `i` uses seed `SimRng::child_seed(base_seed, i)`, so results
/// are identical to [`run_replications_parallel`] with any thread count.
pub fn run_replications(
    sim: &Simulator<'_>,
    base_seed: u64,
    replications: u64,
) -> Result<ReplicationSummary, SimError> {
    let num_rewards = sim.reward_count();
    let mut rewards = vec![Welford::new(); num_rewards];
    for i in 0..replications {
        let seed = crate::rng::SimRng::child_seed(base_seed, i);
        let out = sim.run(seed)?;
        for (w, &x) in rewards.iter_mut().zip(out.rewards.iter()) {
            w.push(x);
        }
    }
    Ok(ReplicationSummary {
        rewards,
        replications,
    })
}

/// Run `replications` independent simulations across `threads` worker
/// threads (scoped; no detached work).
///
/// Workers claim replication indices from the shared [`sim_runtime`]
/// executor, so load balances even when trajectories differ wildly in
/// event count. Per-replication outputs are folded into the summary in
/// replication-index order, so the result is **bit-identical** to
/// [`run_replications`] — same bits at 1, 2 or 128 threads.
pub fn run_replications_parallel(
    sim: &Simulator<'_>,
    base_seed: u64,
    replications: u64,
    threads: usize,
) -> Result<ReplicationSummary, SimError> {
    let per_point = Runner::new(threads).try_grid(&[replications], |_point, i| {
        let seed = crate::rng::SimRng::child_seed(base_seed, i);
        sim.run(seed).map(|out| out.rewards)
    })?;
    let mut rewards = vec![Welford::new(); sim.reward_count()];
    let [outputs] = <[_; 1]>::try_from(per_point).expect("one point scheduled");
    for out in outputs {
        for (w, x) in rewards.iter_mut().zip(out) {
            w.push(x);
        }
    }
    Ok(ReplicationSummary {
        rewards,
        replications,
    })
}

/// Run `replications` independent simulations on the **batched SoA engine**
/// ([`crate::sim::BatchSimulator`]), `batch` lanes at a time.
///
/// Replication `i` uses seed `SimRng::child_seed(base_seed, i)` and the
/// per-replication outputs fold into the summary in replication-index
/// order, so the result is **bit-identical** to [`run_replications`] at any
/// batch width — the batch engine only changes how fast the same
/// trajectories are produced. On error, the lowest-index failure is
/// returned, exactly like the sequential loop.
pub fn run_replications_batched(
    sim: &Simulator<'_>,
    base_seed: u64,
    replications: u64,
    batch: usize,
) -> Result<ReplicationSummary, SimError> {
    let batch = batch.max(1) as u64;
    let batcher = crate::sim::BatchSimulator::new(sim);
    let mut rewards = vec![Welford::new(); sim.reward_count()];
    let mut seeds: Vec<u64> = Vec::with_capacity(batch as usize);
    let mut i = 0u64;
    while i < replications {
        let n = batch.min(replications - i);
        seeds.clear();
        seeds.extend((i..i + n).map(|j| crate::rng::SimRng::child_seed(base_seed, j)));
        for out in batcher.run(&seeds) {
            let out = out?;
            for (w, &x) in rewards.iter_mut().zip(out.rewards.iter()) {
                w.push(x);
            }
        }
        i += n;
    }
    Ok(ReplicationSummary {
        rewards,
        replications,
    })
}

/// Result of [`run_replications_adaptive`]: a summary plus how the
/// stopping rule fared.
#[derive(Debug, Clone)]
pub struct AdaptiveSummary {
    /// The aggregated rewards (exactly as if `summary.replications`
    /// replications had been requested up front).
    pub summary: ReplicationSummary,
    /// Whether the watched rewards settled within the budget.
    pub converged: bool,
}

/// Run replications until the Student-t confidence interval of the watched
/// rewards satisfies `rule` (the paper's "until steady state probability
/// values were obtained", made precise and budget-aware).
///
/// `watch` lists reward indices the rule tests (empty = all rewards).
/// Replication `i` uses seed `SimRng::child_seed(base_seed, i)` and results
/// fold in index order, so the outcome — including the number of
/// replications run — is bit-identical at any thread count.
pub fn run_replications_adaptive(
    sim: &Simulator<'_>,
    base_seed: u64,
    rule: &StoppingRule,
    watch: &[usize],
    threads: usize,
) -> Result<AdaptiveSummary, SimError> {
    let points = Runner::new(threads).run_adaptive(1, rule, watch, |_point, i| {
        let seed = crate::rng::SimRng::child_seed(base_seed, i);
        sim.run(seed).map(|out| out.rewards)
    })?;
    let [point] = <[_; 1]>::try_from(points).expect("one point scheduled");
    let rewards = if point.stats.is_empty() {
        vec![Welford::new(); sim.reward_count()]
    } else {
        point.stats
    };
    Ok(AdaptiveSummary {
        summary: ReplicationSummary {
            rewards,
            replications: point.replications,
        },
        converged: point.converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetBuilder;
    use crate::sim::SimConfig;
    use crate::timing::Timing;

    fn mm1_sim(net: &crate::net::Net) -> (Simulator<'_>, crate::sim::RewardId) {
        let mut sim = Simulator::new(net, SimConfig::for_horizon(2000.0).with_warmup(100.0));
        let q = net.place_by_name("q").unwrap();
        let r = sim.reward_place(q);
        (sim, r)
    }

    fn mm1_net() -> crate::net::Net {
        let mut b = NetBuilder::new("mm1");
        let q = b.place("q").build();
        b.transition("arrive", Timing::exponential(1.0))
            .output(q, 1)
            .build();
        b.transition("serve", Timing::exponential(2.0))
            .input(q, 1)
            .build();
        let _ = q;
        b.build().unwrap()
    }

    #[test]
    fn sequential_replications_estimate_mm1() {
        let net = mm1_net();
        let (sim, r) = mm1_sim(&net);
        let summary = run_replications(&sim, 7, 16).unwrap();
        assert_eq!(summary.replications, 16);
        let mean = summary.mean(r.index());
        assert!((mean - 1.0).abs() < 0.15, "E[N]={mean}");
        let ci = summary.ci(r.index(), ConfidenceLevel::P95);
        assert!(ci.contains(mean));
        assert!(ci.half_width < 0.2);
    }

    #[test]
    fn parallel_bit_identical_to_sequential() {
        let net = mm1_net();
        let (sim, r) = mm1_sim(&net);
        let seq = run_replications(&sim, 11, 12).unwrap();
        for threads in [1, 2, 4, 8] {
            let par = run_replications_parallel(&sim, 11, 12, threads).unwrap();
            // Same seeds, same per-replication outputs, same fold order:
            // the merged moments are the same bits at any thread count.
            assert_eq!(seq.replications, par.replications);
            assert_eq!(seq.rewards[r.index()], par.rewards[r.index()]);
        }
    }

    #[test]
    fn batched_bit_identical_to_sequential() {
        let net = mm1_net();
        let (sim, r) = mm1_sim(&net);
        let seq = run_replications(&sim, 11, 13).unwrap();
        for batch in [1, 2, 4, 5, 13, 64] {
            let bat = run_replications_batched(&sim, 11, 13, batch).unwrap();
            assert_eq!(seq.replications, bat.replications);
            assert_eq!(seq.rewards[r.index()], bat.rewards[r.index()]);
        }
    }

    #[test]
    fn errors_propagate_from_workers() {
        // Unbounded net trips TokenOverflow inside workers.
        let mut b = NetBuilder::new("boom");
        let q = b.place("q").build();
        b.transition("gen", Timing::deterministic(0.001))
            .output(q, 1)
            .build();
        let net = b.build().unwrap();
        let mut cfg = SimConfig::for_horizon(1e9);
        cfg.max_tokens_per_place = 100;
        let sim = Simulator::new(&net, cfg);
        assert!(run_replications_parallel(&sim, 1, 8, 4).is_err());
    }

    #[test]
    fn adaptive_settles_and_matches_fixed_count() {
        let net = mm1_net();
        let (sim, r) = mm1_sim(&net);
        let rule = StoppingRule::relative(0.2).with_budget(4, 64, 4);
        let a = run_replications_adaptive(&sim, 7, &rule, &[r.index()], 4).unwrap();
        assert!(a.converged, "mm1 mean must settle within 64 replications");
        assert!(a.summary.replications >= 4);
        // Exactly reproducible by asking for that count up front.
        let fixed = run_replications(&sim, 7, a.summary.replications).unwrap();
        assert_eq!(a.summary.rewards[r.index()], fixed.rewards[r.index()]);
        // And independent of thread count, replication budget included.
        let b = run_replications_adaptive(&sim, 7, &rule, &[r.index()], 1).unwrap();
        assert_eq!(a.summary.replications, b.summary.replications);
        assert_eq!(a.summary.rewards[r.index()], b.summary.rewards[r.index()]);
    }

    #[test]
    fn adaptive_budget_exhaustion_reports_unconverged() {
        let net = mm1_net();
        let (sim, _r) = mm1_sim(&net);
        let rule = StoppingRule::relative(1e-9).with_budget(2, 6, 2);
        let a = run_replications_adaptive(&sim, 3, &rule, &[], 2).unwrap();
        assert!(!a.converged);
        assert_eq!(a.summary.replications, 6);
    }
}
