//! Generic discrete-event simulation kernel: a time-ordered event queue
//! with stable tie-breaking and O(log n) lazy cancellation.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    time: f64,
    priority: u8,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for min-heap behavior on BinaryHeap (max-heap):
        // earliest time first; lowest priority value first among equal
        // times; FIFO among equal (time, priority).
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.priority.cmp(&self.priority))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Pending-event set of a discrete-event simulation.
///
/// Events with equal timestamps pop in scheduling (FIFO) order, which makes
/// simultaneous-event semantics explicit and runs reproducible.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: HashSet<u64>,
    seq: u64,
    now: f64,
}

impl<E> EventQueue<E> {
    /// Empty queue starting at time 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedule `payload` at absolute time `time` (must not be in the past)
    /// with default priority 0.
    pub fn schedule_at(&mut self, time: f64, payload: E) -> EventId {
        self.schedule_at_pri(time, 0, payload)
    }

    /// Schedule with an explicit simultaneity priority: among events with
    /// equal timestamps, *lower* priority values fire first.
    ///
    /// This is how threshold timers are made to lose exact ties against
    /// work-delivering events — the boundary semantics behind the paper's
    /// optimum sitting exactly at `PDT = 0.00177 s`.
    pub fn schedule_at_pri(&mut self, time: f64, priority: u8, payload: E) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < {}",
            self.now
        );
        assert!(time.is_finite(), "event time must be finite");
        let id = EventId(self.seq);
        self.heap.push(Entry {
            time,
            priority,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
        id
    }

    /// Schedule `payload` after a non-negative delay (priority 0).
    pub fn schedule_in(&mut self, delay: f64, payload: E) -> EventId {
        assert!(delay >= 0.0, "negative delay");
        self.schedule_at(self.now + delay, payload)
    }

    /// Schedule after a delay with an explicit simultaneity priority.
    pub fn schedule_in_pri(&mut self, delay: f64, priority: u8, payload: E) -> EventId {
        assert!(delay >= 0.0, "negative delay");
        self.schedule_at_pri(self.now + delay, priority, payload)
    }

    /// Cancel a previously scheduled event. Cancelling an already-fired or
    /// already-cancelled event is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id.0);
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            debug_assert!(entry.time >= self.now, "time went backwards");
            self.now = entry.time;
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<f64> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.time);
        }
        None
    }

    /// Number of live events still pending (linear scan; diagnostics only).
    pub fn pending(&self) -> usize {
        self.heap
            .iter()
            .filter(|e| !self.cancelled.contains(&e.seq))
            .count()
    }

    /// True if nothing is scheduled.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(3.0, "c");
        q.schedule_at(1.0, "a");
        q.schedule_at(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
        assert_eq!(q.now(), 3.0);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        q.schedule_at(1.0, "first");
        q.schedule_at(1.0, "second");
        q.schedule_at(1.0, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(1.0, "a");
        q.schedule_at(2.0, "b");
        q.cancel(a);
        assert_eq!(q.pop(), Some((2.0, "b")));
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(1.0, "a");
        assert_eq!(q.pop(), Some((1.0, "a")));
        q.cancel(a); // already fired
        q.schedule_at(2.0, "b");
        assert_eq!(q.pop(), Some((2.0, "b")));
    }

    #[test]
    fn schedule_in_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule_at(5.0, "x");
        q.pop();
        q.schedule_in(1.5, "y");
        assert_eq!(q.pop(), Some((6.5, "y")));
    }

    #[test]
    fn peek_respects_cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(1.0, "a");
        q.schedule_at(2.0, "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(2.0));
        assert_eq!(q.pending(), 1);
    }

    #[test]
    fn priority_breaks_ties_before_fifo() {
        let mut q = EventQueue::new();
        q.schedule_at_pri(1.0, 5, "timer"); // scheduled first...
        q.schedule_at_pri(1.0, 0, "work"); // ...but work outranks it
        assert_eq!(q.pop().unwrap().1, "work");
        assert_eq!(q.pop().unwrap().1, "timer");
    }

    #[test]
    fn priority_only_matters_at_equal_times() {
        let mut q = EventQueue::new();
        q.schedule_at_pri(1.0, 5, "early-low-pri");
        q.schedule_at_pri(2.0, 0, "late-high-pri");
        assert_eq!(q.pop().unwrap().1, "early-low-pri");
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn past_scheduling_rejected() {
        let mut q = EventQueue::new();
        q.schedule_at(5.0, "x");
        q.pop();
        q.schedule_at(1.0, "y");
    }

    #[test]
    #[should_panic(expected = "negative delay")]
    fn negative_delay_rejected() {
        let mut q: EventQueue<&str> = EventQueue::new();
        q.schedule_in(-0.1, "x");
    }

    #[test]
    fn is_empty_and_pending() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule_at(1.0, 1);
        assert!(!q.is_empty());
        assert_eq!(q.pending(), 1);
        q.cancel(a);
        assert!(q.is_empty());
    }
}
