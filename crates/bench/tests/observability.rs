//! Observability acceptance suite: the telemetry spine and the span
//! tracer must be **observably inert** (artifacts byte-identical with
//! recording on or off), progress streaming must survive chaos without
//! ever lying (monotone counts ending at `done == total`, bytes
//! unchanged), the HTTP gateway must round-trip the whole job lifecycle —
//! submit through result bytes and the Chrome-trace export — against a
//! real `repro serve --http` process, and a failing job must leave a
//! flight-recorder post-mortem behind without altering its error.
//!
//! Everything runs against real daemon processes on ephemeral loopback
//! ports (`bench::remote::LocalService`), because the telemetry switch is
//! latched per process: flipping `REPRO_TELEMETRY` is only honest across
//! a process boundary.

use bench::remote::LocalService;
use bench::shard::Mm1ReplicationJob;
use des::Workload;
use sim_runtime::service::cache::decode_blob;
use sim_runtime::{Exec, JobProgress};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::Command;
use std::time::Duration;
use wsn::experiments::jobs::NodeSweepJob;

fn repro_bin() -> &'static str {
    env!("CARGO_BIN_EXE_repro")
}

/// Telemetry environment for a daemon: `Some(value)` pins
/// `REPRO_TELEMETRY`, `None` leaves the default (enabled).
fn telemetry_env(value: &str) -> Vec<(String, String)> {
    vec![("REPRO_TELEMETRY".to_string(), value.to_string())]
}

/// One minimal HTTP/1.1 request over a plain socket (no client library —
/// the gateway's contract is exactly this hand-rolled simplicity).
/// Returns `(status, body)`.
fn http(addr: &str, method: &str, target: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("gateway accepts");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .expect("request writes");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("response reads");
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a header/body split");
    let head = String::from_utf8_lossy(&raw[..head_end]).into_owned();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    (status, raw[head_end + 4..].to_vec())
}

/// The flat slot list a manifest run should produce, computed directly
/// in-process with the same seeds (the byte-identity baseline).
fn mm1_baseline(horizon: f64, warmup: f64, reps: u64, seed: u64) -> Vec<Vec<u8>> {
    let job = Mm1ReplicationJob {
        horizon,
        warmup,
        mu_grid: vec![2.0, 5.0, 10.0],
    };
    let per_point = vec![reps; 3];
    Exec::in_process(1)
        .runner()
        .run_job(&job, &per_point, &|p, r| {
            petri_core::rng::SimRng::child_seed(seed, ((p as u64) << 32) | r)
        })
        .expect("baseline runs")
        .into_iter()
        .flatten()
        .collect()
}

/// Tentpole invariant: the telemetry registry never touches results.
/// The same manifests produce byte-identical blobs from a daemon with
/// recording enabled and one with it disabled — for the replication
/// driver and the node-sweep driver — and both match direct in-process
/// execution.
#[test]
fn artifacts_byte_identical_with_telemetry_on_and_off() {
    let on = LocalService::spawn_with_env(
        repro_bin(),
        &["--threads", "1", "--no-disk-cache"],
        &telemetry_env("on"),
    )
    .expect("telemetry-on daemon spawns");
    let off = LocalService::spawn_with_env(
        repro_bin(),
        &["--threads", "1", "--no-disk-cache"],
        &telemetry_env("off"),
    )
    .expect("telemetry-off daemon spawns");

    // Replication driver: one manifest through each daemon's client path.
    let manifest = Mm1ReplicationJob::manifest(150.0, 15.0, 2, 0x0B5);
    let fetch = |svc: &LocalService| {
        let mut client = svc.client();
        let (job, _) = client.submit(&manifest, 1).expect("submit");
        client.fetch_blob(job).expect("fetch")
    };
    let blob_on = fetch(&on);
    let blob_off = fetch(&off);
    assert_eq!(blob_on, blob_off, "telemetry on/off blobs diverged");
    assert_eq!(
        decode_blob(&blob_on).expect("blob decodes"),
        mm1_baseline(150.0, 15.0, 2, 0x0B5),
        "served blob diverged from direct in-process execution"
    );

    // Node-sweep driver: the dispatcher/grid path through each daemon.
    let sweep = NodeSweepJob {
        workload: Workload::Closed { interval: 1.0 },
        horizon: 100.0,
        grid: vec![0.1, 0.3, 1.0],
    };
    let reps = vec![1u64; 3];
    let seed_of = |_p: usize, r: u64| 0x0B6 ^ r;
    let run = |exec: Exec| {
        exec.runner()
            .run_job(&sweep, &reps, &seed_of)
            .expect("sweep runs")
    };
    let sweep_base = run(Exec::in_process(1));
    assert_eq!(
        sweep_base,
        run(on.exec(1)),
        "telemetry-on sweep diverged from in-process bytes"
    );
    assert_eq!(
        sweep_base,
        run(off.exec(1)),
        "telemetry-off sweep diverged from in-process bytes"
    );

    on.shutdown();
    off.shutdown();
}

/// Progress streaming under chaos: a daemon whose transports drop frames
/// still delivers a monotone progress sequence ending at `done == total`,
/// and the result bytes are unchanged. Lost `P` frames are cosmetic —
/// they may thin the sequence, never corrupt it.
#[test]
fn chaos_armed_fetch_streams_monotone_progress() {
    let env = vec![
        ("REPRO_CHAOS_SEED".to_string(), "13".to_string()),
        ("REPRO_CHAOS_DROP".to_string(), "40".to_string()),
    ];
    let svc = LocalService::spawn_with_env(
        repro_bin(),
        &[
            "--threads",
            "1",
            "--shards",
            "1",
            "--retry",
            "12",
            "--io-timeout",
            "10",
            "--no-disk-cache",
        ],
        &env,
    )
    .expect("chaos daemon spawns");
    let manifest = Mm1ReplicationJob::manifest(400.0, 40.0, 3, 0xC4A05);
    let mut client = svc.client();
    let (job, _) = client.submit(&manifest, 1).expect("submit");
    let mut seen: Vec<JobProgress> = Vec::new();
    let blob = client
        .fetch_blob_with_progress(job, &mut |p| seen.push(p))
        .expect("fetch with progress");
    assert!(
        !seen.is_empty(),
        "an executed job must deliver at least the final progress frame"
    );
    for pair in seen.windows(2) {
        assert!(
            pair[1].done >= pair[0].done,
            "progress went backwards: {} then {}",
            pair[0].done,
            pair[1].done
        );
    }
    let last = seen.last().unwrap();
    assert_eq!(last.total, 9, "3 points x 3 replications");
    assert_eq!(
        last.done, last.total,
        "the final progress frame must report completion"
    );
    assert_eq!(
        decode_blob(&blob).expect("blob decodes"),
        mm1_baseline(400.0, 40.0, 3, 0xC4A05),
        "chaos-armed served bytes diverged"
    );
    svc.shutdown();
}

/// HTTP gateway round-trip against a real `repro serve --http` process:
/// health, spec-parsed submission, status JSON, result bytes identical to
/// the binary protocol's, Prometheus metrics carrying every tier's
/// series, and a clean 404.
#[test]
fn gateway_round_trips_submit_status_result_and_metrics() {
    let svc =
        LocalService::spawn_with_http(repro_bin(), &["--threads", "1", "--no-disk-cache"], &[])
            .expect("gateway daemon spawns");
    let gw = svc.http_addr().expect("gateway address announced");

    let (status, body) = http(gw, "GET", "/healthz");
    assert_eq!((status, body.as_slice()), (200, b"ok\n".as_slice()));

    // Submit through the gateway's query-param spec parser.
    let (status, body) = http(gw, "POST", "/submit?spec=mm1&reps=2&seed=99");
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let body = String::from_utf8(body).expect("submit response is JSON text");
    assert!(body.contains("\"job\":"), "submit response: {body}");
    let id: u64 = body
        .split("\"job\":")
        .nth(1)
        .and_then(|s| s.split([',', '}']).next())
        .and_then(|s| s.trim().parse().ok())
        .expect("job id in submit response");

    // Status JSON for the job.
    let (status, body) = http(gw, "GET", &format!("/jobs/{id}"));
    assert_eq!(status, 200);
    let body = String::from_utf8(body).expect("status JSON");
    assert!(
        body.contains("\"state\":") && body.contains("\"progress\":"),
        "status response: {body}"
    );

    // Result bytes from the gateway == result bytes from the binary
    // protocol for the same canonical manifest (same cache key).
    let (status, gw_blob) = http(gw, "GET", &format!("/jobs/{id}/result"));
    assert_eq!(status, 200);
    let mut client = svc.client();
    let (direct, _) = client
        .submit(&Mm1ReplicationJob::manifest(200.0, 20.0, 2, 99), 1)
        .expect("binary submit");
    let direct_blob = client.fetch_blob(direct).expect("binary fetch");
    assert_eq!(
        gw_blob, direct_blob,
        "gateway result bytes diverged from the binary protocol's"
    );

    // /stats is the shared JSON encoder; the submissions above are in it.
    let (status, body) = http(gw, "GET", "/stats");
    assert_eq!(status, 200);
    let stats = String::from_utf8(body).expect("stats JSON");
    assert!(stats.contains("\"submitted\":"), "stats: {stats}");

    // /metrics carries series from every instrumented tier.
    let (status, body) = http(gw, "GET", "/metrics");
    assert_eq!(status, 200);
    let metrics = String::from_utf8(body).expect("metrics text");
    for series in [
        "engine_runs_total",
        "engine_events_total",
        "grid_tasks_claimed_total",
        "service_verb_submit_ns_count",
        "service_queue_wait_ns_count",
        "service_submitted",
        "fleet_spawned",
    ] {
        assert!(metrics.contains(series), "missing {series} in:\n{metrics}");
    }

    let (status, _) = http(gw, "GET", "/no-such-route");
    assert_eq!(status, 404);
    let (status, _) = http(gw, "POST", "/submit?spec=bogus");
    assert_eq!(status, 400);

    svc.shutdown();
}

/// The span tracer never touches results: the same manifest produces
/// byte-identical blobs from a daemon with tracing enabled and one with
/// `REPRO_TRACE=off`, and both match direct in-process execution.
#[test]
fn artifacts_byte_identical_with_trace_on_and_off() {
    let spawn = |value: &str| {
        LocalService::spawn_with_env(
            repro_bin(),
            &["--threads", "1", "--no-disk-cache"],
            &[("REPRO_TRACE".to_string(), value.to_string())],
        )
        .expect("daemon spawns")
    };
    let on = spawn("on");
    let off = spawn("off");
    let manifest = Mm1ReplicationJob::manifest(150.0, 15.0, 2, 0x7ACE);
    let fetch = |svc: &LocalService| {
        let mut client = svc.client();
        let (job, _) = client.submit(&manifest, 1).expect("submit");
        client.fetch_blob(job).expect("fetch")
    };
    let blob_on = fetch(&on);
    let blob_off = fetch(&off);
    assert_eq!(blob_on, blob_off, "trace on/off blobs diverged");
    assert_eq!(
        decode_blob(&blob_on).expect("blob decodes"),
        mm1_baseline(150.0, 15.0, 2, 0x7ACE),
        "served blob diverged from direct in-process execution"
    );
    on.shutdown();
    off.shutdown();
}

/// `GET /jobs/<id>/trace` returns Chrome trace-event JSON for a job the
/// daemon actually served, carrying the service-tier spans (queue-wait,
/// dispatch), the grid's slot spans, and the engine-run spans the job
/// implementation records.
#[test]
fn gateway_serves_chrome_trace_with_expected_spans() {
    let svc =
        LocalService::spawn_with_http(repro_bin(), &["--threads", "1", "--no-disk-cache"], &[])
            .expect("gateway daemon spawns");
    let gw = svc.http_addr().expect("gateway address announced");

    let (status, body) = http(gw, "POST", "/submit?spec=mm1&reps=2&seed=1234");
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let body = String::from_utf8(body).expect("submit response is JSON text");
    let id: u64 = body
        .split("\"job\":")
        .nth(1)
        .and_then(|s| s.split([',', '}']).next())
        .and_then(|s| s.trim().parse().ok())
        .expect("job id in submit response");

    // Block until the job is done, then pull its trace.
    let (status, _) = http(gw, "GET", &format!("/jobs/{id}/result"));
    assert_eq!(status, 200);
    let (status, body) = http(gw, "GET", &format!("/jobs/{id}/trace"));
    assert_eq!(status, 200);
    let trace = String::from_utf8(body).expect("trace JSON is text");
    assert!(trace.contains("\"traceEvents\":["), "trace: {trace}");
    for span in ["queue-wait", "dispatch", "slot", "engine-run"] {
        assert!(
            trace.contains(&format!("\"name\":\"{span}\"")),
            "missing {span} span in:\n{trace}"
        );
    }

    // Unknown jobs 404 rather than serving an empty trace.
    let (status, _) = http(gw, "GET", "/jobs/424242/trace");
    assert_eq!(status, 404);
    svc.shutdown();
}

/// A failing job leaves a flight-recorder post-mortem (error + recent
/// spans as Chrome-trace JSON) in `REPRO_FLIGHT_DIR` — and the error the
/// waiter sees is byte-for-byte the executor's, untouched by the dump.
#[test]
fn failing_job_leaves_a_flight_record() {
    let dir = std::env::temp_dir().join(format!("repro-flight-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let svc = LocalService::spawn_with_env(
        repro_bin(),
        &["--threads", "1", "--no-disk-cache"],
        &[(
            "REPRO_FLIGHT_DIR".to_string(),
            dir.to_str().expect("utf-8 temp path").to_string(),
        )],
    )
    .expect("daemon spawns");

    let job = bench::shard::FailJob {
        fail_point: 0,
        fail_rep: 1,
    };
    let segments = vec![sim_runtime::Segment {
        point: 0,
        base_rep: 0,
        count: 3,
    }];
    let manifest =
        sim_runtime::TaskManifest::for_job(&job, segments, &|p, r| ((p as u64) << 32) | r);
    let mut client = svc.client();
    let (id, _) = client.submit(&manifest, 1).expect("submit");
    let err = client.fetch_blob(id).expect_err("job must fail");
    assert!(
        err.to_string().contains("selftest failure at (0, 1)"),
        "executor error must reach the waiter unchanged: {err}"
    );

    let dumps: Vec<_> = std::fs::read_dir(&dir)
        .expect("flight dir exists after a failure")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    assert_eq!(dumps.len(), 1, "exactly one post-mortem: {dumps:?}");
    let body = std::fs::read_to_string(&dumps[0]).expect("dump reads");
    assert!(
        body.contains("selftest failure at (0, 1)") && body.contains("\"traceEvents\":["),
        "dump must carry the error and the span trace: {body}"
    );
    svc.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `repro watch` against a live daemon: progress lines stream to stdout
/// (monotone, ending at completion) followed by the result summary.
#[test]
fn watch_verb_streams_progress_lines() {
    let svc = LocalService::spawn(repro_bin(), &["--threads", "1", "--no-disk-cache"])
        .expect("daemon spawns");
    let submit = Command::new(repro_bin())
        .args([
            "submit",
            "--service",
            svc.addr(),
            "mm1",
            "--reps",
            "2",
            "--seed",
            "41",
        ])
        .output()
        .expect("submit runs");
    assert!(submit.status.success());
    // "submitted job 1 (queued)"
    let out = String::from_utf8_lossy(&submit.stdout).into_owned();
    let id: u64 = out
        .split_whitespace()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no job id in {out:?}"));

    let watch = Command::new(repro_bin())
        .args(["watch", "--service", svc.addr(), &id.to_string()])
        .output()
        .expect("watch runs");
    assert!(watch.status.success());
    let out = String::from_utf8_lossy(&watch.stdout).into_owned();
    let lines: Vec<&str> = out.lines().collect();
    assert!(
        lines.last().is_some_and(|l| l.starts_with("done: ")),
        "watch must end with the result summary: {out:?}"
    );
    let progress: Vec<(u64, u64)> = lines
        .iter()
        .filter_map(|l| {
            let rest = l.strip_prefix("progress ")?;
            let (frac, _) = rest.split_once(' ')?;
            let (done, total) = frac.split_once('/')?;
            Some((done.parse().ok()?, total.parse().ok()?))
        })
        .collect();
    assert!(
        !progress.is_empty(),
        "an executed job always yields at least the final progress line: {out:?}"
    );
    assert!(
        progress.windows(2).all(|w| w[1].0 >= w[0].0),
        "progress lines must be monotone: {out:?}"
    );
    let (done, total) = *progress.last().unwrap();
    assert_eq!((done, total), (6, 6), "3 points x 2 replications");
    svc.shutdown();
}
