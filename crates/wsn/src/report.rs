//! Plain-text table/CSV rendering of experiment results — what the `repro`
//! binary prints so outputs can be diffed against the paper's tables.

use crate::experiments::cpu_comparison::CpuComparison;
use crate::experiments::node_energy::NodeSweep;
use crate::experiments::simple_system::SimpleSystemReport;
use crate::imote2::TableXComparison;
use crate::metrics::DeltaEnergyTable;
use std::fmt::Write as _;

/// Render a Δ-energy table in the paper's Tables IV–VI layout.
pub fn render_delta_table(title: &str, t: &DeltaEnergyTable) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let _ = writeln!(
        s,
        "{:<12} {:>14} {:>14} {:>16}",
        "Power Down", "Δ Sim-Markov", "Δ Sim-Petri", "Δ Markov-Petri"
    );
    let _ = writeln!(
        s,
        "{:<12} {:>14.2} {:>14.2} {:>16.2}",
        "Avg.", t.sim_markov.avg, t.sim_petri.avg, t.markov_petri.avg
    );
    let _ = writeln!(
        s,
        "{:<12} {:>14.2} {:>14.2} {:>16.2}",
        "Variance", t.sim_markov.variance, t.sim_petri.variance, t.markov_petri.variance
    );
    let _ = writeln!(
        s,
        "{:<12} {:>14.2} {:>14.2} {:>16.2}",
        "STD DEV", t.sim_markov.std_dev, t.sim_petri.std_dev, t.markov_petri.std_dev
    );
    let _ = writeln!(
        s,
        "{:<12} {:>14.2} {:>14.2} {:>16.2}",
        "RMSE", t.sim_markov.rmse, t.sim_petri.rmse, t.markov_petri.rmse
    );
    s
}

/// Render the state-percentage curves of Figs. 4–6 as CSV
/// (`pdt,sim_*,markov_*,petri_*` with the four states each).
pub fn render_state_csv(c: &CpuComparison) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "pdt,sim_standby,sim_powerup,sim_idle,sim_active,\
         markov_standby,markov_powerup,markov_idle,markov_active,\
         petri_standby,petri_powerup,petri_idle,petri_active"
    );
    for p in &c.points {
        let _ = write!(s, "{}", p.pdt);
        for v in p
            .sim_probs
            .iter()
            .chain(&p.markov_probs)
            .chain(&p.petri_probs)
        {
            let _ = write!(s, ",{:.6}", 100.0 * v);
        }
        let _ = writeln!(s);
    }
    s
}

/// Render the energy curves of Figs. 7–9 as CSV.
pub fn render_energy_csv(c: &CpuComparison) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "pdt,simulation_j,markov_j,petri_j");
    for (pdt, sim, markov, petri) in c.energy_rows() {
        let _ = writeln!(s, "{pdt},{sim:.4},{markov:.4},{petri:.4}");
    }
    s
}

/// Render a Fig. 14/15 sweep as CSV with the eight breakdown series.
pub fn render_node_sweep_csv(sweep: &NodeSweep) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "pdt,total_j,radio_wakeup_j,cpu_wakeup_j,cpu_active_j,cpu_idle_j,cpu_sleep_j,\
         radio_active_j,radio_idle_j,radio_sleep_j,cpu_wakeups,cycles"
    );
    for p in &sweep.points {
        let series = p.breakdown.series();
        let _ = write!(s, "{},{:.4}", p.pdt, p.total_j());
        for (_, e) in series.iter() {
            let _ = write!(s, ",{:.4}", e.joules());
        }
        let _ = writeln!(s, ",{:.0},{:.0}", p.cpu_wakeups, p.cycles);
    }
    s
}

/// Render one sweep's replication spend as a single summary line: total
/// replications, point count, the governing rule (or the `--fixed-reps`
/// escape hatch), and — crucially — how many points **hit the budget cap
/// without converging**, so an under-resolved sweep is visible in the
/// report instead of silently passing as converged.
///
/// `points` yields each point's `(replications, converged)`; `watch`
/// names the metric the rule watched (for the human reader).
pub fn render_budget_summary(
    points: impl Iterator<Item = (u64, bool)>,
    rule: Option<&sim_runtime::StoppingRule>,
    watch: &str,
) -> String {
    let (mut total, mut count, mut unconverged) = (0u64, 0usize, 0usize);
    for (reps, converged) in points {
        total += reps;
        count += 1;
        unconverged += usize::from(!converged);
    }
    match rule {
        Some(rule) => format!(
            "  adaptive budget: {total} replications over {count} points (rule: {:.0}% CI on {watch}, {}..{}; {unconverged} point(s) hit the cap)",
            rule.relative.unwrap_or_default() * 100.0,
            rule.min_replications,
            rule.max_replications,
        ),
        None => {
            format!("  fixed budget: {total} replications over {count} points (--fixed-reps)")
        }
    }
}

/// Render Tables VIII/IX.
pub fn render_simple_system(r: &SimpleSystemReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table VIII — transition parameters (steady state from renewal analysis)"
    );
    let _ = writeln!(
        s,
        "{:<20} {:<14} {:>10} {:>22}",
        "Transition", "Distribution", "Delay (s)", "Steady-state prob (%)"
    );
    for row in &r.rows {
        let _ = writeln!(
            s,
            "{:<20} {:<14} {:>10} {:>22.3}",
            row.transition, row.distribution, row.delay, row.probability_pct
        );
    }
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "Table IX — place probabilities (simulated vs analytic, %)"
    );
    let rows = [
        ("Wait", r.simulated.wait, r.analytic.wait),
        ("Temp_Place", r.simulated.temp_place, r.analytic.temp_place),
        ("Receiving", r.simulated.receiving, r.analytic.receiving),
        (
            "Computation",
            r.simulated.computation,
            r.analytic.computation,
        ),
        (
            "Transmitting",
            r.simulated.transmitting,
            r.analytic.transmitting,
        ),
    ];
    let _ = writeln!(s, "{:<14} {:>12} {:>12}", "State", "Simulated", "Analytic");
    for (name, sim, exact) in rows {
        let _ = writeln!(
            s,
            "{:<14} {:>12.3} {:>12.3}",
            name,
            100.0 * sim,
            100.0 * exact
        );
    }
    s
}

/// Render Table X.
pub fn render_table_x(c: &TableXComparison) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table X — emulated IMote2 vs Petri-net prediction");
    let _ = writeln!(
        s,
        "{:<32} {:>12.1} s",
        "IMote2 execution time", c.execution_time_s
    );
    let _ = writeln!(
        s,
        "{:<32} {:>12.4} mW",
        "Average IMote2 power", c.average_power_mw
    );
    let _ = writeln!(
        s,
        "{:<32} {:>12.6} J",
        "IMote2 energy usage", c.measured_energy_j
    );
    let _ = writeln!(
        s,
        "{:<32} {:>12.6} J",
        "Petri net energy usage", c.petri_energy_j
    );
    let _ = writeln!(
        s,
        "{:<32} {:>12.2} %",
        "Percent difference", c.percent_difference
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::cpu_comparison::{run_cpu_comparison, CpuComparisonConfig};
    use crate::experiments::node_energy::{run_node_sweep, NodeSweepConfig};
    use crate::experiments::simple_system::{run_simple_system, run_table_x};
    use des::Workload;

    fn tiny_comparison() -> CpuComparison {
        run_cpu_comparison(
            0.3,
            &[0.001, 0.5],
            &CpuComparisonConfig {
                horizon: 100.0,
                exec: sim_runtime::Exec::in_process(1),
                ..Default::default()
            },
        )
    }

    #[test]
    fn delta_table_renders_all_rows() {
        let c = tiny_comparison();
        let text = render_delta_table("Table V", &c.delta_table());
        for needle in ["Table V", "Avg.", "Variance", "STD DEV", "RMSE"] {
            assert!(text.contains(needle), "missing {needle}: {text}");
        }
    }

    #[test]
    fn csv_headers_and_row_counts() {
        let c = tiny_comparison();
        let state_csv = render_state_csv(&c);
        assert_eq!(state_csv.lines().count(), 1 + c.points.len());
        assert!(state_csv.starts_with("pdt,sim_standby"));
        let energy_csv = render_energy_csv(&c);
        assert_eq!(energy_csv.lines().count(), 1 + c.points.len());
    }

    #[test]
    fn node_sweep_csv_renders() {
        let sweep = run_node_sweep(
            Workload::Closed { interval: 1.0 },
            &[0.001, 0.01],
            &NodeSweepConfig {
                horizon: 100.0,
                exec: sim_runtime::Exec::in_process(1),
                ..Default::default()
            },
        );
        let csv = render_node_sweep_csv(&sweep);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("cpu_wakeup_j"));
    }

    #[test]
    fn simple_system_and_table_x_render() {
        let r = run_simple_system(500.0, 1);
        let text = render_simple_system(&r);
        assert!(text.contains("Job_Arrival"));
        assert!(text.contains("Transmitting"));
        let x = render_table_x(&run_table_x(1));
        assert!(x.contains("Percent difference"));
    }
}
